// Quantized int8 / fp8 V:N:M matrices and SpMM (the Table-1 integer rows
// and the reduced-precision serving datapath).
//
// SPTCs execute the same 2:4 selection at int8 precision with int32
// accumulate, or at fp8 with fp32 accumulate. Following Magicube [Li et
// al., SC'22] — quantized sparse kernels on tensor cores — this module
// holds two reduced-precision views of a V:N:M matrix:
//
//   QuantizedVnmMatrix  symmetric per-row int8:
//                         values_i8[i] = round(values_fp16[i] / scale_row)
//                       in [-127, 127], scale_row = max|row| / 127.
//   Fp8VnmMatrix        direct E5M2/E4M3 re-encoding of the fp16 values
//                       (fp8 carries its own exponent, so no scales).
//
// Both share the m-indices / column-loc structures unchanged, so every
// kernel below walks the exact Fig. 5 decomposition of spatha::spmm_vnm:
// column-loc gather of B into a packed panel, register-blocked
// multiply-accumulate, contiguous write-back. The int8 path gathers a
// packed *int8* B panel (4x less panel traffic than the float image) and
// accumulates in int32, dequantizing on the epilogue with
// scale_row * scale_col; the fp8 path upconverts its operands to float
// once per gather exactly like the fp16 pipeline. Each fast kernel has a
// scalar oracle it is bit-identical to (int32 accumulation is exact; the
// fp8 path accumulates per output element in the oracle's ascending
// (group, j) order).
#pragma once

#include <cstdint>
#include <vector>

#include "common/fp8.hpp"
#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/spmm.hpp"
#include "tensor/matrix.hpp"

namespace venom::quant {

/// int8 symmetric-quantized V:N:M matrix.
class QuantizedVnmMatrix {
 public:
  QuantizedVnmMatrix() = default;

  /// Quantizes an existing fp16 V:N:M matrix with per-row scales
  /// (scale = max|row| / 127; all-zero rows get scale 0).
  static QuantizedVnmMatrix quantize(const VnmMatrix& fp16);

  /// Dequantizes back to the fp16 V:N:M form (lossy by <= scale/2 per
  /// element).
  VnmMatrix dequantize() const;

  /// Reassembles a matrix from raw compressed structures (the
  /// deserialization path). Validates sizes and index ranges; throws
  /// venom::Error on any inconsistency.
  static QuantizedVnmMatrix from_parts(VnmConfig cfg, std::size_t rows,
                                       std::size_t cols,
                                       std::vector<std::int8_t> values,
                                       std::vector<std::uint8_t> m_indices,
                                       std::vector<std::uint8_t> column_loc,
                                       std::vector<float> scales);

  VnmConfig config() const { return cfg_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t groups_per_row() const { return cols_ / cfg_.m; }
  std::size_t block_rows() const { return rows_ / cfg_.v; }
  std::size_t nnz() const { return values_.size(); }

  std::int8_t value(std::size_t r, std::size_t g, std::size_t j) const {
    return values_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  std::uint8_t m_index(std::size_t r, std::size_t g, std::size_t j) const {
    return m_indices_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  std::uint8_t column_loc(std::size_t br, std::size_t g,
                          std::size_t s) const {
    return column_loc_[(br * groups_per_row() + g) * cfg_.selected_cols() + s];
  }
  float row_scale(std::size_t r) const { return scales_[r]; }

  const std::vector<std::int8_t>& values() const { return values_; }
  const std::vector<std::uint8_t>& m_indices() const { return m_indices_; }
  const std::vector<std::uint8_t>& column_locs() const { return column_loc_; }
  const std::vector<float>& row_scales() const { return scales_; }

  /// int8 values + 2-bit metadata + column-loc + fp32 row scales.
  std::size_t compressed_bytes() const;

 private:
  VnmConfig cfg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> values_;
  std::vector<std::uint8_t> m_indices_;
  std::vector<std::uint8_t> column_loc_;
  std::vector<float> scales_;
};

/// fp8 (E5M2 or E4M3) V:N:M matrix: the fp16 values re-encoded per
/// element (round-to-nearest-even, E4M3 saturating), structure shared.
class Fp8VnmMatrix {
 public:
  Fp8VnmMatrix() = default;

  /// Re-encodes an fp16 V:N:M matrix's values in fp8. A nonzero fp16
  /// value below the format's subnormal range encodes to zero (the slot
  /// stays in the structure; kernels skip it like any other zero).
  static Fp8VnmMatrix quantize(const VnmMatrix& fp16, Fp8Format format);

  /// Decodes back to the fp16 V:N:M form (every fp8 value is exactly
  /// representable in fp16, so this direction is lossless).
  VnmMatrix dequantize() const;

  /// Deserialization path; validates sizes and index ranges.
  static Fp8VnmMatrix from_parts(VnmConfig cfg, std::size_t rows,
                                 std::size_t cols, Fp8Format format,
                                 std::vector<std::uint8_t> values,
                                 std::vector<std::uint8_t> m_indices,
                                 std::vector<std::uint8_t> column_loc);

  VnmConfig config() const { return cfg_; }
  Fp8Format format() const { return format_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t groups_per_row() const { return cols_ / cfg_.m; }
  std::size_t block_rows() const { return rows_ / cfg_.v; }
  std::size_t nnz() const { return values_.size(); }

  std::uint8_t value_bits(std::size_t r, std::size_t g,
                          std::size_t j) const {
    return values_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  float value(std::size_t r, std::size_t g, std::size_t j) const {
    return fp8_to_float(value_bits(r, g, j), format_);
  }
  std::uint8_t m_index(std::size_t r, std::size_t g, std::size_t j) const {
    return m_indices_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  std::uint8_t column_loc(std::size_t br, std::size_t g,
                          std::size_t s) const {
    return column_loc_[(br * groups_per_row() + g) * cfg_.selected_cols() + s];
  }

  const std::vector<std::uint8_t>& values() const { return values_; }
  const std::vector<std::uint8_t>& m_indices() const { return m_indices_; }
  const std::vector<std::uint8_t>& column_locs() const { return column_loc_; }

  /// fp8 values + 2-bit metadata + column-loc (no scales).
  std::size_t compressed_bytes() const;

 private:
  VnmConfig cfg_;
  Fp8Format format_ = Fp8Format::kE4M3;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> m_indices_;
  std::vector<std::uint8_t> column_loc_;
};

/// C(fp32) = dequant(A_i8 * quant(B)): the dense operand is quantized
/// per column with symmetric int8; the kernel gathers packed int8 B
/// panels, accumulates in int32 through the register-blocked strips, and
/// the output element (r, c) dequantizes as
/// float(acc) * row_scale(r) * col_scale(c) on the epilogue. Tiling,
/// chunk_grain, and ColumnLocMode come from `cfg` (spmm_vnm semantics);
/// `scratch` recycles the packed panels across calls. Bit-identical to
/// spmm_vnm_i8_scalar for every configuration (integer accumulation is
/// exact, and both sides quantize B with the same shared helper).
FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        const spatha::SpmmConfig& cfg,
                        ThreadPool* pool = nullptr,
                        spatha::SpmmScratchPool* scratch = nullptr);

/// Convenience overload with the tuned/heuristic configuration.
/// `tuning` is the cache whose "+i8" entry (if any) picks the config —
/// pass ExecContext::tuning_cache() when dispatch runs under a context
/// with a private cache, so a scoped tune is honoured here exactly as
/// it is in the registry backends; nullptr consults the process-wide
/// TuningCache::global().
FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool = nullptr,
                        const spatha::TuningCache* tuning = nullptr);

/// Naive oracle: element-at-a-time traversal, same B quantization and
/// dequantization expression as the fast kernel.
FloatMatrix spmm_vnm_i8_scalar(
    const QuantizedVnmMatrix& a, const HalfMatrix& b,
    spatha::ColumnLocMode mode = spatha::ColumnLocMode::kEnabled);

/// C(fp32) = A_fp8 * B: B gathers into packed float panels exactly like
/// the fp16 pipeline (one bulk fp16->float conversion per gather); the
/// fp8 nonzeros decode through the 256-entry table while hoisting, and
/// products accumulate in fp32 in ascending (group, j) order per output
/// element — bit-identical to spmm_vnm_fp8_scalar.
FloatMatrix spmm_vnm_fp8(const Fp8VnmMatrix& a, const HalfMatrix& b,
                         const spatha::SpmmConfig& cfg,
                         ThreadPool* pool = nullptr,
                         spatha::SpmmScratchPool* scratch = nullptr);

/// Convenience overload with the tuned/heuristic configuration (same
/// cache-threading contract as the spmm_vnm_i8 overload, under the
/// "+fp8" key).
FloatMatrix spmm_vnm_fp8(const Fp8VnmMatrix& a, const HalfMatrix& b,
                         ThreadPool* pool = nullptr,
                         const spatha::TuningCache* tuning = nullptr);

/// Naive oracle for the fp8 path.
FloatMatrix spmm_vnm_fp8_scalar(
    const Fp8VnmMatrix& a, const HalfMatrix& b,
    spatha::ColumnLocMode mode = spatha::ColumnLocMode::kEnabled);

}  // namespace venom::quant
