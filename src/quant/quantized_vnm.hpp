// Quantized int8 V:N:M matrices and SpMM (the Table-1 integer rows).
//
// SPTCs execute the same 2:4 selection at uint8/int8 precision with
// int32 accumulate. Following Magicube [Li et al., SC'22] — quantized
// sparse kernels on tensor cores — this module adds a symmetric
// per-row-quantized view of a V:N:M matrix:
//
//   values_i8[i] = round(values_fp16[i] / scale_row)  in [-127, 127]
//
// with the m-indices / column-loc structures shared unchanged. The SpMM
// quantizes the dense operand per column on the fly, accumulates in
// int32, and dequantizes the output with scale_row * scale_col.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::quant {

/// int8 symmetric-quantized V:N:M matrix.
class QuantizedVnmMatrix {
 public:
  QuantizedVnmMatrix() = default;

  /// Quantizes an existing fp16 V:N:M matrix with per-row scales
  /// (scale = max|row| / 127; all-zero rows get scale 0).
  static QuantizedVnmMatrix quantize(const VnmMatrix& fp16);

  /// Dequantizes back to the fp16 V:N:M form (lossy by <= scale/2 per
  /// element).
  VnmMatrix dequantize() const;

  VnmConfig config() const { return cfg_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t groups_per_row() const { return cols_ / cfg_.m; }
  std::size_t nnz() const { return values_.size(); }

  std::int8_t value(std::size_t r, std::size_t g, std::size_t j) const {
    return values_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  std::uint8_t m_index(std::size_t r, std::size_t g, std::size_t j) const {
    return m_indices_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  std::uint8_t column_loc(std::size_t br, std::size_t g,
                          std::size_t s) const {
    return column_loc_[(br * groups_per_row() + g) * cfg_.selected_cols() + s];
  }
  float row_scale(std::size_t r) const { return scales_[r]; }

  /// int8 values + 2-bit metadata + column-loc + fp32 row scales.
  std::size_t compressed_bytes() const;

 private:
  VnmConfig cfg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> values_;
  std::vector<std::uint8_t> m_indices_;
  std::vector<std::uint8_t> column_loc_;
  std::vector<float> scales_;
};

/// C(fp32) = dequant(A_i8 * quant(B)): the dense operand is quantized
/// per column with symmetric int8; products accumulate in int32 and the
/// output element (r, c) is scaled by row_scale(r) * col_scale(c).
FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool = nullptr);

}  // namespace venom::quant
