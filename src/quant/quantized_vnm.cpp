#include "quant/quantized_vnm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#if defined(__GNUC__) && !defined(__clang__) && defined(__AVX512F__)
// GCC 12 expands unmasked AVX-512 intrinsics (cvtepi32_ps, cvttps_epi32,
// abs_ps, cvtsepi32_epi8, ...) into masked builtins whose undefined merge
// operand trips -Wmaybe-uninitialized (GCC PR105593). The operand is dead
// by construction for the unmasked forms used in this file.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "common/error.hpp"
#include "common/half.hpp"
#include "spatha/microkernel.hpp"
#include "spatha/tuning_cache.hpp"

namespace venom::quant {

namespace {

/// Round-half-away-from-zero to int8, matching std::lround for every
/// in-range input but branch-only (no libm call per element), so the
/// per-call B quantization loop vectorizes. The caller guarantees
/// |x| <= 127 * (1 + eps), which keeps the cast in range.
inline std::int8_t round_to_i8(float x) {
  return static_cast<std::int8_t>(
      static_cast<int>(x >= 0.0f ? x + 0.5f : x - 0.5f));
}

/// Per-column symmetric int8 image of the dense operand plus its
/// dequantization scales. Shared by the fast kernel and the scalar
/// oracle so both consume identical codes — with exact int32
/// accumulation, fast-vs-scalar bit parity then reduces to an equality
/// of inputs rather than of summation orders.
struct QuantizedB {
  Matrix<std::int8_t> values;
  std::vector<float> col_scale;
};

QuantizedB quantize_columns(const HalfMatrix& b) {
  const std::size_t rows = b.rows();
  const std::size_t width = b.cols();
  QuantizedB q{Matrix<std::int8_t>(rows, width),
               std::vector<float>(width, 0.0f)};

  // Pass 1 (row-major, running per-column max): convert each fp16 row
  // and fold it into the max-abs accumulator row. A single row buffer is
  // reused — re-converting in pass 2 (exact, so the passes agree) is far
  // cheaper than streaming a full float image of B through the cache.
  std::vector<float> rowf(width);
  std::vector<float> max_abs(width, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = rowf.data();
    half_to_float_n(&b(r, 0), row, width);
    std::size_t c = 0;
#if defined(__AVX512F__)
    for (; c + 16 <= width; c += 16)
      _mm512_storeu_ps(
          &max_abs[c],
          _mm512_max_ps(_mm512_loadu_ps(&max_abs[c]),
                        _mm512_abs_ps(_mm512_loadu_ps(row + c))));
#elif defined(__AVX2__)
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    for (; c + 8 <= width; c += 8)
      _mm256_storeu_ps(
          &max_abs[c],
          _mm256_max_ps(_mm256_loadu_ps(&max_abs[c]),
                        _mm256_and_ps(_mm256_loadu_ps(row + c), absmask)));
#endif
    for (; c < width; ++c)
      max_abs[c] = std::max(max_abs[c], std::fabs(row[c]));
  }
  std::vector<float> inv(width, 0.0f);
  for (std::size_t c = 0; c < width; ++c) {
    if (max_abs[c] == 0.0f) continue;
    q.col_scale[c] = max_abs[c] / 127.0f;
    inv[c] = 127.0f / max_abs[c];
  }
  // Pass 2: quantize row by row against the column inverses. The vector
  // path mirrors round_to_i8 exactly — copysign(0.5) add then truncate —
  // and the saturating packs cannot fire inside the guaranteed
  // |x| <= 127 * (1 + eps) range, so both paths emit identical codes.
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = rowf.data();
    half_to_float_n(&b(r, 0), rowf.data(), width);
    std::int8_t* dst = &q.values(r, 0);
    std::size_t c = 0;
#if defined(__AVX512F__)
    const __m512 half512 = _mm512_set1_ps(0.5f);
    const __m512i sign512 =
        _mm512_set1_epi32(static_cast<std::int32_t>(0x80000000u));
    for (; c + 16 <= width; c += 16) {
      const __m512 v = _mm512_mul_ps(_mm512_loadu_ps(row + c),
                                     _mm512_loadu_ps(&inv[c]));
      const __m512 biased = _mm512_add_ps(
          v, _mm512_castsi512_ps(_mm512_or_epi32(
                 _mm512_and_epi32(_mm512_castps_si512(v), sign512),
                 _mm512_castps_si512(half512))));
      // int32 -> int8 via vpmovsdb; the signed saturation cannot fire
      // inside the guaranteed range, same as the packs below.
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst + c),
          _mm512_cvtsepi32_epi8(_mm512_cvttps_epi32(biased)));
    }
#elif defined(__AVX2__)
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 signmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(
            static_cast<std::int32_t>(0x80000000u)));
    for (; c + 16 <= width; c += 16) {
      __m256 v0 = _mm256_mul_ps(_mm256_loadu_ps(row + c),
                                _mm256_loadu_ps(&inv[c]));
      __m256 v1 = _mm256_mul_ps(_mm256_loadu_ps(row + c + 8),
                                _mm256_loadu_ps(&inv[c + 8]));
      v0 = _mm256_add_ps(v0, _mm256_or_ps(_mm256_and_ps(v0, signmask), half));
      v1 = _mm256_add_ps(v1, _mm256_or_ps(_mm256_and_ps(v1, signmask), half));
      // int32 -> int16 -> int8 narrowing; packs_epi32 interleaves the
      // 128-bit lanes, the permute restores source order.
      const __m256i w = _mm256_permute4x64_epi64(
          _mm256_packs_epi32(_mm256_cvttps_epi32(v0),
                             _mm256_cvttps_epi32(v1)),
          0xd8);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst + c),
          _mm_packs_epi16(_mm256_castsi256_si128(w),
                          _mm256_extracti128_si256(w, 1)));
    }
#endif
    for (; c < width; ++c) dst[c] = round_to_i8(row[c] * inv[c]);
  }
  return q;
}

/// Stage 1.2 of the int8 pipeline: gathers the B rows selected by
/// column-loc into a packed panel — same layout as
/// spatha::detail::gather_b_panel_f32 but half the traffic. The int8
/// codes are widened to int16 here, once per gathered value, so stage 2
/// can feed vpmaddwd-class multiply-adds straight from the panel.
inline void gather_b_panel_i8(const QuantizedVnmMatrix& a,
                              const Matrix<std::int8_t>& bq, std::size_t br,
                              std::size_t g0, std::size_t g1, std::size_t c0,
                              std::size_t width, bool fixed,
                              std::vector<std::int16_t>& panel) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  panel.resize((g1 - g0) * sel * width);
  const std::uint8_t* cloc =
      a.column_locs().data() + (br * groups + g0) * sel;
  for (std::size_t g = g0; g < g1; ++g) {
    for (std::size_t s = 0; s < sel; ++s) {
      const std::size_t offset = fixed ? s : cloc[(g - g0) * sel + s];
      const std::int8_t* src = &bq(g * fmt.m + offset, c0);
      std::int16_t* dst = &panel[((g - g0) * sel + s) * width];
      std::size_t n = 0;
#if defined(__AVX2__)
      for (; n + 16 <= width; n += 16)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst + n),
            _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(src + n))));
#endif
      for (; n < width; ++n) dst[n] = src[n];
    }
  }
}

#if defined(__AVX2__)
/// One vpmaddwd-class step: acc += pairwise int16 dot of `w` and `av`.
/// AVX-512 VNNI fuses the multiply-add chain into vpdpwssd when the
/// compile target has it; plain AVX2 spends the extra vpaddd.
inline __m256i madd_acc_i16(__m256i acc, __m256i w, __m256i av) {
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  return _mm256_dpwssd_epi32(acc, w, av);
#else
  return _mm256_add_epi32(acc, _mm256_madd_epi16(w, av));
#endif
}

/// Packs two hoisted int8 A-values into the [lo16 | hi16] dword that
/// vpmaddwd pairs against the interleaved panel rows.
inline __m256i pack_a_pair(std::int32_t a1, std::int32_t a2) {
  return _mm256_set1_epi32(static_cast<std::int32_t>(
      (static_cast<std::uint32_t>(a1) & 0xffffu) |
      (static_cast<std::uint32_t>(a2) << 16)));
}
#endif

/// Stage 2 of the int8 pipeline: register-blocked int32 accumulation.
/// The vector path consumes TWO nonzeros per step: their panel rows are
/// interleaved with vpunpck[lh]wd and reduced with vpmaddwd (int16 pair
/// dot products, two MACs per lane per instruction — products are at
/// most 127^2 so the pairwise int32 sum is exact), which is where the
/// speedup over the fp16 FMA kernel comes from. int32 accumulation is
/// associative-exact, so the strip/pair order is free and the result is
/// bit-identical to the scalar oracle on every target.
inline void accumulate_panel_i8(const QuantizedVnmMatrix& a, std::size_t br,
                                std::size_t g0, std::size_t g1,
                                std::size_t width,
                                spatha::detail::SpmmScratch& s,
                                std::int32_t* acc) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const std::size_t span = (g1 - g0) * fmt.n;
  s.a_ints.resize(span);
  s.a_offs.resize(span);
  const std::int16_t* pan = s.panel_i16.data();

  for (std::size_t dr = 0; dr < fmt.v; ++dr) {
    const std::size_t r = br * fmt.v + dr;
    const std::int8_t* vals = a.values().data() + (r * groups + g0) * fmt.n;
    const std::uint8_t* midx =
        a.m_indices().data() + (r * groups + g0) * fmt.n;
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < span; ++k) {
      if (vals[k] == 0) continue;
      s.a_ints[cnt] = vals[k];
      s.a_offs[cnt] = static_cast<std::uint32_t>(
          ((k / fmt.n) * sel + midx[k]) * width);
      ++cnt;
    }

    std::int32_t* arow = acc + dr * width;
    std::size_t n0 = 0;
#if defined(__AVX2__)
    for (; n0 + 16 <= width; n0 += 16) {
      // Unpack interleaves within 128-bit lanes, so the running sums
      // hold columns [0-3, 8-11] and [4-7, 12-15]; one cross-lane
      // permute per strip restores natural order at fold-in time.
      __m256i acc_a = _mm256_setzero_si256();
      __m256i acc_b = _mm256_setzero_si256();
      std::size_t t = 0;
      for (; t + 2 <= cnt; t += 2) {
        const __m256i w1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pan + s.a_offs[t] + n0));
        const __m256i w2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pan + s.a_offs[t + 1] + n0));
        const __m256i av = pack_a_pair(s.a_ints[t], s.a_ints[t + 1]);
        acc_a = madd_acc_i16(acc_a, _mm256_unpacklo_epi16(w1, w2), av);
        acc_b = madd_acc_i16(acc_b, _mm256_unpackhi_epi16(w1, w2), av);
      }
      if (t < cnt) {
        // Odd count: pair the last nonzero with an all-zero partner.
        const __m256i w1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pan + s.a_offs[t] + n0));
        const __m256i z = _mm256_setzero_si256();
        const __m256i av = pack_a_pair(s.a_ints[t], 0);
        acc_a = madd_acc_i16(acc_a, _mm256_unpacklo_epi16(w1, z), av);
        acc_b = madd_acc_i16(acc_b, _mm256_unpackhi_epi16(w1, z), av);
      }
      const __m256i lo = _mm256_permute2x128_si256(acc_a, acc_b, 0x20);
      const __m256i hi = _mm256_permute2x128_si256(acc_a, acc_b, 0x31);
      __m256i* out = reinterpret_cast<__m256i*>(arow + n0);
      _mm256_storeu_si256(
          out, _mm256_add_epi32(_mm256_loadu_si256(out), lo));
      _mm256_storeu_si256(
          out + 1, _mm256_add_epi32(_mm256_loadu_si256(out + 1), hi));
    }
#else
    for (; n0 + spatha::detail::kStrip <= width;
         n0 += spatha::detail::kStrip) {
      std::int32_t regs[spatha::detail::kStrip];
      for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
        regs[u] = arow[n0 + u];
      for (std::size_t t = 0; t < cnt; ++t) {
        const std::int32_t av = s.a_ints[t];
        const std::int16_t* bp = pan + s.a_offs[t] + n0;
        for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
          regs[u] += av * std::int32_t(bp[u]);
      }
      for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
        arow[n0 + u] = regs[u];
    }
#endif
    if (n0 < width) {
      const std::size_t rem = width - n0;
      for (std::size_t t = 0; t < cnt; ++t) {
        const std::int32_t av = s.a_ints[t];
        const std::int16_t* bp = pan + s.a_offs[t] + n0;
        std::int32_t* ar = arow + n0;
        for (std::size_t u = 0; u < rem; ++u)
          ar[u] += av * std::int32_t(bp[u]);
      }
    }
  }
}

#if defined(__AVX512VNNI__)
/// VNNI variant of stages 1.2/2. The key restructuring: instead of
/// hoisting each row's N nonzeros, every row is PADDED to all `sel`
/// selector slots per group (zero codes where the row stores nothing —
/// exact in integer math, so parity with the scalar oracle is
/// untouched). Padded slots are row-independent, so the panel can be
/// packed once per gather into the quad-of-slots byte interleave that
/// vpdpbusd consumes — [slot, slot+1, slot+2, slot+3] per column dword —
/// and that packing is amortized across the V rows sharing the panel.
/// vpdpbusd multiplies u8 by s8; the panel side is biased (+128, i.e.
/// code ^ 0x80) to make it unsigned, and the bias is removed at fold-in
/// with the per-row correction 128 * sum(codes) — a per-column constant,
/// computed exactly in int32. Net: one 64-byte load + one vpdpbusd per
/// quad per 16 columns, with no per-nonzero unpacking at all.
///
/// One quad per M-group: byte ((g - g0) * 4 * width) + 4 * n + s holds
/// biased selector slot s of group g, column n; slots past `sel` store
/// 0x80 (= biased zero). Padding per group — rather than packing `sel`
/// slots densely — keeps panel quad g aligned with the packed code dword
/// g that pack_a_codes_i8_vnni builds, for every sel.
inline void gather_b_panel_i8_vnni(const QuantizedVnmMatrix& a,
                                   const Matrix<std::int8_t>& bq,
                                   std::size_t br, std::size_t g0,
                                   std::size_t g1, std::size_t c0,
                                   std::size_t width, bool fixed,
                                   std::vector<std::uint8_t>& panel) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const std::size_t quads = g1 - g0;
  panel.resize(quads * 4 * width);
  const std::uint8_t* cloc =
      a.column_locs().data() + (br * groups + g0) * sel;
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  for (std::size_t q = 0; q < quads; ++q) {
    const std::int8_t* src[4] = {nullptr, nullptr, nullptr, nullptr};
    for (std::size_t s = 0; s < 4 && s < sel; ++s) {
      const std::size_t offset = fixed ? s : cloc[q * sel + s];
      src[s] = &bq((g0 + q) * fmt.m + offset, c0);
    }
    std::uint8_t* dst = panel.data() + q * 4 * width;
    std::size_t n = 0;
    for (; n + 16 <= width; n += 16) {
      // Four 16-byte slot rows -> sixteen column dwords via the classic
      // byte/word unpack ladder; the bias xor rides along for free.
      const __m128i x0 =
          src[0] ? _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src[0] + n)), bias)
                 : bias;
      const __m128i x1 =
          src[1] ? _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src[1] + n)), bias)
                 : bias;
      const __m128i x2 =
          src[2] ? _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src[2] + n)), bias)
                 : bias;
      const __m128i x3 =
          src[3] ? _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src[3] + n)), bias)
                 : bias;
      const __m128i t0 = _mm_unpacklo_epi8(x0, x1);
      const __m128i t1 = _mm_unpackhi_epi8(x0, x1);
      const __m128i t2 = _mm_unpacklo_epi8(x2, x3);
      const __m128i t3 = _mm_unpackhi_epi8(x2, x3);
      __m128i* out = reinterpret_cast<__m128i*>(dst + 4 * n);
      _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(t0, t2));
      _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(t0, t2));
      _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(t1, t3));
      _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(t1, t3));
    }
    for (; n < width; ++n)
      for (std::size_t i = 0; i < 4; ++i)
        dst[4 * n + i] = static_cast<std::uint8_t>(
            (src[i] ? static_cast<std::uint8_t>(src[i][n]) : 0u) ^ 0x80u);
  }
}

/// Packs every (row, group) of the block row into its vpdpbusd code
/// dword — code of selector slot s at byte s, unused slots zero — plus
/// per-row prefix sums of the codes over groups for the bias
/// correction. Runs once per output tile: the packing depends only on
/// the block row, so hoisting it out of the K-panel loop removes the
/// dominant per-(row, panel) fixed cost for formats with many small
/// panels.
inline void pack_a_codes_i8_vnni(const QuantizedVnmMatrix& a, std::size_t br,
                                 spatha::detail::SpmmScratch& s) {
  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  s.a_ints.assign(fmt.v * groups, 0);
  s.a_sums.resize(fmt.v * (groups + 1));
  for (std::size_t dr = 0; dr < fmt.v; ++dr) {
    const std::size_t r = br * fmt.v + dr;
    const std::int8_t* vals = a.values().data() + r * groups * fmt.n;
    const std::uint8_t* midx = a.m_indices().data() + r * groups * fmt.n;
    std::int32_t* dw = s.a_ints.data() + dr * groups;
    std::int32_t* ps = s.a_sums.data() + dr * (groups + 1);
    ps[0] = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      std::uint32_t d = 0;
      std::int32_t sum = 0;
      for (std::size_t j = 0; j < fmt.n; ++j) {
        const std::int8_t v = vals[g * fmt.n + j];
        d |= std::uint32_t(std::uint8_t(v)) << (8 * midx[g * fmt.n + j]);
        sum += v;
      }
      dw[g] = static_cast<std::int32_t>(d);
      ps[g + 1] = ps[g] + sum;
    }
  }
}

/// Stage 2 against the quad-interleaved panel: per group per 16-column
/// strip, one vpdpbusd against the row's packed slot-code dword (four
/// u8*s8 MACs per int32 lane per instruction). Accumulator lanes land in
/// natural column order, so fold-in is a plain add minus the bias
/// correction — no permutes anywhere in the hot loop.
inline void accumulate_panel_i8_vnni(const QuantizedVnmMatrix& a,
                                     std::size_t g0, std::size_t g1,
                                     std::size_t width,
                                     spatha::detail::SpmmScratch& s,
                                     std::int32_t* acc) {
  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  const std::size_t quads = g1 - g0;
  const std::uint8_t* pan = s.panel_u8.data();

  for (std::size_t dr = 0; dr < fmt.v; ++dr) {
    const std::int32_t* dw = s.a_ints.data() + dr * groups + g0;
    const std::int32_t* ps = s.a_sums.data() + dr * (groups + 1);
    const std::int32_t corr = 128 * (ps[g1] - ps[g0]);

    std::int32_t* arow = acc + dr * width;
    std::size_t n0 = 0;
    const __m512i corr16 = _mm512_set1_epi32(corr);
    for (; n0 + 64 <= width; n0 += 64) {
      __m512i a0 = _mm512_setzero_si512();
      __m512i a1 = _mm512_setzero_si512();
      __m512i a2 = _mm512_setzero_si512();
      __m512i a3 = _mm512_setzero_si512();
      for (std::size_t q = 0; q < quads; ++q) {
        const __m512i av = _mm512_set1_epi32(dw[q]);
        const std::uint8_t* bp = pan + q * 4 * width + 4 * n0;
        a0 = _mm512_dpbusd_epi32(
            a0, _mm512_loadu_si512(reinterpret_cast<const void*>(bp)), av);
        a1 = _mm512_dpbusd_epi32(
            a1, _mm512_loadu_si512(reinterpret_cast<const void*>(bp + 64)),
            av);
        a2 = _mm512_dpbusd_epi32(
            a2, _mm512_loadu_si512(reinterpret_cast<const void*>(bp + 128)),
            av);
        a3 = _mm512_dpbusd_epi32(
            a3, _mm512_loadu_si512(reinterpret_cast<const void*>(bp + 192)),
            av);
      }
      for (std::size_t u = 0; u < 4; ++u) {
        const __m512i part = u == 0 ? a0 : u == 1 ? a1 : u == 2 ? a2 : a3;
        void* out = arow + n0 + 16 * u;
        _mm512_storeu_si512(
            out, _mm512_add_epi32(_mm512_loadu_si512(out),
                                  _mm512_sub_epi32(part, corr16)));
      }
    }
    for (; n0 + 16 <= width; n0 += 16) {
      __m512i a0 = _mm512_setzero_si512();
      for (std::size_t q = 0; q < quads; ++q)
        a0 = _mm512_dpbusd_epi32(
            a0,
            _mm512_loadu_si512(
                reinterpret_cast<const void*>(pan + q * 4 * width + 4 * n0)),
            _mm512_set1_epi32(dw[q]));
      void* out = arow + n0;
      _mm512_storeu_si512(
          out, _mm512_add_epi32(_mm512_loadu_si512(out),
                                _mm512_sub_epi32(a0, corr16)));
    }
    if (n0 < width) {
      // Ragged tail: signed math directly on the biased bytes.
      for (std::size_t p = 0; p < quads * 4; ++p) {
        const std::int32_t av = static_cast<std::int8_t>(
            static_cast<std::uint32_t>(dw[p / 4]) >> (8 * (p % 4)));
        if (av == 0) continue;
        const std::uint8_t* bp = pan + (p / 4) * 4 * width + (p % 4);
        for (std::size_t n = n0; n < width; ++n)
          arow[n] += av * (std::int32_t(bp[4 * n]) - 128);
      }
    }
  }
}
#endif  // __AVX512VNNI__

/// fp8 gather: same packed float panel as the fp16 path (fp8 is only the
/// A-operand storage; B stays fp16 and converts once per gather).
inline void gather_b_panel_fp8(const Fp8VnmMatrix& a, const HalfMatrix& b,
                               std::size_t br, std::size_t g0, std::size_t g1,
                               std::size_t c0, std::size_t width, bool fixed,
                               std::vector<float>& panel) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  panel.resize((g1 - g0) * sel * width);
  const std::uint8_t* cloc =
      a.column_locs().data() + (br * groups + g0) * sel;
  for (std::size_t g = g0; g < g1; ++g) {
    for (std::size_t s = 0; s < sel; ++s) {
      const std::size_t offset = fixed ? s : cloc[(g - g0) * sel + s];
      half_to_float_n(&b(g * fmt.m + offset, c0),
                      &panel[((g - g0) * sel + s) * width], width);
    }
  }
}

/// Stage 2 of the fp8 pipeline: identical to accumulate_panel_f32 except
/// the nonzero hoist decodes through the fp8 table (and skips decoded
/// zeros, which covers sub-fp8 fp16 values that flushed on quantize).
inline void accumulate_panel_fp8(const Fp8VnmMatrix& a, std::size_t br,
                                 std::size_t g0, std::size_t g1,
                                 std::size_t width,
                                 spatha::detail::SpmmScratch& s,
                                 float* acc) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const Fp8Format f8 = a.format();
  const std::size_t span = (g1 - g0) * fmt.n;
  s.a_vals.resize(span);
  s.a_offs.resize(span);
  const float* pan = s.panel.data();

  for (std::size_t dr = 0; dr < fmt.v; ++dr) {
    const std::size_t r = br * fmt.v + dr;
    const std::uint8_t* vals = a.values().data() + (r * groups + g0) * fmt.n;
    const std::uint8_t* midx =
        a.m_indices().data() + (r * groups + g0) * fmt.n;
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < span; ++k) {
      const float av = fp8_to_float(vals[k], f8);
      if (av == 0.0f) continue;
      s.a_vals[cnt] = av;
      s.a_offs[cnt] = static_cast<std::uint32_t>(
          ((k / fmt.n) * sel + midx[k]) * width);
      ++cnt;
    }

    float* arow = acc + dr * width;
    std::size_t n0 = 0;
    for (; n0 + spatha::detail::kStrip <= width;
         n0 += spatha::detail::kStrip) {
      float regs[spatha::detail::kStrip];
      for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
        regs[u] = arow[n0 + u];
      for (std::size_t t = 0; t < cnt; ++t) {
        const float av = s.a_vals[t];
        const float* bp = pan + s.a_offs[t] + n0;
        for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
          regs[u] += av * bp[u];
      }
      for (std::size_t u = 0; u < spatha::detail::kStrip; ++u)
        arow[n0 + u] = regs[u];
    }
    if (n0 < width) {
      const std::size_t rem = width - n0;
      for (std::size_t t = 0; t < cnt; ++t) {
        const float av = s.a_vals[t];
        const float* bp = pan + s.a_offs[t] + n0;
        float* ar = arow + n0;
        for (std::size_t u = 0; u < rem; ++u) ar[u] += av * bp[u];
      }
    }
  }
}

void check_parts(const VnmConfig& cfg, std::size_t rows, std::size_t cols,
                 std::size_t values_size, std::size_t m_indices_size,
                 std::size_t column_loc_size) {
  VENOM_CHECK_MSG(cfg.v >= 1 && rows % cfg.v == 0,
                  "quantized V:N:M parts: rows not divisible by V");
  VENOM_CHECK_MSG(cfg.m >= 2 && cols % cfg.m == 0,
                  "quantized V:N:M parts: cols not divisible by M");
  VENOM_CHECK_MSG(cfg.n >= 1 && cfg.n <= cfg.selected_cols(),
                  "quantized V:N:M parts: N out of range");
  const std::size_t groups = cols / cfg.m;
  VENOM_CHECK_MSG(values_size == rows * groups * cfg.n,
                  "quantized V:N:M parts: values size mismatch");
  VENOM_CHECK_MSG(m_indices_size == values_size,
                  "quantized V:N:M parts: m_indices size mismatch");
  VENOM_CHECK_MSG(
      column_loc_size == (rows / cfg.v) * groups * cfg.selected_cols(),
      "quantized V:N:M parts: column_loc size mismatch");
}

void check_indices(const VnmConfig& cfg,
                   const std::vector<std::uint8_t>& m_indices,
                   const std::vector<std::uint8_t>& column_loc) {
  for (std::uint8_t mi : m_indices)
    VENOM_CHECK_MSG(mi < cfg.selected_cols(),
                    "quantized V:N:M parts: m_index out of range");
  for (std::uint8_t cl : column_loc)
    VENOM_CHECK_MSG(cl < cfg.m,
                    "quantized V:N:M parts: column_loc out of range");
}

}  // namespace

QuantizedVnmMatrix QuantizedVnmMatrix::quantize(const VnmMatrix& fp16) {
  QuantizedVnmMatrix q;
  q.cfg_ = fp16.config();
  q.rows_ = fp16.rows();
  q.cols_ = fp16.cols();
  q.m_indices_ = fp16.m_indices();
  q.column_loc_ = fp16.column_locs();
  q.values_.resize(fp16.values().size());
  q.scales_.assign(fp16.rows(), 0.0f);

  const std::size_t per_row = fp16.groups_per_row() * q.cfg_.n;
  for (std::size_t r = 0; r < q.rows_; ++r) {
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < per_row; ++i)
      max_abs = std::max(max_abs,
                         std::fabs(fp16.values()[r * per_row + i].to_float()));
    if (max_abs == 0.0f) continue;  // scale 0, codes already 0
    q.scales_[r] = max_abs / 127.0f;
    const float inv = 127.0f / max_abs;
    for (std::size_t i = 0; i < per_row; ++i)
      q.values_[r * per_row + i] =
          round_to_i8(fp16.values()[r * per_row + i].to_float() * inv);
  }
  return q;
}

VnmMatrix QuantizedVnmMatrix::dequantize() const {
  const std::size_t per_row = groups_per_row() * cfg_.n;
  std::vector<half_t> values(values_.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = 0; i < per_row; ++i)
      values[r * per_row + i] =
          half_t(float(values_[r * per_row + i]) * scales_[r]);
  return VnmMatrix::from_parts(cfg_, rows_, cols_, std::move(values),
                               m_indices_, column_loc_);
}

QuantizedVnmMatrix QuantizedVnmMatrix::from_parts(
    VnmConfig cfg, std::size_t rows, std::size_t cols,
    std::vector<std::int8_t> values, std::vector<std::uint8_t> m_indices,
    std::vector<std::uint8_t> column_loc, std::vector<float> scales) {
  check_parts(cfg, rows, cols, values.size(), m_indices.size(),
              column_loc.size());
  check_indices(cfg, m_indices, column_loc);
  VENOM_CHECK_MSG(scales.size() == rows,
                  "quantized V:N:M parts: one scale per row required");
  for (float s : scales)
    VENOM_CHECK_MSG(s >= 0.0f && std::isfinite(s),
                    "quantized V:N:M parts: scales must be finite and >= 0");
  QuantizedVnmMatrix q;
  q.cfg_ = cfg;
  q.rows_ = rows;
  q.cols_ = cols;
  q.values_ = std::move(values);
  q.m_indices_ = std::move(m_indices);
  q.column_loc_ = std::move(column_loc);
  q.scales_ = std::move(scales);
  return q;
}

std::size_t QuantizedVnmMatrix::compressed_bytes() const {
  const std::size_t cloc_bits = static_cast<std::size_t>(
      std::ceil(std::log2(double(cfg_.m))));
  return values_.size() +                          // int8 values
         (m_indices_.size() * 2 + 7) / 8 +         // 2-bit metadata
         (column_loc_.size() * cloc_bits + 7) / 8 +
         scales_.size() * sizeof(float);
}

Fp8VnmMatrix Fp8VnmMatrix::quantize(const VnmMatrix& fp16, Fp8Format format) {
  Fp8VnmMatrix q;
  q.cfg_ = fp16.config();
  q.format_ = format;
  q.rows_ = fp16.rows();
  q.cols_ = fp16.cols();
  q.m_indices_ = fp16.m_indices();
  q.column_loc_ = fp16.column_locs();
  q.values_.resize(fp16.values().size());
  for (std::size_t i = 0; i < q.values_.size(); ++i)
    q.values_[i] = float_to_fp8(fp16.values()[i].to_float(), format);
  return q;
}

VnmMatrix Fp8VnmMatrix::dequantize() const {
  std::vector<half_t> values(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i)
    values[i] = half_t(fp8_to_float(values_[i], format_));
  return VnmMatrix::from_parts(cfg_, rows_, cols_, std::move(values),
                               m_indices_, column_loc_);
}

Fp8VnmMatrix Fp8VnmMatrix::from_parts(VnmConfig cfg, std::size_t rows,
                                      std::size_t cols, Fp8Format format,
                                      std::vector<std::uint8_t> values,
                                      std::vector<std::uint8_t> m_indices,
                                      std::vector<std::uint8_t> column_loc) {
  check_parts(cfg, rows, cols, values.size(), m_indices.size(),
              column_loc.size());
  check_indices(cfg, m_indices, column_loc);
  Fp8VnmMatrix q;
  q.cfg_ = cfg;
  q.format_ = format;
  q.rows_ = rows;
  q.cols_ = cols;
  q.values_ = std::move(values);
  q.m_indices_ = std::move(m_indices);
  q.column_loc_ = std::move(column_loc);
  return q;
}

std::size_t Fp8VnmMatrix::compressed_bytes() const {
  const std::size_t cloc_bits = static_cast<std::size_t>(
      std::ceil(std::log2(double(cfg_.m))));
  return values_.size() +                   // fp8 values
         (m_indices_.size() * 2 + 7) / 8 +  // 2-bit metadata
         (column_loc_.size() * cloc_bits + 7) / 8;
}

FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        const spatha::SpmmConfig& cfg, ThreadPool* pool,
                        spatha::SpmmScratchPool* scratch) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "quantized SpMM shape mismatch");
  spatha::validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  const QuantizedB bq = quantize_columns(b);

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;
  const std::size_t block_rows = a.block_rows();
  const bool fixed = cfg.column_loc == spatha::ColumnLocMode::kFixed;

  // Same (block row, C tile) decomposition as spatha::spmm_vnm; the
  // panel is packed int8 and the accumulator tile int32, with the
  // scale_row * scale_col dequantization fused into stage 3.
  pool->parallel_for_chunks(
      block_rows * c_tiles, [&](std::size_t t0, std::size_t t1) {
        spatha::detail::ScratchLease scratch_lease;
        spatha::detail::SpmmScratch& s = scratch_lease.bind(scratch);
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / c_tiles;
          const std::size_t ct = t % c_tiles;
          const std::size_t c0 = ct * cfg.block_c;
          const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
          const std::size_t width = c1 - c0;

          s.acc_i32.assign(fmt.v * width, 0);
#if defined(__AVX512VNNI__)
          pack_a_codes_i8_vnni(a, br, s);
#endif
          for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
            const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
#if defined(__AVX512VNNI__)
            gather_b_panel_i8_vnni(a, bq.values, br, g0, g1, c0, width,
                                   fixed, s.panel_u8);
            accumulate_panel_i8_vnni(a, g0, g1, width, s, s.acc_i32.data());
#else
            gather_b_panel_i8(a, bq.values, br, g0, g1, c0, width, fixed,
                              s.panel_i16);
            accumulate_panel_i8(a, br, g0, g1, width, s, s.acc_i32.data());
#endif
          }

          // Stage 3: dequantizing write-back of the finished tile. The
          // vector path computes (float(acc) * rs) * cs in the same
          // per-element order as the scalar loop, so it is bit-identical.
          for (std::size_t dr = 0; dr < fmt.v; ++dr) {
            const std::size_t r = br * fmt.v + dr;
            const float rs = a.row_scale(r);
            float* crow = &c(r, c0);
            const std::int32_t* arow = &s.acc_i32[dr * width];
            const float* cs = &bq.col_scale[c0];
            std::size_t n = 0;
#if defined(__AVX512F__)
            const __m512 rsv = _mm512_set1_ps(rs);
            for (; n + 16 <= width; n += 16)
              _mm512_storeu_ps(
                  crow + n,
                  _mm512_mul_ps(
                      _mm512_mul_ps(
                          _mm512_cvtepi32_ps(_mm512_loadu_si512(
                              reinterpret_cast<const void*>(arow + n))),
                          rsv),
                      _mm512_loadu_ps(cs + n)));
#elif defined(__AVX2__)
            const __m256 rsv = _mm256_set1_ps(rs);
            for (; n + 8 <= width; n += 8)
              _mm256_storeu_ps(
                  crow + n,
                  _mm256_mul_ps(
                      _mm256_mul_ps(
                          _mm256_cvtepi32_ps(_mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(arow + n))),
                          rsv),
                      _mm256_loadu_ps(cs + n)));
#endif
            for (; n < width; ++n)
              crow[n] = float(arow[n]) * rs * cs[n];
          }
        }
      },
      cfg.chunk_grain);
  return c;
}

FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool,
                        const spatha::TuningCache* tuning) {
  const spatha::TuningCache& cache =
      tuning != nullptr ? *tuning : spatha::TuningCache::global();
  return spmm_vnm_i8(
      a, b,
      spatha::select_config_i8(cache, a.config(), a.rows(), a.cols(),
                               b.cols()),
      pool);
}

FloatMatrix spmm_vnm_i8_scalar(const QuantizedVnmMatrix& a,
                               const HalfMatrix& b,
                               spatha::ColumnLocMode mode) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "quantized SpMM shape mismatch");
  const bool fixed = mode == spatha::ColumnLocMode::kFixed;

  const QuantizedB bq = quantize_columns(b);

  const std::size_t width = b.cols();
  const std::size_t groups = a.groups_per_row();
  FloatMatrix c(a.rows(), width);
  std::vector<std::int32_t> acc(width);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::size_t br = r / fmt.v;
    std::fill(acc.begin(), acc.end(), 0);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t j = 0; j < fmt.n; ++j) {
        const std::int32_t av = a.value(r, g, j);
        if (av == 0) continue;
        const std::uint8_t mi = a.m_index(r, g, j);
        const std::size_t col =
            g * fmt.m + (fixed ? mi : a.column_loc(br, g, mi));
        const std::int8_t* brow = &bq.values(col, 0);
        for (std::size_t n = 0; n < width; ++n)
          acc[n] += av * std::int32_t(brow[n]);
      }
    }
    const float rs = a.row_scale(r);
    for (std::size_t n = 0; n < width; ++n)
      c(r, n) = float(acc[n]) * rs * bq.col_scale[n];
  }
  return c;
}

FloatMatrix spmm_vnm_fp8(const Fp8VnmMatrix& a, const HalfMatrix& b,
                         const spatha::SpmmConfig& cfg, ThreadPool* pool,
                         spatha::SpmmScratchPool* scratch) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "fp8 SpMM shape mismatch");
  spatha::validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;
  const std::size_t block_rows = a.block_rows();
  const bool fixed = cfg.column_loc == spatha::ColumnLocMode::kFixed;

  pool->parallel_for_chunks(
      block_rows * c_tiles, [&](std::size_t t0, std::size_t t1) {
        spatha::detail::ScratchLease scratch_lease;
        spatha::detail::SpmmScratch& s = scratch_lease.bind(scratch);
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / c_tiles;
          const std::size_t ct = t % c_tiles;
          const std::size_t c0 = ct * cfg.block_c;
          const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
          const std::size_t width = c1 - c0;

          s.acc.assign(fmt.v * width, 0.0f);
          for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
            const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
            gather_b_panel_fp8(a, b, br, g0, g1, c0, width, fixed, s.panel);
            accumulate_panel_fp8(a, br, g0, g1, width, s, s.acc.data());
          }

          for (std::size_t dr = 0; dr < fmt.v; ++dr) {
            float* crow = &c(br * fmt.v + dr, c0);
            const float* arow = &s.acc[dr * width];
            std::copy(arow, arow + width, crow);
          }
        }
      },
      cfg.chunk_grain);
  return c;
}

FloatMatrix spmm_vnm_fp8(const Fp8VnmMatrix& a, const HalfMatrix& b,
                         ThreadPool* pool,
                         const spatha::TuningCache* tuning) {
  const spatha::TuningCache& cache =
      tuning != nullptr ? *tuning : spatha::TuningCache::global();
  return spmm_vnm_fp8(
      a, b,
      spatha::select_config_fp8(cache, a.config(), a.rows(), a.cols(),
                                b.cols()),
      pool);
}

FloatMatrix spmm_vnm_fp8_scalar(const Fp8VnmMatrix& a, const HalfMatrix& b,
                                spatha::ColumnLocMode mode) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "fp8 SpMM shape mismatch");
  const bool fixed = mode == spatha::ColumnLocMode::kFixed;

  const std::size_t width = b.cols();
  const std::size_t groups = a.groups_per_row();
  FloatMatrix c(a.rows(), width);
  std::vector<float> brow_f(width);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::size_t br = r / fmt.v;
    float* crow = &c(r, 0);
    std::fill(crow, crow + width, 0.0f);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t j = 0; j < fmt.n; ++j) {
        const float av = a.value(r, g, j);
        if (av == 0.0f) continue;
        const std::uint8_t mi = a.m_index(r, g, j);
        const std::size_t col =
            g * fmt.m + (fixed ? mi : a.column_loc(br, g, mi));
        half_to_float_n(&b(col, 0), brow_f.data(), width);
        for (std::size_t n = 0; n < width; ++n) crow[n] += av * brow_f[n];
      }
    }
  }
  return c;
}

}  // namespace venom::quant
