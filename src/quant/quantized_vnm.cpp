#include "quant/quantized_vnm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace venom::quant {

QuantizedVnmMatrix QuantizedVnmMatrix::quantize(const VnmMatrix& fp16) {
  QuantizedVnmMatrix q;
  q.cfg_ = fp16.config();
  q.rows_ = fp16.rows();
  q.cols_ = fp16.cols();
  q.m_indices_ = fp16.m_indices();
  q.column_loc_ = fp16.column_locs();
  q.values_.resize(fp16.values().size());
  q.scales_.assign(fp16.rows(), 0.0f);

  const std::size_t per_row = fp16.groups_per_row() * q.cfg_.n;
  for (std::size_t r = 0; r < q.rows_; ++r) {
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < per_row; ++i)
      max_abs = std::max(max_abs,
                         std::fabs(fp16.values()[r * per_row + i].to_float()));
    const float scale = max_abs / 127.0f;
    q.scales_[r] = scale;
    for (std::size_t i = 0; i < per_row; ++i) {
      const float v = fp16.values()[r * per_row + i].to_float();
      q.values_[r * per_row + i] =
          scale == 0.0f
              ? std::int8_t{0}
              : static_cast<std::int8_t>(std::lround(v / scale));
    }
  }
  return q;
}

VnmMatrix QuantizedVnmMatrix::dequantize() const {
  const std::size_t per_row = groups_per_row() * cfg_.n;
  std::vector<half_t> values(values_.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t i = 0; i < per_row; ++i)
      values[r * per_row + i] =
          half_t(float(values_[r * per_row + i]) * scales_[r]);
  return VnmMatrix::from_parts(cfg_, rows_, cols_, std::move(values),
                               m_indices_, column_loc_);
}

std::size_t QuantizedVnmMatrix::compressed_bytes() const {
  const std::size_t cloc_bits = static_cast<std::size_t>(
      std::ceil(std::log2(double(cfg_.m))));
  return values_.size() +                          // int8 values
         (m_indices_.size() * 2 + 7) / 8 +         // 2-bit metadata
         (column_loc_.size() * cloc_bits + 7) / 8 +
         scales_.size() * sizeof(float);
}

FloatMatrix spmm_vnm_i8(const QuantizedVnmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool) {
  VENOM_CHECK_MSG(a.cols() == b.rows(), "quantized SpMM shape mismatch");
  if (pool == nullptr) pool = &ThreadPool::global();

  // Per-column symmetric quantization of the dense operand.
  const std::size_t width = b.cols();
  std::vector<float> col_scale(width, 0.0f);
  for (std::size_t c = 0; c < width; ++c) {
    float max_abs = 0.0f;
    for (std::size_t r = 0; r < b.rows(); ++r)
      max_abs = std::max(max_abs, std::fabs(b(r, c).to_float()));
    col_scale[c] = max_abs / 127.0f;
  }
  Matrix<std::int8_t> b_q(b.rows(), width);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < width; ++c)
      b_q(r, c) = col_scale[c] == 0.0f
                      ? std::int8_t{0}
                      : static_cast<std::int8_t>(
                            std::lround(b(r, c).to_float() / col_scale[c]));

  FloatMatrix out(a.rows(), width);
  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  const std::size_t block_rows = a.rows() / fmt.v;

  pool->parallel_for(block_rows, [&](std::size_t br) {
    std::vector<std::int32_t> acc(width);
    for (std::size_t dr = 0; dr < fmt.v; ++dr) {
      const std::size_t r = br * fmt.v + dr;
      std::fill(acc.begin(), acc.end(), 0);
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t j = 0; j < fmt.n; ++j) {
          const std::int32_t av = a.value(r, g, j);
          if (av == 0) continue;
          const std::size_t col =
              g * fmt.m + a.column_loc(br, g, a.m_index(r, g, j));
          const std::int8_t* brow = &b_q(col, 0);
          for (std::size_t n = 0; n < width; ++n)
            acc[n] += av * std::int32_t(brow[n]);
        }
      }
      const float rs = a.row_scale(r);
      for (std::size_t n = 0; n < width; ++n)
        out(r, n) = float(acc[n]) * rs * col_scale[n];
    }
  });
  return out;
}

}  // namespace venom::quant
