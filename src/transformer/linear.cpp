#include "transformer/linear.hpp"

#include <chrono>
#include <cmath>

#include "baselines/gemm.hpp"
#include "ops/ops.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/plan.hpp"
#include "spatha/spmm.hpp"
#include "transformer/ops.hpp"

namespace venom::transformer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Linear::Linear(HalfMatrix weight, std::vector<float> bias)
    : out_(weight.rows()), in_(weight.cols()), weight_(std::move(weight)),
      bias_(std::move(bias)) {
  VENOM_CHECK(bias_.size() == out_);
}

Linear Linear::random(std::size_t out, std::size_t in, Rng& rng) {
  const float sigma = 1.0f / std::sqrt(float(in));
  HalfMatrix w = random_half_matrix(out, in, rng, sigma);
  std::vector<float> b(out);
  for (auto& v : b) v = sigma * rng.normal();
  return Linear(std::move(w), std::move(b));
}

void Linear::sparsify(VnmConfig cfg) {
  sparse_ = std::make_shared<const VnmMatrix>(
      VnmMatrix::from_dense_magnitude(weight_, cfg));
  sparse_fingerprint_ = spatha::weight_fingerprint(*sparse_);
}

HalfMatrix Linear::forward(const HalfMatrix& x,
                           TimingBreakdown* timing) const {
  VENOM_CHECK_MSG(x.rows() == in_, "Linear expects " << in_ << " features, got "
                                                     << x.rows());
  const auto t0 = std::chrono::steady_clock::now();
  ops::ExecContext& ctx = ctx_ != nullptr ? *ctx_ : ops::ExecContext::global();
  // Bias fused into the write-back stage of whichever backend dispatch
  // selects: the Spatha V:N:M backend for a sparsified weight, the
  // dense GEMM backend otherwise. The plan-cache tier (pre-hashed
  // shared operand -> cached plan + warm packed-panel scratch) engages
  // only when a context was attached: a context-less forward must not
  // pin this layer's weight in the process-global cache beyond its
  // lifetime. The fused epilogue is bit-identical to a separate
  // bias+convert pass by construction, so all tiers agree bitwise.
  spatha::Epilogue epilogue;
  epilogue.bias = bias_;
  const ops::MatmulArgs args =
      sparse_ != nullptr
          ? (ctx_ != nullptr
                 ? ops::MatmulArgs::make(sparse_, sparse_fingerprint_, x)
                 : ops::MatmulArgs::make(*sparse_, x))
          : ops::MatmulArgs::make(weight_, x);
  HalfMatrix y = ops::matmul_fused(args, epilogue, ctx);
  if (timing != nullptr) timing->gemm_s += seconds_since(t0);
  return y;
}

Linear::Grads Linear::backward(const HalfMatrix& x,
                               const FloatMatrix& grad_y) const {
  VENOM_CHECK_MSG(x.rows() == in_ && grad_y.rows() == out_ &&
                      x.cols() == grad_y.cols(),
                  "backward shapes: x " << x.rows() << 'x' << x.cols()
                                        << ", grad_y " << grad_y.rows() << 'x'
                                        << grad_y.cols());
  ops::ExecContext& ctx = ctx_ != nullptr ? *ctx_ : ops::ExecContext::global();
  Grads g;
  const HalfMatrix grad_y_half = to_half(grad_y);

  // dL/dx = W^T dL/dy — through the transposed sparse kernel when pruned
  // (no registry family covers the transposed product yet, so this one
  // call stays direct).
  const HalfMatrix wt = sparse_ == nullptr ? transpose(weight_) : HalfMatrix();
  g.input = sparse_ != nullptr
                ? spatha::spmm_vnm_transposed(*sparse_, grad_y_half,
                                              &ctx.pool())
                : ops::matmul(ops::MatmulArgs::make(wt, grad_y_half), ctx);

  // dL/dW = dL/dy x^T (dense: gradients flow to every coordinate; STen
  // keeps dense weight grads so the sparsifier can re-select later).
  const HalfMatrix xt = transpose(x);
  g.weight = ops::matmul(ops::MatmulArgs::make(grad_y_half, xt), ctx);

  // dL/db = row sums of dL/dy.
  g.bias.assign(out_, 0.0f);
  for (std::size_t o = 0; o < out_; ++o)
    for (std::size_t t = 0; t < grad_y.cols(); ++t)
      g.bias[o] += grad_y(o, t);
  return g;
}

void Linear::mask_gradient_to_pattern(FloatMatrix& grad_weight) const {
  VENOM_CHECK(grad_weight.rows() == out_ && grad_weight.cols() == in_);
  if (sparse_ == nullptr) return;
  const HalfMatrix pattern = sparse_->to_dense();
  for (std::size_t r = 0; r < out_; ++r)
    for (std::size_t c = 0; c < in_; ++c)
      if (pattern(r, c).is_zero()) grad_weight(r, c) = 0.0f;
}

}  // namespace venom::transformer
