#include "transformer/linear.hpp"

#include <chrono>
#include <cmath>

#include "baselines/gemm.hpp"
#include "ops/ops.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/plan.hpp"
#include "spatha/spmm.hpp"
#include "transformer/ops.hpp"

namespace venom::transformer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Linear::Linear(HalfMatrix weight, std::vector<float> bias)
    : out_(weight.rows()), in_(weight.cols()), weight_(std::move(weight)),
      bias_(std::move(bias)) {
  VENOM_CHECK(bias_.size() == out_);
}

Linear Linear::random(std::size_t out, std::size_t in, Rng& rng) {
  const float sigma = 1.0f / std::sqrt(float(in));
  HalfMatrix w = random_half_matrix(out, in, rng, sigma);
  std::vector<float> b(out);
  for (auto& v : b) v = sigma * rng.normal();
  return Linear(std::move(w), std::move(b));
}

void Linear::sparsify(VnmConfig cfg) {
  sparse_ = std::make_shared<const VnmMatrix>(
      VnmMatrix::from_dense_magnitude(weight_, cfg));
  sparse_fingerprint_ = spatha::weight_fingerprint(*sparse_);
  requantize();
}

void Linear::set_weight_dtype(ops::Dtype dtype) {
  if (dtype != ops::Dtype::kF16)
    VENOM_CHECK_MSG(sparse_ != nullptr,
                    "quantized weights require a sparsified layer (call "
                    "sparsify() before set_weight_dtype)");
  weight_dtype_ = dtype;
  requantize();
}

void Linear::requantize() {
  qweight_.reset();
  f8weight_.reset();
  if (sparse_ == nullptr) return;
  switch (weight_dtype_) {
    case ops::Dtype::kF16:
      break;
    case ops::Dtype::kI8:
      qweight_ = std::make_shared<const quant::QuantizedVnmMatrix>(
          quant::QuantizedVnmMatrix::quantize(*sparse_));
      break;
    case ops::Dtype::kF8E5M2:
      f8weight_ = std::make_shared<const quant::Fp8VnmMatrix>(
          quant::Fp8VnmMatrix::quantize(*sparse_, Fp8Format::kE5M2));
      break;
    case ops::Dtype::kF8E4M3:
      f8weight_ = std::make_shared<const quant::Fp8VnmMatrix>(
          quant::Fp8VnmMatrix::quantize(*sparse_, Fp8Format::kE4M3));
      break;
  }
}

HalfMatrix Linear::forward(const HalfMatrix& x, TimingBreakdown* timing,
                           ops::ExecContext* ctx_override) const {
  VENOM_CHECK_MSG(x.rows() == in_, "Linear expects " << in_ << " features, got "
                                                     << x.rows());
  const auto t0 = std::chrono::steady_clock::now();
  ops::ExecContext& ctx = ops::resolve(ctx_override, ctx_);
  const bool have_ctx = ctx_override != nullptr || ctx_ != nullptr;
  // Bias fused into the write-back stage of whichever backend dispatch
  // selects: the Spatha V:N:M backend for a sparsified weight, the
  // dense GEMM backend otherwise. The plan-cache tier (pre-hashed
  // shared operand -> cached plan + warm packed-panel scratch) engages
  // only when a context was attached: a context-less forward must not
  // pin this layer's weight in the process-global cache beyond its
  // lifetime. The fused epilogue is bit-identical to a separate
  // bias+convert pass by construction, so all tiers agree bitwise.
  spatha::Epilogue epilogue;
  epilogue.bias = bias_;
  ops::MatmulArgs args;
  if (qweight_ != nullptr) {
    // Quantized-weight mode: the layer-owned int8/fp8 image rides its
    // shared handle, and dispatch selects the quantized backend off the
    // desc's dtype.
    args = ops::MatmulArgs::make(qweight_, x);
  } else if (f8weight_ != nullptr) {
    args = ops::MatmulArgs::make(f8weight_, x);
  } else if (sparse_ != nullptr) {
    args = have_ctx ? ops::MatmulArgs::make(sparse_, sparse_fingerprint_, x)
                    : ops::MatmulArgs::make(*sparse_, x);
  } else {
    args = ops::MatmulArgs::make(weight_, x);
  }
  HalfMatrix y = ops::matmul_fused(args, epilogue, ctx);
  if (timing != nullptr) timing->gemm_s += seconds_since(t0);
  return y;
}

Linear::Grads Linear::backward(const HalfMatrix& x,
                               const FloatMatrix& grad_y) const {
  VENOM_CHECK_MSG(x.rows() == in_ && grad_y.rows() == out_ &&
                      x.cols() == grad_y.cols(),
                  "backward shapes: x " << x.rows() << 'x' << x.cols()
                                        << ", grad_y " << grad_y.rows() << 'x'
                                        << grad_y.cols());
  ops::ExecContext& ctx = ctx_ != nullptr ? *ctx_ : ops::ExecContext::global();
  Grads g;
  const HalfMatrix grad_y_half = to_half(grad_y);
  const HalfMatrix xt = transpose(x);

  // dL/dx = W^T dL/dy — the kMatmulTransposed registry family: the
  // scatter-based V:N:M kernel for a pruned weight, the explicit
  // transpose + dense GEMM otherwise.
  g.input = ops::matmul_transposed(
      sparse_ != nullptr
          ? ops::MatmulArgs::make_transposed(*sparse_, grad_y_half)
          : ops::MatmulArgs::make_transposed(weight_, grad_y_half),
      ctx);

  if (sparse_ != nullptr) {
    // dL/dW = dL/dy x^T sampled at the surviving pattern (the kSddmm
    // family): pruned coordinates are never computed, so the gradient is
    // masked by construction and updates cannot resurrect dead weights.
    g.weight_vnm = std::make_shared<const VnmMatrix>(ops::sddmm(
        ops::MatmulArgs::make_sddmm(*sparse_, grad_y_half, xt), ctx));
    const HalfMatrix dense_grad = g.weight_vnm->to_dense();
    g.weight = FloatMatrix(out_, in_);
    for (std::size_t i = 0; i < dense_grad.size(); ++i)
      g.weight.flat()[i] = dense_grad.flat()[i].to_float();
  } else {
    // Dense: gradients flow to every coordinate; STen keeps dense weight
    // grads so the sparsifier can re-select later.
    g.weight = ops::matmul(ops::MatmulArgs::make(grad_y_half, xt), ctx);
  }

  // dL/db = row sums of dL/dy.
  g.bias.assign(out_, 0.0f);
  for (std::size_t o = 0; o < out_; ++o)
    for (std::size_t t = 0; t < grad_y.cols(); ++t)
      g.bias[o] += grad_y(o, t);
  return g;
}

void Linear::apply_gradients(const Grads& g, float lr) {
  VENOM_CHECK_MSG(g.weight.rows() == out_ && g.weight.cols() == in_ &&
                      g.bias.size() == out_,
                  "gradient shapes do not match a " << out_ << 'x' << in_
                                                    << " layer");
  if (sparse_ != nullptr) {
    // Projected step: only surviving coordinates move, then the weight
    // recompresses under its fixed pattern (still conforming — a pruned
    // zero stays zero, and a surviving value stepping to exact zero only
    // tightens the pattern).
    HalfMatrix w = sparse_->to_dense();
    for (std::size_t r = 0; r < out_; ++r)
      for (std::size_t c = 0; c < in_; ++c)
        if (!w(r, c).is_zero())
          w(r, c) = half_t(w(r, c).to_float() - lr * g.weight(r, c));
    const VnmConfig cfg = sparse_->config();
    weight_ = w;
    sparse_ = std::make_shared<const VnmMatrix>(VnmMatrix::compress(w, cfg));
    sparse_fingerprint_ = spatha::weight_fingerprint(*sparse_);
    requantize();
  } else {
    for (std::size_t i = 0; i < weight_.size(); ++i)
      weight_.flat()[i] = half_t(weight_.flat()[i].to_float() -
                                 lr * g.weight.flat()[i]);
  }
  for (std::size_t o = 0; o < out_; ++o) bias_[o] -= lr * g.bias[o];
}

void Linear::mask_gradient_to_pattern(FloatMatrix& grad_weight) const {
  VENOM_CHECK(grad_weight.rows() == out_ && grad_weight.cols() == in_);
  if (sparse_ == nullptr) return;
  const HalfMatrix pattern = sparse_->to_dense();
  for (std::size_t r = 0; r < out_; ++r)
    for (std::size_t c = 0; c < in_; ++c)
      if (pattern(r, c).is_zero()) grad_weight(r, c) = 0.0f;
}

}  // namespace venom::transformer
