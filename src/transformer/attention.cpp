#include "transformer/attention.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "ops/ops.hpp"
#include "transformer/kv_cache.hpp"
#include "transformer/ops.hpp"

namespace venom::transformer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Copies head h (rows [h*dh, (h+1)*dh)), columns [t0, t1), out of a
/// (hidden x T) matrix.
HalfMatrix slice_head(const HalfMatrix& x, std::size_t h, std::size_t dh,
                      std::size_t t0, std::size_t t1) {
  HalfMatrix out(dh, t1 - t0);
  for (std::size_t d = 0; d < dh; ++d)
    for (std::size_t t = t0; t < t1; ++t)
      out(d, t - t0) = x(h * dh + d, t);
  return out;
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::size_t hidden, std::size_t heads,
                                       Rng& rng, bool causal)
    : hidden_(hidden), heads_(heads), causal_(causal),
      wq_(Linear::random(hidden, hidden, rng)),
      wk_(Linear::random(hidden, hidden, rng)),
      wv_(Linear::random(hidden, hidden, rng)),
      wo_(Linear::random(hidden, hidden, rng)) {
  VENOM_CHECK_MSG(hidden % heads == 0, "hidden " << hidden
                                                 << " not divisible by heads "
                                                 << heads);
}

void MultiHeadAttention::sparsify(VnmConfig cfg) {
  wq_.sparsify(cfg);
  wk_.sparsify(cfg);
  wv_.sparsify(cfg);
  wo_.sparsify(cfg);
}

void MultiHeadAttention::set_dynamic_score_sparsity(
    std::optional<NmPattern> pattern) {
  if (pattern.has_value()) {
    VENOM_CHECK_MSG((pattern->n == 2 && pattern->m == 4) ||
                        (pattern->n == 1 && pattern->m == 2),
                    "dynamic attention supports the hardware patterns 2:4 "
                    "and 1:2, got "
                        << pattern->n << ':' << pattern->m);
  }
  score_pattern_ = pattern;
}

namespace {

/// DFSS-style dynamic pruning: keeps the N largest probabilities per
/// group of M and renormalizes each row to unit mass. Returns the pruned
/// probabilities as an N:M compressed matrix.
NmMatrix prune_probabilities(const FloatMatrix& p, NmPattern pattern) {
  VENOM_CHECK_MSG(p.cols() % pattern.m == 0,
                  "sequence length " << p.cols() << " not divisible by M="
                                     << pattern.m);
  HalfMatrix pruned(p.rows(), p.cols());
  for (std::size_t i = 0; i < p.rows(); ++i) {
    // Select per group; probabilities are non-negative so magnitude
    // selection is just "largest".
    for (std::size_t g = 0; g < p.cols() / pattern.m; ++g) {
      // Insertion-select the top n of the group (n is 1 or 2).
      std::size_t best = g * pattern.m;
      for (std::size_t c = 1; c < pattern.m; ++c)
        if (p(i, g * pattern.m + c) > p(i, best)) best = g * pattern.m + c;
      pruned(i, best) = half_t(p(i, best));
      if (pattern.n == 2) {
        std::size_t second = best == g * pattern.m ? g * pattern.m + 1
                                                   : g * pattern.m;
        for (std::size_t c = 0; c < pattern.m; ++c) {
          const std::size_t col = g * pattern.m + c;
          if (col != best && p(i, col) > p(i, second)) second = col;
        }
        pruned(i, second) = half_t(p(i, second));
      }
    }
    // Renormalize the surviving mass.
    float sum = 0.0f;
    for (std::size_t c = 0; c < p.cols(); ++c)
      sum += pruned(i, c).to_float();
    if (sum > 0.0f) {
      const float inv = 1.0f / sum;
      for (std::size_t c = 0; c < p.cols(); ++c)
        if (!pruned(i, c).is_zero())
          pruned(i, c) = half_t(pruned(i, c).to_float() * inv);
    }
  }
  return NmMatrix::compress(pruned, pattern);
}

}  // namespace

HalfMatrix MultiHeadAttention::forward(const HalfMatrix& x,
                                       TimingBreakdown* timing,
                                       ops::ExecContext* ctx) const {
  const std::size_t end = x.cols();
  return forward_batched(x, std::span<const std::size_t>(&end, 1), timing,
                         ctx);
}

HalfMatrix MultiHeadAttention::forward_batched(
    const HalfMatrix& x, std::span<const std::size_t> seq_ends,
    TimingBreakdown* timing, ops::ExecContext* call_ctx) const {
  VENOM_CHECK(x.rows() == hidden_);
  VENOM_CHECK_MSG(!seq_ends.empty() && seq_ends.back() == x.cols(),
                  "sequence ends must cover all " << x.cols() << " tokens");
  if (x.cols() == 0) {
    // Zero tokens: attention over nothing is nothing (what the pre-batched
    // forward() returned for an empty activation).
    return HalfMatrix(hidden_, 0);
  }
  for (std::size_t i = 0; i + 1 < seq_ends.size(); ++i)
    VENOM_CHECK_MSG(seq_ends[i] < seq_ends[i + 1],
                    "sequence ends must be strictly increasing");
  VENOM_CHECK_MSG(seq_ends.front() > 0, "empty leading sequence");
  const std::size_t dh = hidden_ / heads_;
  const float scale = 1.0f / std::sqrt(float(dh));

  // The projections are token-wise: one SpMM over the whole packed batch
  // (the weight-stationary reuse serving is after). Every output column
  // depends only on its own input column, so per-sequence bits match the
  // unbatched pass.
  const HalfMatrix q = wq_.forward(x, timing, call_ctx);
  const HalfMatrix k = wk_.forward(x, timing, call_ctx);
  const HalfMatrix v = wv_.forward(x, timing, call_ctx);

  HalfMatrix context(hidden_, x.cols());
  for (std::size_t h = 0; h < heads_; ++h) {
    std::size_t s0 = 0;
    for (const std::size_t s1 : seq_ends) {
      const HalfMatrix qh = slice_head(q, h, dh, s0, s1);
      const HalfMatrix kh = slice_head(k, h, dh, s0, s1);
      const HalfMatrix vh = slice_head(v, h, dh, s0, s1);

      auto t0 = std::chrono::steady_clock::now();
      FloatMatrix scores = attention_scores(qh, kh, scale);
      if (timing != nullptr) timing->attn_matmul_s += seconds_since(t0);

      t0 = std::chrono::steady_clock::now();
      if (causal_) {
        // Decoder mask: query i must not see keys j > i (positions are
        // relative to the sequence's own start). A nonzero window also
        // hides keys that fell out of the sliding window, j + w <= i —
        // the exact set a capacity-w KV ring no longer holds.
        for (std::size_t i = 0; i < scores.rows(); ++i) {
          for (std::size_t j = i + 1; j < scores.cols(); ++j)
            scores(i, j) = -1e30f;
          if (attn_window_ != 0)
            for (std::size_t j = 0; j + attn_window_ <= i; ++j)
              scores(i, j) = -1e30f;
        }
      }
      softmax_rows(scores);
      if (timing != nullptr) timing->softmax_s += seconds_since(t0);

      t0 = std::chrono::steady_clock::now();
      HalfMatrix ctx;
      if (score_pattern_.has_value()) {
        // Dynamic N:M attention: context^T = P_nm * V^T dispatched
        // through the ops layer, which selects the register-blocked N:M
        // fast path (bit-identical to the spmm_24 baseline).
        const NmMatrix p_nm = prune_probabilities(scores, *score_pattern_);
        const HalfMatrix vt = transpose(vh);
        const FloatMatrix ctx_t = ops::matmul(ops::MatmulArgs::make(p_nm, vt),
                                              ops::resolve(call_ctx, ctx_));
        ctx = HalfMatrix(vh.rows(), scores.rows());
        for (std::size_t d = 0; d < vh.rows(); ++d)
          for (std::size_t i = 0; i < scores.rows(); ++i)
            ctx(d, i) = half_t(ctx_t(i, d));
      } else {
        ctx = attention_context(scores, vh);
      }
      if (timing != nullptr) timing->attn_matmul_s += seconds_since(t0);

      for (std::size_t d = 0; d < dh; ++d)
        for (std::size_t t = s0; t < s1; ++t)
          context(h * dh + d, t) = ctx(d, t - s0);
      s0 = s1;
    }
  }
  return wo_.forward(context, timing, call_ctx);
}

HalfMatrix MultiHeadAttention::forward_cached(
    const HalfMatrix& x, std::span<const std::size_t> seq_ends,
    std::span<KvCache* const> caches, std::size_t layer,
    TimingBreakdown* timing, ops::ExecContext* call_ctx) const {
  VENOM_CHECK_MSG(causal_, "forward_cached requires a causal attention "
                           "block (a KV cache is a decode structure)");
  VENOM_CHECK_MSG(!score_pattern_.has_value(),
                  "dynamic N:M attention is incompatible with a KV cache "
                  "(pruning depends on the whole probability row)");
  VENOM_CHECK(x.rows() == hidden_);
  VENOM_CHECK_MSG(!seq_ends.empty() && seq_ends.back() == x.cols(),
                  "sequence ends must cover all " << x.cols() << " tokens");
  VENOM_CHECK_MSG(caches.size() == seq_ends.size(),
                  "one KvCache per sequence: got " << caches.size()
                                                   << " caches for "
                                                   << seq_ends.size()
                                                   << " sequences");
  for (std::size_t i = 0; i + 1 < seq_ends.size(); ++i)
    VENOM_CHECK_MSG(seq_ends[i] < seq_ends[i + 1],
                    "sequence ends must be strictly increasing");
  VENOM_CHECK_MSG(seq_ends.front() > 0, "empty leading sequence");
  const std::size_t dh = hidden_ / heads_;
  const float scale = 1.0f / std::sqrt(float(dh));

  // Projections over the whole packed batch — the same single SpMM per
  // weight as forward_batched, and the columns land bit-identically
  // because Linear's outputs are column-independent.
  const HalfMatrix q = wq_.forward(x, timing, call_ctx);
  const HalfMatrix k = wk_.forward(x, timing, call_ctx);
  const HalfMatrix v = wv_.forward(x, timing, call_ctx);

  auto scratch = ops::resolve(call_ctx, ctx_).kv_scratch().acquire();
  HalfMatrix context(hidden_, x.cols());
  std::size_t s0 = 0;
  for (std::size_t s = 0; s < seq_ends.size(); ++s) {
    const std::size_t s1 = seq_ends[s];
    VENOM_CHECK_MSG(caches[s] != nullptr, "null KvCache for sequence " << s);
    KvCache& cache = *caches[s];
    VENOM_CHECK_MSG(cache.hidden() == hidden_ && layer < cache.layers(),
                    "KvCache shape (" << cache.layers() << " layers, hidden "
                                      << cache.hidden()
                                      << ") does not fit layer " << layer
                                      << " of hidden " << hidden_);
    VENOM_CHECK_MSG(attn_window_ == 0 || cache.capacity() == attn_window_,
                    "attention window " << attn_window_
                                        << " != KvCache capacity "
                                        << cache.capacity()
                                        << " (the ring must hold exactly "
                                           "the window)");
    for (std::size_t t = s0; t < s1; ++t) {
      // Append before attending: position p's query sees the cached
      // window [max(0, p + 1 - w), p], itself included — exactly the
      // sliding-window causal mask of the full forward.
      const std::size_t p = cache.append(layer, k, v, t);
      VENOM_CHECK_MSG(attn_window_ != 0 || p < cache.capacity(),
                      "KV cache overflow at position "
                          << p << " (capacity " << cache.capacity()
                          << "): set an attention window to serve "
                             "sequences longer than the ring");
      const std::size_t win = attn_window_ != 0 ? attn_window_
                                                : cache.capacity();
      const std::size_t lo = p + 1 > win ? p + 1 - win : 0;
      const std::size_t w = p + 1 - lo;
      for (std::size_t h = 0; h < heads_; ++h) {
        auto t0 = std::chrono::steady_clock::now();
        cache.gather_k(layer, h * dh, dh, lo, w, scratch->kh);
        cache.gather_v(layer, h * dh, dh, lo, w, scratch->vh);
        scratch->qh.resize(dh, 1);
        for (std::size_t d = 0; d < dh; ++d)
          scratch->qh(d, 0) = q(h * dh + d, t);
        attention_scores_into(scratch->qh, scratch->kh, scale,
                              scratch->scores);
        if (timing != nullptr) timing->attn_matmul_s += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        softmax_rows(scratch->scores);
        if (timing != nullptr) timing->softmax_s += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        attention_context_into(scratch->scores, scratch->vh, scratch->ctx);
        for (std::size_t d = 0; d < dh; ++d)
          context(h * dh + d, t) = scratch->ctx(d, 0);
        if (timing != nullptr) timing->attn_matmul_s += seconds_since(t0);
      }
    }
    s0 = s1;
  }
  return wo_.forward(context, timing, call_ctx);
}

FloatMatrix MultiHeadAttention::backward(const HalfMatrix& x,
                                         const FloatMatrix& grad_out,
                                         MhaGrads* grads) const {
  const std::size_t end = x.cols();
  return backward_batched(x, std::span<const std::size_t>(&end, 1), grad_out,
                          grads);
}

FloatMatrix MultiHeadAttention::backward_batched(
    const HalfMatrix& x, std::span<const std::size_t> seq_ends,
    const FloatMatrix& grad_out, MhaGrads* grads) const {
  VENOM_CHECK(x.rows() == hidden_);
  VENOM_CHECK(grad_out.rows() == hidden_ && grad_out.cols() == x.cols());
  VENOM_CHECK_MSG(!seq_ends.empty() && seq_ends.back() == x.cols(),
                  "sequence ends must cover all " << x.cols() << " tokens");
  VENOM_CHECK_MSG(!score_pattern_.has_value(),
                  "dynamic N:M attention has no backward (the top-N "
                  "selection is not differentiable)");
  const std::size_t dh = hidden_ / heads_;
  const float scale = 1.0f / std::sqrt(float(dh));
  MhaGrads local;
  MhaGrads& g = grads != nullptr ? *grads : local;

  // Recompute the projections (activation recomputation), then the
  // per-(head, sequence) probability matrices and the packed context —
  // the context is wo's forward input, which its backward needs.
  const HalfMatrix q = wq_.forward(x);
  const HalfMatrix k = wk_.forward(x);
  const HalfMatrix v = wv_.forward(x);

  std::vector<FloatMatrix> probs;  // one per (head, sequence), pass order
  probs.reserve(heads_ * seq_ends.size());
  HalfMatrix context(hidden_, x.cols());
  for (std::size_t h = 0; h < heads_; ++h) {
    std::size_t s0 = 0;
    for (const std::size_t s1 : seq_ends) {
      const HalfMatrix qh = slice_head(q, h, dh, s0, s1);
      const HalfMatrix kh = slice_head(k, h, dh, s0, s1);
      const HalfMatrix vh = slice_head(v, h, dh, s0, s1);
      FloatMatrix scores = attention_scores(qh, kh, scale);
      if (causal_)
        for (std::size_t i = 0; i < scores.rows(); ++i) {
          for (std::size_t j = i + 1; j < scores.cols(); ++j)
            scores(i, j) = -1e30f;
          if (attn_window_ != 0)
            for (std::size_t j = 0; j + attn_window_ <= i; ++j)
              scores(i, j) = -1e30f;
        }
      softmax_rows(scores);
      const HalfMatrix ctx = attention_context(scores, vh);
      for (std::size_t d = 0; d < dh; ++d)
        for (std::size_t t = s0; t < s1; ++t)
          context(h * dh + d, t) = ctx(d, t - s0);
      probs.push_back(std::move(scores));
      s0 = s1;
    }
  }

  // Output projection backward: grad_context flows into the per-head
  // attention backward below.
  g.wo = wo_.backward(context, grad_out);
  const FloatMatrix& grad_context = g.wo.input;

  FloatMatrix grad_q(hidden_, x.cols());
  FloatMatrix grad_k(hidden_, x.cols());
  FloatMatrix grad_v(hidden_, x.cols());
  std::size_t pi = 0;
  for (std::size_t h = 0; h < heads_; ++h) {
    std::size_t s0 = 0;
    for (const std::size_t s1 : seq_ends) {
      const std::size_t ts = s1 - s0;
      const HalfMatrix qh = slice_head(q, h, dh, s0, s1);
      const HalfMatrix kh = slice_head(k, h, dh, s0, s1);
      const HalfMatrix vh = slice_head(v, h, dh, s0, s1);
      const FloatMatrix& p = probs[pi++];

      // ctx(d, i) = sum_j P(i, j) V(d, j):
      //   dL/dP(i, j) = sum_d gctx(d, i) V(d, j)
      //   dL/dV(d, j) = sum_i gctx(d, i) P(i, j)
      FloatMatrix grad_p(ts, ts);
      for (std::size_t i = 0; i < ts; ++i)
        for (std::size_t j = 0; j < ts; ++j) {
          float acc = 0.0f;
          for (std::size_t d = 0; d < dh; ++d)
            acc += grad_context(h * dh + d, s0 + i) * vh(d, j).to_float();
          grad_p(i, j) = acc;
        }
      for (std::size_t d = 0; d < dh; ++d)
        for (std::size_t j = 0; j < ts; ++j) {
          float acc = 0.0f;
          for (std::size_t i = 0; i < ts; ++i)
            acc += grad_context(h * dh + d, s0 + i) * p(i, j);
          grad_v(h * dh + d, s0 + j) += acc;
        }

      // Softmax backward per query row: dS = P ⊙ (dP − <dP, P>). Masked
      // (causal) entries carry P = 0, so their gradient vanishes without
      // special-casing.
      FloatMatrix grad_s(ts, ts);
      for (std::size_t i = 0; i < ts; ++i) {
        float dot = 0.0f;
        for (std::size_t j = 0; j < ts; ++j) dot += grad_p(i, j) * p(i, j);
        for (std::size_t j = 0; j < ts; ++j)
          grad_s(i, j) = p(i, j) * (grad_p(i, j) - dot);
      }

      // scores(i, j) = scale * sum_d q(d, i) k(d, j):
      //   dL/dq(d, i) = scale * sum_j dS(i, j) k(d, j)
      //   dL/dk(d, j) = scale * sum_i dS(i, j) q(d, i)
      for (std::size_t d = 0; d < dh; ++d)
        for (std::size_t i = 0; i < ts; ++i) {
          float acc = 0.0f;
          for (std::size_t j = 0; j < ts; ++j)
            acc += grad_s(i, j) * kh(d, j).to_float();
          grad_q(h * dh + d, s0 + i) += scale * acc;
        }
      for (std::size_t d = 0; d < dh; ++d)
        for (std::size_t j = 0; j < ts; ++j) {
          float acc = 0.0f;
          for (std::size_t i = 0; i < ts; ++i)
            acc += grad_s(i, j) * qh(d, i).to_float();
          grad_k(h * dh + d, s0 + j) += scale * acc;
        }
      s0 = s1;
    }
  }

  // Projection backwards (sparse ops when the projections are pruned);
  // the input gradient sums the three branches that consume x.
  g.wq = wq_.backward(x, grad_q);
  g.wk = wk_.backward(x, grad_k);
  g.wv = wv_.backward(x, grad_v);
  FloatMatrix grad_x = add(add(g.wq.input, g.wk.input), g.wv.input);
  return grad_x;
}

void MultiHeadAttention::apply_gradients(const MhaGrads& g, float lr) {
  wq_.apply_gradients(g.wq, lr);
  wk_.apply_gradients(g.wk, lr);
  wv_.apply_gradients(g.wv, lr);
  wo_.apply_gradients(g.wo, lr);
}

}  // namespace venom::transformer
