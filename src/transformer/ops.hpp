// Elementwise / normalization / attention-matmul operators.
//
// Activations flow as HalfMatrix with shape (features x tokens): the
// token dimension lies along columns, so a linear layer is exactly the
// paper's SpMM (sparse weight R x K times dense activation K x C).
#pragma once

#include "tensor/matrix.hpp"

namespace venom::transformer {

/// Row-wise softmax in place (each row is one attention query's scores).
void softmax_rows(FloatMatrix& scores);

/// LayerNorm over the feature dimension of (features x tokens), per
/// token (column), with scale gamma and shift beta (size = features).
HalfMatrix layer_norm(const HalfMatrix& x, std::span<const float> gamma,
                      std::span<const float> beta, float eps = 1e-5f);

/// GELU (tanh approximation) applied element-wise.
HalfMatrix gelu(const HalfMatrix& x);

/// x + y element-wise (residual connection).
HalfMatrix add(const HalfMatrix& x, const HalfMatrix& y);

/// Adds a per-feature bias to (features x tokens).
void add_bias(FloatMatrix& x, std::span<const float> bias);

/// scores(Tq x Tk) = Qh^T Kh * scale, with Qh, Kh of shape (dh x T).
FloatMatrix attention_scores(const HalfMatrix& qh, const HalfMatrix& kh,
                             float scale);

/// context(dh x Tq) = Vh * P^T, with P(Tq x Tk) probabilities, Vh(dh x Tk).
HalfMatrix attention_context(const FloatMatrix& p, const HalfMatrix& vh);

/// Allocation-free variants for the decode hot path: same loops (so the
/// results are bit-identical to the value-returning forms above), but
/// the output is resized into a caller-retained buffer — a reused
/// scratch matrix settles at its high-water size and the steady-state
/// single-token decode step performs no heap allocation here.
void attention_scores_into(const HalfMatrix& qh, const HalfMatrix& kh,
                           float scale, FloatMatrix& out);
void attention_context_into(const FloatMatrix& p, const HalfMatrix& vh,
                            HalfMatrix& out);

// ------------------------------------------------------------- backward
//
// Gradients of the elementwise / normalization operators above, for the
// sparse-training loop (fp32 gradient domain; the forward's fp16
// rounding is treated as identity, the standard mixed-precision
// convention).

/// x + y element-wise over fp32 gradients.
FloatMatrix add(const FloatMatrix& x, const FloatMatrix& y);

/// Backward of layer_norm over the *pre-normalization* input `x`: given
/// upstream dL/dy, returns dL/dx and accumulates dL/dgamma and dL/dbeta
/// (both size = features; callers zero them first).
FloatMatrix layer_norm_backward(const HalfMatrix& x,
                                std::span<const float> gamma,
                                const FloatMatrix& grad_y,
                                std::span<float> dgamma,
                                std::span<float> dbeta, float eps = 1e-5f);

/// Backward of the tanh-approximated GELU: dL/dx = dL/dy * gelu'(x).
FloatMatrix gelu_backward(const HalfMatrix& x, const FloatMatrix& grad_y);

}  // namespace venom::transformer
