#include "transformer/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace venom::transformer {

void softmax_rows(FloatMatrix& scores) {
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (auto& v : row) v *= inv;
  }
}

HalfMatrix layer_norm(const HalfMatrix& x, std::span<const float> gamma,
                      std::span<const float> beta, float eps) {
  VENOM_CHECK(gamma.size() == x.rows() && beta.size() == x.rows());
  HalfMatrix out(x.rows(), x.cols());
  for (std::size_t t = 0; t < x.cols(); ++t) {
    float mean = 0.0f;
    for (std::size_t f = 0; f < x.rows(); ++f) mean += x(f, t).to_float();
    mean /= float(x.rows());
    float var = 0.0f;
    for (std::size_t f = 0; f < x.rows(); ++f) {
      const float d = x(f, t).to_float() - mean;
      var += d * d;
    }
    var /= float(x.rows());
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t f = 0; f < x.rows(); ++f)
      out(f, t) = half_t((x(f, t).to_float() - mean) * inv * gamma[f] +
                         beta[f]);
  }
  return out;
}

HalfMatrix gelu(const HalfMatrix& x) {
  HalfMatrix out(x.rows(), x.cols());
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.flat()[i].to_float();
    const float t = std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v));
    out.flat()[i] = half_t(0.5f * v * (1.0f + t));
  }
  return out;
}

HalfMatrix add(const HalfMatrix& x, const HalfMatrix& y) {
  VENOM_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  HalfMatrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.flat()[i] = x.flat()[i] + y.flat()[i];
  return out;
}

void add_bias(FloatMatrix& x, std::span<const float> bias) {
  VENOM_CHECK(bias.size() == x.rows());
  for (std::size_t f = 0; f < x.rows(); ++f)
    for (std::size_t t = 0; t < x.cols(); ++t) x(f, t) += bias[f];
}

FloatMatrix attention_scores(const HalfMatrix& qh, const HalfMatrix& kh,
                             float scale) {
  FloatMatrix scores;
  attention_scores_into(qh, kh, scale, scores);
  return scores;
}

void attention_scores_into(const HalfMatrix& qh, const HalfMatrix& kh,
                           float scale, FloatMatrix& scores) {
  VENOM_CHECK(qh.rows() == kh.rows());
  scores.resize(qh.cols(), kh.cols());
  for (std::size_t i = 0; i < qh.cols(); ++i)
    for (std::size_t j = 0; j < kh.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t d = 0; d < qh.rows(); ++d)
        acc += qh(d, i).to_float() * kh(d, j).to_float();
      scores(i, j) = acc * scale;
    }
}

FloatMatrix add(const FloatMatrix& x, const FloatMatrix& y) {
  VENOM_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  FloatMatrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.flat()[i] = x.flat()[i] + y.flat()[i];
  return out;
}

FloatMatrix layer_norm_backward(const HalfMatrix& x,
                                std::span<const float> gamma,
                                const FloatMatrix& grad_y,
                                std::span<float> dgamma,
                                std::span<float> dbeta, float eps) {
  const std::size_t features = x.rows();
  VENOM_CHECK(gamma.size() == features && dgamma.size() == features &&
              dbeta.size() == features);
  VENOM_CHECK(grad_y.rows() == features && grad_y.cols() == x.cols());
  FloatMatrix dx(features, x.cols());
  const float inv_f = 1.0f / float(features);
  std::vector<float> xhat(features), dyh(features);
  for (std::size_t t = 0; t < x.cols(); ++t) {
    // Recompute the per-token statistics exactly as the forward does.
    float mean = 0.0f;
    for (std::size_t f = 0; f < features; ++f) mean += x(f, t).to_float();
    mean *= inv_f;
    float var = 0.0f;
    for (std::size_t f = 0; f < features; ++f) {
      const float d = x(f, t).to_float() - mean;
      var += d * d;
    }
    var *= inv_f;
    const float inv = 1.0f / std::sqrt(var + eps);

    // dL/dxhat = dL/dy * gamma; then the two projection terms that make
    // the normalization's Jacobian: subtract the mean of dL/dxhat and
    // the xhat-weighted mean along the feature axis.
    float mean_dyh = 0.0f, mean_dyh_xhat = 0.0f;
    for (std::size_t f = 0; f < features; ++f) {
      xhat[f] = (x(f, t).to_float() - mean) * inv;
      dyh[f] = grad_y(f, t) * gamma[f];
      dgamma[f] += grad_y(f, t) * xhat[f];
      dbeta[f] += grad_y(f, t);
      mean_dyh += dyh[f];
      mean_dyh_xhat += dyh[f] * xhat[f];
    }
    mean_dyh *= inv_f;
    mean_dyh_xhat *= inv_f;
    for (std::size_t f = 0; f < features; ++f)
      dx(f, t) = inv * (dyh[f] - mean_dyh - xhat[f] * mean_dyh_xhat);
  }
  return dx;
}

FloatMatrix gelu_backward(const HalfMatrix& x, const FloatMatrix& grad_y) {
  VENOM_CHECK(grad_y.rows() == x.rows() && grad_y.cols() == x.cols());
  FloatMatrix dx(x.rows(), x.cols());
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  constexpr float kCubic = 0.044715f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.flat()[i].to_float();
    const float u = kSqrt2OverPi * (v + kCubic * v * v * v);
    const float t = std::tanh(u);
    const float du = kSqrt2OverPi * (1.0f + 3.0f * kCubic * v * v);
    const float d = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx.flat()[i] = grad_y.flat()[i] * d;
  }
  return dx;
}

HalfMatrix attention_context(const FloatMatrix& p, const HalfMatrix& vh) {
  HalfMatrix ctx;
  attention_context_into(p, vh, ctx);
  return ctx;
}

void attention_context_into(const FloatMatrix& p, const HalfMatrix& vh,
                            HalfMatrix& ctx) {
  VENOM_CHECK(p.cols() == vh.cols());
  ctx.resize(vh.rows(), p.rows());
  for (std::size_t d = 0; d < vh.rows(); ++d)
    for (std::size_t i = 0; i < p.rows(); ++i) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < p.cols(); ++j)
        acc += p(i, j) * vh(d, j).to_float();
      ctx(d, i) = half_t(acc);
    }
}

}  // namespace venom::transformer
