#include "transformer/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace venom::transformer {

void softmax_rows(FloatMatrix& scores) {
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (auto& v : row) v *= inv;
  }
}

HalfMatrix layer_norm(const HalfMatrix& x, std::span<const float> gamma,
                      std::span<const float> beta, float eps) {
  VENOM_CHECK(gamma.size() == x.rows() && beta.size() == x.rows());
  HalfMatrix out(x.rows(), x.cols());
  for (std::size_t t = 0; t < x.cols(); ++t) {
    float mean = 0.0f;
    for (std::size_t f = 0; f < x.rows(); ++f) mean += x(f, t).to_float();
    mean /= float(x.rows());
    float var = 0.0f;
    for (std::size_t f = 0; f < x.rows(); ++f) {
      const float d = x(f, t).to_float() - mean;
      var += d * d;
    }
    var /= float(x.rows());
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t f = 0; f < x.rows(); ++f)
      out(f, t) = half_t((x(f, t).to_float() - mean) * inv * gamma[f] +
                         beta[f]);
  }
  return out;
}

HalfMatrix gelu(const HalfMatrix& x) {
  HalfMatrix out(x.rows(), x.cols());
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.flat()[i].to_float();
    const float t = std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v));
    out.flat()[i] = half_t(0.5f * v * (1.0f + t));
  }
  return out;
}

HalfMatrix add(const HalfMatrix& x, const HalfMatrix& y) {
  VENOM_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  HalfMatrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    out.flat()[i] = x.flat()[i] + y.flat()[i];
  return out;
}

void add_bias(FloatMatrix& x, std::span<const float> bias) {
  VENOM_CHECK(bias.size() == x.rows());
  for (std::size_t f = 0; f < x.rows(); ++f)
    for (std::size_t t = 0; t < x.cols(); ++t) x(f, t) += bias[f];
}

FloatMatrix attention_scores(const HalfMatrix& qh, const HalfMatrix& kh,
                             float scale) {
  VENOM_CHECK(qh.rows() == kh.rows());
  FloatMatrix scores(qh.cols(), kh.cols());
  for (std::size_t i = 0; i < qh.cols(); ++i)
    for (std::size_t j = 0; j < kh.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t d = 0; d < qh.rows(); ++d)
        acc += qh(d, i).to_float() * kh(d, j).to_float();
      scores(i, j) = acc * scale;
    }
  return scores;
}

HalfMatrix attention_context(const FloatMatrix& p, const HalfMatrix& vh) {
  VENOM_CHECK(p.cols() == vh.cols());
  HalfMatrix ctx(vh.rows(), p.rows());
  for (std::size_t d = 0; d < vh.rows(); ++d)
    for (std::size_t i = 0; i < p.rows(); ++i) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < p.cols(); ++j)
        acc += p(i, j) * vh(d, j).to_float();
      ctx(d, i) = half_t(acc);
    }
  return ctx;
}

}  // namespace venom::transformer
