// Linear layer with a dense or V:N:M-sparse weight backend.
//
// This is the CPU analogue of the paper's STen integration (Listing 1):
// a dense nn.Linear is replaced by an Spmm module holding the VNMTensor
// (values / columns / metadata). Calling sparsify() converts the dense
// weight into a VnmMatrix; forward() routes both weight states through
// the venom::ops dispatcher (ops::matmul_fused), which selects the
// Spatha V:N:M backend for sparse weights and the dense GEMM backend
// otherwise — Linear no longer picks kernels or threads pools/caches by
// hand.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "format/vnm.hpp"
#include "ops/matmul.hpp"
#include "ops/timing.hpp"
#include "quant/quantized_vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::ops {
class ExecContext;
}

namespace venom::transformer {

/// Compatibility alias: the timing sink moved to the ops layer (it is a
/// cross-layer concern attention and serving fill too).
using TimingBreakdown = ops::TimingBreakdown;

/// y(out x tokens) = W(out x in) * x(in x tokens) + bias.
class Linear {
 public:
  Linear() = default;
  /// Takes ownership of a dense weight (out x in) and bias (size out).
  Linear(HalfMatrix weight, std::vector<float> bias);

  /// Random-initialized layer, sigma = 1/sqrt(in).
  static Linear random(std::size_t out, std::size_t in, Rng& rng);

  /// Converts the weight to the V:N:M format (magnitude pruning). After
  /// this call forward() dispatches to Spatha. Throws if shapes do not
  /// divide.
  void sparsify(VnmConfig cfg);

  /// Routes forwards through `ctx` — its thread pool, plan cache (kernel
  /// configs selected once per shape x weight, packed-panel scratch kept
  /// warm across calls), and tuning cache. nullptr (the default) uses
  /// ops::ExecContext::global(). The context must outlive the layer's
  /// forwards; it may be shared across threads (its caches are
  /// thread-safe) — the serving engine attaches its own context to every
  /// layer of the encoder it owns.
  void set_exec_context(ops::ExecContext* ctx) { ctx_ = ctx; }
  ops::ExecContext* exec_context() const { return ctx_; }

  /// Switches the storage precision of the sparse weight: kF16 restores
  /// the fp16 datapath; kI8 / kF8E5M2 / kF8E4M3 quantize the compressed
  /// weight eagerly (the layer owns the image — a context-less forward
  /// never pins the global quant cache) and route forward() through the
  /// matching quantized backend. Requires a sparsified layer for the
  /// reduced dtypes; throws venom::Error otherwise. Training keeps fp16
  /// masters: backward() differentiates the fp16 weight, and
  /// apply_gradients() / sparsify() re-quantize after each update.
  void set_weight_dtype(ops::Dtype dtype);
  ops::Dtype weight_dtype() const { return weight_dtype_; }

  /// The current quantized image (nullptr unless the matching dtype is
  /// set) — size/scale introspection for tools and tests.
  const quant::QuantizedVnmMatrix* int8_weight() const {
    return qweight_.get();
  }
  const quant::Fp8VnmMatrix* fp8_weight() const { return f8weight_.get(); }

  bool is_sparse() const { return sparse_ != nullptr; }
  std::size_t out_features() const { return out_; }
  std::size_t in_features() const { return in_; }
  const HalfMatrix& dense_weight() const { return weight_; }
  const VnmMatrix& sparse_weight() const { return *sparse_; }
  std::span<const float> bias() const { return bias_; }

  /// Forward pass; if `timing` is non-null, the GEMM time is added.
  /// `ctx` overrides the attached context for this call only (see
  /// ops::resolve) — the replicated-serving path, where N engines share
  /// one const encoder but dispatch through private contexts.
  HalfMatrix forward(const HalfMatrix& x, TimingBreakdown* timing = nullptr,
                     ops::ExecContext* ctx = nullptr) const;

  /// Gradients of a linear layer (the sparse-training path of §9a). For
  /// a sparse weight, backward() dispatches both halves through the
  /// venom::ops registry: the input gradient through the transposed
  /// V:N:M SpMM (ops::matmul_transposed) and the weight gradient through
  /// the masked SDDMM (ops::sddmm), so only the surviving pattern's
  /// coordinates are ever computed — `weight` is then the dense
  /// expansion of `weight_vnm` (zero at pruned positions).
  struct Grads {
    FloatMatrix input;        ///< dL/dx (in x tokens)
    FloatMatrix weight;       ///< dL/dW (out x in; masked when sparse)
    std::vector<float> bias;  ///< dL/db (out)
    /// Compressed dL/dW sharing the weight's structure (sparse layers
    /// only) — feeds straight into a compressed-domain optimizer.
    std::shared_ptr<const VnmMatrix> weight_vnm;
  };

  /// Backward pass for y = W x + b given dL/dy and the forward input.
  Grads backward(const HalfMatrix& x, const FloatMatrix& grad_y) const;

  /// One SGD step: w -= lr * dL/dW, b -= lr * dL/db. Sparse layers
  /// update only the surviving coordinates and recompress in place (the
  /// pattern is fixed by sparsify(); the plan-cache fingerprint
  /// refreshes so stale plans cannot alias the updated weight).
  void apply_gradients(const Grads& g, float lr);

  /// Zeroes the entries of a weight gradient that the sparse pattern
  /// pruned, so updates cannot resurrect dead weights (masked training).
  /// No-op while the layer is dense. (backward() already returns masked
  /// gradients for sparse layers; this remains for externally computed
  /// dense gradients.)
  void mask_gradient_to_pattern(FloatMatrix& grad_weight) const;

 private:
  /// Rebuilds the quantized weight image for the current dtype (no-op in
  /// kF16). Called wherever the compressed weight changes.
  void requantize();

  std::size_t out_ = 0;
  std::size_t in_ = 0;
  HalfMatrix weight_;
  std::vector<float> bias_;
  // Shared so plan-cache entries (one per batch width under dynamic
  // batching) alias this copy instead of duplicating O(nnz) storage;
  // immutable once built.
  std::shared_ptr<const VnmMatrix> sparse_;
  // Content hash of sparse_, computed once at sparsify() (the compressed
  // weight is immutable afterwards) so plan-cache lookups in the serving
  // hot path skip the per-call O(nnz) fingerprint.
  std::uint64_t sparse_fingerprint_ = 0;
  // Reduced-precision weight images; at most one is set, matching
  // weight_dtype_. Shared so MatmulArgs can alias them across calls.
  ops::Dtype weight_dtype_ = ops::Dtype::kF16;
  std::shared_ptr<const quant::QuantizedVnmMatrix> qweight_;
  std::shared_ptr<const quant::Fp8VnmMatrix> f8weight_;
  ops::ExecContext* ctx_ = nullptr;  // not owned; nullptr = global()
};

}  // namespace venom::transformer
