// Linear layer with a dense or V:N:M-sparse weight backend.
//
// This is the CPU analogue of the paper's STen integration (Listing 1):
// a dense nn.Linear is replaced by an Spmm module holding the VNMTensor
// (values / columns / metadata) and dispatching to Spatha. Calling
// sparsify() converts the dense weight into a VnmMatrix; forward() then
// routes through spatha::spmm_vnm instead of the dense GEMM.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {
class PlanCache;
}

namespace venom::transformer {

/// Per-op-class timing sink (seconds). Filled by forward passes so the
/// Fig. 15 breakdown (GEMMs / softmax / matmul / others) can be measured.
struct TimingBreakdown {
  double gemm_s = 0;
  double softmax_s = 0;
  double attn_matmul_s = 0;
  double other_s = 0;
  double total() const { return gemm_s + softmax_s + attn_matmul_s + other_s; }
  TimingBreakdown& operator+=(const TimingBreakdown& o) {
    gemm_s += o.gemm_s;
    softmax_s += o.softmax_s;
    attn_matmul_s += o.attn_matmul_s;
    other_s += o.other_s;
    return *this;
  }
};

/// y(out x tokens) = W(out x in) * x(in x tokens) + bias.
class Linear {
 public:
  Linear() = default;
  /// Takes ownership of a dense weight (out x in) and bias (size out).
  Linear(HalfMatrix weight, std::vector<float> bias);

  /// Random-initialized layer, sigma = 1/sqrt(in).
  static Linear random(std::size_t out, std::size_t in, Rng& rng);

  /// Converts the weight to the V:N:M format (magnitude pruning). After
  /// this call forward() uses Spatha. Throws if shapes do not divide.
  void sparsify(VnmConfig cfg);

  /// Routes sparse forwards through a shared plan cache: the kernel
  /// configuration is selected once per (shape, weight) and the plan's
  /// scratch pool recycles the packed B panels across calls — the serving
  /// engine attaches its cache to every layer of the encoder it owns.
  /// nullptr detaches. The cache must outlive the layer's forwards; it
  /// may be shared across threads (PlanCache is thread-safe).
  void set_plan_cache(spatha::PlanCache* cache) { plan_cache_ = cache; }
  spatha::PlanCache* plan_cache() const { return plan_cache_; }

  bool is_sparse() const { return sparse_ != nullptr; }
  std::size_t out_features() const { return out_; }
  std::size_t in_features() const { return in_; }
  const HalfMatrix& dense_weight() const { return weight_; }
  const VnmMatrix& sparse_weight() const { return *sparse_; }
  std::span<const float> bias() const { return bias_; }

  /// Forward pass; if `timing` is non-null, the GEMM time is added.
  HalfMatrix forward(const HalfMatrix& x, TimingBreakdown* timing = nullptr) const;

  /// Gradients of a linear layer (the sparse-training path of §9a: the
  /// sparse weight's backward for the input runs through the transposed
  /// V:N:M SpMM; the weight gradient is dense, as in STen's default).
  struct Grads {
    FloatMatrix input;        ///< dL/dx (in x tokens)
    FloatMatrix weight;       ///< dL/dW (out x in, dense)
    std::vector<float> bias;  ///< dL/db (out)
  };

  /// Backward pass for y = W x + b given dL/dy and the forward input.
  Grads backward(const HalfMatrix& x, const FloatMatrix& grad_y) const;

  /// Zeroes the entries of a weight gradient that the sparse pattern
  /// pruned, so updates cannot resurrect dead weights (masked training).
  /// No-op while the layer is dense.
  void mask_gradient_to_pattern(FloatMatrix& grad_weight) const;

 private:
  std::size_t out_ = 0;
  std::size_t in_ = 0;
  HalfMatrix weight_;
  std::vector<float> bias_;
  // Shared so plan-cache entries (one per batch width under dynamic
  // batching) alias this copy instead of duplicating O(nnz) storage;
  // immutable once built.
  std::shared_ptr<const VnmMatrix> sparse_;
  // Content hash of sparse_, computed once at sparsify() (the compressed
  // weight is immutable afterwards) so plan-cache lookups in the serving
  // hot path skip the per-call O(nnz) fingerprint.
  std::uint64_t sparse_fingerprint_ = 0;
  spatha::PlanCache* plan_cache_ = nullptr;  // not owned
};

}  // namespace venom::transformer
