#include "transformer/config.hpp"

namespace venom::transformer {

ModelConfig bert_base() {
  return {.name = "BERT-base",
          .layers = 12,
          .hidden = 768,
          .heads = 12,
          .ffn_hidden = 3072,
          .seq_len = 512};
}

ModelConfig bert_large() {
  return {.name = "BERT-large",
          .layers = 24,
          .hidden = 1024,
          .heads = 16,
          .ffn_hidden = 4096,
          .seq_len = 512};
}

ModelConfig gpt2_large() {
  return {.name = "GPT2-large",
          .layers = 36,
          .hidden = 1280,
          .heads = 20,
          .ffn_hidden = 5120,
          .seq_len = 1024,
          .causal = true};
}

ModelConfig gpt3_175b() {
  return {.name = "GPT-3",
          .layers = 96,
          .hidden = 12288,
          .heads = 96,
          .ffn_hidden = 49152,
          .seq_len = 2048,
          .causal = true};
}

}  // namespace venom::transformer
