#include "transformer/encoder.hpp"

#include <chrono>

#include "transformer/ops.hpp"

namespace venom::transformer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<float> ones(std::size_t n) { return std::vector<float>(n, 1.0f); }
std::vector<float> zeros(std::size_t n) { return std::vector<float>(n, 0.0f); }

}  // namespace

EncoderLayer::EncoderLayer(const ModelConfig& cfg, Rng& rng)
    : hidden_(cfg.hidden),
      mha_(cfg.hidden, cfg.heads, rng, cfg.causal),
      ffn_in_(Linear::random(cfg.ffn_hidden, cfg.hidden, rng)),
      ffn_out_(Linear::random(cfg.hidden, cfg.ffn_hidden, rng)),
      ln1_gamma_(ones(cfg.hidden)), ln1_beta_(zeros(cfg.hidden)),
      ln2_gamma_(ones(cfg.hidden)), ln2_beta_(zeros(cfg.hidden)) {}

void EncoderLayer::sparsify(VnmConfig cfg) {
  mha_.sparsify(cfg);
  ffn_in_.sparsify(cfg);
  ffn_out_.sparsify(cfg);
}

HalfMatrix EncoderLayer::forward(const HalfMatrix& x,
                                 TimingBreakdown* timing) const {
  const std::size_t end = x.cols();
  return forward_batched(x, std::span<const std::size_t>(&end, 1), timing);
}

HalfMatrix EncoderLayer::forward_batched(const HalfMatrix& x,
                                         std::span<const std::size_t> seq_ends,
                                         TimingBreakdown* timing) const {
  const HalfMatrix attn = mha_.forward_batched(x, seq_ends, timing);

  auto t0 = std::chrono::steady_clock::now();
  HalfMatrix h = layer_norm(add(x, attn), ln1_gamma_, ln1_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff1 = ffn_in_.forward(h, timing);

  t0 = std::chrono::steady_clock::now();
  const HalfMatrix act = gelu(ff1);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff2 = ffn_out_.forward(act, timing);

  t0 = std::chrono::steady_clock::now();
  HalfMatrix out = layer_norm(add(h, ff2), ln2_gamma_, ln2_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);
  return out;
}

Encoder::Encoder(const ModelConfig& cfg, Rng& rng, std::size_t layer_count)
    : cfg_(cfg) {
  const std::size_t n = layer_count == 0 ? cfg.layers : layer_count;
  layers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) layers_.emplace_back(cfg, rng);
}

void Encoder::sparsify(VnmConfig cfg) {
  for (auto& layer : layers_) layer.sparsify(cfg);
}

HalfMatrix Encoder::forward(const HalfMatrix& x,
                            TimingBreakdown* timing) const {
  HalfMatrix h = x;
  for (const auto& layer : layers_) h = layer.forward(h, timing);
  return h;
}

HalfMatrix Encoder::forward_batched(const HalfMatrix& x,
                                    std::span<const std::size_t> seq_ends,
                                    TimingBreakdown* timing) const {
  HalfMatrix h = x;
  for (const auto& layer : layers_)
    h = layer.forward_batched(h, seq_ends, timing);
  return h;
}

}  // namespace venom::transformer
