#include "transformer/encoder.hpp"

#include <chrono>

#include "transformer/ops.hpp"

namespace venom::transformer {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<float> ones(std::size_t n) { return std::vector<float>(n, 1.0f); }
std::vector<float> zeros(std::size_t n) { return std::vector<float>(n, 0.0f); }

}  // namespace

EncoderLayer::EncoderLayer(const ModelConfig& cfg, Rng& rng)
    : hidden_(cfg.hidden),
      mha_(cfg.hidden, cfg.heads, rng, cfg.causal),
      ffn_in_(Linear::random(cfg.ffn_hidden, cfg.hidden, rng)),
      ffn_out_(Linear::random(cfg.hidden, cfg.ffn_hidden, rng)),
      ln1_gamma_(ones(cfg.hidden)), ln1_beta_(zeros(cfg.hidden)),
      ln2_gamma_(ones(cfg.hidden)), ln2_beta_(zeros(cfg.hidden)) {
  mha_.set_attention_window(cfg.attn_window);
}

void EncoderLayer::sparsify(VnmConfig cfg) {
  mha_.sparsify(cfg);
  ffn_in_.sparsify(cfg);
  ffn_out_.sparsify(cfg);
}

HalfMatrix EncoderLayer::forward(const HalfMatrix& x,
                                 TimingBreakdown* timing,
                                 ops::ExecContext* ctx) const {
  const std::size_t end = x.cols();
  return forward_batched(x, std::span<const std::size_t>(&end, 1), timing,
                         ctx);
}

HalfMatrix EncoderLayer::forward_batched(const HalfMatrix& x,
                                         std::span<const std::size_t> seq_ends,
                                         TimingBreakdown* timing,
                                         ops::ExecContext* ctx) const {
  const HalfMatrix attn = mha_.forward_batched(x, seq_ends, timing, ctx);

  auto t0 = std::chrono::steady_clock::now();
  HalfMatrix h = layer_norm(add(x, attn), ln1_gamma_, ln1_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff1 = ffn_in_.forward(h, timing, ctx);

  t0 = std::chrono::steady_clock::now();
  const HalfMatrix act = gelu(ff1);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff2 = ffn_out_.forward(act, timing, ctx);

  t0 = std::chrono::steady_clock::now();
  HalfMatrix out = layer_norm(add(h, ff2), ln2_gamma_, ln2_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);
  return out;
}

HalfMatrix EncoderLayer::forward_cached(const HalfMatrix& x,
                                        std::span<const std::size_t> seq_ends,
                                        std::span<KvCache* const> caches,
                                        std::size_t layer,
                                        TimingBreakdown* timing,
                                        ops::ExecContext* ctx) const {
  const HalfMatrix attn =
      mha_.forward_cached(x, seq_ends, caches, layer, timing, ctx);

  auto t0 = std::chrono::steady_clock::now();
  HalfMatrix h = layer_norm(add(x, attn), ln1_gamma_, ln1_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff1 = ffn_in_.forward(h, timing, ctx);

  t0 = std::chrono::steady_clock::now();
  const HalfMatrix act = gelu(ff1);
  if (timing != nullptr) timing->other_s += seconds_since(t0);

  const HalfMatrix ff2 = ffn_out_.forward(act, timing, ctx);

  t0 = std::chrono::steady_clock::now();
  HalfMatrix out = layer_norm(add(h, ff2), ln2_gamma_, ln2_beta_);
  if (timing != nullptr) timing->other_s += seconds_since(t0);
  return out;
}

FloatMatrix EncoderLayer::backward(const HalfMatrix& x,
                                   const FloatMatrix& grad_out,
                                   EncoderLayerGrads* grads) const {
  const std::size_t end = x.cols();
  return backward_batched(x, std::span<const std::size_t>(&end, 1), grad_out,
                          grads);
}

FloatMatrix EncoderLayer::backward_batched(
    const HalfMatrix& x, std::span<const std::size_t> seq_ends,
    const FloatMatrix& grad_out, EncoderLayerGrads* grads) const {
  VENOM_CHECK(grad_out.rows() == hidden_ && grad_out.cols() == x.cols());
  EncoderLayerGrads local;
  EncoderLayerGrads& g = grads != nullptr ? *grads : local;
  g.ln1_gamma.assign(hidden_, 0.0f);
  g.ln1_beta.assign(hidden_, 0.0f);
  g.ln2_gamma.assign(hidden_, 0.0f);
  g.ln2_beta.assign(hidden_, 0.0f);

  // Recompute the forward intermediates (activation recomputation).
  const HalfMatrix attn = mha_.forward_batched(x, seq_ends);
  const HalfMatrix s1 = add(x, attn);
  const HalfMatrix h = layer_norm(s1, ln1_gamma_, ln1_beta_);
  const HalfMatrix ff1 = ffn_in_.forward(h);
  const HalfMatrix act = gelu(ff1);
  const HalfMatrix ff2 = ffn_out_.forward(act);
  const HalfMatrix s2 = add(h, ff2);

  // out = LN2(h + ff2): the residual feeds d_s2 both into the FFN
  // backward and straight through to h.
  const FloatMatrix d_s2 =
      layer_norm_backward(s2, ln2_gamma_, grad_out, g.ln2_gamma, g.ln2_beta);
  g.ffn_out = ffn_out_.backward(act, d_s2);
  const FloatMatrix d_ff1 = gelu_backward(ff1, g.ffn_out.input);
  g.ffn_in = ffn_in_.backward(h, d_ff1);
  const FloatMatrix d_h = add(d_s2, g.ffn_in.input);

  // h = LN1(x + attn): same residual split around the attention block.
  const FloatMatrix d_s1 =
      layer_norm_backward(s1, ln1_gamma_, d_h, g.ln1_gamma, g.ln1_beta);
  const FloatMatrix d_x_attn =
      mha_.backward_batched(x, seq_ends, d_s1, &g.mha);
  return add(d_s1, d_x_attn);
}

void EncoderLayer::apply_gradients(const EncoderLayerGrads& g, float lr) {
  mha_.apply_gradients(g.mha, lr);
  ffn_in_.apply_gradients(g.ffn_in, lr);
  ffn_out_.apply_gradients(g.ffn_out, lr);
  VENOM_CHECK(g.ln1_gamma.size() == hidden_ && g.ln2_gamma.size() == hidden_);
  for (std::size_t f = 0; f < hidden_; ++f) {
    ln1_gamma_[f] -= lr * g.ln1_gamma[f];
    ln1_beta_[f] -= lr * g.ln1_beta[f];
    ln2_gamma_[f] -= lr * g.ln2_gamma[f];
    ln2_beta_[f] -= lr * g.ln2_beta[f];
  }
}

Encoder::Encoder(const ModelConfig& cfg, Rng& rng, std::size_t layer_count)
    : cfg_(cfg) {
  const std::size_t n = layer_count == 0 ? cfg.layers : layer_count;
  layers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) layers_.emplace_back(cfg, rng);
}

void Encoder::sparsify(VnmConfig cfg) {
  for (auto& layer : layers_) layer.sparsify(cfg);
}

HalfMatrix Encoder::forward(const HalfMatrix& x, TimingBreakdown* timing,
                            ops::ExecContext* ctx) const {
  HalfMatrix h = x;
  for (const auto& layer : layers_) h = layer.forward(h, timing, ctx);
  return h;
}

HalfMatrix Encoder::forward_batched(const HalfMatrix& x,
                                    std::span<const std::size_t> seq_ends,
                                    TimingBreakdown* timing,
                                    ops::ExecContext* ctx) const {
  HalfMatrix h = x;
  for (const auto& layer : layers_)
    h = layer.forward_batched(h, seq_ends, timing, ctx);
  return h;
}

HalfMatrix Encoder::forward_cached(const HalfMatrix& x,
                                   std::span<const std::size_t> seq_ends,
                                   std::span<KvCache* const> caches,
                                   TimingBreakdown* timing,
                                   ops::ExecContext* ctx) const {
  for (const KvCache* cache : caches) {
    VENOM_CHECK_MSG(cache != nullptr && cache->layers() == layer_count(),
                    "each KvCache must hold one ring pair per encoder "
                    "layer (" << layer_count() << ")");
    VENOM_CHECK_MSG(cache->synchronized(),
                    "KvCache layers out of sync (a previous forward_cached "
                    "failed mid-stack; reset() the cache)");
  }
  HalfMatrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l)
    h = layers_[l].forward_cached(h, seq_ends, caches, l, timing, ctx);
  return h;
}

HalfMatrix Encoder::prefill(const HalfMatrix& prompt, KvCache& cache,
                            TimingBreakdown* timing,
                            ops::ExecContext* ctx) const {
  const std::size_t end = prompt.cols();
  KvCache* caches[] = {&cache};
  return forward_cached(prompt, std::span<const std::size_t>(&end, 1),
                        std::span<KvCache* const>(caches, 1), timing, ctx);
}

HalfMatrix Encoder::decode_step(const HalfMatrix& x, KvCache& cache,
                                TimingBreakdown* timing,
                                ops::ExecContext* ctx) const {
  VENOM_CHECK_MSG(x.cols() == 1,
                  "decode_step takes one token, got " << x.cols());
  return prefill(x, cache, timing, ctx);
}

FloatMatrix Encoder::backward(const HalfMatrix& x, const FloatMatrix& grad_out,
                              std::vector<EncoderLayerGrads>* grads) const {
  // Recover each layer's input by re-running the forward chain (the
  // memory-lean recomputation strategy; each layer recomputes its own
  // internals again in backward()).
  std::vector<HalfMatrix> inputs;
  inputs.reserve(layers_.size());
  HalfMatrix h = x;
  for (const auto& layer : layers_) {
    inputs.push_back(h);
    h = layer.forward(h);
  }
  std::vector<EncoderLayerGrads> local;
  std::vector<EncoderLayerGrads>& g = grads != nullptr ? *grads : local;
  g.clear();
  g.resize(layers_.size());
  FloatMatrix d = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;)
    d = layers_[i].backward(inputs[i], d, &g[i]);
  return d;
}

void Encoder::apply_gradients(const std::vector<EncoderLayerGrads>& grads,
                              float lr) {
  VENOM_CHECK(grads.size() == layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i].apply_gradients(grads[i], lr);
}

}  // namespace venom::transformer
