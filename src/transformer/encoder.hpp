// Transformer encoder layer and stack.
//
// Standard post-LN encoder: x -> MHA -> +residual -> LN -> FFN ->
// +residual -> LN. All six weight matrices per layer can be sparsified to
// V:N:M, which reroutes their GEMMs through Spatha (Fig. 14).
#pragma once

#include <vector>

#include "transformer/attention.hpp"
#include "transformer/config.hpp"
#include "transformer/kv_cache.hpp"

namespace venom::transformer {

/// Parameter gradients of one encoder layer.
struct EncoderLayerGrads {
  MhaGrads mha;
  Linear::Grads ffn_in, ffn_out;
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
};

/// One encoder layer (MHA + FFN + two LayerNorms).
class EncoderLayer {
 public:
  EncoderLayer() = default;
  EncoderLayer(const ModelConfig& cfg, Rng& rng);

  /// Sparsifies all linear weights (4 attention + 2 FFN) to V:N:M.
  void sparsify(VnmConfig cfg);

  /// Enables DFSS-style dynamic N:M pruning of attention probabilities.
  void set_dynamic_score_sparsity(std::optional<NmPattern> pattern) {
    mha_.set_dynamic_score_sparsity(pattern);
  }

  /// Attaches a shared execution context to all six linear layers and
  /// the attention dispatch (see Linear::set_exec_context).
  void set_exec_context(ops::ExecContext* ctx) {
    mha_.set_exec_context(ctx);
    ffn_in_.set_exec_context(ctx);
    ffn_out_.set_exec_context(ctx);
  }

  /// Switches all six linear weights to the given storage precision (see
  /// Linear::set_weight_dtype).
  void set_weight_dtype(ops::Dtype dtype) {
    mha_.set_weight_dtype(dtype);
    ffn_in_.set_weight_dtype(dtype);
    ffn_out_.set_weight_dtype(dtype);
  }

  /// Sliding-window size for the causal mask (see
  /// MultiHeadAttention::set_attention_window).
  void set_attention_window(std::size_t w) { mha_.set_attention_window(w); }
  std::size_t attention_window() const { return mha_.attention_window(); }

  HalfMatrix forward(const HalfMatrix& x, TimingBreakdown* timing = nullptr,
                     ops::ExecContext* ctx = nullptr) const;

  /// Batched forward over sequences packed along the token axis (see
  /// MultiHeadAttention::forward_batched). LayerNorm / FFN / residuals
  /// are token-wise, so only attention needs the boundaries. `ctx`
  /// overrides the attached context for this call (ops::resolve).
  HalfMatrix forward_batched(const HalfMatrix& x,
                             std::span<const std::size_t> seq_ends,
                             TimingBreakdown* timing = nullptr,
                             ops::ExecContext* ctx = nullptr) const;

  /// Incremental forward against per-sequence KV rings at stack index
  /// `layer` (see MultiHeadAttention::forward_cached). Only attention
  /// touches the cache; LN/FFN/residuals are token-wise, so the new
  /// tokens' outputs are bit-identical to the full forward's columns.
  HalfMatrix forward_cached(const HalfMatrix& x,
                            std::span<const std::size_t> seq_ends,
                            std::span<KvCache* const> caches,
                            std::size_t layer,
                            TimingBreakdown* timing = nullptr,
                            ops::ExecContext* ctx = nullptr) const;

  /// Backward pass given the layer's forward input and upstream dL/dout.
  /// Recomputes the forward intermediates, differentiates both LayerNorm
  /// / residual / GELU stages, and routes the six linear backwards
  /// through Linear::backward (sparse ops when pruned). Returns dL/dx;
  /// fills `grads` when non-null.
  FloatMatrix backward(const HalfMatrix& x, const FloatMatrix& grad_out,
                       EncoderLayerGrads* grads = nullptr) const;
  FloatMatrix backward_batched(const HalfMatrix& x,
                               std::span<const std::size_t> seq_ends,
                               const FloatMatrix& grad_out,
                               EncoderLayerGrads* grads = nullptr) const;

  /// SGD step over the six linear layers and both LayerNorm affines.
  void apply_gradients(const EncoderLayerGrads& g, float lr);

  MultiHeadAttention& attention() { return mha_; }
  const MultiHeadAttention& attention() const { return mha_; }
  Linear& ffn_in() { return ffn_in_; }
  const Linear& ffn_in() const { return ffn_in_; }
  Linear& ffn_out() { return ffn_out_; }
  const Linear& ffn_out() const { return ffn_out_; }

 private:
  std::size_t hidden_ = 0;
  MultiHeadAttention mha_;
  Linear ffn_in_, ffn_out_;
  std::vector<float> ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
};

/// A stack of encoder layers.
class Encoder {
 public:
  /// Builds `layer_count` layers (defaults to cfg.layers when 0).
  Encoder(const ModelConfig& cfg, Rng& rng, std::size_t layer_count = 0);

  void sparsify(VnmConfig cfg);

  /// Applies dynamic N:M attention to every layer.
  void set_dynamic_score_sparsity(std::optional<NmPattern> pattern) {
    for (auto& layer : layers_) layer.set_dynamic_score_sparsity(pattern);
  }

  /// Attaches a shared execution context to every layer in the stack.
  void set_exec_context(ops::ExecContext* ctx) {
    for (auto& layer : layers_) layer.set_exec_context(ctx);
  }

  /// Runs the whole stack at the given weight precision (quantizes every
  /// sparsified linear layer's weight; see Linear::set_weight_dtype).
  void set_weight_dtype(ops::Dtype dtype) {
    for (auto& layer : layers_) layer.set_weight_dtype(dtype);
  }

  HalfMatrix forward(const HalfMatrix& x, TimingBreakdown* timing = nullptr,
                     ops::ExecContext* ctx = nullptr) const;

  /// Batched forward: every layer runs the packed batch with attention
  /// confined to each sequence's span. Per-sequence outputs are
  /// bit-identical to forward() on that sequence alone. `ctx` overrides
  /// the attached context for this call only — a const Encoder shared
  /// (shared_ptr-held) by N serving replicas stays immutable while each
  /// replica dispatches through its private ExecContext.
  HalfMatrix forward_batched(const HalfMatrix& x,
                             std::span<const std::size_t> seq_ends,
                             TimingBreakdown* timing = nullptr,
                             ops::ExecContext* ctx = nullptr) const;

  /// A cache sized for this stack: layer_count() layers of
  /// (hidden x capacity) K/V rings.
  KvCache make_cache(std::size_t capacity) const {
    return KvCache(layer_count(), cfg_.hidden, capacity);
  }

  /// Sliding-window size for every layer's causal mask; pair with
  /// make_cache(w) for bounded-memory decode of unbounded sequences.
  void set_attention_window(std::size_t w) {
    for (auto& layer : layers_) layer.set_attention_window(w);
  }
  std::size_t attention_window() const {
    return layers_.empty() ? 0 : layers_.front().attention_window();
  }

  /// Incremental batched forward: runs the packed new tokens through the
  /// stack, each layer appending to and attending against its slice of
  /// the per-sequence caches. Each sequence's output columns are
  /// bit-identical to forward() over its full accumulated sequence.
  /// Caches must be synchronized (all layers equally long) and sized for
  /// this stack.
  HalfMatrix forward_cached(const HalfMatrix& x,
                            std::span<const std::size_t> seq_ends,
                            std::span<KvCache* const> caches,
                            TimingBreakdown* timing = nullptr,
                            ops::ExecContext* ctx = nullptr) const;

  /// Fills `cache` from a prompt and returns the stack's output for
  /// every prompt position (single-sequence convenience over
  /// forward_cached).
  HalfMatrix prefill(const HalfMatrix& prompt, KvCache& cache,
                     TimingBreakdown* timing = nullptr,
                     ops::ExecContext* ctx = nullptr) const;

  /// One autoregressive step: x is the newest token's (hidden x 1)
  /// activation; returns its (hidden x 1) output, attending against the
  /// cached history.
  HalfMatrix decode_step(const HalfMatrix& x, KvCache& cache,
                         TimingBreakdown* timing = nullptr,
                         ops::ExecContext* ctx = nullptr) const;

  /// Backward through the whole stack: re-runs the forward to recover
  /// each layer's input, then chains EncoderLayer::backward in reverse.
  /// `grads`, when non-null, is resized to layer_count() (grads[i] holds
  /// layer i's parameter gradients). Returns dL/dx.
  FloatMatrix backward(const HalfMatrix& x, const FloatMatrix& grad_out,
                       std::vector<EncoderLayerGrads>* grads = nullptr) const;

  /// SGD step over every layer (grads as produced by backward()).
  void apply_gradients(const std::vector<EncoderLayerGrads>& grads, float lr);

  std::size_t layer_count() const { return layers_.size(); }
  EncoderLayer& layer(std::size_t i) { return layers_[i]; }
  const EncoderLayer& layer(std::size_t i) const { return layers_[i]; }
  const ModelConfig& config() const { return cfg_; }

 private:
  ModelConfig cfg_;
  std::vector<EncoderLayer> layers_;
};

}  // namespace venom::transformer
