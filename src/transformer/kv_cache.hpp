// Ring-buffer KV cache for incremental (autoregressive) decode.
//
// One KvCache holds one sequence's cached key/value projections for
// every layer of an encoder stack: per layer, two fp16 panels of shape
// (hidden x capacity) written as rings — logical position p lives in
// slot p % capacity. Appending a token's K/V columns is allocation-free
// (the panels are sized once, at construction), and once the sequence
// outgrows the capacity the ring overwrites the oldest position:
// capacity IS the attention window. The cached forward in attention.cpp
// enforces that pairing (window == capacity), which is what makes the
// incremental pass bit-identical to re-running the full windowed causal
// forward at every step — including after wraparound.
//
// Memory: bytes() = 2 (K and V) * layers * hidden * capacity * 2 bytes
// per fp16 — with hidden = heads * head_dim, the README's
// 2*layers*heads*head_dim*window*2B. The weights contribute nothing:
// the V:N:M sparse projections are shared, read-only, across every
// session (the static-weight / dynamic-activation split the paper's
// kernels exploit).
//
// Layers append as the forward walks the stack, so per-layer lengths
// diverge transiently inside one Encoder::forward_cached call and agree
// again when it returns; synchronized() checks that resting invariant.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace venom::transformer {

/// Per-sequence, per-layer ring-buffered K/V state for cached decode.
class KvCache {
 public:
  KvCache() = default;
  /// Allocates (hidden x capacity) K and V rings for each of `layers`
  /// layers. Throws venom::Error on a zero dimension.
  KvCache(std::size_t layers, std::size_t hidden, std::size_t capacity);

  std::size_t layers() const { return layers_.size(); }
  std::size_t hidden() const { return hidden_; }
  std::size_t capacity() const { return capacity_; }

  /// Token positions appended so far (layer 0's count — all layers agree
  /// between forward calls; see synchronized()).
  std::size_t length() const {
    return layers_.empty() ? 0 : layers_.front().length;
  }
  std::size_t layer_length(std::size_t l) const;
  /// Oldest logical position still resident in the ring.
  std::size_t window_begin() const {
    const std::size_t len = length();
    return len <= capacity_ ? 0 : len - capacity_;
  }
  /// True when every layer has appended the same number of positions —
  /// the resting state between Encoder::forward_cached calls.
  bool synchronized() const;

  /// Forgets every cached position (the panels stay allocated), so the
  /// cache can be reused for a fresh sequence.
  void reset();

  /// Appends column `src` of the (hidden x T) K and V projection panels
  /// as layer l's next position. Allocation-free; overwrites the slot of
  /// position p - capacity once the ring is full. Returns the logical
  /// position just written.
  std::size_t append(std::size_t l, const HalfMatrix& k, const HalfMatrix& v,
                     std::size_t src);

  /// Gathers head rows [row0, row0 + dh) of layer l's cached K (resp. V)
  /// for the logical positions [lo, lo + w) into out, resized to
  /// (dh x w), oldest to newest. `out` retains its capacity across
  /// calls, so a reused scratch matrix makes the gather allocation-free
  /// at steady state. The positions must be resident (>= window_begin,
  /// < layer length).
  void gather_k(std::size_t l, std::size_t row0, std::size_t dh,
                std::size_t lo, std::size_t w, HalfMatrix& out) const;
  void gather_v(std::size_t l, std::size_t row0, std::size_t dh,
                std::size_t lo, std::size_t w, HalfMatrix& out) const;

  /// Resident K/V bytes: 2 * layers * hidden * capacity * sizeof(fp16).
  std::size_t bytes() const {
    return 2 * layers_.size() * hidden_ * capacity_ * sizeof(half_t);
  }

 private:
  struct LayerKv {
    HalfMatrix k, v;           ///< (hidden x capacity) rings
    std::size_t length = 0;    ///< positions appended to this layer
  };

  void gather(const HalfMatrix& ring, std::size_t layer_len, std::size_t row0,
              std::size_t dh, std::size_t lo, std::size_t w,
              HalfMatrix& out) const;

  std::size_t hidden_ = 0;
  std::size_t capacity_ = 0;
  std::vector<LayerKv> layers_;
};

}  // namespace venom::transformer
