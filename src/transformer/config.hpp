// Transformer model configurations (Section 7.2's evaluation models).
#pragma once

#include <cstddef>
#include <string>

namespace venom::transformer {

/// Architecture hyper-parameters of an encoder-style transformer.
struct ModelConfig {
  std::string name;
  std::size_t layers;
  std::size_t hidden;
  std::size_t heads;
  std::size_t ffn_hidden;
  std::size_t seq_len;
  bool causal = false;  ///< decoder-style (GPT) masked self-attention
  /// Causal sliding-window size (0 = unbounded). A KV ring of this
  /// capacity reproduces the windowed mask bit-exactly (kv_cache.hpp).
  std::size_t attn_window = 0;

  std::size_t head_dim() const { return hidden / heads; }
  /// Encoder parameter count (4 attention + 2 FFN weight matrices per
  /// layer, biases ignored).
  std::size_t encoder_params() const {
    return layers * (4 * hidden * hidden + 2 * hidden * ffn_hidden);
  }
};

/// BERT-base: 12 layers, 768 hidden, 12 heads (110M parameters).
ModelConfig bert_base();
/// BERT-large: 24 layers, 1024 hidden, 16 heads (336M parameters).
ModelConfig bert_large();
/// GPT2-large: 36 layers, 1280 hidden, 20 heads (774M parameters).
ModelConfig gpt2_large();
/// GPT-3 175B: 96 layers, 12288 hidden, 96 heads (the paper measures a
/// single randomly-initialized encoder of this configuration).
ModelConfig gpt3_175b();

}  // namespace venom::transformer
