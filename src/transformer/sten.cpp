#include "transformer/sten.hpp"

#include "common/error.hpp"
#include "ops/ops.hpp"
#include "transformer/ops.hpp"

namespace venom::sten {

SparseTensorWrapper SparseTensorWrapper::dense(HalfMatrix tensor) {
  SparseTensorWrapper w;
  w.dense_ = std::move(tensor);
  return w;
}

SparseTensorWrapper SparseTensorWrapper::wrapped_from_dense(
    VnmMatrix sparse, HalfMatrix original) {
  VENOM_CHECK_MSG(sparse.rows() == original.rows() &&
                      sparse.cols() == original.cols(),
                  "wrapped tensor shape mismatch");
  SparseTensorWrapper w;
  w.dense_ = std::move(original);
  w.sparse_ = std::move(sparse);
  return w;
}

const VnmMatrix& SparseTensorWrapper::wrapped_tensor() const {
  VENOM_CHECK_MSG(sparse_.has_value(), "tensor has not been sparsified");
  return *sparse_;
}

SparsifierRegistry& SparsifierRegistry::instance() {
  static SparsifierRegistry registry;
  return registry;
}

SparsifierRegistry::SparsifierRegistry() {
  impls_.emplace("vnm_magnitude", torch_tensor_to_vnm);
}

bool SparsifierRegistry::register_impl(const std::string& name,
                                       SparsifierImpl impl) {
  return impls_.emplace(name, std::move(impl)).second;
}

bool SparsifierRegistry::contains(const std::string& name) const {
  return impls_.count(name) != 0;
}

std::vector<std::string> SparsifierRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(impls_.size());
  for (const auto& [name, impl] : impls_) out.push_back(name);
  return out;
}

SparseTensorWrapper SparsifierRegistry::sparsify(
    const std::string& name, const VnmSparsifier& sparsifier,
    const HalfMatrix& dense) const {
  const auto it = impls_.find(name);
  VENOM_CHECK_MSG(it != impls_.end(),
                  "no sparsifier implementation named '" << name << "'");
  return it->second(sparsifier, dense);
}

SparseTensorWrapper torch_tensor_to_vnm(const VnmSparsifier& sparsifier,
                                        const HalfMatrix& tensor) {
  return SparseTensorWrapper::wrapped_from_dense(
      VnmMatrix::from_dense_magnitude(tensor, sparsifier.config()), tensor);
}

SpmmModule::SpmmModule(SparseTensorWrapper weight, std::vector<float> bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  VENOM_CHECK_MSG(bias_.empty() || bias_.size() == weight_.rows(),
                  "bias size " << bias_.size() << " != out features "
                               << weight_.rows());
}

HalfMatrix SpmmModule::forward(const HalfMatrix& input) const {
  VENOM_CHECK_MSG(input.rows() == weight_.cols(),
                  "SpmmModule expects " << weight_.cols()
                                        << " input features, got "
                                        << input.rows());
  // STen's module swap in miniature: the same ops::matmul dispatch call
  // serves both states — the registry routes the V:N:M wrapper to Spatha
  // and the dense tensor to the GEMM backend.
  FloatMatrix acc = ops::matmul(
      weight_.is_sparse()
          ? ops::MatmulArgs::make(weight_.wrapped_tensor(), input)
          : ops::MatmulArgs::make(weight_.dense_tensor(), input));
  if (!bias_.empty()) transformer::add_bias(acc, bias_);
  return to_half(acc);
}

const std::vector<half_t>& SpmmModule::values() const {
  return weight_.wrapped_tensor().values();
}
const std::vector<std::uint8_t>& SpmmModule::columns() const {
  return weight_.wrapped_tensor().column_locs();
}
const std::vector<std::uint8_t>& SpmmModule::metadata() const {
  return weight_.wrapped_tensor().m_indices();
}

}  // namespace venom::sten
