#include "transformer/latency_model.hpp"

namespace venom::transformer {

namespace {

using gpumodel::DeviceSpec;
using gpumodel::GemmShape;
using gpumodel::KernelCost;

/// Time of one weight GEMM (out x in x tokens), dense or Spatha.
double weight_gemm(const DeviceSpec& dev, std::size_t out, std::size_t in,
                   std::size_t tokens, const std::optional<VnmConfig>& sp) {
  const GemmShape g{out, in, tokens};
  if (sp.has_value()) return gpumodel::spatha_spmm(dev, g, *sp).total();
  return gpumodel::cublas_gemm(dev, g).total();
}

}  // namespace

ModeledLatency model_encoder_latency(const DeviceSpec& dev,
                                     const ModelConfig& cfg,
                                     std::size_t batch,
                                     std::optional<VnmConfig> sparse,
                                     std::size_t layer_count) {
  const std::size_t layers = layer_count == 0 ? cfg.layers : layer_count;
  const std::size_t tokens = batch * cfg.seq_len;
  const std::size_t dh = cfg.head_dim();

  ModeledLatency lat;

  // Linear-layer GEMMs: WQ, WK, WV, WO (hidden x hidden) and the two FFN
  // projections. These are the SpMM conversion sites of Fig. 14.
  double gemms = 0.0;
  gemms += 4.0 * weight_gemm(dev, cfg.hidden, cfg.hidden, tokens, sparse);
  gemms += weight_gemm(dev, cfg.ffn_hidden, cfg.hidden, tokens, sparse);
  gemms += weight_gemm(dev, cfg.hidden, cfg.ffn_hidden, tokens, sparse);
  lat.gemm_s = gemms * double(layers);

  // Attention matmuls stay dense: QK^T and PV, each a batch*heads batched
  // GEMM of (seq x dh x seq). Each instance is costed at its true shape —
  // the short inner dimension dh keeps batched attention well below peak
  // GEMM efficiency — with one launch for the whole batch.
  const GemmShape per_head{cfg.seq_len, dh, cfg.seq_len};
  const KernelCost head_cost = gpumodel::cublas_gemm(dev, per_head);
  const double per_matmul =
      (head_cost.total() - head_cost.overhead_s) * double(cfg.heads * batch) +
      head_cost.overhead_s;
  lat.attn_matmul_s = 2.0 * per_matmul * double(layers);

  // Softmax: read + write the (batch*heads*seq*seq) score tensor plus the
  // reduction pass — ~6 bytes per element in fp16.
  const double score_elems =
      double(batch) * cfg.heads * cfg.seq_len * cfg.seq_len;
  lat.softmax_s =
      gpumodel::elementwise(dev, 6.0 * score_elems).total() * double(layers);

  // Others: bias adds, residuals, two LayerNorms, GELU, dropout — each a
  // bandwidth pass over the activation tensors.
  const double act_bytes = 2.0 * double(tokens) * cfg.hidden;
  const double ffn_bytes = 2.0 * double(tokens) * cfg.ffn_hidden;
  // ~6 activation-sized passes + 2 FFN-sized passes per layer.
  lat.other_s =
      (gpumodel::elementwise(dev, 6.0 * act_bytes).total() +
       gpumodel::elementwise(dev, 2.0 * ffn_bytes).total()) *
      double(layers);
  return lat;
}

double model_gemm_time(const DeviceSpec& dev, const ModelConfig& cfg,
                       std::size_t batch, std::optional<VnmConfig> sparse,
                       std::size_t layer_count) {
  return model_encoder_latency(dev, cfg, batch, sparse, layer_count).gemm_s;
}

}  // namespace venom::transformer
