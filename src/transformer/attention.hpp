// Multi-head self-attention (the pruned MHA of Fig. 14).
//
// The four weight projections (WQ, WK, WV, WO) are Linear layers whose
// weights can be sparsified to V:N:M — the SpMM conversions of Fig. 14.
// The scores/softmax/context path stays dense by default, as in the
// paper; set_dynamic_score_sparsity() additionally enables DFSS-style
// dynamic N:M attention [Chen et al., PPoPP'23 — the paper's ref. 6]:
// after softmax, each probability row is pruned to the hardware 2:4 (or
// 1:2) pattern and the context matmul runs through the register-blocked
// sparse fast path (spatha::spmm_nm, bit-identical to the spmm_24
// baseline it replaced).
//
// forward_batched() evaluates several independent sequences packed along
// the token axis in one pass: the projections are token-wise (one big
// SpMM over the whole batch — the serving hot path), while the
// scores/softmax/context stage is evaluated per sequence so tokens never
// attend across request boundaries. Each sequence's output is
// bit-identical to running it through forward() alone.
#pragma once

#include <optional>
#include <span>

#include "format/nm.hpp"
#include "transformer/config.hpp"
#include "transformer/linear.hpp"

namespace venom::transformer {

class KvCache;

/// Parameter gradients of one attention block (the four projections).
struct MhaGrads {
  Linear::Grads wq, wk, wv, wo;
};

/// Multi-head self-attention over (hidden x tokens) activations.
class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  /// `causal` enables the decoder-style mask: position i attends only to
  /// positions <= i (GPT models).
  MultiHeadAttention(std::size_t hidden, std::size_t heads, Rng& rng,
                     bool causal = false);

  /// Sparsifies all four projection weights to V:N:M.
  void sparsify(VnmConfig cfg);

  /// Attaches a shared execution context to all four projections and to
  /// the dynamic-attention SpMM dispatch (see Linear::set_exec_context).
  void set_exec_context(ops::ExecContext* ctx) {
    ctx_ = ctx;
    wq_.set_exec_context(ctx);
    wk_.set_exec_context(ctx);
    wv_.set_exec_context(ctx);
    wo_.set_exec_context(ctx);
  }

  /// Switches all four projection weights to the given storage precision
  /// (see Linear::set_weight_dtype; requires sparsified projections for
  /// the reduced dtypes).
  void set_weight_dtype(ops::Dtype dtype) {
    wq_.set_weight_dtype(dtype);
    wk_.set_weight_dtype(dtype);
    wv_.set_weight_dtype(dtype);
    wo_.set_weight_dtype(dtype);
  }

  /// Enables (or, with nullopt, disables) dynamic N:M pruning of the
  /// attention probabilities. Only the hardware patterns 2:4 and 1:2 are
  /// accepted (they are what mma.sp executes); the sequence length must
  /// divide M at forward time. Probability rows are renormalized after
  /// pruning so each query still distributes unit mass.
  void set_dynamic_score_sparsity(std::optional<NmPattern> pattern);
  std::optional<NmPattern> dynamic_score_sparsity() const {
    return score_pattern_;
  }

  /// Bounds the causal mask to a sliding window: query i attends to keys
  /// [max(0, i + 1 - w), i]. 0 (the default) is the unbounded causal
  /// mask. Only meaningful with `causal`; this is the full-forward twin
  /// of the KV ring's capacity — forward_cached over a ring of capacity
  /// w computes exactly this mask, bit for bit.
  void set_attention_window(std::size_t w) { attn_window_ = w; }
  std::size_t attention_window() const { return attn_window_; }

  HalfMatrix forward(const HalfMatrix& x, TimingBreakdown* timing = nullptr,
                     ops::ExecContext* ctx = nullptr) const;

  /// Incremental forward against per-sequence KV rings: projects the
  /// packed new tokens (one token per sequence when decoding, a prompt
  /// chunk when prefilling), appends each token's K/V to its cache at
  /// `layer`, and attends every query against the cached window only.
  /// Because the ring holds exactly the sliding window the causal mask
  /// admits, the output is bit-identical to forward_batched over the
  /// full accumulated sequence (masked terms contribute exact zeros and
  /// the live terms accumulate in the same order). Requires `causal`;
  /// incompatible with dynamic score sparsity. When an attention window
  /// is set each cache's capacity must equal it; with window 0 the
  /// sequence must fit the capacity (overflow throws rather than
  /// silently truncating history).
  HalfMatrix forward_cached(const HalfMatrix& x,
                            std::span<const std::size_t> seq_ends,
                            std::span<KvCache* const> caches,
                            std::size_t layer,
                            TimingBreakdown* timing = nullptr,
                            ops::ExecContext* ctx = nullptr) const;

  /// Batched forward over independent sequences packed along the token
  /// axis. `seq_ends` holds the exclusive end column of each sequence in
  /// ascending order; the last entry must equal x.cols() (so {T} is
  /// exactly forward()). Attention is masked to each [start, end) span.
  /// `ctx` overrides the attached context for this call (ops::resolve),
  /// so a const-shared attention block can serve replica-private contexts.
  HalfMatrix forward_batched(const HalfMatrix& x,
                             std::span<const std::size_t> seq_ends,
                             TimingBreakdown* timing = nullptr,
                             ops::ExecContext* ctx = nullptr) const;

  /// Backward pass: recomputes the forward intermediates (activation
  /// recomputation — no state is kept between passes), then
  /// differentiates context/softmax/scores per (head, sequence) and
  /// routes all four projection backwards through Linear::backward (the
  /// sparse ops when projections are pruned). Returns dL/dx; fills
  /// `grads` when non-null. Dynamic score sparsity has no backward —
  /// throws if enabled.
  FloatMatrix backward(const HalfMatrix& x, const FloatMatrix& grad_out,
                       MhaGrads* grads = nullptr) const;
  FloatMatrix backward_batched(const HalfMatrix& x,
                               std::span<const std::size_t> seq_ends,
                               const FloatMatrix& grad_out,
                               MhaGrads* grads = nullptr) const;

  /// SGD step over all four projections (see Linear::apply_gradients).
  void apply_gradients(const MhaGrads& g, float lr);

  std::size_t hidden() const { return hidden_; }
  std::size_t heads() const { return heads_; }
  bool causal() const { return causal_; }
  Linear& wq() { return wq_; }
  Linear& wk() { return wk_; }
  Linear& wv() { return wv_; }
  Linear& wo() { return wo_; }

 private:
  std::size_t hidden_ = 0;
  std::size_t heads_ = 0;
  bool causal_ = false;
  std::size_t attn_window_ = 0;  // 0 = unbounded causal mask
  std::optional<NmPattern> score_pattern_;
  ops::ExecContext* ctx_ = nullptr;  // not owned; nullptr = global()
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace venom::transformer
