#include "transformer/kv_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace venom::transformer {

KvCache::KvCache(std::size_t layers, std::size_t hidden, std::size_t capacity)
    : hidden_(hidden), capacity_(capacity) {
  VENOM_CHECK_MSG(layers >= 1 && hidden >= 1 && capacity >= 1,
                  "KvCache needs positive layers/hidden/capacity, got "
                      << layers << '/' << hidden << '/' << capacity);
  layers_.resize(layers);
  for (LayerKv& l : layers_) {
    l.k = HalfMatrix(hidden, capacity);
    l.v = HalfMatrix(hidden, capacity);
  }
}

std::size_t KvCache::layer_length(std::size_t l) const {
  VENOM_CHECK_MSG(l < layers_.size(),
                  "layer " << l << " out of " << layers_.size());
  return layers_[l].length;
}

bool KvCache::synchronized() const {
  for (const LayerKv& l : layers_)
    if (l.length != layers_.front().length) return false;
  return true;
}

void KvCache::reset() {
  for (LayerKv& l : layers_) l.length = 0;
}

std::size_t KvCache::append(std::size_t l, const HalfMatrix& k,
                            const HalfMatrix& v, std::size_t src) {
  VENOM_CHECK_MSG(l < layers_.size(),
                  "layer " << l << " out of " << layers_.size());
  VENOM_CHECK(k.rows() == hidden_ && v.rows() == hidden_ && src < k.cols() &&
              src < v.cols());
  LayerKv& kv = layers_[l];
  const std::size_t p = kv.length++;
  const std::size_t slot = p % capacity_;
  for (std::size_t r = 0; r < hidden_; ++r) {
    kv.k(r, slot) = k(r, src);
    kv.v(r, slot) = v(r, src);
  }
  return p;
}

void KvCache::gather(const HalfMatrix& ring, std::size_t layer_len,
                     std::size_t row0, std::size_t dh, std::size_t lo,
                     std::size_t w, HalfMatrix& out) const {
  VENOM_CHECK_MSG(w >= 1 && w <= capacity_ && lo + w <= layer_len &&
                      lo + capacity_ >= layer_len,
                  "gather [" << lo << ", " << lo + w
                             << ") not resident (length " << layer_len
                             << ", capacity " << capacity_ << ")");
  VENOM_CHECK(row0 + dh <= hidden_);
  out.resize(dh, w);
  // Rows are contiguous along the slot axis, so each head row is at most
  // two memcpy spans: [lo % cap, cap) then the wrapped prefix.
  const std::size_t s0 = lo % capacity_;
  const std::size_t first = std::min(w, capacity_ - s0);
  for (std::size_t d = 0; d < dh; ++d) {
    const half_t* src = &ring(row0 + d, 0);
    half_t* dst = &out(d, 0);
    std::memcpy(dst, src + s0, first * sizeof(half_t));
    if (first < w)
      std::memcpy(dst + first, src, (w - first) * sizeof(half_t));
  }
}

void KvCache::gather_k(std::size_t l, std::size_t row0, std::size_t dh,
                       std::size_t lo, std::size_t w, HalfMatrix& out) const {
  VENOM_CHECK_MSG(l < layers_.size(),
                  "layer " << l << " out of " << layers_.size());
  gather(layers_[l].k, layers_[l].length, row0, dh, lo, w, out);
}

void KvCache::gather_v(std::size_t l, std::size_t row0, std::size_t dh,
                       std::size_t lo, std::size_t w, HalfMatrix& out) const {
  VENOM_CHECK_MSG(l < layers_.size(),
                  "layer " << l << " out of " << layers_.size());
  gather(layers_[l].v, layers_[l].length, row0, dh, lo, w, out);
}

}  // namespace venom::transformer
