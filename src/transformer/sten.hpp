// STen-style sparsity integration layer (paper §7.2.2, Listing 1).
//
// The paper plugs Spatha into PyTorch via the STen interface: a
// sparsifier class describes the target format, a registered
// implementation converts dense tensors into wrapped sparse tensors, and
// the runtime dispatches matmuls on wrapped tensors to Spatha. This
// module is the C++ analogue:
//
//   VnmSparsifier        the (n, m, v) format description
//   SparseTensorWrapper  a tensor that is dense, or VNM-compressed with
//                        its dense origin retained (STen keeps both to
//                        support dense gradients)
//   SparsifierRegistry   name -> conversion function, mirroring
//                        @sten.register_sparsifier_implementation
//   SpmmModule           the Listing-1 `Spmm` torch.nn.Module: holds the
//                        wrapped weight's values/columns/metadata and
//                        forwards through spatha::spmm
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::sten {

/// Format description handed to the registry (Listing 1's
/// spatha.VNMSparsifier with fields n, m, v).
struct VnmSparsifier {
  std::size_t n = 2;
  std::size_t m = 8;
  std::size_t v = 64;

  VnmConfig config() const { return VnmConfig{v, n, m}; }
};

/// A tensor wrapper that is either still dense or carries a VNM payload
/// plus the dense tensor it was created from.
class SparseTensorWrapper {
 public:
  /// Wraps a dense tensor (no sparsity yet).
  static SparseTensorWrapper dense(HalfMatrix tensor);

  /// Listing 1's sten.SparseTensorWrapper.wrapped_from_dense.
  static SparseTensorWrapper wrapped_from_dense(VnmMatrix sparse,
                                                HalfMatrix original);

  bool is_sparse() const { return sparse_.has_value(); }
  const HalfMatrix& dense_tensor() const { return dense_; }
  const VnmMatrix& wrapped_tensor() const;

  std::size_t rows() const { return dense_.rows(); }
  std::size_t cols() const { return dense_.cols(); }

 private:
  HalfMatrix dense_;
  std::optional<VnmMatrix> sparse_;
};

/// Conversion function type: (sparsifier, dense input) -> wrapper.
using SparsifierImpl = std::function<SparseTensorWrapper(
    const VnmSparsifier&, const HalfMatrix&)>;

/// Global name -> implementation registry
/// (@sten.register_sparsifier_implementation).
class SparsifierRegistry {
 public:
  static SparsifierRegistry& instance();

  /// Registers an implementation; returns false if the name was taken.
  bool register_impl(const std::string& name, SparsifierImpl impl);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Applies the named implementation; throws venom::Error if unknown.
  SparseTensorWrapper sparsify(const std::string& name,
                               const VnmSparsifier& sparsifier,
                               const HalfMatrix& dense) const;

 private:
  SparsifierRegistry();
  std::map<std::string, SparsifierImpl> impls_;
};

/// The default magnitude-pruning implementation, registered under
/// "vnm_magnitude" at startup (Listing 1's torch_tensor_to_vnm).
SparseTensorWrapper torch_tensor_to_vnm(const VnmSparsifier& sparsifier,
                                        const HalfMatrix& tensor);

/// Listing 1's `class Spmm(torch.nn.Module)`: captures the wrapped
/// weight's compressed structures and forwards activations through
/// Spatha (or dense GEMM while the weight is still dense).
class SpmmModule {
 public:
  SpmmModule(SparseTensorWrapper weight, std::vector<float> bias);

  /// forward(input): weight @ input + bias.
  HalfMatrix forward(const HalfMatrix& input) const;

  const SparseTensorWrapper& weight() const { return weight_; }

  // Accessors mirroring Listing 1's self.values / columns / metadata.
  const std::vector<half_t>& values() const;
  const std::vector<std::uint8_t>& columns() const;
  const std::vector<std::uint8_t>& metadata() const;

 private:
  SparseTensorWrapper weight_;
  std::vector<float> bias_;
};

}  // namespace venom::sten
