// Modeled GPU inference latency for transformer encoders (Fig. 15).
//
// The paper times BERT / GPT2-large / a single GPT-3 encoder on the RTX
// 3090 and reports latency broken into GEMMs, attention matmuls, softmax,
// and "others". This module reproduces that breakdown analytically: each
// linear layer's GEMM is costed with gpumodel::cublas_gemm (dense) or
// gpumodel::spatha_spmm (V:N:M), attention matmuls with the dense model,
// and softmax/others with the bandwidth model.
#pragma once

#include <optional>

#include "format/vnm.hpp"
#include "gpumodel/kernel_models.hpp"
#include "transformer/config.hpp"

namespace venom::transformer {

/// Modeled per-class latency (seconds) of a full forward pass.
struct ModeledLatency {
  double gemm_s = 0;
  double softmax_s = 0;
  double attn_matmul_s = 0;
  double other_s = 0;
  double total() const { return gemm_s + softmax_s + attn_matmul_s + other_s; }
};

/// Models `layer_count` encoder layers (0 = cfg.layers) at the given
/// batch size. If `sparse` is set, every linear weight runs through
/// Spatha at that V:N:M configuration; otherwise dense cuBLAS.
ModeledLatency model_encoder_latency(const gpumodel::DeviceSpec& dev,
                                     const ModelConfig& cfg,
                                     std::size_t batch,
                                     std::optional<VnmConfig> sparse,
                                     std::size_t layer_count = 0);

/// GEMM-only time (the "tensor contraction" the paper quotes 10-11x on).
double model_gemm_time(const gpumodel::DeviceSpec& dev,
                       const ModelConfig& cfg, std::size_t batch,
                       std::optional<VnmConfig> sparse,
                       std::size_t layer_count = 0);

}  // namespace venom::transformer
