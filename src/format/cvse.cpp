#include "format/cvse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace venom {

CvseMatrix CvseMatrix::from_dense(const HalfMatrix& dense,
                                  std::size_t vec_len) {
  VENOM_CHECK_MSG(vec_len >= 1, "vector length must be positive");
  VENOM_CHECK_MSG(dense.rows() % vec_len == 0,
                  "rows " << dense.rows() << " not divisible by vec_len "
                          << vec_len);
  CvseMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.vec_len_ = vec_len;
  out.group_offsets_.push_back(0);
  for (std::size_t g = 0; g < dense.rows() / vec_len; ++g) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      bool any = false;
      for (std::size_t dr = 0; dr < vec_len && !any; ++dr)
        any = !dense(g * vec_len + dr, c).is_zero();
      if (!any) continue;
      out.col_indices_.push_back(static_cast<std::uint32_t>(c));
      for (std::size_t dr = 0; dr < vec_len; ++dr)
        out.values_.push_back(dense(g * vec_len + dr, c));
    }
    out.group_offsets_.push_back(
        static_cast<std::uint32_t>(out.col_indices_.size()));
  }
  return out;
}

CvseMatrix CvseMatrix::from_dense_magnitude(const HalfMatrix& dense,
                                            std::size_t vec_len,
                                            double keep_fraction) {
  VENOM_CHECK_MSG(keep_fraction > 0.0 && keep_fraction <= 1.0,
                  "keep_fraction " << keep_fraction << " out of (0,1]");
  VENOM_CHECK(dense.rows() % vec_len == 0);
  const std::size_t groups = dense.rows() / vec_len;
  const std::size_t total = groups * dense.cols();
  // Rank all vectors by L1 norm and keep the top fraction.
  std::vector<double> norm(total, 0.0);
  for (std::size_t g = 0; g < groups; ++g)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      for (std::size_t dr = 0; dr < vec_len; ++dr)
        norm[g * dense.cols() + c] +=
            std::fabs(double(dense(g * vec_len + dr, c).to_float()));

  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(keep_fraction * double(total))));
  std::nth_element(order.begin(), order.begin() + (keep - 1), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return norm[a] > norm[b];
                   });

  HalfMatrix pruned(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < keep; ++i) {
    const std::size_t g = order[i] / dense.cols();
    const std::size_t c = order[i] % dense.cols();
    for (std::size_t dr = 0; dr < vec_len; ++dr)
      pruned(g * vec_len + dr, c) = dense(g * vec_len + dr, c);
  }
  return from_dense(pruned, vec_len);
}

HalfMatrix CvseMatrix::to_dense() const {
  HalfMatrix dense(rows_, cols_);
  for (std::size_t g = 0; g < row_groups(); ++g)
    for (std::uint32_t i = group_offsets_[g]; i < group_offsets_[g + 1];
         ++i)
      for (std::size_t dr = 0; dr < vec_len_; ++dr)
        dense(g * vec_len_ + dr, col_indices_[i]) =
            values_[i * vec_len_ + dr];
  return dense;
}

}  // namespace venom
