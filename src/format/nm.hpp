// Row-wise N:M compressed sparse format (NVIDIA 2:4 style, Fig. 1).
//
// Every group of M consecutive columns in a row holds at most N nonzero
// values. Compression keeps, per group, the N values plus an index of each
// value's position within the group. For the native 2:4 format the index
// is 2 bits; this container stores indices in uint8 and the SPTC module
// packs them into hardware metadata words.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace venom {

/// N:M pattern parameters (e.g. {2, 4} is the native SPTC format).
struct NmPattern {
  std::size_t n = 2;
  std::size_t m = 4;

  /// Fraction of elements that are zero (e.g. 2:4 -> 0.5, 2:8 -> 0.75).
  double sparsity() const {
    return 1.0 - static_cast<double>(n) / static_cast<double>(m);
  }
  friend bool operator==(const NmPattern&, const NmPattern&) = default;
};

/// Compressed row-wise N:M matrix.
///
/// values / indices have logical shape rows x (cols/m) x n, flattened
/// row-major; indices store the column-in-group position (in [0, m)).
class NmMatrix {
 public:
  NmMatrix() = default;

  /// Compresses a dense matrix that already conforms to the pattern
  /// (each row-group of m has at most n nonzeros). Throws otherwise.
  static NmMatrix compress(const HalfMatrix& dense, NmPattern pattern);

  /// Magnitude-prunes `dense` to the pattern, then compresses. Ties are
  /// broken toward the lower column index, so results are deterministic.
  static NmMatrix from_dense_magnitude(const HalfMatrix& dense,
                                       NmPattern pattern);

  /// Reassembles from raw compressed structures (deserialization path);
  /// validates sizes and index ranges.
  static NmMatrix from_parts(NmPattern pattern, std::size_t rows,
                             std::size_t cols, std::vector<half_t> values,
                             std::vector<std::uint8_t> indices);

  /// Expands back to dense (zeros where pruned).
  HalfMatrix to_dense() const;

  /// True if a dense matrix conforms to `pattern`.
  static bool conforms(const HalfMatrix& dense, NmPattern pattern);

  NmPattern pattern() const { return pattern_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t groups_per_row() const { return cols_ / pattern_.m; }
  std::size_t nnz() const { return values_.size(); }

  /// Value / index of the j-th nonzero in group g of row r (j < n).
  half_t value(std::size_t r, std::size_t g, std::size_t j) const {
    return values_[(r * groups_per_row() + g) * pattern_.n + j];
  }
  std::uint8_t index(std::size_t r, std::size_t g, std::size_t j) const {
    return indices_[(r * groups_per_row() + g) * pattern_.n + j];
  }

  const std::vector<half_t>& values() const { return values_; }
  const std::vector<std::uint8_t>& indices() const { return indices_; }

  /// Bytes of the compressed representation (values fp16 + 2-bit indices,
  /// rounded up per nonzero), used for footprint reporting.
  std::size_t compressed_bytes() const;

 private:
  NmPattern pattern_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<half_t> values_;
  std::vector<std::uint8_t> indices_;
};

}  // namespace venom
