// Compressed Sparse Row format (Sputnik's layout).
//
// Used as the unstructured-sparsity baseline: Sputnik [Gale et al., SC'20]
// stores fp16 values with row offsets and column indices and schedules
// 1-D row tiles. The CPU kernel in src/baselines mirrors that tiling.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace venom {

/// CSR matrix over half-precision values.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compresses all nonzeros of a dense matrix.
  static CsrMatrix from_dense(const HalfMatrix& dense);

  /// Reassembles from raw structures (deserialization path); validates
  /// monotone row offsets and in-range, per-row-sorted column indices.
  static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                              std::vector<std::uint32_t> row_offsets,
                              std::vector<std::uint32_t> col_indices,
                              std::vector<half_t> values);

  HalfMatrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Row r spans [row_offsets()[r], row_offsets()[r+1]).
  const std::vector<std::uint32_t>& row_offsets() const {
    return row_offsets_;
  }
  const std::vector<std::uint32_t>& col_indices() const {
    return col_indices_;
  }
  const std::vector<half_t>& values() const { return values_; }

  std::size_t compressed_bytes() const {
    return values_.size() * sizeof(half_t) +
           col_indices_.size() * sizeof(std::uint32_t) +
           row_offsets_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_offsets_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<half_t> values_;
};

}  // namespace venom
