// Column-Vector Sparse Encoding (vectorSparse / CLASP's format).
//
// Rows are partitioned into vertical vectors of length `vec_len`; a vector
// at (row group, column) is kept if any of its elements is nonzero. Kept
// vectors are stored contiguously per row group with one column index per
// vector — the format CLASP [Castro et al., PACT'22] executes on tensor
// cores with vector lengths l in {2, 4, 8}.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace venom {

/// Column-vector sparse matrix (CLASP / vectorSparse layout).
class CvseMatrix {
 public:
  CvseMatrix() = default;

  /// Compresses every column vector that contains a nonzero.
  static CvseMatrix from_dense(const HalfMatrix& dense, std::size_t vec_len);

  /// Magnitude-prunes to a target density by keeping the vectors with the
  /// largest L1 norm (global threshold), then compresses. `keep_fraction`
  /// is the fraction of vectors retained.
  static CvseMatrix from_dense_magnitude(const HalfMatrix& dense,
                                         std::size_t vec_len,
                                         double keep_fraction);

  HalfMatrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t vec_len() const { return vec_len_; }
  std::size_t row_groups() const { return rows_ / vec_len_; }
  std::size_t vector_count() const { return col_indices_.size(); }
  std::size_t nnz() const { return values_.size(); }

  /// Group g's vectors span [group_offsets()[g], group_offsets()[g+1]).
  /// Vector i has column col_indices()[i] and values
  /// values()[i*vec_len .. (i+1)*vec_len).
  const std::vector<std::uint32_t>& group_offsets() const {
    return group_offsets_;
  }
  const std::vector<std::uint32_t>& col_indices() const {
    return col_indices_;
  }
  const std::vector<half_t>& values() const { return values_; }

  std::size_t compressed_bytes() const {
    return values_.size() * sizeof(half_t) +
           col_indices_.size() * sizeof(std::uint32_t) +
           group_offsets_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t vec_len_ = 1;
  std::vector<std::uint32_t> group_offsets_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<half_t> values_;
};

}  // namespace venom
