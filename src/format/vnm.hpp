// The V:N:M compressed sparse format (paper Sections 3 and 4, Figs. 2-3).
//
// A dense R x K matrix is partitioned into V x M blocks. In each block the
// vector-wise stage selects 4 columns (out of M); the N:M stage then keeps
// N nonzeros per row among those 4 columns — i.e. the rows of the selected
// sub-block follow the native 2:4 pattern the Sparse Tensor Cores accept.
//
// Three structures represent the result (Fig. 3):
//   values      R x (K/M) x N     fp16 nonzeros
//   m_indices   R x (K/M) x N     2-bit position within the 4 selected cols
//   column_loc  (R/V) x (K/M) x 4 which 4 of the M columns were selected
//
// This is how arbitrary N:M ratios are executed on hardware that only
// supports 2:4: the column_loc gather converts a K-wide row of B into a
// (K/M)*4-wide one, and the remaining selection is exactly 2:4.
#pragma once

#include <cstdint>
#include <vector>

#include "format/nm.hpp"
#include "tensor/matrix.hpp"

namespace venom {

/// V:N:M parameters. `v` is the vector (block height), `n`:`m` the pattern.
/// The paper evaluates v in {1, 16, 32, 64, 128}, n = 2, m in {4..100}.
struct VnmConfig {
  std::size_t v = 64;
  std::size_t n = 2;
  std::size_t m = 8;

  /// Number of columns the vector-wise stage keeps per block. Fixed at 4
  /// by the SPTC 2:4 mapping, except m < 4 degenerates to m (plain N:M).
  std::size_t selected_cols() const { return m < 4 ? m : 4; }

  double sparsity() const {
    return 1.0 - static_cast<double>(n) / static_cast<double>(m);
  }

  /// Ordered so configurations can key plan caches and tuning tables.
  friend auto operator<=>(const VnmConfig&, const VnmConfig&) = default;
};

/// Compressed V:N:M matrix (the VENOM format).
class VnmMatrix {
 public:
  VnmMatrix() = default;

  /// Magnitude-prunes a dense matrix into the V:N:M pattern and
  /// compresses it. Column selection maximizes the per-block L1 energy of
  /// the kept columns, then each row keeps its N largest among the 4.
  static VnmMatrix from_dense_magnitude(const HalfMatrix& dense,
                                        VnmConfig cfg);

  /// Compresses a dense matrix that already conforms to the V:N:M pattern
  /// (per V x M block, nonzeros confined to <= 4 columns; per row of those
  /// columns, <= N nonzeros). Throws venom::Error otherwise.
  static VnmMatrix compress(const HalfMatrix& dense, VnmConfig cfg);

  /// Reassembles a matrix from raw compressed structures (deserialization
  /// path). Validates sizes and index ranges; throws venom::Error on any
  /// inconsistency.
  static VnmMatrix from_parts(VnmConfig cfg, std::size_t rows,
                              std::size_t cols, std::vector<half_t> values,
                              std::vector<std::uint8_t> m_indices,
                              std::vector<std::uint8_t> column_loc);

  /// Expands back to dense.
  HalfMatrix to_dense() const;

  /// True if `dense` conforms to the pattern under `cfg`.
  static bool conforms(const HalfMatrix& dense, VnmConfig cfg);

  VnmConfig config() const { return cfg_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t groups_per_row() const { return cols_ / cfg_.m; }
  std::size_t block_rows() const { return rows_ / cfg_.v; }
  std::size_t nnz() const { return values_.size(); }

  /// j-th nonzero value of group g in row r (j < n).
  half_t value(std::size_t r, std::size_t g, std::size_t j) const {
    return values_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  /// Its 2-bit index into the 4 selected columns.
  std::uint8_t m_index(std::size_t r, std::size_t g, std::size_t j) const {
    return m_indices_[(r * groups_per_row() + g) * cfg_.n + j];
  }
  /// The s-th selected column (column offset within the M-group) for block
  /// row br and group g (s < selected_cols()).
  std::uint8_t column_loc(std::size_t br, std::size_t g,
                          std::size_t s) const {
    return column_loc_[(br * groups_per_row() + g) * cfg_.selected_cols() + s];
  }
  /// Absolute dense column of that nonzero.
  std::size_t dense_column(std::size_t r, std::size_t g,
                           std::size_t j) const {
    return g * cfg_.m + column_loc(r / cfg_.v, g, m_index(r, g, j));
  }

  const std::vector<half_t>& values() const { return values_; }
  const std::vector<std::uint8_t>& m_indices() const { return m_indices_; }
  const std::vector<std::uint8_t>& column_locs() const { return column_loc_; }

  /// Reinterprets the kept columns as a dense-in-2:4 matrix: R x (K/M)*4
  /// with the native 2:4 pattern. This is exactly the LHS the SPTC sees
  /// after the column_loc gather of Fig. 4, and is used by tests to show
  /// the V:N:M -> 2:4 reduction is lossless.
  HalfMatrix gathered_24_view() const;

  /// Bytes of the compressed representation (values + 2-bit m-indices +
  /// column-loc bytes), for footprint reporting vs dense.
  std::size_t compressed_bytes() const;

 private:
  VnmConfig cfg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<half_t> values_;
  std::vector<std::uint8_t> m_indices_;
  std::vector<std::uint8_t> column_loc_;
};

}  // namespace venom
