#include "format/nm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace venom {

namespace {

void check_shape(const HalfMatrix& dense, NmPattern p) {
  VENOM_CHECK_MSG(p.n >= 1 && p.m >= 2 && p.n <= p.m,
                  "invalid N:M pattern " << p.n << ':' << p.m);
  VENOM_CHECK_MSG(dense.cols() % p.m == 0,
                  "cols " << dense.cols() << " not divisible by M=" << p.m);
}

}  // namespace

NmMatrix NmMatrix::compress(const HalfMatrix& dense, NmPattern p) {
  check_shape(dense, p);
  NmMatrix out;
  out.pattern_ = p;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  const std::size_t groups = dense.cols() / p.m;
  out.values_.resize(dense.rows() * groups * p.n, half_t(0.0f));
  out.indices_.resize(dense.rows() * groups * p.n, 0);

  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::size_t count = 0;
      for (std::size_t c = 0; c < p.m; ++c) {
        const half_t v = dense(r, g * p.m + c);
        if (v.is_zero()) continue;
        VENOM_CHECK_MSG(count < p.n, "row " << r << " group " << g
                                            << " has more than " << p.n
                                            << " nonzeros");
        const std::size_t slot = (r * groups + g) * p.n + count;
        out.values_[slot] = v;
        out.indices_[slot] = static_cast<std::uint8_t>(c);
        ++count;
      }
      // Pad unused slots with distinct ascending indices so the metadata
      // stays a valid selector set (matches cuSPARSELt padding behaviour).
      while (count < p.n) {
        const std::size_t slot = (r * groups + g) * p.n + count;
        const std::uint8_t prev =
            count == 0 ? 0 : static_cast<std::uint8_t>(out.indices_[slot - 1] + 1);
        out.indices_[slot] =
            std::min<std::uint8_t>(prev, static_cast<std::uint8_t>(p.m - 1));
        ++count;
      }
    }
  }
  return out;
}

NmMatrix NmMatrix::from_dense_magnitude(const HalfMatrix& dense, NmPattern p) {
  check_shape(dense, p);
  HalfMatrix pruned = dense;
  const std::size_t groups = dense.cols() / p.m;
  std::vector<std::size_t> order(p.m);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return std::fabs(dense(r, g * p.m + a).to_float()) >
                                std::fabs(dense(r, g * p.m + b).to_float());
                       });
      for (std::size_t k = p.n; k < p.m; ++k)
        pruned(r, g * p.m + order[k]) = half_t(0.0f);
    }
  }
  return compress(pruned, p);
}

NmMatrix NmMatrix::from_parts(NmPattern pattern, std::size_t rows,
                              std::size_t cols, std::vector<half_t> values,
                              std::vector<std::uint8_t> indices) {
  VENOM_CHECK_MSG(pattern.n >= 1 && pattern.m >= 2 && pattern.n <= pattern.m,
                  "invalid N:M pattern " << pattern.n << ':' << pattern.m);
  VENOM_CHECK_MSG(cols % pattern.m == 0,
                  "cols " << cols << " not divisible by M=" << pattern.m);
  const std::size_t expected = rows * (cols / pattern.m) * pattern.n;
  VENOM_CHECK_MSG(values.size() == expected, "values size " << values.size());
  VENOM_CHECK_MSG(indices.size() == expected,
                  "indices size " << indices.size());
  for (const std::uint8_t idx : indices)
    VENOM_CHECK_MSG(idx < pattern.m,
                    "index " << int(idx) << " out of group " << pattern.m);
  NmMatrix out;
  out.pattern_ = pattern;
  out.rows_ = rows;
  out.cols_ = cols;
  out.values_ = std::move(values);
  out.indices_ = std::move(indices);
  return out;
}

HalfMatrix NmMatrix::to_dense() const {
  HalfMatrix dense(rows_, cols_);
  const std::size_t groups = groups_per_row();
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t j = 0; j < pattern_.n; ++j) {
        const half_t v = value(r, g, j);
        if (v.is_zero()) continue;
        dense(r, g * pattern_.m + index(r, g, j)) = v;
      }
    }
  }
  return dense;
}

bool NmMatrix::conforms(const HalfMatrix& dense, NmPattern p) {
  if (p.n < 1 || p.m < 2 || p.n > p.m) return false;
  if (dense.cols() % p.m != 0) return false;
  const std::size_t groups = dense.cols() / p.m;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::size_t count = 0;
      for (std::size_t c = 0; c < p.m; ++c)
        if (!dense(r, g * p.m + c).is_zero()) ++count;
      if (count > p.n) return false;
    }
  }
  return true;
}

std::size_t NmMatrix::compressed_bytes() const {
  // fp16 values + 2-bit indices packed 4-per-byte (hardware metadata is
  // 2 bits per nonzero for 2:4; wider M needs ceil(log2(m)) bits).
  const std::size_t bits_per_index =
      pattern_.m <= 4 ? 2 : static_cast<std::size_t>(
                                std::ceil(std::log2(double(pattern_.m))));
  return values_.size() * sizeof(half_t) +
         (values_.size() * bits_per_index + 7) / 8;
}

}  // namespace venom
