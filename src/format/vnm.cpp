#include "format/vnm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace venom {

namespace {

void check_cfg(const HalfMatrix& dense, VnmConfig cfg) {
  VENOM_CHECK_MSG(cfg.v >= 1 && cfg.n >= 1 && cfg.m >= 2 && cfg.n <= cfg.m,
                  "invalid V:N:M config " << cfg.v << ':' << cfg.n << ':'
                                          << cfg.m);
  VENOM_CHECK_MSG(cfg.n <= cfg.selected_cols(),
                  "N=" << cfg.n << " exceeds selected column count "
                       << cfg.selected_cols());
  VENOM_CHECK_MSG(dense.rows() % cfg.v == 0,
                  "rows " << dense.rows() << " not divisible by V=" << cfg.v);
  VENOM_CHECK_MSG(dense.cols() % cfg.m == 0,
                  "cols " << dense.cols() << " not divisible by M=" << cfg.m);
}

/// Picks the `keep` columns of block (rows [r0,r0+v) x cols [c0,c0+m))
/// with the largest L1 energy; returns them sorted ascending.
std::vector<std::uint8_t> select_columns(const HalfMatrix& dense,
                                         std::size_t r0, std::size_t c0,
                                         std::size_t v, std::size_t m,
                                         std::size_t keep) {
  std::vector<double> energy(m, 0.0);
  for (std::size_t dr = 0; dr < v; ++dr)
    for (std::size_t dc = 0; dc < m; ++dc)
      energy[dc] += std::fabs(double(dense(r0 + dr, c0 + dc).to_float()));

  std::vector<std::uint8_t> order(m);
  std::iota(order.begin(), order.end(), std::uint8_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint8_t a, std::uint8_t b) {
                     return energy[a] > energy[b];
                   });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

VnmMatrix VnmMatrix::from_dense_magnitude(const HalfMatrix& dense,
                                          VnmConfig cfg) {
  check_cfg(dense, cfg);
  VnmMatrix out;
  out.cfg_ = cfg;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  const std::size_t groups = dense.cols() / cfg.m;
  const std::size_t sel = cfg.selected_cols();
  out.values_.assign(dense.rows() * groups * cfg.n, half_t(0.0f));
  out.m_indices_.assign(dense.rows() * groups * cfg.n, 0);
  out.column_loc_.assign((dense.rows() / cfg.v) * groups * sel, 0);

  std::vector<std::size_t> row_order(sel);
  for (std::size_t br = 0; br < dense.rows() / cfg.v; ++br) {
    for (std::size_t g = 0; g < groups; ++g) {
      const auto cols = select_columns(dense, br * cfg.v, g * cfg.m, cfg.v,
                                       cfg.m, sel);
      for (std::size_t s = 0; s < sel; ++s)
        out.column_loc_[(br * groups + g) * sel + s] = cols[s];

      // Per-row N:M pruning within the selected columns (2:4 stage).
      for (std::size_t dr = 0; dr < cfg.v; ++dr) {
        const std::size_t r = br * cfg.v + dr;
        std::iota(row_order.begin(), row_order.end(), std::size_t{0});
        std::stable_sort(
            row_order.begin(), row_order.end(),
            [&](std::size_t a, std::size_t b) {
              return std::fabs(dense(r, g * cfg.m + cols[a]).to_float()) >
                     std::fabs(dense(r, g * cfg.m + cols[b]).to_float());
            });
        std::vector<std::size_t> kept(row_order.begin(),
                                      row_order.begin() + cfg.n);
        std::sort(kept.begin(), kept.end());
        for (std::size_t j = 0; j < cfg.n; ++j) {
          const std::size_t slot = (r * groups + g) * cfg.n + j;
          out.values_[slot] = dense(r, g * cfg.m + cols[kept[j]]);
          out.m_indices_[slot] = static_cast<std::uint8_t>(kept[j]);
        }
      }
    }
  }
  return out;
}

VnmMatrix VnmMatrix::compress(const HalfMatrix& dense, VnmConfig cfg) {
  check_cfg(dense, cfg);
  VnmMatrix out;
  out.cfg_ = cfg;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  const std::size_t groups = dense.cols() / cfg.m;
  const std::size_t sel = cfg.selected_cols();
  out.values_.assign(dense.rows() * groups * cfg.n, half_t(0.0f));
  out.m_indices_.assign(dense.rows() * groups * cfg.n, 0);
  out.column_loc_.assign((dense.rows() / cfg.v) * groups * sel, 0);

  for (std::size_t br = 0; br < dense.rows() / cfg.v; ++br) {
    for (std::size_t g = 0; g < groups; ++g) {
      // Find the columns occupied anywhere in the block.
      std::vector<std::uint8_t> occupied;
      for (std::size_t dc = 0; dc < cfg.m; ++dc) {
        bool any = false;
        for (std::size_t dr = 0; dr < cfg.v && !any; ++dr)
          any = !dense(br * cfg.v + dr, g * cfg.m + dc).is_zero();
        if (any) occupied.push_back(static_cast<std::uint8_t>(dc));
      }
      VENOM_CHECK_MSG(occupied.size() <= sel,
                      "block (" << br << ',' << g << ") occupies "
                                << occupied.size() << " columns > " << sel);
      // Pad the selection up to `sel` with unused columns (deterministic:
      // the lowest free offsets).
      for (std::uint8_t dc = 0; occupied.size() < sel; ++dc) {
        if (std::find(occupied.begin(), occupied.end(), dc) ==
            occupied.end())
          occupied.push_back(dc);
      }
      std::sort(occupied.begin(), occupied.end());
      for (std::size_t s = 0; s < sel; ++s)
        out.column_loc_[(br * groups + g) * sel + s] = occupied[s];

      for (std::size_t dr = 0; dr < cfg.v; ++dr) {
        const std::size_t r = br * cfg.v + dr;
        std::size_t count = 0;
        for (std::size_t s = 0; s < sel; ++s) {
          const half_t v = dense(r, g * cfg.m + occupied[s]);
          if (v.is_zero()) continue;
          VENOM_CHECK_MSG(count < cfg.n, "row " << r << " group " << g
                                                << " has more than " << cfg.n
                                                << " nonzeros");
          const std::size_t slot = (r * groups + g) * cfg.n + count;
          out.values_[slot] = v;
          out.m_indices_[slot] = static_cast<std::uint8_t>(s);
          ++count;
        }
        // Pad metadata with valid ascending selector indices.
        while (count < cfg.n) {
          const std::size_t slot = (r * groups + g) * cfg.n + count;
          out.m_indices_[slot] = static_cast<std::uint8_t>(
              std::min(count, sel - 1));
          ++count;
        }
      }
    }
  }
  return out;
}

VnmMatrix VnmMatrix::from_parts(VnmConfig cfg, std::size_t rows,
                                std::size_t cols, std::vector<half_t> values,
                                std::vector<std::uint8_t> m_indices,
                                std::vector<std::uint8_t> column_loc) {
  VENOM_CHECK_MSG(cfg.v >= 1 && cfg.n >= 1 && cfg.m >= 2 && cfg.n <= cfg.m &&
                      cfg.n <= cfg.selected_cols(),
                  "invalid V:N:M config " << cfg.v << ':' << cfg.n << ':'
                                          << cfg.m);
  VENOM_CHECK_MSG(rows % cfg.v == 0 && cols % cfg.m == 0,
                  "shape " << rows << 'x' << cols
                           << " not divisible by V/M");
  const std::size_t groups = cols / cfg.m;
  const std::size_t sel = cfg.selected_cols();
  VENOM_CHECK_MSG(values.size() == rows * groups * cfg.n,
                  "values size " << values.size());
  VENOM_CHECK_MSG(m_indices.size() == values.size(),
                  "m_indices size " << m_indices.size());
  VENOM_CHECK_MSG(column_loc.size() == (rows / cfg.v) * groups * sel,
                  "column_loc size " << column_loc.size());
  for (const std::uint8_t idx : m_indices)
    VENOM_CHECK_MSG(idx < sel, "m-index " << int(idx) << " out of range");
  for (const std::uint8_t loc : column_loc)
    VENOM_CHECK_MSG(loc < cfg.m, "column-loc " << int(loc) << " out of range");

  VnmMatrix out;
  out.cfg_ = cfg;
  out.rows_ = rows;
  out.cols_ = cols;
  out.values_ = std::move(values);
  out.m_indices_ = std::move(m_indices);
  out.column_loc_ = std::move(column_loc);
  return out;
}

HalfMatrix VnmMatrix::to_dense() const {
  HalfMatrix dense(rows_, cols_);
  const std::size_t groups = groups_per_row();
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t g = 0; g < groups; ++g)
      for (std::size_t j = 0; j < cfg_.n; ++j) {
        const half_t v = value(r, g, j);
        if (v.is_zero()) continue;
        dense(r, dense_column(r, g, j)) = v;
      }
  return dense;
}

bool VnmMatrix::conforms(const HalfMatrix& dense, VnmConfig cfg) {
  if (cfg.v < 1 || cfg.n < 1 || cfg.m < 2 || cfg.n > cfg.m) return false;
  if (cfg.n > cfg.selected_cols()) return false;
  if (dense.rows() % cfg.v != 0 || dense.cols() % cfg.m != 0) return false;
  const std::size_t groups = dense.cols() / cfg.m;
  const std::size_t sel = cfg.selected_cols();
  for (std::size_t br = 0; br < dense.rows() / cfg.v; ++br) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::size_t occupied = 0;
      for (std::size_t dc = 0; dc < cfg.m; ++dc) {
        bool any = false;
        for (std::size_t dr = 0; dr < cfg.v && !any; ++dr)
          any = !dense(br * cfg.v + dr, g * cfg.m + dc).is_zero();
        if (any) ++occupied;
      }
      if (occupied > sel) return false;
      for (std::size_t dr = 0; dr < cfg.v; ++dr) {
        std::size_t count = 0;
        for (std::size_t dc = 0; dc < cfg.m; ++dc)
          if (!dense(br * cfg.v + dr, g * cfg.m + dc).is_zero()) ++count;
        if (count > cfg.n) return false;
      }
    }
  }
  return true;
}

HalfMatrix VnmMatrix::gathered_24_view() const {
  const std::size_t groups = groups_per_row();
  const std::size_t sel = cfg_.selected_cols();
  HalfMatrix view(rows_, groups * sel);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t g = 0; g < groups; ++g)
      for (std::size_t j = 0; j < cfg_.n; ++j) {
        const half_t v = value(r, g, j);
        if (v.is_zero()) continue;
        view(r, g * sel + m_index(r, g, j)) = v;
      }
  return view;
}

std::size_t VnmMatrix::compressed_bytes() const {
  // values fp16; m-indices 2 bits each; column-loc ceil(log2(m)) bits per
  // selected column.
  const std::size_t cloc_bits = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(cfg_.m))));
  return values_.size() * sizeof(half_t) + (m_indices_.size() * 2 + 7) / 8 +
         (column_loc_.size() * cloc_bits + 7) / 8;
}

}  // namespace venom
