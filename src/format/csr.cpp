#include "format/csr.hpp"

namespace venom {

CsrMatrix CsrMatrix::from_dense(const HalfMatrix& dense) {
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_offsets_.reserve(dense.rows() + 1);
  out.row_offsets_.push_back(0);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const half_t v = dense(r, c);
      if (v.is_zero()) continue;
      out.values_.push_back(v);
      out.col_indices_.push_back(static_cast<std::uint32_t>(c));
    }
    out.row_offsets_.push_back(
        static_cast<std::uint32_t>(out.values_.size()));
  }
  return out;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::uint32_t> row_offsets,
                                std::vector<std::uint32_t> col_indices,
                                std::vector<half_t> values) {
  VENOM_CHECK_MSG(row_offsets.size() == rows + 1,
                  "row_offsets size " << row_offsets.size());
  VENOM_CHECK_MSG(row_offsets.front() == 0, "row_offsets must start at 0");
  VENOM_CHECK_MSG(row_offsets.back() == values.size(),
                  "row_offsets end " << row_offsets.back()
                                     << " != nnz " << values.size());
  VENOM_CHECK_MSG(col_indices.size() == values.size(),
                  "col_indices size " << col_indices.size());
  for (std::size_t r = 0; r < rows; ++r) {
    VENOM_CHECK_MSG(row_offsets[r] <= row_offsets[r + 1],
                    "row_offsets not monotone at row " << r);
    // Monotonicity alone does not bound intermediate offsets: an offset
    // above nnz with a later decrease would pass the pairwise check of an
    // earlier row and overflow the column scan below.
    VENOM_CHECK_MSG(row_offsets[r + 1] <= values.size(),
                    "row_offsets exceed nnz at row " << r);
    for (std::uint32_t i = row_offsets[r]; i < row_offsets[r + 1]; ++i) {
      VENOM_CHECK_MSG(col_indices[i] < cols,
                      "column " << col_indices[i] << " out of " << cols);
      VENOM_CHECK_MSG(i == row_offsets[r] || col_indices[i - 1] < col_indices[i],
                      "columns not strictly sorted in row " << r);
    }
  }
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_offsets_ = std::move(row_offsets);
  out.col_indices_ = std::move(col_indices);
  out.values_ = std::move(values);
  return out;
}

HalfMatrix CsrMatrix::to_dense() const {
  HalfMatrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::uint32_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i)
      dense(r, col_indices_[i]) = values_[i];
  return dense;
}

}  // namespace venom
