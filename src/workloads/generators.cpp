#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace venom::workloads {

HalfMatrix uniform_sparse(std::size_t rows, std::size_t cols, double density,
                          Rng& rng, float sigma) {
  VENOM_CHECK_MSG(density >= 0.0 && density <= 1.0,
                  "density " << density << " out of [0,1]");
  HalfMatrix m(rows, cols);
  for (auto& v : m.flat())
    if (rng.uniform() < float(density)) v = half_t(sigma * rng.normal());
  return m;
}

HalfMatrix banded(std::size_t rows, std::size_t cols,
                  std::size_t half_bandwidth, Rng& rng, float sigma) {
  HalfMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double center = double(r) * double(cols) / double(rows);
    const std::size_t lo = static_cast<std::size_t>(
        std::max(0.0, center - double(half_bandwidth)));
    const std::size_t hi = std::min<std::size_t>(
        cols, static_cast<std::size_t>(center + double(half_bandwidth)) + 1);
    for (std::size_t c = lo; c < hi; ++c)
      m(r, c) = half_t(sigma * rng.normal());
  }
  return m;
}

HalfMatrix power_law_rows(std::size_t rows, std::size_t cols, double density,
                          double alpha, Rng& rng, float sigma) {
  VENOM_CHECK_MSG(density > 0.0 && density <= 1.0,
                  "density " << density << " out of (0,1]");
  VENOM_CHECK_MSG(alpha >= 0.0, "alpha must be non-negative");
  // Unnormalized row weights 1/(r+1)^alpha, scaled to the global budget.
  std::vector<double> weight(rows);
  for (std::size_t r = 0; r < rows; ++r)
    weight[r] = 1.0 / std::pow(double(r + 1), alpha);
  const double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
  const double budget = density * double(rows) * double(cols);

  HalfMatrix m(rows, cols);
  std::vector<std::size_t> perm(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto nnz = std::min<std::size_t>(
        cols, static_cast<std::size_t>(std::llround(budget * weight[r] / wsum)));
    // Partial Fisher-Yates picks nnz distinct columns.
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = 0; i < nnz; ++i) {
      const std::size_t j = i + rng.uniform_index(cols - i);
      std::swap(perm[i], perm[j]);
      m(r, perm[i]) = half_t(sigma * rng.normal());
    }
  }
  return m;
}

HalfMatrix block_structured(std::size_t rows, std::size_t cols,
                            std::size_t block, double density, Rng& rng,
                            float sigma) {
  VENOM_CHECK(rows % block == 0 && cols % block == 0);
  HalfMatrix m(rows, cols);
  for (std::size_t bi = 0; bi < rows / block; ++bi)
    for (std::size_t bj = 0; bj < cols / block; ++bj) {
      if (rng.uniform() >= float(density)) continue;
      for (std::size_t di = 0; di < block; ++di)
        for (std::size_t dj = 0; dj < block; ++dj)
          m(bi * block + di, bj * block + dj) = half_t(sigma * rng.normal());
    }
  return m;
}

double row_imbalance(const HalfMatrix& m) {
  if (m.rows() == 0) return 0.0;
  std::vector<double> nnz(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (!m(r, c).is_zero()) nnz[r] += 1.0;
  const double mean =
      std::accumulate(nnz.begin(), nnz.end(), 0.0) / double(m.rows());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (double v : nnz) var += (v - mean) * (v - mean);
  var /= double(m.rows());
  return std::sqrt(var) / mean;
}

RegressionTask regression_task(std::size_t out, std::size_t in,
                               std::size_t tokens, Rng& rng,
                               float input_sigma) {
  RegressionTask task;
  // Transformer-like teacher: N(0, 1/in) values on a ~35%-dense support
  // with ~10% outlier columns scaled 4x — the compressible, column-
  // skewed structure trained BERT weights exhibit (and what makes both
  // the V:N:M column selection and the fine-tune recovery meaningful: an
  // incompressible i.i.d. gaussian teacher has no structure a 75%-sparse
  // student could recover).
  const float sigma_w = 1.0f / std::sqrt(float(in));
  task.teacher = HalfMatrix(out, in);
  std::vector<bool> outlier(in);
  for (std::size_t c = 0; c < in; ++c) outlier[c] = rng.uniform() < 0.1f;
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) {
      const float v = sigma_w * rng.normal() * (outlier[c] ? 4.0f : 1.0f);
      task.teacher(r, c) = rng.uniform() < 0.35f ? half_t(v) : half_t(0.0f);
    }

  task.inputs = random_half_matrix(in, tokens, rng, input_sigma);

  // fp32 targets: the dense product of the fp16 teacher and inputs.
  task.targets = FloatMatrix(out, tokens);
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t t = 0; t < tokens; ++t) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < in; ++c)
        acc += task.teacher(r, c).to_float() * task.inputs(c, t).to_float();
      task.targets(r, t) = acc;
    }
  return task;
}

}  // namespace venom::workloads
