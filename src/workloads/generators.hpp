// Synthetic sparse-workload generators.
//
// The libraries the paper compares against were designed around the Deep
// Learning Matrix Collection (DLMC) [Gale et al.], whose matrices differ
// from scientific-computing sparsity in density, nonzeros-per-row, and
// balance. These generators synthesize the relevant structures so the
// robustness bench and property tests can probe kernels across the space:
//
//   dense_transformer  outlier-column dense weights (prune before use)
//   uniform_sparse     i.i.d. Bernoulli nonzeros (DLMC-like unstructured)
//   banded             diagonal band (scientific stencil structure)
//   power_law_rows     skewed nonzeros-per-row (the load-imbalance case
//                      the paper says hurts CUDA-core kernels)
//   block_structured   dense v x v blocks on a sparse grid
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace venom::workloads {

/// i.i.d. Bernoulli(density) mask over N(0, sigma^2) values.
HalfMatrix uniform_sparse(std::size_t rows, std::size_t cols, double density,
                          Rng& rng, float sigma = 0.1f);

/// Nonzeros confined to |col - row * cols/rows| <= half_bandwidth.
HalfMatrix banded(std::size_t rows, std::size_t cols,
                  std::size_t half_bandwidth, Rng& rng, float sigma = 0.1f);

/// Row r receives nnz proportional to 1 / (r+1)^alpha, scaled so the
/// whole matrix hits `density`; positions uniform per row. alpha = 0 is
/// balanced, alpha ~ 1 strongly imbalanced.
HalfMatrix power_law_rows(std::size_t rows, std::size_t cols, double density,
                          double alpha, Rng& rng, float sigma = 0.1f);

/// Dense `block` x `block` tiles kept with probability `density`.
HalfMatrix block_structured(std::size_t rows, std::size_t cols,
                            std::size_t block, double density, Rng& rng,
                            float sigma = 0.1f);

/// Coefficient of variation of nonzeros-per-row (0 = perfectly balanced).
/// The paper's §3 lists load imbalance as a defining property of DL
/// sparsity; this is the measurement the robustness bench reports.
double row_imbalance(const HalfMatrix& m);

/// Synthetic linear-regression episode for the fine-tuning loop (§9a):
/// a fixed transformer-like teacher weight (gaussian with scaled outlier
/// columns — the structure the pruning policies are designed around),
/// gaussian input activations, and fp32 targets t = W x. The student
/// fits the teacher under a V:N:M constraint; the full batch is fixed,
/// so losses and gradients are deterministic functions of the rng state.
struct RegressionTask {
  HalfMatrix teacher;   ///< out x in
  HalfMatrix inputs;    ///< in x tokens
  FloatMatrix targets;  ///< out x tokens (fp32 teacher outputs)
};

RegressionTask regression_task(std::size_t out, std::size_t in,
                               std::size_t tokens, Rng& rng,
                               float input_sigma = 0.5f);

}  // namespace venom::workloads
