// Reusable scratch memory for steady-state hot paths.
//
// Serving the same model shape over and over makes every per-call
// allocation pure overhead: the buffers requested by batch N are exactly
// the buffers batch N+1 will request again. Two primitives cover the
// repo's reuse patterns:
//
//   ScratchArena   a bump allocator over retained blocks. alloc<T>(n)
//                  hands out aligned uninitialized storage; reset() makes
//                  all of it reusable without releasing the pages. After
//                  the first batch warms the arena, reset()+alloc cycles
//                  perform zero heap allocation (the high-water block is
//                  kept; an undersized arena grows by chaining blocks and
//                  coalesces them on the next reset).
//
//   ObjectPool<T>  a thread-safe freelist of default-constructed objects
//                  whose internal buffers retain capacity across uses
//                  (e.g. the packed float B panels of SpmmScratch).
//                  acquire() reuses a warm object or creates one;
//                  release() returns it. Handout is LIFO so the most
//                  recently used — cache-warm — object is reused first.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace venom {

/// Bump allocator over retained blocks (not thread-safe: one arena per
/// worker thread is the intended usage).
class ScratchArena {
 public:
  ScratchArena() = default;
  /// Pre-reserves `initial_bytes` so the first cycle is allocation-free.
  explicit ScratchArena(std::size_t initial_bytes) {
    if (initial_bytes > 0) blocks_.push_back(Block::make(initial_bytes));
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Uninitialized storage for `count` objects of T, aligned to alignof(T).
  /// Pointers stay valid until the next reset() (growth chains a new block
  /// instead of moving existing ones).
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructor calls");
    // Blocks come from plain operator new[], whose guarantee stops at
    // max_align_t — intra-block alignment cannot promise more than the
    // block base has.
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported by the arena");
    const std::size_t bytes = count * sizeof(T);
    return static_cast<T*>(raw_alloc(bytes, alignof(T)));
  }

  /// Reclaims every allocation at once. Retains the high-water footprint:
  /// if the cycle spilled into extra blocks, they are coalesced into one
  /// block sized for the whole cycle, so the next cycle bumps through a
  /// single resident block.
  void reset() {
    if (blocks_.size() > 1) {
      const std::size_t total = high_water_;
      blocks_.clear();
      blocks_.push_back(Block::make(total));
    } else if (!blocks_.empty()) {
      blocks_.front().used = 0;
    }
    cycle_bytes_ = 0;
  }

  /// Bytes consumed since the last reset: payload plus worst-case
  /// alignment headroom per allocation, so a single block of high_water()
  /// bytes can always replay the cycle regardless of where padding lands.
  std::size_t bytes_used() const { return cycle_bytes_; }
  /// Largest bytes_used() seen over the arena's lifetime.
  std::size_t high_water() const { return high_water_; }
  /// Bytes of backing storage currently resident.
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;

    static Block make(std::size_t bytes) {
      Block b;
      b.size = std::max<std::size_t>(bytes, 64);
      b.data = std::make_unique<std::byte[]>(b.size);
      return b;
    }
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    VENOM_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                    "alignment " << align << " is not a power of two");
    if (blocks_.empty()) blocks_.push_back(Block::make(bytes + align));
    Block* blk = &blocks_.back();
    std::size_t offset = (blk->used + align - 1) & ~(align - 1);
    if (offset + bytes > blk->size) {
      // Chain a block big enough for this request and sized to grow
      // geometrically, so repeated spills settle quickly.
      blocks_.push_back(Block::make(std::max(bytes + align, blk->size * 2)));
      blk = &blocks_.back();
      offset = 0;
    }
    blk->used = offset + bytes;
    // Count worst-case padding, not the padding this layout happened to
    // need: reset() sizes the coalesced block from high_water_, and the
    // replayed cycle may align differently against a fresh block base.
    cycle_bytes_ += bytes + (align - 1);
    high_water_ = std::max(high_water_, cycle_bytes_);
    return blk->data.get() + offset;
  }

  std::vector<Block> blocks_;
  std::size_t cycle_bytes_ = 0;
  std::size_t high_water_ = 0;
};

/// Thread-safe LIFO freelist of reusable T objects.
template <typename T>
class ObjectPool {
 public:
  /// An acquired object that returns itself to the pool on destruction.
  class Lease {
   public:
    Lease(ObjectPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (obj_ != nullptr) pool_->release(std::move(obj_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), obj_(std::move(other.obj_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        // Return the currently held object before taking over the other
        // lease's — a defaulted move-assign would destroy it instead,
        // silently shrinking the pool.
        if (obj_ != nullptr) pool_->release(std::move(obj_));
        pool_ = other.pool_;
        obj_ = std::move(other.obj_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() { return *obj_; }
    T* operator->() { return obj_.get(); }

   private:
    ObjectPool* pool_;
    std::unique_ptr<T> obj_;
  };

  /// A warm object off the freelist, or a fresh one when empty.
  Lease acquire() VENOM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
      ++created_;
    }
    return Lease(this, std::make_unique<T>());
  }

  /// Objects constructed over the pool's lifetime (== peak concurrent
  /// users; steady-state serving should see this settle, not grow).
  std::size_t created() const VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return created_;
  }
  std::size_t idle() const VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<T> obj) VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    free_.push_back(std::move(obj));
  }

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<T>> free_ VENOM_GUARDED_BY(mutex_);
  std::size_t created_ VENOM_GUARDED_BY(mutex_) = 0;
};

}  // namespace venom
