// Error handling utilities for the VENOM library.
//
// All precondition violations throw venom::Error with a message that
// includes the failing expression and source location. Library code never
// calls std::abort or exits; callers decide how to handle failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace venom {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "VENOM check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace venom

/// Check a precondition; throws venom::Error with context on failure.
#define VENOM_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::venom::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (0)

/// Check a precondition with an explanatory message (streamed).
#define VENOM_CHECK_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream venom_check_os_;                                    \
      venom_check_os_ << msg;                                                \
      ::venom::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                           venom_check_os_.str());           \
    }                                                                        \
  } while (0)

/// Debug-only internal-invariant check. In Debug builds this is exactly
/// VENOM_CHECK (throws venom::Error — uniform throw-on-violation
/// semantics, never abort like a bare assert); in NDEBUG builds the
/// expression is parsed but not evaluated, so hot-path invariants cost
/// nothing in Release. Use VENOM_CHECK for caller-facing preconditions
/// that must hold in every build, VENOM_DCHECK for invariants internal
/// to a component that are only cheap to state, not to prove in
/// production.
#ifndef NDEBUG
#define VENOM_DCHECK(expr) VENOM_CHECK(expr)
#else
#define VENOM_DCHECK(expr) \
  static_cast<void>(sizeof(static_cast<bool>(expr) ? 1 : 0))
#endif
