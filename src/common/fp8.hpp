// Software fp8 (E5M2 / E4M3) storage formats.
//
// The quantized datapath stores V:N:M value panels in 8-bit floating
// point, the formats tensor cores accept on Hopper-class hardware. Two
// layouts are supported, mirroring the OCP 8-bit floating point spec:
//
//   E5M2  5 exponent bits (bias 15), 2 mantissa bits. IEEE-like: has
//         infinities (0x7c) and NaNs; largest finite value 57344.
//   E4M3  4 exponent bits (bias 7), 3 mantissa bits. The "FN" variant:
//         no infinities, a single NaN code per sign (S.1111.111);
//         largest finite value 448. Conversion saturates on overflow.
//
// Like common/half.hpp, these are storage-only semantics: kernels decode
// to float (exact — every fp8 value is representable as float), compute
// in fp32/int32, and only weights are ever encoded. Encoding rounds to
// nearest-even; the bulk decoder is a 256-entry table lookup so the SpMM
// gather path pays one indexed load per value, no bit twiddling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace venom {

/// The two 8-bit floating point layouts.
enum class Fp8Format : std::uint8_t { kE5M2, kE4M3 };

const char* to_string(Fp8Format fmt);

/// Exact fp8 -> float decode of one code. E5M2 0x7c/0xfc map to +-inf
/// and its NaN codes to a quiet NaN; E4M3 S.1111.111 maps to NaN.
float fp8_to_float(std::uint8_t bits, Fp8Format fmt);

/// float -> fp8 with round-to-nearest-even. E5M2 overflows to infinity
/// (|f| >= 61440, the RNE cutover past the largest finite 57344); E4M3
/// saturates to +-448 (including infinite inputs — the saturating OCP
/// conversion). NaN encodes to the canonical NaN of the format with the
/// sign preserved; values below half the smallest subnormal flush to
/// (signed) zero.
std::uint8_t float_to_fp8(float f, Fp8Format fmt);

/// Bulk decode: dst[i] = fp8_to_float(src[i], fmt), via the 256-entry
/// table. `src` and `dst` must not overlap.
void fp8_to_float_n(const std::uint8_t* src, float* dst, std::size_t n,
                    Fp8Format fmt);

/// Bulk encode: dst[i] = float_to_fp8(src[i], fmt). Weight-quantization
/// path only (decoding is the hot direction). `src`/`dst` must not
/// overlap.
void float_to_fp8_n(const float* src, std::uint8_t* dst, std::size_t n,
                    Fp8Format fmt);

}  // namespace venom
