#include "common/half.hpp"

#include <bit>
#include <cstring>
#include <ostream>

// The bulk converters use F16C (VCVTPH2PS / VCVTPS2PH) when the compiler
// targets it; define VENOM_NO_F16C to force the portable path even then.
#if defined(__F16C__) && !defined(VENOM_NO_F16C)
#define VENOM_USE_F16C 1
#include <immintrin.h>
#endif

namespace venom {

namespace {

std::uint32_t as_u32(float f) { return std::bit_cast<std::uint32_t>(f); }
float as_f32(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

std::uint16_t half_t::float_to_bits(float f) {
  const std::uint32_t x = as_u32(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness with a quiet NaN payload bit.
    if (abs > 0x7f800000u) return static_cast<std::uint16_t>(sign | 0x7e00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a value >= 65520 -> overflows to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero): result = round(value / 2^-24).
    // abs <= 2^-25 (0x33000000) rounds to zero (the tie goes to even 0).
    if (abs <= 0x33000000u) return static_cast<std::uint16_t>(sign);
    const int exp = static_cast<int>(abs >> 23);        // in [102, 112]
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const int drop = 126 - exp;                         // in [14, 24]
    const std::uint32_t kept = drop >= 24 ? 0u : mant >> drop;
    const std::uint32_t rem = mant & ((1u << drop) - 1u);
    const std::uint32_t half_ulp = 1u << (drop - 1);
    std::uint32_t result = kept;
    if (rem > half_ulp || (rem == half_ulp && (kept & 1u))) ++result;
    // Rounding may carry into the smallest normal (0x0400) — still correct.
    return static_cast<std::uint16_t>(sign | result);
  }
  // Normal half. Re-bias the exponent and round the mantissa.
  const std::uint32_t rebased = abs - 0x38000000u;  // bias 127 -> 15
  const std::uint32_t kept = rebased >> 13;
  const std::uint32_t rem = rebased & 0x1fffu;
  std::uint32_t result = kept;
  if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u))) ++result;
  return static_cast<std::uint16_t>(sign | result);
}

float half_t::bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  if (exp == 0) {
    if (mant == 0) return as_f32(sign);  // ±0
    // Subnormal: value = mant * 2^-24. Normalize into a float.
    const float scale = as_f32(0x33800000u);  // 2^-24
    const float v = static_cast<float>(mant) * scale;
    return as_f32(sign | as_u32(v));
  }
  if (exp == 0x1f) {
    if (mant == 0) return as_f32(sign | 0x7f800000u);        // ±inf
    return as_f32(sign | 0x7fc00000u | (mant << 13));        // NaN
  }
  // Normal: re-bias exponent 15 -> 127.
  return as_f32(sign | ((exp + 112) << 23) | (mant << 13));
}

void half_to_float_n(const half_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
#ifdef VENOM_USE_F16C
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  // Scalar tail (and full portable path): select-based so the loop can
  // if-convert. Normals rescale exactly via 2^112 with no denormal float
  // intermediate; zeros/subnormals go through an exact integer * 2^-24
  // product (immune to DAZ/FTZ, unlike an em<<13 denormal intermediate).
  for (; i < n; ++i) {
    const std::uint32_t h = src[i].bits();
    const std::uint32_t sign = (h & 0x8000u) << 16;
    const std::uint32_t em = h & 0x7fffu;
    std::uint32_t bits;
    if (em >= 0x7c00u)
      bits = (em & 0x3ffu) == 0
                 ? 0x7f800000u
                 : 0x7fc00000u | ((em & 0x3ffu) << 13);
    else if (em < 0x0400u)
      bits = as_u32(static_cast<float>(em) * 0x1p-24f);
    else
      bits = as_u32(as_f32(em << 13) * 0x1p112f);
    dst[i] = as_f32(sign | bits);
  }
}

void float_to_half_n(const float* src, half_t* dst, std::size_t n) {
  std::size_t i = 0;
#ifdef VENOM_USE_F16C
  // VCVTPS2PH with round-to-nearest-even matches float_to_bits on every
  // finite and infinite input (including halfway cases and subnormal
  // outputs); NaN payloads are hardware-defined but stay quiet NaNs.
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(
        _mm256_loadu_ps(src + i), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) dst[i] = half_t(src[i]);
}

std::ostream& operator<<(std::ostream& os, half_t h) {
  return os << h.to_float();
}

}  // namespace venom
