#include "common/half.hpp"

#include <bit>
#include <cstring>
#include <ostream>

namespace venom {

namespace {

std::uint32_t as_u32(float f) { return std::bit_cast<std::uint32_t>(f); }
float as_f32(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

std::uint16_t half_t::float_to_bits(float f) {
  const std::uint32_t x = as_u32(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness with a quiet NaN payload bit.
    if (abs > 0x7f800000u) return static_cast<std::uint16_t>(sign | 0x7e00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a value >= 65520 -> overflows to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero): result = round(value / 2^-24).
    // abs <= 2^-25 (0x33000000) rounds to zero (the tie goes to even 0).
    if (abs <= 0x33000000u) return static_cast<std::uint16_t>(sign);
    const int exp = static_cast<int>(abs >> 23);        // in [102, 112]
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const int drop = 126 - exp;                         // in [14, 24]
    const std::uint32_t kept = drop >= 24 ? 0u : mant >> drop;
    const std::uint32_t rem = mant & ((1u << drop) - 1u);
    const std::uint32_t half_ulp = 1u << (drop - 1);
    std::uint32_t result = kept;
    if (rem > half_ulp || (rem == half_ulp && (kept & 1u))) ++result;
    // Rounding may carry into the smallest normal (0x0400) — still correct.
    return static_cast<std::uint16_t>(sign | result);
  }
  // Normal half. Re-bias the exponent and round the mantissa.
  const std::uint32_t rebased = abs - 0x38000000u;  // bias 127 -> 15
  const std::uint32_t kept = rebased >> 13;
  const std::uint32_t rem = rebased & 0x1fffu;
  std::uint32_t result = kept;
  if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u))) ++result;
  return static_cast<std::uint16_t>(sign | result);
}

float half_t::bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  if (exp == 0) {
    if (mant == 0) return as_f32(sign);  // ±0
    // Subnormal: value = mant * 2^-24. Normalize into a float.
    const float scale = as_f32(0x33800000u);  // 2^-24
    const float v = static_cast<float>(mant) * scale;
    return as_f32(sign | as_u32(v));
  }
  if (exp == 0x1f) {
    if (mant == 0) return as_f32(sign | 0x7f800000u);        // ±inf
    return as_f32(sign | 0x7fc00000u | (mant << 13));        // NaN
  }
  // Normal: re-bias exponent 15 -> 127.
  return as_f32(sign | ((exp + 112) << 23) | (mant << 13));
}

std::ostream& operator<<(std::ostream& os, half_t h) {
  return os << h.to_float();
}

}  // namespace venom
