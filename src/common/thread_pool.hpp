// Work-sharing thread pool used by the CPU kernels.
//
// Spatha's CUDA kernels assign one output tile per thread block; the CPU
// port assigns one output tile per pool iteration. Dispatch is chunked:
// a parallel_for publishes one job with an atomic work counter, a handful
// of runner tasks (at most one per worker) claim contiguous index chunks
// from that counter, and the calling thread participates in the draining.
// Kernels that need scratch (gather panels, accumulator tiles) use
// parallel_for_chunks and allocate the scratch once per claimed chunk
// instead of once per iteration.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace venom {

/// Fixed-size thread pool with blocking parallel loops.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations are claimed in contiguous chunks off an atomic counter;
  /// the first exception thrown by fn is rethrown on the caller thread
  /// after all chunks drain.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: runs fn(begin, end) over a partition of [0, n) into
  /// contiguous ranges of at most `grain` indices (grain 0 picks a size
  /// that yields a few chunks per worker). fn is invoked once per chunk,
  /// so per-chunk scratch buffers amortize across all iterations of the
  /// chunk. Exceptions propagate as with parallel_for.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Job;

  void worker_loop() VENOM_EXCLUDES(mutex_);
  static void run_job(Job& job);

  // Immutable after construction (joined in the destructor); size() may
  // read it concurrently without the lock.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ VENOM_GUARDED_BY(mutex_);
  bool stop_ VENOM_GUARDED_BY(mutex_) = false;
};

}  // namespace venom
