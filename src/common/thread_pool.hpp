// Work-sharing thread pool used by the CPU kernels.
//
// Spatha's CUDA kernels assign one output tile per thread block; the CPU
// port assigns one output tile per pool task. The pool is a plain
// condition-variable queue — tile granularity is coarse enough (thousands
// of fused multiply-adds per tile) that queue overhead is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace venom {

/// Fixed-size thread pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations are distributed in contiguous chunks; exceptions from fn
  /// are captured and the first one is rethrown on the caller thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace venom
