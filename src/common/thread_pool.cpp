#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace venom {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  if (n == 1 || workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Contiguous chunking: chunk c covers [c*chunk, min(n, (c+1)*chunk)).
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      tasks_.emplace([&, c] {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> dlock(done_mutex);
  done_cv.wait(dlock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace venom
