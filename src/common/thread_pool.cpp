#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace venom {

/// Shared state of one parallel loop: an atomic cursor over the chunk
/// grid plus completion tracking. Runner tasks and the calling thread all
/// drain chunks from `next`; the last finished chunk wakes the caller.
struct ThreadPool::Job {
  std::function<void(std::size_t, std::size_t)> body;  // [begin, end)
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t total_chunks = 0;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  Mutex error_mutex;
  std::exception_ptr first_error VENOM_GUARDED_BY(error_mutex);

  Mutex done_mutex;
  CondVar done_cv;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.total_chunks) return;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      job.body(begin, end);
    } catch (...) {
      MutexLock lock(job.error_mutex);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.total_chunks) {
      MutexLock lock(job.done_mutex);
      job.done_cv.notify_one();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  if (grain == 0) {
    // A few chunks per worker balances load without shredding locality.
    grain = std::max<std::size_t>(1, n / (std::max<std::size_t>(1, workers) * 4));
  }
  if (workers <= 1 || n <= grain) {
    fn(0, n);  // serial: exceptions propagate directly
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = fn;
  job->n = n;
  job->chunk = grain;
  job->total_chunks = (n + grain - 1) / grain;

  // One runner per worker at most; each runner loops claiming chunks off
  // the atomic cursor, so queue traffic is O(workers), not O(chunks).
  const std::size_t runners = std::min(workers, job->total_chunks);
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < runners; ++i)
      tasks_.emplace([job] { run_job(*job); });
  }
  cv_.notify_all();

  // The caller drains chunks too (it would otherwise idle), then waits
  // for stragglers claimed by workers.
  run_job(*job);
  {
    MutexLock lock(job->done_mutex);
    while (job->done.load(std::memory_order_acquire) != job->total_chunks)
      job->done_cv.wait(lock);
  }
  // Read under the lock: the draining loop above only proves every chunk
  // *finished*; the error slot itself is error_mutex state.
  std::exception_ptr err;
  {
    MutexLock lock(job->error_mutex);
    err = job->first_error;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parallel_for_chunks(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      0);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace venom
