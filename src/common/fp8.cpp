#include "common/fp8.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace venom {

namespace {

// Field widths / biases of the two layouts. E5M2 is IEEE-like (inf at
// exponent-all-ones, mantissa 0); E4M3-FN spends that code space on
// finite values and keeps a single NaN per sign (S.1111.111).
struct Layout {
  int mant_bits;
  int bias;
  std::uint8_t max_finite;  // largest positive finite code
  std::uint8_t nan_code;    // canonical positive NaN
};

constexpr Layout kE5M2{2, 15, 0x7b, 0x7e};
constexpr Layout kE4M3{3, 7, 0x7e, 0x7f};

constexpr const Layout& layout(Fp8Format fmt) {
  return fmt == Fp8Format::kE5M2 ? kE5M2 : kE4M3;
}

float decode_one(std::uint8_t bits, Fp8Format fmt) {
  const Layout& l = layout(fmt);
  const int sign = (bits & 0x80u) != 0 ? -1 : 1;
  const int exp_mask = (1 << (7 - l.mant_bits)) - 1;
  const int e = (bits >> l.mant_bits) & exp_mask;
  const int m = bits & ((1 << l.mant_bits) - 1);
  if (fmt == Fp8Format::kE5M2 && e == exp_mask) {
    if (m == 0) return float(sign) * std::numeric_limits<float>::infinity();
    return std::numeric_limits<float>::quiet_NaN();
  }
  if (fmt == Fp8Format::kE4M3 && e == exp_mask &&
      m == (1 << l.mant_bits) - 1)
    return std::numeric_limits<float>::quiet_NaN();
  // value = (implicit + m) * 2^(e - bias - mant_bits), implicit = 0 for
  // subnormals (e == 0, effective exponent 1 - bias).
  const int significand = e == 0 ? m : (1 << l.mant_bits) + m;
  const int exponent = (e == 0 ? 1 : e) - l.bias - l.mant_bits;
  return float(sign) * std::ldexp(float(significand), exponent);
}

std::array<float, 256> make_table(Fp8Format fmt) {
  std::array<float, 256> t{};
  for (int i = 0; i < 256; ++i)
    t[std::size_t(i)] = decode_one(std::uint8_t(i), fmt);
  return t;
}

const std::array<float, 256>& decode_table(Fp8Format fmt) {
  static const std::array<float, 256> e5m2 = make_table(Fp8Format::kE5M2);
  static const std::array<float, 256> e4m3 = make_table(Fp8Format::kE4M3);
  return fmt == Fp8Format::kE5M2 ? e5m2 : e4m3;
}

}  // namespace

const char* to_string(Fp8Format fmt) {
  switch (fmt) {
    case Fp8Format::kE5M2: return "e5m2";
    case Fp8Format::kE4M3: return "e4m3";
  }
  return "?";
}

float fp8_to_float(std::uint8_t bits, Fp8Format fmt) {
  return decode_table(fmt)[bits];
}

std::uint8_t float_to_fp8(float f, Fp8Format fmt) {
  const Layout& l = layout(fmt);
  const std::uint8_t sign = std::signbit(f) ? 0x80u : 0x00u;
  if (std::isnan(f)) return std::uint8_t(l.nan_code | sign);
  const float a = std::fabs(f);
  if (fmt == Fp8Format::kE5M2) {
    // RNE cutover to infinity: past max finite (57344) plus half the ulp
    // the next exponent step would have (the would-be 65536 has an even
    // mantissa, so the exact midpoint 61440 also rounds up).
    if (a >= 61440.0f) return std::uint8_t(0x7cu | sign);
  } else {
    // Saturating conversion (no infinities in E4M3-FN).
    if (a > 448.0f) return std::uint8_t(l.max_finite | sign);
  }
  const std::array<float, 256>& table = decode_table(fmt);
  // Positive codes are monotone in value; find the bracketing pair and
  // round to nearest with ties to the even mantissa (= even code: the
  // mantissa LSB is the code LSB across exponent rollovers too).
  const float* begin = table.data();
  const float* end = begin + l.max_finite + 1;
  const float* it = std::upper_bound(begin, end, a);
  std::uint8_t code = std::uint8_t((it - begin) - 1);  // table[code] <= a
  if (code < l.max_finite) {
    const double mid =
        (double(table[code]) + double(table[code + 1u])) / 2.0;
    if (double(a) > mid || (double(a) == mid && (code & 1u) != 0))
      ++code;
  }
  return std::uint8_t(code | sign);
}

void fp8_to_float_n(const std::uint8_t* src, float* dst, std::size_t n,
                    Fp8Format fmt) {
  const std::array<float, 256>& table = decode_table(fmt);
  for (std::size_t i = 0; i < n; ++i) dst[i] = table[src[i]];
}

void float_to_fp8_n(const float* src, std::uint8_t* dst, std::size_t n,
                    Fp8Format fmt) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_fp8(src[i], fmt);
}

}  // namespace venom
