// Compile-time CPU feature fingerprint.
//
// The empirical tuning cache keys measured kernel configurations by the
// instruction-set features the binary was compiled for: a config tuned
// with the F16C bulk converters and AVX2 auto-vectorization is not
// transferable to a portable build (and vice versa), so the fingerprint
// is part of the cache key and entries from a different build silently
// fall back to the heuristic.
#pragma once

#include <string>

namespace venom {

/// Dash-separated feature tags of this build, most specific first, e.g.
/// "avx512f-avx2-f16c" on a -march=native build of a modern x86 host or
/// "portable" when none of the recognized extensions are targeted.
/// Stable across runs of the same binary; NOT a runtime CPUID probe.
/// Built once (the string is consulted on every tuned dispatch lookup).
inline const std::string& cpu_feature_string() {
  static const std::string features = [] {
    std::string s;
    // [[maybe_unused]]: a portable build compiles none of the #if arms.
    [[maybe_unused]] const auto add = [&s](const char* tag) {
      if (!s.empty()) s += '-';
      s += tag;
    };
#if defined(__AVX512F__)
    add("avx512f");
#endif
#if defined(__AVX2__)
    add("avx2");
#endif
#if defined(__F16C__) && !defined(VENOM_NO_F16C)
    add("f16c");
#endif
#if defined(__ARM_NEON)
    add("neon");
#endif
    if (s.empty()) s = "portable";
    return s;
  }();
  return features;
}

}  // namespace venom
