// Annotated mutex primitives — the only lock vocabulary in the repo.
//
// venom::Mutex / MutexLock / CondVar wrap their std counterparts 1:1
// (zero runtime cost; MutexLock is a std::unique_lock underneath) and
// carry the Clang Thread Safety annotations from common/annotations.hpp,
// so every class that declares
//
//   Mutex mutex_;
//   std::deque<T> items_ VENOM_GUARDED_BY(mutex_);
//
// gets its lock contract machine-checked on every clang build: touching
// items_ without a MutexLock on mutex_ is a -Wthread-safety error, as is
// calling a VENOM_REQUIRES(mutex_) helper without the lock.
//
// Condition-variable waits use explicit predicate loops,
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// not the std::condition_variable wait(lock, predicate) overload: the
// analysis checks lambda bodies as separate functions, so a predicate
// lambda reading guarded fields cannot be proven to hold the lock it in
// fact holds. The explicit loop reads the fields in the annotated scope
// and needs no escape hatch. (CondVar::wait releases and reacquires the
// mutex internally; the analysis models the capability as held across
// the call, which matches both the precondition and the postcondition.)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.hpp"

namespace venom {

class CondVar;

/// std::mutex with a capability annotation. Prefer MutexLock over
/// manual lock()/unlock() pairs — the scoped form is what the analysis
/// reasons about best (and what exception safety wants anyway).
class VENOM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VENOM_ACQUIRE() { mu_.lock(); }
  void unlock() VENOM_RELEASE() { mu_.unlock(); }
  bool try_lock() VENOM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a venom::Mutex (a scoped capability: the analysis
/// treats construction as acquire and scope exit as release). CondVar
/// waits take a MutexLock&, mirroring std::unique_lock.
class VENOM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VENOM_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() VENOM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::shared_mutex with a capability annotation, for read-mostly state
/// (e.g. the matmul backend registry: every dispatch reads, add() is
/// rare). Use ReaderMutexLock / WriterMutexLock, never manual pairs.
class VENOM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() VENOM_ACQUIRE() { mu_.lock(); }
  void unlock() VENOM_RELEASE() { mu_.unlock(); }
  void lock_shared() VENOM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() VENOM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

/// RAII shared (reader) lock: guarded fields are readable but not
/// writable in its scope.
class VENOM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) VENOM_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  // Generic release: the scope holds a shared capability, and clang
  // matches a destructor's release against whatever mode was acquired.
  ~ReaderMutexLock() VENOM_RELEASE_GENERIC() = default;

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class VENOM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) VENOM_ACQUIRE(mu)
      : lock_(mu.mu_) {}
  ~WriterMutexLock() VENOM_RELEASE() = default;

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Condition variable bound to MutexLock. Wait calls release the locked
/// mutex while blocked and reacquire it before returning, exactly like
/// std::condition_variable::wait(std::unique_lock&).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in
  /// a predicate loop).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `deadline`; std::cv_status::timeout when
  /// the deadline passed (re-check the predicate either way).
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace venom
