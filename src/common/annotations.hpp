// Clang Thread Safety Analysis annotations.
//
// These macros attach lock contracts to types, fields, and functions so
// clang's -Wthread-safety analysis can prove, at compile time and for
// every schedule, that guarded state is only touched with the right
// mutex held. The repo's concurrency layer (venom::Mutex / MutexLock /
// CondVar in common/mutex.hpp and every class that owns one) is fully
// annotated, and CI builds src/ with
//
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror
//
// so a "caller holds mutex_" contract that used to live in a comment is
// now a build break when violated. On GCC (and any compiler without the
// attributes) every macro expands to nothing — the annotations are
// zero-cost documentation there and zero-cost at runtime everywhere.
//
// Vocabulary (mirrors the Clang TSA docs):
//   VENOM_CAPABILITY(name)   this type is a lockable resource
//   VENOM_SCOPED_CAPABILITY  RAII type that acquires in its constructor
//                            and releases in its destructor
//   VENOM_GUARDED_BY(mu)     field may only be touched holding mu
//   VENOM_PT_GUARDED_BY(mu)  pointee may only be touched holding mu
//   VENOM_REQUIRES(mu...)    function may only be called holding mu
//   VENOM_REQUIRES_SHARED(mu...)
//                            ... holding at least a reader lock on mu
//   VENOM_ACQUIRE(mu...)     function acquires mu and does not release
//   VENOM_ACQUIRE_SHARED / VENOM_RELEASE_SHARED
//                            reader-lock variants (SharedMutex)
//   VENOM_RELEASE(mu...)     function releases mu
//   VENOM_TRY_ACQUIRE(b,mu)  acquires mu iff the function returns b
//   VENOM_EXCLUDES(mu...)    caller must NOT hold mu (the anti-deadlock
//                            contract: the function acquires it itself)
//   VENOM_ACQUIRED_BEFORE / VENOM_ACQUIRED_AFTER
//                            global lock-ordering declarations
//   VENOM_RETURN_CAPABILITY(mu)
//                            function returns a reference to mu (lets
//                            other classes name a private mutex in
//                            their own EXCLUDES contracts)
//   VENOM_NO_THREAD_SAFETY_ANALYSIS
//                            escape hatch; forbidden in src/serving/
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VENOM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VENOM_THREAD_ANNOTATION
#define VENOM_THREAD_ANNOTATION(x)  // not clang: expands to nothing
#endif

#define VENOM_CAPABILITY(x) VENOM_THREAD_ANNOTATION(capability(x))
#define VENOM_SCOPED_CAPABILITY VENOM_THREAD_ANNOTATION(scoped_lockable)

#define VENOM_GUARDED_BY(x) VENOM_THREAD_ANNOTATION(guarded_by(x))
#define VENOM_PT_GUARDED_BY(x) VENOM_THREAD_ANNOTATION(pt_guarded_by(x))

#define VENOM_REQUIRES(...) \
  VENOM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VENOM_REQUIRES_SHARED(...) \
  VENOM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define VENOM_ACQUIRE(...) \
  VENOM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VENOM_ACQUIRE_SHARED(...) \
  VENOM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VENOM_RELEASE(...) \
  VENOM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VENOM_RELEASE_SHARED(...) \
  VENOM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define VENOM_RELEASE_GENERIC(...) \
  VENOM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define VENOM_TRY_ACQUIRE(...) \
  VENOM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VENOM_EXCLUDES(...) VENOM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define VENOM_ACQUIRED_BEFORE(...) \
  VENOM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VENOM_ACQUIRED_AFTER(...) \
  VENOM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define VENOM_RETURN_CAPABILITY(x) VENOM_THREAD_ANNOTATION(lock_returned(x))

#define VENOM_NO_THREAD_SAFETY_ANALYSIS \
  VENOM_THREAD_ANNOTATION(no_thread_safety_analysis)
