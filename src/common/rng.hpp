// Deterministic random number generation for workload synthesis.
//
// All experiments in this repo are seeded so that every table and figure
// regenerates identically run-to-run. The generator is xoshiro256**, which
// is fast, high-quality, and trivially splittable for parallel fills.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "common/fnv.hpp"

namespace venom {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Deterministic generator derived from a human-readable label (and an
  /// optional stream index): FNV-1a over the label, mixed with the
  /// index. The shared place magic seed integers used to be scattered —
  /// surfaces say what a stream is for (`Rng::seeded("serving-trace",
  /// i)`) and reproduce bit-identically everywhere the label matches.
  static Rng seeded(std::string_view label, std::uint64_t index = 0) {
    Fnv1a f;
    f.bytes(label.data(), label.size());
    return Rng(f.h ^ 0x9e3779b97f4a7c15ull * (index + 1));
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  float uniform() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (one value per call; cached pair).
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    // Avoid log(0) by offsetting u1 away from zero.
    float u1 = uniform();
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float u2 = uniform();
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free variant (bias < 2^-64 * n,
    // negligible for the workload sizes used here).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Returns a generator with a decorrelated stream for parallel fills.
  Rng split(std::uint64_t stream) const {
    Rng r = *this;
    r.state_[0] ^= 0x9e3779b97f4a7c15ull * (stream + 1);
    r.state_[3] ^= 0xd1b54a32d192ed03ull * (stream + 1);
    (void)r();  // decorrelate
    (void)r();
    return r;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace venom
