// FNV-1a 64-bit hashing, shared by every hashing site in the tree
// (weight fingerprints, Rng::seeded label streams, the golden-fixture
// checksums in tests). One definition of the offset basis / prime pair:
// a divergent copy would silently fork hash streams the plan cache and
// the checked-in fixture checksums depend on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace venom {

/// Incremental FNV-1a 64. `mix` folds one 64-bit word per round (the
/// fingerprint variant); `bytes` folds a buffer byte-wise (the classic
/// formulation — what Rng::seeded and file checksums use).
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  }

  void bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) mix(p[i]);
  }
};

}  // namespace venom
