// Software IEEE 754 binary16 ("half") arithmetic.
//
// The paper's kernels run in fp16 on Sparse Tensor Cores. This type gives
// bit-accurate storage semantics (round-to-nearest-even conversion to and
// from float) so that compression formats, kernels, and the SPTC simulator
// all see exactly the values a GPU would. Arithmetic is performed in float
// and rounded back, matching the behaviour of fp16 multiply-accumulate with
// fp32 accumulators used by mma.sp (accumulation helpers below keep fp32
// accumulators explicit, as the hardware does).
#pragma once

#include <cstdint>
#include <iosfwd>

namespace venom {

/// 16-bit IEEE 754 binary16 floating point value.
///
/// Storage-only semantics: all arithmetic converts to float, computes, and
/// rounds back with round-to-nearest-even. Supports subnormals, infinities,
/// and NaN propagation.
class half_t {
 public:
  half_t() = default;

  /// Converts from float with round-to-nearest-even.
  explicit half_t(float f) : bits_(float_to_bits(f)) {}

  /// Reinterprets a raw bit pattern as a half.
  static half_t from_bits(std::uint16_t bits) {
    half_t h;
    h.bits_ = bits;
    return h;
  }

  /// Raw bit pattern.
  std::uint16_t bits() const { return bits_; }

  /// Converts to float (exact; every half is representable as float).
  float to_float() const { return bits_to_float(bits_); }
  explicit operator float() const { return to_float(); }

  bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
  bool is_nan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }

  friend half_t operator+(half_t a, half_t b) {
    return half_t(a.to_float() + b.to_float());
  }
  friend half_t operator-(half_t a, half_t b) {
    return half_t(a.to_float() - b.to_float());
  }
  friend half_t operator*(half_t a, half_t b) {
    return half_t(a.to_float() * b.to_float());
  }
  friend half_t operator/(half_t a, half_t b) {
    return half_t(a.to_float() / b.to_float());
  }
  half_t operator-() const { return from_bits(bits_ ^ 0x8000u); }

  half_t& operator+=(half_t o) { return *this = *this + o; }
  half_t& operator-=(half_t o) { return *this = *this - o; }
  half_t& operator*=(half_t o) { return *this = *this * o; }

  // Comparisons follow IEEE semantics via float (NaN compares false).
  friend bool operator==(half_t a, half_t b) {
    return a.to_float() == b.to_float();
  }
  friend bool operator!=(half_t a, half_t b) { return !(a == b); }
  friend bool operator<(half_t a, half_t b) {
    return a.to_float() < b.to_float();
  }
  friend bool operator<=(half_t a, half_t b) {
    return a.to_float() <= b.to_float();
  }
  friend bool operator>(half_t a, half_t b) {
    return a.to_float() > b.to_float();
  }
  friend bool operator>=(half_t a, half_t b) {
    return a.to_float() >= b.to_float();
  }

  /// Round-to-nearest-even float -> binary16 conversion.
  static std::uint16_t float_to_bits(float f);
  /// Exact binary16 -> float conversion.
  static float bits_to_float(std::uint16_t h);

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half_t) == 2, "half_t must be 2 bytes");

std::ostream& operator<<(std::ostream& os, half_t h);

/// Bulk binary16 -> float conversion: dst[i] = src[i].to_float().
///
/// The SpMM pipeline converts gathered B panels to packed float exactly
/// once per gather and feeds the float panel to the micro-kernel, instead
/// of paying an out-of-line conversion per fused multiply-add. Uses the
/// F16C VCVTPH2PS path when compiled with -mf16c / -march=native (exact:
/// every half is representable as float); otherwise an auto-vectorizable
/// branch-free integer loop. `src` and `dst` must not overlap.
void half_to_float_n(const half_t* src, float* dst, std::size_t n);

/// Bulk float -> binary16 conversion with round-to-nearest-even:
/// dst[i] = half_t(src[i]). Bit-identical to the scalar conversion for
/// all finite and infinite inputs; NaNs map to a quiet NaN (payloads may
/// differ between the F16C and scalar paths). `src`/`dst` must not overlap.
void float_to_half_n(const float* src, half_t* dst, std::size_t n);

/// Fused helper mirroring SPTC accumulation: acc (fp32) += a*b in fp32,
/// with a and b fp16 inputs. Used by the mma simulator and CPU kernels so
/// results match tensor-core numerics (per-product fp16, fp32 accumulate).
inline void fma_fp16_fp32(float& acc, half_t a, half_t b) {
  acc += a.to_float() * b.to_float();
}

}  // namespace venom
