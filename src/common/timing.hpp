// Shared wall-clock micro-measurement loop, used by the empirical
// autotuner and (via bench/bench_util.hpp) the bench executables.
#pragma once

#include <chrono>
#include <cstddef>

namespace venom {

/// Wall-clock seconds per fn() call: `warmup` untimed invocations, then
/// iteration counts grown geometrically until one timed sample spans
/// `min_sample_s` (capped at 2^14 iterations for degenerate fn).
template <typename Fn>
double seconds_per_call(Fn&& fn, std::size_t warmup = 1,
                        double min_sample_s = 0.2) {
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_sample_s || iters >= (std::size_t{1} << 14))
      return s / double(iters);
    iters *= 4;
  }
}

}  // namespace venom
