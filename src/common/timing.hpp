// Shared wall-clock micro-measurement loop, used by the empirical
// autotuner and (via bench/bench_util.hpp) the bench executables, plus
// the percentile helper the latency reporters share.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <span>

namespace venom {

/// Nearest-rank percentile (q in [0, 1]) of ascending-sorted samples;
/// 0 for an empty span. One definition shared by the serving engine's
/// latency window and the bench harness, so their p50/p99 stay
/// comparable by construction.
inline double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t i =
      static_cast<std::size_t>(q * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

/// Wall-clock seconds per fn() call: `warmup` untimed invocations, then
/// iteration counts grown geometrically until one timed sample spans
/// `min_sample_s` (capped at 2^14 iterations for degenerate fn).
template <typename Fn>
double seconds_per_call(Fn&& fn, std::size_t warmup = 1,
                        double min_sample_s = 0.2) {
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_sample_s || iters >= (std::size_t{1} << 14))
      return s / double(iters);
    iters *= 4;
  }
}

}  // namespace venom
