// Cross-layer per-op-class timing sink.
//
// Filled by Linear / attention forward passes and aggregated by the
// serving engine and the Fig. 15 breakdown bench (GEMMs / softmax /
// attention matmuls / others). Lives in the ops layer because it is a
// cross-cutting profiling concern: every operator fills it, so no single
// layer (least of all Linear) should own its definition.
#pragma once

namespace venom::ops {

/// Per-op-class timing sink (seconds).
struct TimingBreakdown {
  double gemm_s = 0;
  double softmax_s = 0;
  double attn_matmul_s = 0;
  double other_s = 0;
  double total() const { return gemm_s + softmax_s + attn_matmul_s + other_s; }
  TimingBreakdown& operator+=(const TimingBreakdown& o) {
    gemm_s += o.gemm_s;
    softmax_s += o.softmax_s;
    attn_matmul_s += o.attn_matmul_s;
    other_s += o.other_s;
    return *this;
  }
};

}  // namespace venom::ops
