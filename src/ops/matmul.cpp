#include "ops/matmul.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/half.hpp"

namespace venom::ops {

const char* to_string(OperandFormat f) {
  switch (f) {
    case OperandFormat::kDense: return "dense";
    case OperandFormat::kVnm: return "vnm";
    case OperandFormat::kNm: return "nm";
    case OperandFormat::kCvse: return "cvse";
    case OperandFormat::kCsr: return "csr";
  }
  return "?";
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kMatmul: return "matmul";
    case OpKind::kMatmulTransposed: return "matmul-t";
    case OpKind::kSddmm: return "sddmm";
  }
  return "?";
}

const char* to_string(Dtype d) {
  switch (d) {
    case Dtype::kF16: return "f16";
    case Dtype::kI8: return "int8";
    case Dtype::kF8E5M2: return "f8-e5m2";
    case Dtype::kF8E4M3: return "f8-e4m3";
  }
  return "?";
}

bool dtype_from_string(std::string_view name, Dtype& out) {
  if (name == "f16") out = Dtype::kF16;
  else if (name == "int8" || name == "i8") out = Dtype::kI8;
  else if (name == "f8-e5m2" || name == "e5m2") out = Dtype::kF8E5M2;
  else if (name == "f8-e4m3" || name == "e4m3") out = Dtype::kF8E4M3;
  else return false;
  return true;
}

MatmulArgs MatmulArgs::make(const HalfMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.dense = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const VnmMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.vnm = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const NmMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.nm = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const CvseMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.cvse = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const CsrMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.csr = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(std::shared_ptr<const VnmMatrix> a,
                            std::uint64_t fingerprint, const HalfMatrix& b) {
  MatmulArgs args;
  args.vnm_shared = std::move(a);
  args.vnm = args.vnm_shared.get();
  args.vnm_fingerprint = fingerprint;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const quant::QuantizedVnmMatrix& a,
                            const HalfMatrix& b) {
  MatmulArgs args;
  args.qvnm = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(const quant::Fp8VnmMatrix& a,
                            const HalfMatrix& b) {
  MatmulArgs args;
  args.f8vnm = &a;
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(std::shared_ptr<const quant::QuantizedVnmMatrix> a,
                            const HalfMatrix& b) {
  MatmulArgs args;
  args.qvnm_shared = std::move(a);
  args.qvnm = args.qvnm_shared.get();
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make(std::shared_ptr<const quant::Fp8VnmMatrix> a,
                            const HalfMatrix& b) {
  MatmulArgs args;
  args.f8vnm_shared = std::move(a);
  args.f8vnm = args.f8vnm_shared.get();
  args.b = &b;
  return args;
}

MatmulArgs MatmulArgs::make_transposed(const VnmMatrix& a,
                                       const HalfMatrix& b) {
  MatmulArgs args = make(a, b);
  args.kind = OpKind::kMatmulTransposed;
  return args;
}

MatmulArgs MatmulArgs::make_transposed(const HalfMatrix& a,
                                       const HalfMatrix& b) {
  MatmulArgs args = make(a, b);
  args.kind = OpKind::kMatmulTransposed;
  return args;
}

MatmulArgs MatmulArgs::make_sddmm(const VnmMatrix& structure,
                                  const HalfMatrix& a, const HalfMatrix& b) {
  MatmulArgs args;
  args.kind = OpKind::kSddmm;
  args.vnm = &structure;
  args.dense = &a;  // the rows x depth operand rides the dense slot
  args.b = &b;
  return args;
}

MatmulDesc MatmulArgs::desc() const {
  MatmulDesc d;
  VENOM_CHECK_MSG(b != nullptr, "MatmulArgs without a dense right operand");
  d.kind = kind;
  d.b_cols = b->cols();
  if (kind == OpKind::kSddmm) {
    VENOM_CHECK_MSG(vnm != nullptr && dense != nullptr,
                    "SDDMM args need a structure and a dense A operand");
    d.format = OperandFormat::kVnm;
    d.rows = vnm->rows();
    d.cols = vnm->cols();
    d.vnm = vnm->config();
    d.depth = dense->cols();
    return d;
  }
  if (qvnm != nullptr) {
    d.format = OperandFormat::kVnm;
    d.dtype = Dtype::kI8;
    d.rows = qvnm->rows();
    d.cols = qvnm->cols();
    d.vnm = qvnm->config();
  } else if (f8vnm != nullptr) {
    d.format = OperandFormat::kVnm;
    d.dtype = f8vnm->format() == Fp8Format::kE5M2 ? Dtype::kF8E5M2
                                                  : Dtype::kF8E4M3;
    d.rows = f8vnm->rows();
    d.cols = f8vnm->cols();
    d.vnm = f8vnm->config();
  } else if (vnm != nullptr) {
    d.format = OperandFormat::kVnm;
    d.rows = vnm->rows();
    d.cols = vnm->cols();
    d.vnm = vnm->config();
  } else if (nm != nullptr) {
    d.format = OperandFormat::kNm;
    d.rows = nm->rows();
    d.cols = nm->cols();
    d.nm = nm->pattern();
  } else if (cvse != nullptr) {
    d.format = OperandFormat::kCvse;
    d.rows = cvse->rows();
    d.cols = cvse->cols();
  } else if (csr != nullptr) {
    d.format = OperandFormat::kCsr;
    d.rows = csr->rows();
    d.cols = csr->cols();
  } else if (dense != nullptr) {
    d.format = OperandFormat::kDense;
    d.rows = dense->rows();
    d.cols = dense->cols();
  } else {
    VENOM_CHECK_MSG(false, "MatmulArgs without a left operand");
  }
  return d;
}

VnmMatrix Matmul::run_sddmm(const MatmulArgs& /*args*/,
                            ExecContext& /*ctx*/) const {
  VENOM_CHECK_MSG(false, "backend '" << name()
                                     << "' does not implement SDDMM");
  return {};
}

HalfMatrix Matmul::run_fused(const MatmulArgs& args,
                             const spatha::Epilogue& epilogue,
                             ExecContext& ctx) const {
  FloatMatrix acc = run(args, ctx);
  VENOM_CHECK_MSG(epilogue.bias.empty() || epilogue.bias.size() == acc.rows(),
                  "bias size " << epilogue.bias.size() << " != rows "
                               << acc.rows());
  HalfMatrix y(acc.rows(), acc.cols());
  for (std::size_t r = 0; r < acc.rows(); ++r) {
    float* arow = &acc(r, 0);
    const float bias = epilogue.bias.empty() ? 0.0f : epilogue.bias[r];
    for (std::size_t n = 0; n < acc.cols(); ++n)
      arow[n] = spatha::apply_activation(epilogue.activation, arow[n] + bias);
    float_to_half_n(arow, &y(r, 0), acc.cols());
  }
  return y;
}

namespace {

// Reader-writer locks: dispatch reads these on every matmul (including
// the multi-worker serving hot path), writes happen only on
// force_backend / registration — SharedMutex keeps concurrent readers
// from serializing on each other. (Meyer-singleton statics cannot carry
// a GUARDED_BY relation the analysis can see across functions; the
// contract here is the narrow accessor pair below, nothing else touches
// forced_name().)
SharedMutex& force_mutex() {
  static SharedMutex m;
  return m;
}

std::string& forced_name() {
  static std::string name;
  return name;
}

}  // namespace

// Defined in backends.cpp: registers the built-in kernel families. Called
// from instance() so the builtins exist before any lookup, without
// relying on static-initializer order or linker retention of otherwise
// unreferenced translation units.
void register_builtin_backends(BackendRegistry& registry);

std::string force_backend(std::string name) {
  WriterMutexLock lock(force_mutex());
  std::string previous = std::move(forced_name());
  forced_name() = std::move(name);
  return previous;
}

std::string forced_backend() {
  ReaderMutexLock lock(force_mutex());
  return forced_name();
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    register_builtin_backends(*r);
    return r;
  }();
  return *registry;
}

void BackendRegistry::add(std::unique_ptr<Matmul> backend) {
  VENOM_CHECK_MSG(backend != nullptr, "null backend");
  WriterMutexLock lock(mutex_);
  for (const auto& existing : backends_)
    VENOM_CHECK_MSG(existing->name() != backend->name(),
                    "backend '" << backend->name() << "' already registered");
  backends_.push_back(std::move(backend));
}

const Matmul* BackendRegistry::find(std::string_view name) const {
  ReaderMutexLock lock(mutex_);
  for (const auto& backend : backends_)
    if (backend->name() == name) return backend.get();
  return nullptr;
}

std::vector<const Matmul*> BackendRegistry::backends() const {
  ReaderMutexLock lock(mutex_);
  std::vector<const Matmul*> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) out.push_back(backend.get());
  return out;
}

BackendRegistry::Selection BackendRegistry::select_explained(
    const MatmulDesc& desc) const {
  const std::string& features = cpu_feature_string();
  Selection sel;

  // Override order: programmatic force, then the environment.
  std::string forced = forced_backend();
  if (forced.empty()) {
    if (const char* env = std::getenv("VENOM_BACKEND")) forced = env;
  }

  ReaderMutexLock lock(mutex_);
  if (!forced.empty()) {
    const Matmul* match = nullptr;
    for (const auto& backend : backends_)
      if (backend->name() == forced) match = backend.get();
    if (match != nullptr && match->supports(desc, features)) {
      sel.backend = match;
      return sel;
    }
    // Unknown or unsupporting override: remember it and fall through to
    // normal selection — an override must never break a valid product.
    sel.forced_ignored = forced;
  }

  for (const auto& backend : backends_) {
    if (!backend->supports(desc, features)) continue;
    if (sel.backend == nullptr ||
        backend->priority() > sel.backend->priority())
      sel.backend = backend.get();
  }
  VENOM_CHECK_MSG(sel.backend != nullptr,
                  "no registered backend supports a "
                      << to_string(desc.kind) << " over a " << desc.rows
                      << 'x' << desc.cols << 'x' << desc.b_cols
                      << " problem in format " << to_string(desc.format)
                      << " (features " << features << ')');
  return sel;
}

const Matmul& BackendRegistry::select(const MatmulDesc& desc) const {
  return *select_explained(desc).backend;
}

FloatMatrix matmul(const MatmulArgs& args, ExecContext& ctx) {
  VENOM_CHECK_MSG(args.kind == OpKind::kMatmul,
                  "matmul over " << to_string(args.kind)
                                 << " args (use matmul_transposed/sddmm)");
  return BackendRegistry::instance().select(args.desc()).run(args, ctx);
}

FloatMatrix matmul(const MatmulArgs& args) {
  return matmul(args, ExecContext::global());
}

HalfMatrix matmul_fused(const MatmulArgs& args,
                        const spatha::Epilogue& epilogue, ExecContext& ctx) {
  VENOM_CHECK_MSG(args.kind == OpKind::kMatmul,
                  "matmul_fused over " << to_string(args.kind) << " args");
  return BackendRegistry::instance()
      .select(args.desc())
      .run_fused(args, epilogue, ctx);
}

HalfMatrix matmul_fused(const MatmulArgs& args,
                        const spatha::Epilogue& epilogue) {
  return matmul_fused(args, epilogue, ExecContext::global());
}

FloatMatrix matmul_transposed(const MatmulArgs& args, ExecContext& ctx) {
  VENOM_CHECK_MSG(args.kind == OpKind::kMatmulTransposed,
                  "matmul_transposed over " << to_string(args.kind)
                                            << " args");
  return BackendRegistry::instance().select(args.desc()).run(args, ctx);
}

FloatMatrix matmul_transposed(const MatmulArgs& args) {
  return matmul_transposed(args, ExecContext::global());
}

VnmMatrix sddmm(const MatmulArgs& args, ExecContext& ctx) {
  VENOM_CHECK_MSG(args.kind == OpKind::kSddmm,
                  "sddmm over " << to_string(args.kind) << " args");
  return BackendRegistry::instance().select(args.desc()).run_sddmm(args, ctx);
}

VnmMatrix sddmm(const MatmulArgs& args) {
  return sddmm(args, ExecContext::global());
}

}  // namespace venom::ops
