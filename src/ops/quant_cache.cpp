#include "ops/quant_cache.hpp"

#include <utility>

namespace venom::ops {

QuantCache::Entry* QuantCache::find_locked(const Key& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.splice(entries_.begin(), entries_, it);
      return &entries_.front();
    }
  }
  return nullptr;
}

QuantCache::Entry& QuantCache::insert_locked(Entry entry) {
  entries_.push_front(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_back();
  return entries_.front();
}

std::shared_ptr<const quant::QuantizedVnmMatrix> QuantCache::get_i8(
    const VnmMatrix& a, std::uint64_t fp) {
  const Key key{fp, a.rows(), a.cols(), 0};
  MutexLock lock(mutex_);
  if (Entry* hit = find_locked(key)) {
    ++stats_.hits;
    return hit->i8;
  }
  ++stats_.misses;
  auto image = std::make_shared<const quant::QuantizedVnmMatrix>(
      quant::QuantizedVnmMatrix::quantize(a));
  if (capacity_ == 0) return image;
  return insert_locked(Entry{key, image, nullptr}).i8;
}

std::shared_ptr<const quant::Fp8VnmMatrix> QuantCache::get_fp8(
    const VnmMatrix& a, std::uint64_t fp, Fp8Format format) {
  const Key key{fp, a.rows(), a.cols(),
                std::uint8_t(format == Fp8Format::kE5M2 ? 1 : 2)};
  MutexLock lock(mutex_);
  if (Entry* hit = find_locked(key)) {
    ++stats_.hits;
    return hit->f8;
  }
  ++stats_.misses;
  auto image = std::make_shared<const quant::Fp8VnmMatrix>(
      quant::Fp8VnmMatrix::quantize(a, format));
  if (capacity_ == 0) return image;
  return insert_locked(Entry{key, nullptr, image}).f8;
}

QuantCache::Stats QuantCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t QuantCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void QuantCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace venom::ops
