// The unified matmul operator: one dispatch surface over every kernel
// family in the repository.
//
// The paper's Spatha layer exposes a single SpMM concept; this layer is
// its API. Each kernel family (the Spatha V:N:M pipeline and its scalar
// and mma.sp fidelity paths, the row-wise N:M fast path, the 2:4 /
// CVSE / CSR baseline stand-ins, the dense GEMM) registers a Matmul
// backend into a process-wide BackendRegistry; callers describe the
// product once (MatmulArgs) and dispatch picks the best registered
// backend for the operand format, the problem shape, and this build's
// CPU feature fingerprint — consulting the ExecContext's tuning cache
// for the kernel configuration. New formats and backends become registry
// entries instead of cross-tree edits.
//
// Selection is overridable for experiments and A/B measurement:
//   * VENOM_BACKEND=<name> in the environment, or
//   * ops::force_backend(name) / the RAII ops::ScopedBackend.
// A forced backend that does not support the problem is ignored and
// dispatch falls back to normal selection, so an override can never turn
// a valid product into an error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "format/csr.hpp"
#include "format/cvse.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "ops/context.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/epilogue.hpp"
#include "tensor/matrix.hpp"

namespace venom::ops {

/// Storage format of the (possibly sparse) left operand.
enum class OperandFormat : std::uint8_t { kDense, kVnm, kNm, kCvse, kCsr };

const char* to_string(OperandFormat f);

/// Which product the dispatch is for. Backends declare support per kind,
/// so the forward SpMM, its transpose (the input-gradient dL/dX = Aᵀ·B),
/// and the sampled product (the weight-gradient SDDMM) are all registry
/// entries with working overrides rather than cross-tree direct calls.
enum class OpKind : std::uint8_t { kMatmul, kMatmulTransposed, kSddmm };

const char* to_string(OpKind k);

/// Storage precision of the left operand's values. kF16 is the default
/// fp16 datapath; the reduced-precision dtypes route to the quantized
/// backends (vnm-int8 / vnm-fp8), which also accept kF16 descs and
/// quantize on the fly — so `VENOM_BACKEND=vnm-int8` reroutes an
/// ordinary fp16 V:N:M product without the caller changing its args.
enum class Dtype : std::uint8_t { kF16, kI8, kF8E5M2, kF8E4M3 };

const char* to_string(Dtype d);

/// Inverse of to_string(Dtype), also accepting the short fp8 aliases the
/// CLI uses ("e5m2" / "e4m3"). Returns false on an unknown name. Shared
/// by the engine-plan loader and the venomtool dtype flags so every
/// artefact and flag spells dtypes the same way.
bool dtype_from_string(std::string_view name, Dtype& out);

/// Shape + format summary of a product — what supports() and backend
/// selection look at (no operand data access).
struct MatmulDesc {
  std::size_t rows = 0;    ///< left-operand rows (R)
  std::size_t cols = 0;    ///< left-operand cols (K)
  std::size_t b_cols = 0;  ///< dense right-operand cols (C)
  std::size_t depth = 0;   ///< SDDMM reduction depth (kind == kSddmm)
  OpKind kind = OpKind::kMatmul;
  OperandFormat format = OperandFormat::kDense;
  Dtype dtype = Dtype::kF16;  ///< left-operand value precision
  VnmConfig vnm;  ///< valid when format == kVnm
  NmPattern nm;   ///< valid when format == kNm
};

/// Argument pack for one C = A * B (or Aᵀ * B, or an SDDMM — see
/// `kind`). Exactly one left-operand pointer is set (matching the format
/// the make() overloads record); all pointees must outlive the run()
/// call. For kSddmm, `vnm` is the sampling structure and `dense` carries
/// the rows x depth A operand.
struct MatmulArgs {
  OpKind kind = OpKind::kMatmul;
  const HalfMatrix* dense = nullptr;
  const VnmMatrix* vnm = nullptr;
  const NmMatrix* nm = nullptr;
  const CvseMatrix* cvse = nullptr;
  const CsrMatrix* csr = nullptr;
  const quant::QuantizedVnmMatrix* qvnm = nullptr;
  const quant::Fp8VnmMatrix* f8vnm = nullptr;
  const HalfMatrix* b = nullptr;

  /// Optional explicit kernel configuration for V:N:M backends (benches
  /// and ablations). Null lets the backend consult the context's tuning
  /// cache; non-null also bypasses the context's plan cache, since a
  /// cached plan owns its own config.
  const spatha::SpmmConfig* config = nullptr;

  /// Optional shared handle to the V:N:M operand plus its precomputed
  /// weight_fingerprint(). A holder of an immutable compressed weight
  /// (transformer::Linear) supplies both so dispatch can route through
  /// the context's PlanCache without re-hashing O(nnz) structures per
  /// call, and so cached plans alias the caller's copy.
  std::shared_ptr<const VnmMatrix> vnm_shared;
  std::uint64_t vnm_fingerprint = 0;

  /// Shared handles keeping caller-owned quantized operands alive (the
  /// quantized analogues of vnm_shared; transformer::Linear's
  /// quantized-weight mode supplies these).
  std::shared_ptr<const quant::QuantizedVnmMatrix> qvnm_shared;
  std::shared_ptr<const quant::Fp8VnmMatrix> f8vnm_shared;

  static MatmulArgs make(const HalfMatrix& a, const HalfMatrix& b);
  static MatmulArgs make(const VnmMatrix& a, const HalfMatrix& b);
  static MatmulArgs make(const NmMatrix& a, const HalfMatrix& b);
  static MatmulArgs make(const CvseMatrix& a, const HalfMatrix& b);
  static MatmulArgs make(const CsrMatrix& a, const HalfMatrix& b);
  /// Plan-cache-friendly V:N:M form (see vnm_shared).
  static MatmulArgs make(std::shared_ptr<const VnmMatrix> a,
                         std::uint64_t fingerprint, const HalfMatrix& b);

  /// Pre-quantized left operands: desc().dtype reports the reduced
  /// precision and dispatch selects the matching quantized backend.
  static MatmulArgs make(const quant::QuantizedVnmMatrix& a,
                         const HalfMatrix& b);
  static MatmulArgs make(const quant::Fp8VnmMatrix& a, const HalfMatrix& b);
  /// Shared-handle forms (the quantized vnm_shared analogues).
  static MatmulArgs make(std::shared_ptr<const quant::QuantizedVnmMatrix> a,
                         const HalfMatrix& b);
  static MatmulArgs make(std::shared_ptr<const quant::Fp8VnmMatrix> a,
                         const HalfMatrix& b);

  /// Transposed product C(K x C) = Aᵀ(K x R) * B(R x C): the
  /// input-gradient of a (sparse or dense) linear layer.
  static MatmulArgs make_transposed(const VnmMatrix& a, const HalfMatrix& b);
  static MatmulArgs make_transposed(const HalfMatrix& a, const HalfMatrix& b);

  /// SDDMM: (A * B) sampled at `structure`'s nonzero positions, with
  /// A(rows x depth) and B(depth x cols) matching the structure's shape —
  /// the masked weight-gradient of a sparse linear layer.
  static MatmulArgs make_sddmm(const VnmMatrix& structure,
                               const HalfMatrix& a, const HalfMatrix& b);

  /// The shape/format summary selection dispatches on.
  MatmulDesc desc() const;
};

/// One registered matmul implementation.
class Matmul {
 public:
  virtual ~Matmul() = default;

  /// Stable registry key ("vnm-fast", "csr", ...).
  virtual std::string_view name() const = 0;
  /// One-line human description (venomtool backends).
  virtual std::string describe() const = 0;
  /// Selection rank among the backends that support a problem; larger
  /// wins. Production paths sit above oracle/fidelity paths so default
  /// dispatch always matches the pre-ops hand-picked kernel.
  virtual int priority() const = 0;
  /// Whether this backend can run the described problem as compiled for
  /// `cpu_features` (see common/cpu_features.hpp).
  virtual bool supports(const MatmulDesc& desc,
                        const std::string& cpu_features) const = 0;
  /// C = A * B with fp32 output.
  virtual FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const = 0;
  /// Fused-epilogue run (bias / activation, fp16 output). The default
  /// computes run() and applies the epilogue row-wise afterwards — the
  /// same float-domain bias+activation followed by one bulk fp16
  /// conversion per row the fused Spatha stage 3 performs, so results
  /// are bit-identical whether or not a backend overrides this.
  virtual HalfMatrix run_fused(const MatmulArgs& args,
                               const spatha::Epilogue& epilogue,
                               ExecContext& ctx) const;
  /// SDDMM run (kind == kSddmm): the sampled product in the structure's
  /// own compressed format. The default throws — only backends whose
  /// supports() accepts kSddmm descs implement it.
  virtual VnmMatrix run_sddmm(const MatmulArgs& args, ExecContext& ctx) const;
};

/// Process-wide registry of matmul backends. The built-in kernel
/// families self-register on first access; add() accepts additional
/// backends at runtime (a registered name is permanent — entries are
/// never removed, so callers may cache the returned pointers).
class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// Registers a backend. Throws venom::Error on a duplicate name.
  void add(std::unique_ptr<Matmul> backend) VENOM_EXCLUDES(mutex_);

  /// The backend named `name`, or nullptr.
  const Matmul* find(std::string_view name) const VENOM_EXCLUDES(mutex_);

  /// All registered backends in registration order.
  std::vector<const Matmul*> backends() const VENOM_EXCLUDES(mutex_);

  /// The backend dispatch would run for `desc`: the forced backend
  /// (ops::force_backend, else $VENOM_BACKEND) when it exists and
  /// supports the problem, else the highest-priority supporting backend
  /// (ties break toward earlier registration). Throws venom::Error when
  /// no registered backend supports the problem.
  const Matmul& select(const MatmulDesc& desc) const;

  /// select() plus why: `forced_ignored` names an override that was
  /// requested but skipped (unknown name or supports() rejection).
  struct Selection {
    const Matmul* backend = nullptr;
    std::string forced_ignored;
  };
  Selection select_explained(const MatmulDesc& desc) const
      VENOM_EXCLUDES(mutex_);

 private:
  BackendRegistry() = default;

  // Read-mostly: every dispatch takes a reader lock; add() (rare,
  // append-only) takes the writer one.
  mutable SharedMutex mutex_;
  std::vector<std::unique_ptr<Matmul>> backends_ VENOM_GUARDED_BY(mutex_);
};

/// Programmatically forces dispatch to the named backend (subject to
/// supports(); see BackendRegistry::select). Empty clears. Returns the
/// previous value. Takes precedence over $VENOM_BACKEND.
std::string force_backend(std::string name);

/// The current programmatic override (empty = none).
std::string forced_backend();

/// RAII scope for force_backend — benches pin the kernel family they
/// measure and restore the previous override on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(std::string name)
      : previous_(force_backend(std::move(name))) {}
  ~ScopedBackend() { force_backend(std::move(previous_)); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  std::string previous_;
};

/// Dispatches C = A * B through the selected backend.
FloatMatrix matmul(const MatmulArgs& args, ExecContext& ctx);
/// Same against the process-wide ExecContext::global().
FloatMatrix matmul(const MatmulArgs& args);

/// Dispatches the fused-epilogue product (fp16 output).
HalfMatrix matmul_fused(const MatmulArgs& args,
                        const spatha::Epilogue& epilogue, ExecContext& ctx);
HalfMatrix matmul_fused(const MatmulArgs& args,
                        const spatha::Epilogue& epilogue);

/// Dispatches C = Aᵀ * B (args from make_transposed) through the
/// selected kMatmulTransposed backend.
FloatMatrix matmul_transposed(const MatmulArgs& args, ExecContext& ctx);
FloatMatrix matmul_transposed(const MatmulArgs& args);

/// Dispatches the sampled product (args from make_sddmm) through the
/// selected kSddmm backend.
VnmMatrix sddmm(const MatmulArgs& args, ExecContext& ctx);
VnmMatrix sddmm(const MatmulArgs& args);

}  // namespace venom::ops
