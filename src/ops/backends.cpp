// Built-in matmul backends: every kernel family in the repository
// registered behind the unified venom::ops dispatch.
//
// Priorities encode the pre-ops hand-picked kernel choice so dispatch is
// selection-identical to the code it replaced: the production paths
// (vnm-fast, nm, cvse, csr, dense-gemm) outrank the oracle and fidelity
// paths (vnm-scalar, vnm-mma, spmm-24), which remain reachable through
// VENOM_BACKEND / ops::force_backend for parity tests and A/B benches.
#include <sstream>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "baselines/spmm_csr.hpp"
#include "baselines/spmm_cvse.hpp"
#include "common/error.hpp"
#include "ops/matmul.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/plan.hpp"
#include "spatha/sddmm.hpp"
#include "spatha/spmm.hpp"

namespace venom::ops {

namespace {

/// The production Spatha V:N:M pipeline (packed float panels +
/// register-blocked micro-kernel), with the three dispatch tiers the
/// former call sites hand-coded: explicit config (benches/ablations),
/// plan cache (serving, via MatmulArgs::vnm_shared), and
/// tuning-cache-aware direct execution.
class VnmFastBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-fast"; }
  std::string describe() const override {
    return "Spatha V:N:M SpMM, packed float panels + register-blocked "
           "micro-kernel (production)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm && desc.dtype == Dtype::kF16;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    if (args.config != nullptr)
      return spatha::spmm_vnm(*args.vnm, *args.b, *args.config, &ctx.pool(),
                              &ctx.scratch());
    if (args.vnm_shared != nullptr)
      return plan(args, ctx)->execute(*args.b, &ctx.pool());
    return spatha::spmm_vnm(*args.vnm, *args.b, select(args, ctx),
                            &ctx.pool(), &ctx.scratch());
  }
  HalfMatrix run_fused(const MatmulArgs& args,
                       const spatha::Epilogue& epilogue,
                       ExecContext& ctx) const override {
    if (args.config != nullptr)
      return spatha::spmm_vnm_fused(*args.vnm, *args.b, epilogue,
                                    *args.config, &ctx.pool(),
                                    &ctx.scratch());
    if (args.vnm_shared != nullptr)
      return plan(args, ctx)->execute_fused(*args.b, epilogue, &ctx.pool());
    return spatha::spmm_vnm_fused(*args.vnm, *args.b, epilogue,
                                  select(args, ctx), &ctx.pool(),
                                  &ctx.scratch());
  }

 private:
  static spatha::SpmmConfig select(const MatmulArgs& args,
                                   const ExecContext& ctx) {
    return ctx.select_config(args.vnm->config(), args.vnm->rows(),
                             args.vnm->cols(), args.b->cols());
  }
  /// Serving tier: the caller pre-hashed its immutable operand, so the
  /// context's PlanCache can reuse plans (and their warm packed-panel
  /// scratch pools) without an O(nnz) fingerprint per call. The common
  /// hit path is one cache probe; config selection (tuning-cache lookup
  /// + heuristic) runs only when a plan is actually built, with the
  /// context's choice — so a private tuning cache is honored on this
  /// tier too.
  static std::shared_ptr<const spatha::SpmmPlan> plan(const MatmulArgs& args,
                                                      ExecContext& ctx) {
    const spatha::SpmmProblem problem{.rows = args.vnm->rows(),
                                      .cols = args.vnm->cols(),
                                      .b_cols = args.b->cols(),
                                      .format = args.vnm->config()};
    if (auto cached = ctx.plan_cache().find(problem, args.vnm_fingerprint))
      return cached;
    const spatha::SpmmConfig cfg = select(args, ctx);
    return ctx.plan_cache().get_or_build(problem, args.vnm_shared,
                                         args.vnm_fingerprint, &cfg);
  }
};

/// The seed's element-at-a-time V:N:M loop — perf baseline and
/// bit-exactness oracle for vnm-fast.
class VnmScalarBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-scalar"; }
  std::string describe() const override {
    return "seed scalar V:N:M SpMM (oracle / perf baseline)";
  }
  int priority() const override { return 10; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm && desc.dtype == Dtype::kF16;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    const spatha::SpmmConfig cfg =
        args.config != nullptr
            ? *args.config
            : ctx.select_config(args.vnm->config(), args.vnm->rows(),
                                args.vnm->cols(), args.b->cols());
    return spatha::spmm_vnm_scalar(*args.vnm, *args.b, cfg, &ctx.pool());
  }
};

/// Stage 2 through genuine m16n8k32 mma.sp via the SPTC simulator — the
/// fidelity path proving the Fig. 4 V:N:M mapping is exact.
class VnmMmaBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-mma"; }
  std::string describe() const override {
    return "V:N:M SpMM through the SPTC mma.sp simulator (fidelity)";
  }
  int priority() const override { return 20; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    // The mma.sp preconditions (see spmm_vnm_mma): 2:4-mapped format,
    // 16 | V, gathered K divisible by 32, 8 | C.
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm && desc.dtype == Dtype::kF16 &&
           desc.vnm.n == 2 &&
           desc.vnm.selected_cols() == 4 && desc.vnm.v % 16 == 0 &&
           desc.vnm.m != 0 && (desc.cols / desc.vnm.m) * 4 % 32 == 0 &&
           desc.b_cols % 8 == 0;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return spatha::spmm_vnm_mma(*args.vnm, *args.b, &ctx.pool());
  }
};

/// Row-wise N:M fast path (DFSS-style dynamic attention kernel): any
/// N:M pattern, register-blocked, bit-identical to spmm-24 on the
/// hardware patterns.
class NmBackend final : public Matmul {
 public:
  std::string_view name() const override { return "nm"; }
  std::string describe() const override {
    return "row-wise N:M SpMM, register-blocked (dynamic attention fast "
           "path)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul && desc.format == OperandFormat::kNm;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return spatha::spmm_nm(*args.nm, *args.b, &ctx.pool());
  }
};

/// The cuSparseLt stand-in: scalar traversal restricted to the hardware
/// 2:4 / 1:2 patterns. Below NmBackend so default dispatch takes the
/// register-blocked path (bit-identical results).
class Spmm24Backend final : public Matmul {
 public:
  std::string_view name() const override { return "spmm-24"; }
  std::string describe() const override {
    return "2:4 / 1:2 N:M SpMM baseline (cuSparseLt stand-in)";
  }
  int priority() const override { return 50; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kNm &&
           ((desc.nm.n == 2 && desc.nm.m == 4) ||
            (desc.nm.n == 1 && desc.nm.m == 2));
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return spmm_24(*args.nm, *args.b, &ctx.pool());
  }
};

/// Column-vector-sparse SpMM (CLASP / vectorSparse stand-in).
class CvseBackend final : public Matmul {
 public:
  std::string_view name() const override { return "cvse"; }
  std::string describe() const override {
    return "column-vector-sparse SpMM (CLASP stand-in)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul && desc.format == OperandFormat::kCvse;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return spmm_cvse(*args.cvse, *args.b, &ctx.pool());
  }
};

/// Unstructured CSR SpMM (Sputnik stand-in).
class CsrBackend final : public Matmul {
 public:
  std::string_view name() const override { return "csr"; }
  std::string describe() const override {
    return "unstructured CSR SpMM (Sputnik stand-in)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul && desc.format == OperandFormat::kCsr;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return spmm_csr(*args.csr, *args.b, &ctx.pool());
  }
};

/// Dense fp16 GEMM (cuBLAS stand-in) — the fallback every dense Linear
/// routes through.
class DenseGemmBackend final : public Matmul {
 public:
  std::string_view name() const override { return "dense-gemm"; }
  std::string describe() const override {
    return "dense fp16 GEMM, fp32 accumulation (cuBLAS stand-in)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul && desc.format == OperandFormat::kDense;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return gemm_dense(*args.dense, *args.b, &ctx.pool());
  }
};

// -------------------------------------------------- quantized datapath
//
// The reduced-precision SpMM families (quant/quantized_vnm.hpp). Each
// backend supports its own dtype AND plain fp16 V:N:M descs: fp16 args
// quantize on the fly — memoized in the context's QuantCache when the
// caller supplied a weight fingerprint (the serving tier), fresh
// otherwise — so `VENOM_BACKEND=vnm-int8` reroutes an entire fp16 model
// without any call-site change. Priority 40 keeps fp16 dispatch on
// vnm-fast by default: quantized execution engages only for explicitly
// quantized args or through an override.

/// Packed int8 panels, int32 accumulation, per-row x per-column scale
/// dequantization on the epilogue.
class VnmInt8Backend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-int8"; }
  std::string describe() const override {
    return "int8 V:N:M SpMM, packed int8 panels + int32 accumulation "
           "(quantized production)";
  }
  int priority() const override { return 40; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm &&
           (desc.dtype == Dtype::kI8 || desc.dtype == Dtype::kF16);
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    if (args.qvnm != nullptr) return execute(*args.qvnm, args, ctx);
    if (args.vnm_shared != nullptr)
      return execute(
          *ctx.quant_cache().get_i8(*args.vnm, args.vnm_fingerprint), args,
          ctx);
    return execute(quant::QuantizedVnmMatrix::quantize(*args.vnm), args, ctx);
  }

 private:
  static FloatMatrix execute(const quant::QuantizedVnmMatrix& a,
                             const MatmulArgs& args, ExecContext& ctx) {
    const spatha::SpmmConfig cfg =
        args.config != nullptr
            ? *args.config
            : ctx.select_config_i8(a.config(), a.rows(), a.cols(),
                                   args.b->cols());
    return quant::spmm_vnm_i8(a, *args.b, cfg, &ctx.pool(), &ctx.scratch());
  }
};

/// Naive int8 traversal — the bit-exactness oracle for vnm-int8.
class VnmInt8ScalarBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-int8-scalar"; }
  std::string describe() const override {
    return "naive int8 V:N:M SpMM (oracle)";
  }
  int priority() const override { return 10; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm &&
           (desc.dtype == Dtype::kI8 || desc.dtype == Dtype::kF16);
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    const spatha::ColumnLocMode mode =
        args.config != nullptr ? args.config->column_loc
                               : spatha::ColumnLocMode::kEnabled;
    if (args.qvnm != nullptr)
      return quant::spmm_vnm_i8_scalar(*args.qvnm, *args.b, mode);
    if (args.vnm_shared != nullptr)
      return quant::spmm_vnm_i8_scalar(
          *ctx.quant_cache().get_i8(*args.vnm, args.vnm_fingerprint),
          *args.b, mode);
    return quant::spmm_vnm_i8_scalar(
        quant::QuantizedVnmMatrix::quantize(*args.vnm), *args.b, mode);
  }
};

/// fp8-stored weights, float panels, fp32 accumulation. On-the-fly
/// quantization of fp16 args uses E4M3 (the higher-precision layout —
/// the right trade for weights; E5M2 arrives via explicit args).
class VnmFp8Backend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-fp8"; }
  std::string describe() const override {
    return "fp8 (e5m2/e4m3) V:N:M SpMM, float panels + fp32 accumulation "
           "(quantized production)";
  }
  int priority() const override { return 40; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm &&
           (desc.dtype == Dtype::kF8E5M2 || desc.dtype == Dtype::kF8E4M3 ||
            desc.dtype == Dtype::kF16);
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    if (args.f8vnm != nullptr) return execute(*args.f8vnm, args, ctx);
    if (args.vnm_shared != nullptr)
      return execute(*ctx.quant_cache().get_fp8(*args.vnm,
                                                args.vnm_fingerprint,
                                                Fp8Format::kE4M3),
                     args, ctx);
    return execute(quant::Fp8VnmMatrix::quantize(*args.vnm, Fp8Format::kE4M3),
                   args, ctx);
  }

 private:
  static FloatMatrix execute(const quant::Fp8VnmMatrix& a,
                             const MatmulArgs& args, ExecContext& ctx) {
    const spatha::SpmmConfig cfg =
        args.config != nullptr
            ? *args.config
            : ctx.select_config_fp8(a.config(), a.rows(), a.cols(),
                                    args.b->cols());
    return quant::spmm_vnm_fp8(a, *args.b, cfg, &ctx.pool(), &ctx.scratch());
  }
};

/// Naive fp8 traversal — the bit-exactness oracle for vnm-fp8.
class VnmFp8ScalarBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-fp8-scalar"; }
  std::string describe() const override {
    return "naive fp8 V:N:M SpMM (oracle)";
  }
  int priority() const override { return 10; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmul &&
           desc.format == OperandFormat::kVnm &&
           (desc.dtype == Dtype::kF8E5M2 || desc.dtype == Dtype::kF8E4M3 ||
            desc.dtype == Dtype::kF16);
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    const spatha::ColumnLocMode mode =
        args.config != nullptr ? args.config->column_loc
                               : spatha::ColumnLocMode::kEnabled;
    if (args.f8vnm != nullptr)
      return quant::spmm_vnm_fp8_scalar(*args.f8vnm, *args.b, mode);
    if (args.vnm_shared != nullptr)
      return quant::spmm_vnm_fp8_scalar(
          *ctx.quant_cache().get_fp8(*args.vnm, args.vnm_fingerprint,
                                     Fp8Format::kE4M3),
          *args.b, mode);
    return quant::spmm_vnm_fp8_scalar(
        quant::Fp8VnmMatrix::quantize(*args.vnm, Fp8Format::kE4M3), *args.b,
        mode);
  }
};

// ------------------------------------------------------- backward kinds
//
// The training ops (input-gradient transposed SpMM, weight-gradient
// SDDMM) register as their own OpKinds, each with a production path and
// a scalar oracle reachable through the same override machinery the
// forward families use (VENOM_BACKEND / ops::ScopedBackend).

/// dL/dX = Aᵀ * B over a V:N:M left operand: the scatter kernel with
/// per-task partial reduction. Tuning-cache aware through the context
/// (the forward problem's tuned chunk grain carries over).
class VnmTransposedBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-t"; }
  std::string describe() const override {
    return "transposed V:N:M SpMM, per-task partial scatter "
           "(input-gradient, production)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmulTransposed &&
           desc.format == OperandFormat::kVnm;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    const spatha::SpmmConfig cfg =
        args.config != nullptr
            ? *args.config
            : ctx.select_config(args.vnm->config(), args.vnm->rows(),
                                args.vnm->cols(), args.b->cols());
    return spatha::spmm_vnm_transposed(*args.vnm, *args.b, cfg, &ctx.pool());
  }
};

/// Single-threaded ascending-row scatter: the transposed oracle.
class VnmTransposedScalarBackend final : public Matmul {
 public:
  std::string_view name() const override { return "vnm-t-scalar"; }
  std::string describe() const override {
    return "naive transposed V:N:M SpMM (oracle)";
  }
  int priority() const override { return 10; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmulTransposed &&
           desc.format == OperandFormat::kVnm;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    (void)ctx;
    return spatha::spmm_vnm_transposed_scalar(
        *args.vnm, *args.b,
        args.config != nullptr ? args.config->column_loc
                               : spatha::ColumnLocMode::kEnabled);
  }
};

/// Dense transposed GEMM: explicit transpose then the dense kernel —
/// what the dense Linear backward hand-coded before this kind existed
/// (bit-identical to that sequence by construction).
class DenseTransposedBackend final : public Matmul {
 public:
  std::string_view name() const override { return "dense-gemm-t"; }
  std::string describe() const override {
    return "dense transposed GEMM (explicit transpose + dense-gemm)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kMatmulTransposed &&
           desc.format == OperandFormat::kDense;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    return gemm_dense(transpose(*args.dense), *args.b, &ctx.pool());
  }
};

/// Masked weight-gradient SDDMM over the V:N:M structure: the packed
/// column-panel + lane-blocked dot pipeline, with the context's tuning
/// cache supplying the chunk grain and its scratch pool recycling the
/// panels across calls.
class SddmmBackend final : public Matmul {
 public:
  std::string_view name() const override { return "sddmm"; }
  std::string describe() const override {
    return "V:N:M SDDMM, packed column panels + lane-blocked dots "
           "(weight-gradient, production)";
  }
  int priority() const override { return 100; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kSddmm &&
           desc.format == OperandFormat::kVnm;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    (void)args;
    (void)ctx;
    VENOM_CHECK_MSG(false, "SDDMM backends run through run_sddmm()");
    return {};
  }
  VnmMatrix run_sddmm(const MatmulArgs& args,
                      ExecContext& ctx) const override {
    const spatha::SpmmConfig cfg =
        args.config != nullptr
            ? *args.config
            : ctx.select_config(args.vnm->config(), args.vnm->rows(),
                                args.vnm->cols(), args.dense->cols());
    return spatha::sddmm_vnm(*args.vnm, *args.dense, *args.b, cfg,
                             &ctx.pool(), &ctx.scratch());
  }
};

/// Naive single-accumulator SDDMM: the gradient checks' oracle.
class SddmmScalarBackend final : public Matmul {
 public:
  std::string_view name() const override { return "sddmm-scalar"; }
  std::string describe() const override {
    return "naive V:N:M SDDMM (oracle)";
  }
  int priority() const override { return 10; }
  bool supports(const MatmulDesc& desc,
                const std::string& /*cpu_features*/) const override {
    return desc.kind == OpKind::kSddmm &&
           desc.format == OperandFormat::kVnm;
  }
  FloatMatrix run(const MatmulArgs& args, ExecContext& ctx) const override {
    (void)args;
    (void)ctx;
    VENOM_CHECK_MSG(false, "SDDMM backends run through run_sddmm()");
    return {};
  }
  VnmMatrix run_sddmm(const MatmulArgs& args,
                      ExecContext& ctx) const override {
    (void)ctx;
    return spatha::sddmm_vnm_scalar(
        *args.vnm, *args.dense, *args.b,
        args.config != nullptr ? args.config->column_loc
                               : spatha::ColumnLocMode::kEnabled);
  }
};

}  // namespace

void register_builtin_backends(BackendRegistry& registry) {
  registry.add(std::make_unique<VnmFastBackend>());
  registry.add(std::make_unique<VnmScalarBackend>());
  registry.add(std::make_unique<VnmMmaBackend>());
  registry.add(std::make_unique<VnmInt8Backend>());
  registry.add(std::make_unique<VnmInt8ScalarBackend>());
  registry.add(std::make_unique<VnmFp8Backend>());
  registry.add(std::make_unique<VnmFp8ScalarBackend>());
  registry.add(std::make_unique<NmBackend>());
  registry.add(std::make_unique<Spmm24Backend>());
  registry.add(std::make_unique<CvseBackend>());
  registry.add(std::make_unique<CsrBackend>());
  registry.add(std::make_unique<DenseGemmBackend>());
  registry.add(std::make_unique<VnmTransposedBackend>());
  registry.add(std::make_unique<VnmTransposedScalarBackend>());
  registry.add(std::make_unique<DenseTransposedBackend>());
  registry.add(std::make_unique<SddmmBackend>());
  registry.add(std::make_unique<SddmmScalarBackend>());
}

}  // namespace venom::ops
