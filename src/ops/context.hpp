// Execution context for the venom::ops operator layer.
//
// Before this layer existed every call site threaded ThreadPool::global(),
// a PlanCache, the $VENOM_TUNE_CACHE tuning cache, and SpmmScratchPools by
// hand through optional pointer parameters. An ExecContext bundles those
// four concerns into one object that a caller owns for the lifetime of a
// workload:
//
//   * the thread pool the kernels parallelize on (shared process-wide
//     pool by default, or a private pool when `threads` is set),
//   * a PlanCache reusing kernel plans — config selection, compressed
//     operand bookkeeping, warm packed-panel scratch — across calls,
//   * the empirical tuning cache consulted for kernel configurations
//     (the process-wide $VENOM_TUNE_CACHE cache by default, or a private
//     cache loaded from `tuning_cache_path`),
//   * a scratch pool recycling the kernels' packed fp16->float B panels
//     and accumulator tiles across dispatches that bypass the plan cache.
//
// ExecContext::global() is the process default used when a caller does
// not supply one (tools, examples, tests); the serving engine owns a
// private context per engine so its cache capacity and statistics are
// isolated from unrelated work.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "ops/quant_cache.hpp"
#include "tensor/matrix.hpp"
#include "spatha/config.hpp"
#include "spatha/plan.hpp"
#include "spatha/spmm.hpp"
#include "spatha/tuning_cache.hpp"

namespace venom::ops {

/// Construction knobs for an ExecContext.
struct ExecContextOptions {
  /// Worker threads of a private pool; 0 shares the process-wide pool
  /// (the right default — private pools are for isolating workloads).
  std::size_t threads = 0;
  std::size_t plan_cache_capacity = 64;
  /// Capacity of the quantized-weight cache (ops/quant_cache.hpp): how
  /// many distinct weights keep their int8/fp8 image warm when the
  /// quantized backends run over fp16 args. 0 disables memoization
  /// (every dispatch re-quantizes).
  std::size_t quant_cache_capacity = 16;
  /// JSON tuning cache for kernel-config selection. Empty uses the
  /// process-wide cache (lazily loaded from $VENOM_TUNE_CACHE); a path
  /// loads a private cache (missing/corrupt files degrade to the
  /// heuristic, matching TuningCache::try_load).
  std::string tuning_cache_path;
};

/// Per-head working buffers for cached (KV-ring) attention: gathered K/V
/// panels, the single-column query, the score row, and the context
/// column. Pooled so the steady-state decode step reuses buffers already
/// sized at their high-water mark and performs no heap allocation.
struct KvAttnScratch {
  HalfMatrix kh, vh, qh, ctx;
  FloatMatrix scores;
};

/// Owns the execution resources one workload's operator dispatches share.
/// Thread-safe for concurrent run() calls: the plan cache, tuning cache,
/// and scratch pool are internally synchronized, and the pool is shared
/// by design.
class ExecContext {
 public:
  ExecContext() : ExecContext(ExecContextOptions{}) {}
  explicit ExecContext(ExecContextOptions opts);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ThreadPool& pool() const { return *pool_; }
  spatha::PlanCache& plan_cache() const { return plan_cache_; }
  QuantCache& quant_cache() const { return quant_cache_; }
  spatha::SpmmScratchPool& scratch() const { return scratch_; }
  ObjectPool<KvAttnScratch>& kv_scratch() const { return kv_scratch_; }
  const ExecContextOptions& options() const { return opts_; }

  /// Kernel configuration for a V:N:M problem: the context's tuning
  /// cache entry when one exists for this build's CPU features, else the
  /// shape heuristic. With default options this is exactly
  /// spatha::select_config, so dispatch through a context is bit- and
  /// config-identical to the pre-ops direct kernel calls.
  spatha::SpmmConfig select_config(const VnmConfig& fmt, std::size_t rows,
                                   std::size_t cols,
                                   std::size_t b_cols) const;

  /// Kernel configuration for the int8 datapath: the context's
  /// "+i8"-tagged tuning entry when one exists, else the
  /// reduced-precision heuristic (spatha::select_config_i8).
  spatha::SpmmConfig select_config_i8(const VnmConfig& fmt, std::size_t rows,
                                      std::size_t cols,
                                      std::size_t b_cols) const;

  /// Kernel configuration for the fp8 datapath: the context's
  /// "+fp8"-tagged tuning entry when one exists, else the fp16 heuristic
  /// (spatha::select_config_fp8 — the fp8 kernel shares the float-panel
  /// pipeline).
  spatha::SpmmConfig select_config_fp8(const VnmConfig& fmt, std::size_t rows,
                                       std::size_t cols,
                                       std::size_t b_cols) const;

  /// The tuned entry alone (no heuristic fallback) — lets tooling report
  /// what the tuning cache contributes vs the heuristic.
  std::optional<spatha::SpmmConfig> tuned_config(const VnmConfig& fmt,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 std::size_t b_cols) const;

  /// The context's tuning cache: the private one when a path was given
  /// (loaded on first use), else TuningCache::global(). Exposed so
  /// callers that bypass the registry but honour a context's tuning —
  /// e.g. the quant::spmm_vnm_* convenience overloads — consult the same
  /// entries dispatch would.
  const spatha::TuningCache& tuning_cache() const;

  /// Process-wide default context (lazily constructed; default options).
  static ExecContext& global();

 private:
  ExecContextOptions opts_;
  std::unique_ptr<ThreadPool> owned_pool_;  // only when opts_.threads > 0
  ThreadPool* pool_ = nullptr;
  mutable spatha::PlanCache plan_cache_;
  mutable QuantCache quant_cache_;
  mutable spatha::SpmmScratchPool scratch_;
  mutable ObjectPool<KvAttnScratch> kv_scratch_;
  // Lazy one-shot load of the private tuning cache. std::call_once (not a
  // venom::Mutex) on purpose: the guarded action runs exactly once and
  // own_tuning_ is immutable afterwards — readers need no lock, which a
  // GUARDED_BY contract could not express. TuningCache's own mutex covers
  // the map accesses inside try_load/lookup.
  mutable std::once_flag tuning_once_;
  mutable spatha::TuningCache own_tuning_;
};

/// Context-resolution rule for layers whose weights can be shared
/// (read-only) across several execution contexts: the per-call override
/// wins, then the context attached to the layer, then the process-wide
/// default. Replicated serving passes a replica-private context per
/// forward call over one const encoder, so N replicas never contend on
/// one plan cache while sharing every weight byte.
inline ExecContext& resolve(ExecContext* preferred,
                            ExecContext* fallback = nullptr) {
  if (preferred != nullptr) return *preferred;
  if (fallback != nullptr) return *fallback;
  return ExecContext::global();
}

}  // namespace venom::ops
