// ExecContext-owned cache of quantized weight images.
//
// The quantized backends accept plain fp16 V:N:M args (that is what
// `VENOM_BACKEND=vnm-int8` produces: the caller built fp16 args, the
// override rerouted them) and quantize the left operand on the fly.
// Re-quantizing O(nnz) values per call would defeat the point, so a
// QuantCache memoizes the int8/fp8 image per weight — keyed by the
// caller-supplied weight fingerprint (MatmulArgs::vnm_fingerprint, the
// same pre-hashed handle the PlanCache keys on) plus shape and dtype —
// with the PlanCache's lifecycle: LRU-bounded, owned by the context,
// dropped with it. Callers without a fingerprint (one-shot args) bypass
// the cache and quantize fresh.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>

#include "common/fp8.hpp"
#include "common/mutex.hpp"
#include "format/vnm.hpp"
#include "quant/quantized_vnm.hpp"

namespace venom::ops {

/// LRU cache of immutable quantized weight images. Thread-safe; a miss
/// quantizes under the lock (quantization is per-weight, not per-call,
/// so contention on a miss is the rare path).
class QuantCache {
 public:
  explicit QuantCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// The int8 image of `a` (fingerprint `fp`), quantizing on miss.
  std::shared_ptr<const quant::QuantizedVnmMatrix> get_i8(
      const VnmMatrix& a, std::uint64_t fp) VENOM_EXCLUDES(mutex_);

  /// The fp8 image of `a` in `format`, quantizing on miss.
  std::shared_ptr<const quant::Fp8VnmMatrix> get_fp8(
      const VnmMatrix& a, std::uint64_t fp, Fp8Format format)
      VENOM_EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const VENOM_EXCLUDES(mutex_);

  std::size_t size() const VENOM_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  void clear() VENOM_EXCLUDES(mutex_);

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint8_t code = 0;  // 0 = int8, 1 = e5m2, 2 = e4m3

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const quant::QuantizedVnmMatrix> i8;
    std::shared_ptr<const quant::Fp8VnmMatrix> f8;
  };

  /// Returns the entry for `key`, moving it to the LRU front; nullptr on
  /// miss.
  Entry* find_locked(const Key& key) VENOM_REQUIRES(mutex_);
  /// Inserts at the LRU front, evicting the back past capacity.
  Entry& insert_locked(Entry entry) VENOM_REQUIRES(mutex_);

  std::size_t capacity_;
  mutable Mutex mutex_;
  // front = most recently used
  std::list<Entry> entries_ VENOM_GUARDED_BY(mutex_);
  Stats stats_ VENOM_GUARDED_BY(mutex_);
};

}  // namespace venom::ops
