#include "ops/context.hpp"

namespace venom::ops {

ExecContext::ExecContext(ExecContextOptions opts)
    : opts_(std::move(opts)),
      plan_cache_(opts_.plan_cache_capacity),
      quant_cache_(opts_.quant_cache_capacity) {
  if (opts_.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(opts_.threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::global();
  }
}

const spatha::TuningCache& ExecContext::tuning_cache() const {
  if (opts_.tuning_cache_path.empty()) return spatha::TuningCache::global();
  std::call_once(tuning_once_,
                 [this] { own_tuning_.try_load(opts_.tuning_cache_path); });
  return own_tuning_;
}

spatha::SpmmConfig ExecContext::select_config(const VnmConfig& fmt,
                                              std::size_t rows,
                                              std::size_t cols,
                                              std::size_t b_cols) const {
  // One shared policy with spatha::select_config (lookup -> validate ->
  // degrade to heuristic), differing only in which cache is consulted.
  return spatha::select_config(tuning_cache(), fmt, rows, cols, b_cols);
}

spatha::SpmmConfig ExecContext::select_config_i8(const VnmConfig& fmt,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 std::size_t b_cols) const {
  return spatha::select_config_i8(tuning_cache(), fmt, rows, cols, b_cols);
}

spatha::SpmmConfig ExecContext::select_config_fp8(const VnmConfig& fmt,
                                                  std::size_t rows,
                                                  std::size_t cols,
                                                  std::size_t b_cols) const {
  return spatha::select_config_fp8(tuning_cache(), fmt, rows, cols, b_cols);
}

std::optional<spatha::SpmmConfig> ExecContext::tuned_config(
    const VnmConfig& fmt, std::size_t rows, std::size_t cols,
    std::size_t b_cols) const {
  return tuning_cache().lookup(fmt, rows, cols, b_cols);
}

ExecContext& ExecContext::global() {
  static ExecContext ctx;
  return ctx;
}

}  // namespace venom::ops
