// Umbrella header for the venom::ops operator layer.
//
//   #include "ops/ops.hpp"
//
//   venom::ops::ExecContext ctx;                        // pool + caches
//   auto c = venom::ops::matmul(                        // dispatched SpMM
//       venom::ops::MatmulArgs::make(a_vnm, b), ctx);
//
// See matmul.hpp for the backend interface / registry and context.hpp
// for the execution-context resources.
#pragma once

#include "ops/context.hpp"
#include "ops/matmul.hpp"
#include "ops/timing.hpp"
