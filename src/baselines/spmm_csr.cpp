#include "baselines/spmm_csr.hpp"

#include <algorithm>

namespace venom {

FloatMatrix spmm_csr(const CsrMatrix& a, const HalfMatrix& b,
                     ThreadPool* pool) {
  VENOM_CHECK(a.cols() == b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  constexpr std::size_t kRowBlock = 32;
  const std::size_t row_blocks = (a.rows() + kRowBlock - 1) / kRowBlock;
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();

  // B converts to packed float once, so the row axpys are pure float.
  const FloatMatrix bf = to_float(b);
  const std::size_t width = b.cols();

  pool->parallel_for(row_blocks, [&](std::size_t rb) {
    const std::size_t r0 = rb * kRowBlock;
    const std::size_t r1 = std::min(a.rows(), r0 + kRowBlock);
    for (std::size_t r = r0; r < r1; ++r) {
      float* crow = &c(r, 0);
      for (std::uint32_t i = offsets[r]; i < offsets[r + 1]; ++i) {
        const float av = vals[i].to_float();
        const float* brow = &bf(cols[i], 0);
        for (std::size_t n = 0; n < width; ++n)
          crow[n] += av * brow[n];
      }
    }
  });
  return c;
}

}  // namespace venom
