// Dense half-precision GEMM — the cuBLAS stand-in.
//
// C(RxN, fp32) = A(RxK, fp16) * B(KxN, fp16), fp32 accumulation. The CPU
// implementation blocks over rows and K panels and parallelizes row blocks
// on the thread pool; it is the correctness oracle for every sparse kernel
// and the denominator of every speedup in the figures.
#pragma once

#include "common/thread_pool.hpp"
#include "tensor/matrix.hpp"

namespace venom {

/// C = A * B with fp32 accumulators. Throws on shape mismatch.
/// `pool` nullptr means ThreadPool::global().
FloatMatrix gemm_dense(const HalfMatrix& a, const HalfMatrix& b,
                       ThreadPool* pool = nullptr);

/// Naive triple loop in double precision — oracle for the oracle. Used
/// only in tests (O(RKN) with no blocking).
FloatMatrix gemm_reference(const HalfMatrix& a, const HalfMatrix& b);

/// Number of useful FLOPs of a dense R x K x N GEMM (2*R*K*N).
inline double gemm_flops(std::size_t r, std::size_t k, std::size_t n) {
  return 2.0 * static_cast<double>(r) * static_cast<double>(k) *
         static_cast<double>(n);
}

}  // namespace venom
