#include "baselines/spmm_cvse.hpp"

namespace venom {

FloatMatrix spmm_cvse(const CvseMatrix& a, const HalfMatrix& b,
                      ThreadPool* pool) {
  VENOM_CHECK(a.cols() == b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const auto& offsets = a.group_offsets();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  const std::size_t vlen = a.vec_len();

  pool->parallel_for(a.row_groups(), [&](std::size_t g) {
    for (std::uint32_t i = offsets[g]; i < offsets[g + 1]; ++i) {
      const half_t* brow = &b(cols[i], 0);
      for (std::size_t dr = 0; dr < vlen; ++dr) {
        const float av = vals[i * vlen + dr].to_float();
        if (av == 0.0f) continue;
        float* crow = &c(g * vlen + dr, 0);
        for (std::size_t n = 0; n < b.cols(); ++n)
          crow[n] += av * brow[n].to_float();
      }
    }
  });
  return c;
}

}  // namespace venom
