#include "baselines/spmm_cvse.hpp"

#include <vector>

namespace venom {

FloatMatrix spmm_cvse(const CvseMatrix& a, const HalfMatrix& b,
                      ThreadPool* pool) {
  VENOM_CHECK(a.cols() == b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const auto& offsets = a.group_offsets();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  const std::size_t vlen = a.vec_len();
  const std::size_t width = b.cols();

  // B converts to packed float once; the vector values convert in bulk
  // per gathered vector instead of per FMA.
  const FloatMatrix bf = to_float(b);

  pool->parallel_for_chunks(a.row_groups(), [&](std::size_t g0, std::size_t g1) {
    std::vector<float> vvals(vlen);
    for (std::size_t g = g0; g < g1; ++g) {
      for (std::uint32_t i = offsets[g]; i < offsets[g + 1]; ++i) {
        const float* brow = &bf(cols[i], 0);
        half_to_float_n(&vals[i * vlen], vvals.data(), vlen);
        for (std::size_t dr = 0; dr < vlen; ++dr) {
          const float av = vvals[dr];
          if (av == 0.0f) continue;
          float* crow = &c(g * vlen + dr, 0);
          for (std::size_t n = 0; n < width; ++n) crow[n] += av * brow[n];
        }
      }
    }
  });
  return c;
}

}  // namespace venom
