// CSR SpMM — the Sputnik stand-in.
//
// Sputnik [Gale et al., SC'20] schedules unstructured CSR rows as 1-D
// tiles with each tile streaming its row's nonzeros against B. The CPU
// port keeps the same decomposition: one task per row block, sequential
// nonzero traversal inside.
#pragma once

#include "common/thread_pool.hpp"
#include "format/csr.hpp"
#include "tensor/matrix.hpp"

namespace venom {

/// C = A_csr * B.
FloatMatrix spmm_csr(const CsrMatrix& a, const HalfMatrix& b,
                     ThreadPool* pool = nullptr);

}  // namespace venom
