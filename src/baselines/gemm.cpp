#include "baselines/gemm.hpp"

#include <algorithm>
#include <vector>

namespace venom {

FloatMatrix gemm_dense(const HalfMatrix& a, const HalfMatrix& b,
                       ThreadPool* pool) {
  VENOM_CHECK_MSG(a.cols() == b.rows(), "GEMM shape mismatch: "
                                            << a.rows() << 'x' << a.cols()
                                            << " * " << b.rows() << 'x'
                                            << b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();
  FloatMatrix c(a.rows(), b.cols());

  // Bulk-convert both operands once; the panel loops then run pure-float
  // axpy rows that the compiler vectorizes.
  const FloatMatrix af = to_float(a);
  const FloatMatrix bf = to_float(b);

  constexpr std::size_t kRowBlock = 32;
  constexpr std::size_t kPanelK = 256;
  const std::size_t row_blocks = (a.rows() + kRowBlock - 1) / kRowBlock;

  pool->parallel_for(row_blocks, [&](std::size_t rb) {
    const std::size_t r0 = rb * kRowBlock;
    const std::size_t r1 = std::min(a.rows(), r0 + kRowBlock);
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kPanelK) {
      const std::size_t k1 = std::min(a.cols(), k0 + kPanelK);
      for (std::size_t r = r0; r < r1; ++r) {
        float* crow = &c(r, 0);
        const float* arow = &af(r, 0);
        for (std::size_t k = k0; k < k1; ++k) {
          const float av = arow[k];
          if (av == 0.0f) continue;
          const float* brow = &bf(k, 0);
          for (std::size_t n = 0; n < b.cols(); ++n)
            crow[n] += av * brow[n];
        }
      }
    }
  });
  return c;
}

FloatMatrix gemm_reference(const HalfMatrix& a, const HalfMatrix& b) {
  VENOM_CHECK(a.cols() == b.rows());
  FloatMatrix c(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t n = 0; n < b.cols(); ++n) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += static_cast<double>(a(r, k).to_float()) *
               static_cast<double>(b(k, n).to_float());
      c(r, n) = static_cast<float>(acc);
    }
  return c;
}

}  // namespace venom
