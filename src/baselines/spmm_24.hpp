// 2:4 SpMM — the cuSparseLt stand-in.
//
// Executes C = A_24 * B where A is stored in the native N:M format
// (NmMatrix with pattern 2:4 or 1:2). Two code paths are provided:
//   spmm_24        — direct indexed traversal (production path)
//   spmm_24_mma    — routes every 16x8x32 tile through the SPTC simulator
//                    (sptc::mma_sp_fp16), proving the format maps onto the
//                    hardware instruction exactly as Fig. 1 describes.
#pragma once

#include "common/thread_pool.hpp"
#include "format/nm.hpp"
#include "tensor/matrix.hpp"

namespace venom {

/// C = A * B for a native N:M (hardware-supported) sparse A.
/// Requires pattern 2:4 or 1:2 — the shapes cuSparseLt accepts.
FloatMatrix spmm_24(const NmMatrix& a, const HalfMatrix& b,
                    ThreadPool* pool = nullptr);

/// Same product computed tile-by-tile through the mma.sp simulator.
/// Requires pattern 2:4, rows % 16 == 0, cols % 32 == 0, b.cols() % 8 == 0.
FloatMatrix spmm_24_mma(const NmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool = nullptr);

}  // namespace venom
