// Column-vector-sparse SpMM — the CLASP / vectorSparse stand-in.
//
// CLASP [Castro et al., PACT'22] multiplies column-vector encoded sparse
// matrices on tensor cores: each kept vertical vector contributes a
// rank-1 update of `vec_len` output rows against one row of B. The CPU
// port parallelizes over row groups.
#pragma once

#include "common/thread_pool.hpp"
#include "format/cvse.hpp"
#include "tensor/matrix.hpp"

namespace venom {

/// C = A_cvse * B.
FloatMatrix spmm_cvse(const CvseMatrix& a, const HalfMatrix& b,
                      ThreadPool* pool = nullptr);

}  // namespace venom
