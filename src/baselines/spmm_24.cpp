#include "baselines/spmm_24.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sptc/metadata.hpp"
#include "sptc/mma.hpp"

namespace venom {

FloatMatrix spmm_24(const NmMatrix& a, const HalfMatrix& b,
                    ThreadPool* pool) {
  const NmPattern p = a.pattern();
  VENOM_CHECK_MSG((p.n == 2 && p.m == 4) || (p.n == 1 && p.m == 2),
                  "cuSparseLt-style SpMM supports only 2:4 / 1:2, got "
                      << p.n << ':' << p.m);
  VENOM_CHECK(a.cols() == b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  const std::size_t width = b.cols();
  constexpr std::size_t kRowBlock = 32;
  const std::size_t row_blocks = (a.rows() + kRowBlock - 1) / kRowBlock;

  // B converts to packed float once; each row's nonzero descriptors are
  // hoisted into flat scratch ahead of the vectorizable axpy loops.
  const FloatMatrix bf = to_float(b);

  pool->parallel_for_chunks(row_blocks, [&](std::size_t rb0, std::size_t rb1) {
    std::vector<float> vals(groups * p.n);
    std::vector<std::uint32_t> rows(groups * p.n);
    for (std::size_t rb = rb0; rb < rb1; ++rb) {
      const std::size_t r0 = rb * kRowBlock;
      const std::size_t r1 = std::min(a.rows(), r0 + kRowBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        std::size_t cnt = 0;
        for (std::size_t g = 0; g < groups; ++g) {
          for (std::size_t j = 0; j < p.n; ++j) {
            const half_t v = a.value(r, g, j);
            if (v.is_zero()) continue;
            vals[cnt] = v.to_float();
            rows[cnt] =
                static_cast<std::uint32_t>(g * p.m + a.index(r, g, j));
            ++cnt;
          }
        }
        float* crow = &c(r, 0);
        for (std::size_t t = 0; t < cnt; ++t) {
          const float av = vals[t];
          const float* brow = &bf(rows[t], 0);
          for (std::size_t n = 0; n < width; ++n) crow[n] += av * brow[n];
        }
      }
    }
  });
  return c;
}

FloatMatrix spmm_24_mma(const NmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool) {
  const NmPattern p = a.pattern();
  VENOM_CHECK_MSG(p.n == 2 && p.m == 4, "mma.sp path requires 2:4");
  VENOM_CHECK(a.cols() == b.rows());
  VENOM_CHECK_MSG(a.rows() % 16 == 0 && a.cols() % 32 == 0 &&
                      b.cols() % 8 == 0,
                  "tile path requires 16 | rows, 32 | cols, 8 | b.cols");
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t tiles_r = a.rows() / 16;
  const std::size_t tiles_n = b.cols() / 8;
  const std::size_t tiles_k = a.cols() / 32;
  const std::size_t groups = a.groups_per_row();

  pool->parallel_for_chunks(
      tiles_r * tiles_n, [&](std::size_t t0, std::size_t t1) {
        // Tile staging buffers are reused across the tiles of a chunk.
        std::vector<half_t> a_tile(16 * 16);
        std::vector<std::uint8_t> idx_tile(16 * 16);
        std::vector<half_t> b_tile(32 * 8);
        std::vector<float> c_tile(16 * 8);

        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t tr = t / tiles_n;
          const std::size_t tn = t % tiles_n;
          std::fill(c_tile.begin(), c_tile.end(), 0.0f);

          for (std::size_t tk = 0; tk < tiles_k; ++tk) {
            // Stage the compressed A tile: rows tr*16.., K-groups tk*8..
            // (8 groups of 4 dense columns = 32 dense / 16 compressed
            // cols). The compressed row is contiguous in the format
            // arrays, so staging is two flat 16-element copies per row.
            for (std::size_t i = 0; i < 16; ++i) {
              const std::size_t r = tr * 16 + i;
              const std::size_t base = (r * groups + tk * 8) * 2;
              std::copy(a.values().data() + base,
                        a.values().data() + base + 16, &a_tile[i * 16]);
              std::copy(a.indices().data() + base,
                        a.indices().data() + base + 16, &idx_tile[i * 16]);
            }
            const auto meta = sptc::pack_metadata(idx_tile);
            // Stage the dense B tile: rows tk*32.., cols tn*8..
            for (std::size_t i = 0; i < 32; ++i) {
              const half_t* src = &b(tk * 32 + i, tn * 8);
              std::copy(src, src + 8, &b_tile[i * 8]);
            }
            sptc::mma_sp_fp16(32, a_tile, meta, b_tile, c_tile);
          }
          for (std::size_t i = 0; i < 16; ++i)
            for (std::size_t n = 0; n < 8; ++n)
              c(tr * 16 + i, tn * 8 + n) = c_tile[i * 8 + n];
        }
      });
  return c;
}

}  // namespace venom
