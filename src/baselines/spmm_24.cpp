#include "baselines/spmm_24.hpp"

#include <algorithm>
#include <vector>

#include "sptc/metadata.hpp"
#include "sptc/mma.hpp"

namespace venom {

FloatMatrix spmm_24(const NmMatrix& a, const HalfMatrix& b,
                    ThreadPool* pool) {
  const NmPattern p = a.pattern();
  VENOM_CHECK_MSG((p.n == 2 && p.m == 4) || (p.n == 1 && p.m == 2),
                  "cuSparseLt-style SpMM supports only 2:4 / 1:2, got "
                      << p.n << ':' << p.m);
  VENOM_CHECK(a.cols() == b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  constexpr std::size_t kRowBlock = 32;
  const std::size_t row_blocks = (a.rows() + kRowBlock - 1) / kRowBlock;

  pool->parallel_for(row_blocks, [&](std::size_t rb) {
    const std::size_t r0 = rb * kRowBlock;
    const std::size_t r1 = std::min(a.rows(), r0 + kRowBlock);
    for (std::size_t r = r0; r < r1; ++r) {
      float* crow = &c(r, 0);
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t j = 0; j < p.n; ++j) {
          const half_t v = a.value(r, g, j);
          if (v.is_zero()) continue;
          const float av = v.to_float();
          const std::size_t col = g * p.m + a.index(r, g, j);
          const half_t* brow = &b(col, 0);
          for (std::size_t n = 0; n < b.cols(); ++n)
            crow[n] += av * brow[n].to_float();
        }
      }
    }
  });
  return c;
}

FloatMatrix spmm_24_mma(const NmMatrix& a, const HalfMatrix& b,
                        ThreadPool* pool) {
  const NmPattern p = a.pattern();
  VENOM_CHECK_MSG(p.n == 2 && p.m == 4, "mma.sp path requires 2:4");
  VENOM_CHECK(a.cols() == b.rows());
  VENOM_CHECK_MSG(a.rows() % 16 == 0 && a.cols() % 32 == 0 &&
                      b.cols() % 8 == 0,
                  "tile path requires 16 | rows, 32 | cols, 8 | b.cols");
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t tiles_r = a.rows() / 16;
  const std::size_t tiles_n = b.cols() / 8;
  const std::size_t tiles_k = a.cols() / 32;
  const std::size_t groups = a.groups_per_row();

  pool->parallel_for(tiles_r * tiles_n, [&](std::size_t t) {
    const std::size_t tr = t / tiles_n;
    const std::size_t tn = t % tiles_n;
    std::vector<half_t> a_tile(16 * 16);
    std::vector<std::uint8_t> idx_tile(16 * 16);
    std::vector<half_t> b_tile(32 * 8);
    std::vector<float> c_tile(16 * 8, 0.0f);

    for (std::size_t tk = 0; tk < tiles_k; ++tk) {
      // Stage the compressed A tile: rows tr*16.., K-groups tk*8..
      // (8 groups of 4 dense columns = 32 dense / 16 compressed cols).
      for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t r = tr * 16 + i;
        for (std::size_t gg = 0; gg < 8; ++gg) {
          const std::size_t g = tk * 8 + gg;
          (void)groups;
          for (std::size_t j = 0; j < 2; ++j) {
            a_tile[i * 16 + gg * 2 + j] = a.value(r, g, j);
            idx_tile[i * 16 + gg * 2 + j] = a.index(r, g, j);
          }
        }
      }
      const auto meta = sptc::pack_metadata(idx_tile);
      // Stage the dense B tile: rows tk*32.., cols tn*8..
      for (std::size_t i = 0; i < 32; ++i)
        for (std::size_t n = 0; n < 8; ++n)
          b_tile[i * 8 + n] = b(tk * 32 + i, tn * 8 + n);

      sptc::mma_sp_fp16(32, a_tile, meta, b_tile, c_tile);
    }
    for (std::size_t i = 0; i < 16; ++i)
      for (std::size_t n = 0; n < 8; ++n)
        c(tr * 16 + i, tn * 8 + n) = c_tile[i * 8 + n];
  });
  return c;
}

}  // namespace venom
