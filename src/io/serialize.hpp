// Binary serialization for dense matrices and compressed formats.
//
// A minimal self-describing container: 4-byte magic, u32 version, shape
// and format metadata as u64 fields, then raw little-endian payloads.
// Used by the venomtool CLI and by applications that want to ship
// pre-compressed V:N:M weights to deployment.
//
//   MATH — HalfMatrix      MATF — FloatMatrix      VNM1 — VnmMatrix
//   NMF1 — NmMatrix        CSR1 — CsrMatrix        QVN1 — QuantizedVnmMatrix
//   FVN1 — Fp8VnmMatrix
//
// The empirical tuning cache is the one human-readable artefact: a JSON
// document (see save_tuning_cache below) so tuned kernel configurations
// can be inspected, diffed, and checked into deployment images.
#pragma once

#include <string>

#include "format/csr.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/tuning_cache.hpp"
#include "tensor/matrix.hpp"

namespace venom::io {

/// Kind of artefact stored in a file (from its magic; a leading '{'
/// marks the JSON tuning cache).
enum class FileKind {
  kHalfMatrix,
  kFloatMatrix,
  kVnmMatrix,
  kNmMatrix,
  kCsrMatrix,
  kQuantVnmMatrix,
  kFp8VnmMatrix,
  kTuningCache,
  kUnknown
};

/// Peeks at a file's magic without loading the payload.
FileKind probe(const std::string& path);

void save(const HalfMatrix& m, const std::string& path);
void save(const FloatMatrix& m, const std::string& path);
void save(const VnmMatrix& m, const std::string& path);
void save(const NmMatrix& m, const std::string& path);
void save(const CsrMatrix& m, const std::string& path);
void save(const quant::QuantizedVnmMatrix& m, const std::string& path);
void save(const quant::Fp8VnmMatrix& m, const std::string& path);

/// Loaders throw venom::Error on missing files, bad magic, truncated
/// payloads, or invalid format metadata.
HalfMatrix load_half_matrix(const std::string& path);
FloatMatrix load_float_matrix(const std::string& path);
VnmMatrix load_vnm_matrix(const std::string& path);
NmMatrix load_nm_matrix(const std::string& path);
CsrMatrix load_csr_matrix(const std::string& path);
quant::QuantizedVnmMatrix load_quant_vnm_matrix(const std::string& path);
quant::Fp8VnmMatrix load_fp8_vnm_matrix(const std::string& path);

/// Writes the tuning cache as a JSON document:
///
///   {"format": "venom-tune-cache", "version": 1, "entries": [
///     {"r":…, "k":…, "c":…, "v":…, "n":…, "m":…, "features":"…",
///      "config": {"block_k":…, "block_c":…, "warp_r":…, "warp_k":…,
///                 "warp_c":…, "batch_size":…, "chunk_grain":…},
///      "gflops":…, "heuristic_gflops":…, "threads":…}, …]}
void save_tuning_cache(const spatha::TuningCache& cache,
                       const std::string& path);

/// Parses a JSON tuning cache. Throws venom::Error on a missing file,
/// malformed JSON, a foreign "format" tag, an unsupported version, or
/// missing/invalid entry fields (TuningCache::try_load wraps this with a
/// non-throwing fallback for dispatch-time lazy loading).
spatha::TuningCache load_tuning_cache(const std::string& path);

}  // namespace venom::io
