// Binary serialization for dense matrices and compressed formats.
//
// A minimal self-describing container: 4-byte magic, u32 version, shape
// and format metadata as u64 fields, then raw little-endian payloads.
// Used by the venomtool CLI and by applications that want to ship
// pre-compressed V:N:M weights to deployment.
//
//   MATH — HalfMatrix      MATF — FloatMatrix      VNM1 — VnmMatrix
//   NMF1 — NmMatrix        CSR1 — CsrMatrix
#pragma once

#include <string>

#include "format/csr.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::io {

/// Kind of artefact stored in a file (from its magic).
enum class FileKind {
  kHalfMatrix,
  kFloatMatrix,
  kVnmMatrix,
  kNmMatrix,
  kCsrMatrix,
  kUnknown
};

/// Peeks at a file's magic without loading the payload.
FileKind probe(const std::string& path);

void save(const HalfMatrix& m, const std::string& path);
void save(const FloatMatrix& m, const std::string& path);
void save(const VnmMatrix& m, const std::string& path);
void save(const NmMatrix& m, const std::string& path);
void save(const CsrMatrix& m, const std::string& path);

/// Loaders throw venom::Error on missing files, bad magic, truncated
/// payloads, or invalid format metadata.
HalfMatrix load_half_matrix(const std::string& path);
FloatMatrix load_float_matrix(const std::string& path);
VnmMatrix load_vnm_matrix(const std::string& path);
NmMatrix load_nm_matrix(const std::string& path);
CsrMatrix load_csr_matrix(const std::string& path);

}  // namespace venom::io
