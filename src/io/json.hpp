// Minimal JSON reader shared by the human-readable artefacts: the
// empirical tuning cache (io/serialize.cpp) and the serving engine plan
// (serving/plan.cpp). Objects, arrays, strings, numbers, booleans, null
// — enough for the documents the writers emit plus hand-edited
// variants; anything malformed throws venom::Error with the byte offset
// so a corrupt file is diagnosable.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace venom::io {

/// One parsed JSON value (a small tagged union; objects keep insertion
/// order and allow linear get() — the documents are tiny).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parses `text` (read from `path`, named in error messages) into a
/// JsonValue tree. Throws venom::Error on malformed input.
JsonValue parse_json(const std::string& text, const std::string& path);

/// Required numeric field of a JSON object, as a size (rejects negatives
/// and non-integers) — the shape/config fields of a cache entry.
std::size_t json_size_field(const JsonValue& obj, const char* key,
                            const std::string& path);

/// Required numeric field of a JSON object, as a double.
double json_double_field(const JsonValue& obj, const char* key,
                         const std::string& path);

/// Required string field of a JSON object.
const std::string& json_string_field(const JsonValue& obj, const char* key,
                                     const std::string& path);

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes).
void json_escape_to(std::string& out, const std::string& s);

}  // namespace venom::io
