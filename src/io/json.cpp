#include "io/json.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace venom::io {

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& path)
      : text_(text), path_(path) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    check(pos_ == text_.size(), "trailing garbage");
    return v;
  }

 private:
  void check(bool ok, const char* what) const {
    VENOM_CHECK_MSG(ok, "'" << path_ << "' is not a valid JSON document ("
                            << what << " at byte " << pos_ << ")");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    check(peek() == c, "unexpected character");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      check(consume_literal("null"), "bad literal");
      return {};
    }
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.str), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          default: check(false, "unsupported escape");
        }
        continue;
      }
      check(static_cast<unsigned char>(c) >= 0x20, "control character");
      v.str += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (consume_literal("true")) {
      v.boolean = true;
      return v;
    }
    check(consume_literal("false"), "bad literal");
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    check(pos_ > start, "expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    v.number = std::strtod(tok.c_str(), &end);
    check(end != nullptr && *end == '\0', "bad number");
    return v;
  }

  const std::string& text_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& path) {
  return JsonParser(text, path).parse();
}

std::size_t json_size_field(const JsonValue& obj, const char* key,
                            const std::string& path) {
  const JsonValue* v = obj.get(key);
  // The 2^53 cap both bounds the value before the float-to-integer
  // conversion (UB for >= 2^64) and guarantees the double held it
  // exactly.
  VENOM_CHECK_MSG(v != nullptr && v->type == JsonValue::Type::kNumber &&
                      v->number >= 0.0 && v->number < 9007199254740992.0 &&
                      v->number == double(std::uint64_t(v->number)),
                  "'" << path << "' entry missing numeric \"" << key
                      << "\"");
  return static_cast<std::size_t>(v->number);
}

double json_double_field(const JsonValue& obj, const char* key,
                         const std::string& path) {
  const JsonValue* v = obj.get(key);
  VENOM_CHECK_MSG(v != nullptr && v->type == JsonValue::Type::kNumber,
                  "'" << path << "' entry missing numeric \"" << key
                      << "\"");
  return v->number;
}

const std::string& json_string_field(const JsonValue& obj, const char* key,
                                     const std::string& path) {
  const JsonValue* v = obj.get(key);
  VENOM_CHECK_MSG(v != nullptr && v->type == JsonValue::Type::kString,
                  "'" << path << "' entry missing string \"" << key << "\"");
  return v->str;
}

void json_escape_to(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace venom::io
