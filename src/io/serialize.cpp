#include "io/serialize.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace venom::io {

namespace {

constexpr std::uint32_t kVersion = 1;
constexpr char kMagicHalf[4] = {'M', 'A', 'T', 'H'};
constexpr char kMagicFloat[4] = {'M', 'A', 'T', 'F'};
constexpr char kMagicVnm[4] = {'V', 'N', 'M', '1'};
constexpr char kMagicNm[4] = {'N', 'M', 'F', '1'};
constexpr char kMagicCsr[4] = {'C', 'S', 'R', '1'};

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    VENOM_CHECK_MSG(out_.good(), "cannot open '" << path << "' for writing");
  }
  void magic(const char m[4]) { out_.write(m, 4); }
  void u32(std::uint32_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void u64(std::uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  template <typename T>
  void raw(const T* data, std::size_t count) {
    out_.write(reinterpret_cast<const char*>(data),
               std::streamsize(count * sizeof(T)));
  }
  void finish(const std::string& path) {
    out_.flush();
    VENOM_CHECK_MSG(out_.good(), "write to '" << path << "' failed");
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary),
                                             path_(path) {
    VENOM_CHECK_MSG(in_.good(), "cannot open '" << path << "' for reading");
  }
  void expect_magic(const char m[4]) {
    char got[4] = {};
    in_.read(got, 4);
    VENOM_CHECK_MSG(in_.good() && std::memcmp(got, m, 4) == 0,
                    "'" << path_ << "' has wrong magic (expected "
                        << std::string(m, 4) << ")");
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    check();
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    check();
    return v;
  }
  template <typename T>
  std::vector<T> raw(std::size_t count) {
    std::vector<T> data(count);
    in_.read(reinterpret_cast<char*>(data.data()),
             std::streamsize(count * sizeof(T)));
    check();
    return data;
  }

 private:
  void check() {
    VENOM_CHECK_MSG(in_.good(), "'" << path_ << "' is truncated or corrupt");
  }
  std::ifstream in_;
  std::string path_;
};

}  // namespace

FileKind probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return FileKind::kUnknown;
  char magic[4] = {};
  in.read(magic, 4);
  if (!in.good()) return FileKind::kUnknown;
  if (std::memcmp(magic, kMagicHalf, 4) == 0) return FileKind::kHalfMatrix;
  if (std::memcmp(magic, kMagicFloat, 4) == 0) return FileKind::kFloatMatrix;
  if (std::memcmp(magic, kMagicVnm, 4) == 0) return FileKind::kVnmMatrix;
  if (std::memcmp(magic, kMagicNm, 4) == 0) return FileKind::kNmMatrix;
  if (std::memcmp(magic, kMagicCsr, 4) == 0) return FileKind::kCsrMatrix;
  return FileKind::kUnknown;
}

void save(const HalfMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicHalf);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  // half_t is a trivially-copyable 2-byte wrapper; store raw bit patterns.
  std::vector<std::uint16_t> bits(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) bits[i] = m.flat()[i].bits();
  w.raw(bits.data(), bits.size());
  w.finish(path);
}

void save(const FloatMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicFloat);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw(m.data(), m.size());
  w.finish(path);
}

void save(const VnmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicVnm);
  w.u32(kVersion);
  w.u64(m.config().v);
  w.u64(m.config().n);
  w.u64(m.config().m);
  w.u64(m.rows());
  w.u64(m.cols());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.raw(m.m_indices().data(), m.m_indices().size());
  w.raw(m.column_locs().data(), m.column_locs().size());
  w.finish(path);
}

void save(const NmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicNm);
  w.u32(kVersion);
  w.u64(m.pattern().n);
  w.u64(m.pattern().m);
  w.u64(m.rows());
  w.u64(m.cols());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.raw(m.indices().data(), m.indices().size());
  w.finish(path);
}

void save(const CsrMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicCsr);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  w.u64(m.nnz());
  w.raw(m.row_offsets().data(), m.row_offsets().size());
  w.raw(m.col_indices().data(), m.col_indices().size());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.finish(path);
}

HalfMatrix load_half_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicHalf);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const auto bits = r.raw<std::uint16_t>(rows * cols);
  HalfMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.flat()[i] = half_t::from_bits(bits[i]);
  return m;
}

FloatMatrix load_float_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicFloat);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const auto data = r.raw<float>(rows * cols);
  FloatMatrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.flat().begin());
  return m;
}

VnmMatrix load_vnm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicVnm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  VnmConfig cfg;
  cfg.v = r.u64();
  cfg.n = r.u64();
  cfg.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  VENOM_CHECK_MSG(cfg.m >= 2 && cols % cfg.m == 0 && cfg.v >= 1 &&
                      rows % cfg.v == 0,
                  "invalid VNM metadata in " << path);
  const std::size_t groups = cols / cfg.m;
  const auto bits = r.raw<std::uint16_t>(rows * groups * cfg.n);
  std::vector<half_t> values(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    values[i] = half_t::from_bits(bits[i]);
  auto m_indices = r.raw<std::uint8_t>(values.size());
  auto column_loc =
      r.raw<std::uint8_t>((rows / cfg.v) * groups * cfg.selected_cols());
  return VnmMatrix::from_parts(cfg, rows, cols, std::move(values),
                               std::move(m_indices), std::move(column_loc));
}

NmMatrix load_nm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicNm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  NmPattern pattern;
  pattern.n = r.u64();
  pattern.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  VENOM_CHECK_MSG(pattern.m >= 2 && cols % pattern.m == 0,
                  "invalid N:M metadata in " << path);
  const std::size_t count = rows * (cols / pattern.m) * pattern.n;
  const auto bits = r.raw<std::uint16_t>(count);
  std::vector<half_t> values(count);
  for (std::size_t i = 0; i < count; ++i)
    values[i] = half_t::from_bits(bits[i]);
  auto indices = r.raw<std::uint8_t>(count);
  return NmMatrix::from_parts(pattern, rows, cols, std::move(values),
                              std::move(indices));
}

CsrMatrix load_csr_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicCsr);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const std::size_t nnz = r.u64();
  auto offsets = r.raw<std::uint32_t>(rows + 1);
  auto col_indices = r.raw<std::uint32_t>(nnz);
  const auto bits = r.raw<std::uint16_t>(nnz);
  std::vector<half_t> values(nnz);
  for (std::size_t i = 0; i < nnz; ++i)
    values[i] = half_t::from_bits(bits[i]);
  return CsrMatrix::from_parts(rows, cols, std::move(offsets),
                               std::move(col_indices), std::move(values));
}

}  // namespace venom::io
