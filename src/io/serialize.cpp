#include "io/serialize.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "io/json.hpp"

namespace venom::io {

namespace {

constexpr std::uint32_t kVersion = 1;
constexpr char kMagicHalf[4] = {'M', 'A', 'T', 'H'};
constexpr char kMagicFloat[4] = {'M', 'A', 'T', 'F'};
constexpr char kMagicVnm[4] = {'V', 'N', 'M', '1'};
constexpr char kMagicNm[4] = {'N', 'M', 'F', '1'};
constexpr char kMagicCsr[4] = {'C', 'S', 'R', '1'};
constexpr char kMagicQuantVnm[4] = {'Q', 'V', 'N', '1'};
constexpr char kMagicFp8Vnm[4] = {'F', 'V', 'N', '1'};

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    VENOM_CHECK_MSG(out_.good(), "cannot open '" << path << "' for writing");
  }
  void magic(const char m[4]) { out_.write(m, 4); }
  void u32(std::uint32_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void u64(std::uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  template <typename T>
  void raw(const T* data, std::size_t count) {
    out_.write(reinterpret_cast<const char*>(data),
               std::streamsize(count * sizeof(T)));
  }
  void finish(const std::string& path) {
    out_.flush();
    VENOM_CHECK_MSG(out_.good(), "write to '" << path << "' failed");
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary),
                                             path_(path) {
    VENOM_CHECK_MSG(in_.good(), "cannot open '" << path << "' for reading");
  }
  void expect_magic(const char m[4]) {
    char got[4] = {};
    in_.read(got, 4);
    VENOM_CHECK_MSG(in_.good() && std::memcmp(got, m, 4) == 0,
                    "'" << path_ << "' has wrong magic (expected "
                        << std::string(m, 4) << ")");
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    check();
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    check();
    return v;
  }
  template <typename T>
  std::vector<T> raw(std::size_t count) {
    std::vector<T> data(count);
    in_.read(reinterpret_cast<char*>(data.data()),
             std::streamsize(count * sizeof(T)));
    check();
    return data;
  }

 private:
  void check() {
    VENOM_CHECK_MSG(in_.good(), "'" << path_ << "' is truncated or corrupt");
  }
  std::ifstream in_;
  std::string path_;
};

}  // namespace

FileKind probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return FileKind::kUnknown;
  char magic[4] = {};
  in.read(magic, 4);
  if (!in.good()) return FileKind::kUnknown;
  if (std::memcmp(magic, kMagicHalf, 4) == 0) return FileKind::kHalfMatrix;
  if (std::memcmp(magic, kMagicFloat, 4) == 0) return FileKind::kFloatMatrix;
  if (std::memcmp(magic, kMagicVnm, 4) == 0) return FileKind::kVnmMatrix;
  if (std::memcmp(magic, kMagicNm, 4) == 0) return FileKind::kNmMatrix;
  if (std::memcmp(magic, kMagicCsr, 4) == 0) return FileKind::kCsrMatrix;
  if (std::memcmp(magic, kMagicQuantVnm, 4) == 0)
    return FileKind::kQuantVnmMatrix;
  if (std::memcmp(magic, kMagicFp8Vnm, 4) == 0) return FileKind::kFp8VnmMatrix;
  if (magic[0] == '{') return FileKind::kTuningCache;
  return FileKind::kUnknown;
}

void save(const HalfMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicHalf);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  // half_t is a trivially-copyable 2-byte wrapper; store raw bit patterns.
  std::vector<std::uint16_t> bits(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) bits[i] = m.flat()[i].bits();
  w.raw(bits.data(), bits.size());
  w.finish(path);
}

void save(const FloatMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicFloat);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw(m.data(), m.size());
  w.finish(path);
}

void save(const VnmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicVnm);
  w.u32(kVersion);
  w.u64(m.config().v);
  w.u64(m.config().n);
  w.u64(m.config().m);
  w.u64(m.rows());
  w.u64(m.cols());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.raw(m.m_indices().data(), m.m_indices().size());
  w.raw(m.column_locs().data(), m.column_locs().size());
  w.finish(path);
}

void save(const NmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicNm);
  w.u32(kVersion);
  w.u64(m.pattern().n);
  w.u64(m.pattern().m);
  w.u64(m.rows());
  w.u64(m.cols());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.raw(m.indices().data(), m.indices().size());
  w.finish(path);
}

void save(const CsrMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicCsr);
  w.u32(kVersion);
  w.u64(m.rows());
  w.u64(m.cols());
  w.u64(m.nnz());
  w.raw(m.row_offsets().data(), m.row_offsets().size());
  w.raw(m.col_indices().data(), m.col_indices().size());
  std::vector<std::uint16_t> bits(m.values().size());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = m.values()[i].bits();
  w.raw(bits.data(), bits.size());
  w.finish(path);
}

void save(const quant::QuantizedVnmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicQuantVnm);
  w.u32(kVersion);
  w.u64(m.config().v);
  w.u64(m.config().n);
  w.u64(m.config().m);
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw(m.values().data(), m.values().size());
  w.raw(m.m_indices().data(), m.m_indices().size());
  w.raw(m.column_locs().data(), m.column_locs().size());
  w.raw(m.row_scales().data(), m.row_scales().size());
  w.finish(path);
}

void save(const quant::Fp8VnmMatrix& m, const std::string& path) {
  Writer w(path);
  w.magic(kMagicFp8Vnm);
  w.u32(kVersion);
  w.u64(m.config().v);
  w.u64(m.config().n);
  w.u64(m.config().m);
  w.u64(m.rows());
  w.u64(m.cols());
  w.u64(m.format() == Fp8Format::kE5M2 ? 0 : 1);
  w.raw(m.values().data(), m.values().size());
  w.raw(m.m_indices().data(), m.m_indices().size());
  w.raw(m.column_locs().data(), m.column_locs().size());
  w.finish(path);
}

HalfMatrix load_half_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicHalf);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const auto bits = r.raw<std::uint16_t>(rows * cols);
  HalfMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.flat()[i] = half_t::from_bits(bits[i]);
  return m;
}

FloatMatrix load_float_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicFloat);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const auto data = r.raw<float>(rows * cols);
  FloatMatrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.flat().begin());
  return m;
}

VnmMatrix load_vnm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicVnm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  VnmConfig cfg;
  cfg.v = r.u64();
  cfg.n = r.u64();
  cfg.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  VENOM_CHECK_MSG(cfg.m >= 2 && cols % cfg.m == 0 && cfg.v >= 1 &&
                      rows % cfg.v == 0,
                  "invalid VNM metadata in " << path);
  const std::size_t groups = cols / cfg.m;
  const auto bits = r.raw<std::uint16_t>(rows * groups * cfg.n);
  std::vector<half_t> values(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    values[i] = half_t::from_bits(bits[i]);
  auto m_indices = r.raw<std::uint8_t>(values.size());
  auto column_loc =
      r.raw<std::uint8_t>((rows / cfg.v) * groups * cfg.selected_cols());
  return VnmMatrix::from_parts(cfg, rows, cols, std::move(values),
                               std::move(m_indices), std::move(column_loc));
}

quant::QuantizedVnmMatrix load_quant_vnm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicQuantVnm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  VnmConfig cfg;
  cfg.v = r.u64();
  cfg.n = r.u64();
  cfg.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  VENOM_CHECK_MSG(cfg.m >= 2 && cols % cfg.m == 0 && cfg.v >= 1 &&
                      rows % cfg.v == 0,
                  "invalid QVN metadata in " << path);
  const std::size_t groups = cols / cfg.m;
  auto values = r.raw<std::int8_t>(rows * groups * cfg.n);
  auto m_indices = r.raw<std::uint8_t>(values.size());
  auto column_loc =
      r.raw<std::uint8_t>((rows / cfg.v) * groups * cfg.selected_cols());
  auto scales = r.raw<float>(rows);
  return quant::QuantizedVnmMatrix::from_parts(
      cfg, rows, cols, std::move(values), std::move(m_indices),
      std::move(column_loc), std::move(scales));
}

quant::Fp8VnmMatrix load_fp8_vnm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicFp8Vnm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  VnmConfig cfg;
  cfg.v = r.u64();
  cfg.n = r.u64();
  cfg.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const std::uint64_t format_code = r.u64();
  VENOM_CHECK_MSG(cfg.m >= 2 && cols % cfg.m == 0 && cfg.v >= 1 &&
                      rows % cfg.v == 0 && format_code <= 1,
                  "invalid FVN metadata in " << path);
  const Fp8Format format =
      format_code == 0 ? Fp8Format::kE5M2 : Fp8Format::kE4M3;
  const std::size_t groups = cols / cfg.m;
  auto values = r.raw<std::uint8_t>(rows * groups * cfg.n);
  auto m_indices = r.raw<std::uint8_t>(values.size());
  auto column_loc =
      r.raw<std::uint8_t>((rows / cfg.v) * groups * cfg.selected_cols());
  return quant::Fp8VnmMatrix::from_parts(cfg, rows, cols, format,
                                         std::move(values),
                                         std::move(m_indices),
                                         std::move(column_loc));
}

NmMatrix load_nm_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicNm);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  NmPattern pattern;
  pattern.n = r.u64();
  pattern.m = r.u64();
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  VENOM_CHECK_MSG(pattern.m >= 2 && cols % pattern.m == 0,
                  "invalid N:M metadata in " << path);
  const std::size_t count = rows * (cols / pattern.m) * pattern.n;
  const auto bits = r.raw<std::uint16_t>(count);
  std::vector<half_t> values(count);
  for (std::size_t i = 0; i < count; ++i)
    values[i] = half_t::from_bits(bits[i]);
  auto indices = r.raw<std::uint8_t>(count);
  return NmMatrix::from_parts(pattern, rows, cols, std::move(values),
                              std::move(indices));
}

// ---------------------------------------------------------------- JSON
// The tuning cache is the human-readable artefact: parsing goes through
// the shared io/json reader (also used by the serving engine plan).

void save_tuning_cache(const spatha::TuningCache& cache,
                       const std::string& path) {
  std::string out = "{\n  \"format\": \"venom-tune-cache\",\n"
                    "  \"version\": 1,\n  \"entries\": [";
  const auto entries = cache.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, e] = entries[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"r\": %zu, \"k\": %zu, \"c\": %zu, "
        "\"v\": %zu, \"n\": %zu, \"m\": %zu, \"features\": \"",
        i == 0 ? "" : ",", key.rows, key.cols, key.b_cols, key.v, key.n,
        key.m);
    out += buf;
    json_escape_to(out, key.features);
    std::snprintf(
        buf, sizeof(buf),
        "\",\n     \"config\": {\"block_k\": %zu, \"block_c\": %zu, "
        "\"warp_r\": %zu, \"warp_k\": %zu, \"warp_c\": %zu, "
        "\"batch_size\": %zu, \"chunk_grain\": %zu, "
        "\"store_bits\": %d, \"column_loc_fixed\": %d},\n"
        "     \"gflops\": %.6g, \"heuristic_gflops\": %.6g, "
        "\"threads\": %zu}",
        e.config.block_k, e.config.block_c, e.config.warp_r,
        e.config.warp_k, e.config.warp_c, e.config.batch_size,
        e.config.chunk_grain,
        e.config.store_width == spatha::StoreWidth::k32bit ? 32 : 128,
        e.config.column_loc == spatha::ColumnLocMode::kFixed ? 1 : 0,
        e.gflops, e.heuristic_gflops, e.threads);
    out += buf;
  }
  out += entries.empty() ? "]\n}\n" : "\n  ]\n}\n";

  Writer w(path);
  w.raw(out.data(), out.size());
  w.finish(path);
}

spatha::TuningCache load_tuning_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VENOM_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  const JsonValue doc = parse_json(text, path);
  VENOM_CHECK_MSG(doc.type == JsonValue::Type::kObject,
                  "'" << path << "' is not a JSON object");
  const JsonValue* format = doc.get("format");
  VENOM_CHECK_MSG(format != nullptr &&
                      format->type == JsonValue::Type::kString &&
                      format->str == "venom-tune-cache",
                  "'" << path << "' is not a venom tuning cache");
  VENOM_CHECK_MSG(json_size_field(doc, "version", path) == 1,
                  "unsupported tuning-cache version in " << path);
  const JsonValue* entries = doc.get("entries");
  VENOM_CHECK_MSG(entries != nullptr &&
                      entries->type == JsonValue::Type::kArray,
                  "'" << path << "' has no \"entries\" array");

  spatha::TuningCache cache;
  for (const JsonValue& item : entries->array) {
    VENOM_CHECK_MSG(item.type == JsonValue::Type::kObject,
                    "'" << path << "' has a non-object cache entry");
    spatha::TuningKey key;
    key.rows = json_size_field(item, "r", path);
    key.cols = json_size_field(item, "k", path);
    key.b_cols = json_size_field(item, "c", path);
    key.v = json_size_field(item, "v", path);
    key.n = json_size_field(item, "n", path);
    key.m = json_size_field(item, "m", path);
    const JsonValue* features = item.get("features");
    VENOM_CHECK_MSG(features != nullptr &&
                        features->type == JsonValue::Type::kString,
                    "'" << path << "' cache entry missing \"features\"");
    key.features = features->str;

    const JsonValue* cfg = item.get("config");
    VENOM_CHECK_MSG(cfg != nullptr && cfg->type == JsonValue::Type::kObject,
                    "'" << path << "' cache entry missing \"config\"");
    spatha::TuningEntry e;
    e.config.block_k = json_size_field(*cfg, "block_k", path);
    e.config.block_c = json_size_field(*cfg, "block_c", path);
    e.config.warp_r = json_size_field(*cfg, "warp_r", path);
    e.config.warp_k = json_size_field(*cfg, "warp_k", path);
    e.config.warp_c = json_size_field(*cfg, "warp_c", path);
    e.config.batch_size = json_size_field(*cfg, "batch_size", path);
    e.config.chunk_grain = json_size_field(*cfg, "chunk_grain", path);
    // Optional since they were added after version 1 shipped: caches
    // written before carry neither, and their configs used the defaults
    // the fields also default to here.
    if (cfg->get("store_bits") != nullptr)
      e.config.store_width = json_size_field(*cfg, "store_bits", path) == 32
                                 ? spatha::StoreWidth::k32bit
                                 : spatha::StoreWidth::k128bit;
    if (cfg->get("column_loc_fixed") != nullptr)
      e.config.column_loc =
          json_size_field(*cfg, "column_loc_fixed", path) != 0
              ? spatha::ColumnLocMode::kFixed
              : spatha::ColumnLocMode::kEnabled;
    VENOM_CHECK_MSG(e.config.block_k >= 1 && e.config.block_c >= 1,
                    "'" << path << "' cache entry has a degenerate tile");
    e.gflops = json_double_field(item, "gflops", path);
    e.heuristic_gflops = json_double_field(item, "heuristic_gflops", path);
    e.threads = json_size_field(item, "threads", path);
    cache.put(key, e);
  }
  return cache;
}

CsrMatrix load_csr_matrix(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicCsr);
  VENOM_CHECK_MSG(r.u32() == kVersion, "unsupported version in " << path);
  const std::size_t rows = r.u64();
  const std::size_t cols = r.u64();
  const std::size_t nnz = r.u64();
  auto offsets = r.raw<std::uint32_t>(rows + 1);
  auto col_indices = r.raw<std::uint32_t>(nnz);
  const auto bits = r.raw<std::uint16_t>(nnz);
  std::vector<half_t> values(nnz);
  for (std::size_t i = 0; i < nnz; ++i)
    values[i] = half_t::from_bits(bits[i]);
  return CsrMatrix::from_parts(rows, cols, std::move(offsets),
                               std::move(col_indices), std::move(values));
}

}  // namespace venom::io
