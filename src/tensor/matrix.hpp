// Dense row-major matrix container and utilities.
//
// All kernels in this repo operate on Matrix<half_t> for operands and
// Matrix<float> for accumulator/output comparisons. The container is a
// flat owning buffer with (rows, cols) shape; views are provided via
// std::span over rows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"

namespace venom {

/// Owning dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reshapes to rows x cols, reusing the backing storage: existing
  /// element values are unspecified afterwards (only newly grown slots
  /// are value-initialized), so a matrix reused as a staging buffer
  /// (serving batch assembly) pays neither an allocation nor a clearing
  /// pass once it has seen its high-water size. Callers must overwrite
  /// every element before reading.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  T& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access (throws venom::Error).
  T& at(std::size_t r, std::size_t c) {
    VENOM_CHECK_MSG(r < rows_ && c < cols_,
                    "index (" << r << ',' << c << ") out of " << rows_ << 'x'
                              << cols_);
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    VENOM_CHECK_MSG(r < rows_ && c < cols_,
                    "index (" << r << ',' << c << ") out of " << rows_ << 'x'
                              << cols_);
    return (*this)(r, c);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> row(std::size_t r) {
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const {
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using HalfMatrix = Matrix<half_t>;
using FloatMatrix = Matrix<float>;

/// Fills with i.i.d. N(0, sigma^2) values (rounded to half for HalfMatrix).
HalfMatrix random_half_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                              float sigma = 1.0f);
FloatMatrix random_float_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                                float sigma = 1.0f);

/// Converts element-wise.
FloatMatrix to_float(const HalfMatrix& m);
HalfMatrix to_half(const FloatMatrix& m);

/// Transpose.
template <typename T>
Matrix<T> transpose(const Matrix<T>& m) {
  Matrix<T> t(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) t(c, r) = m(r, c);
  return t;
}

/// Max absolute element-wise difference between two float matrices.
float max_abs_diff(const FloatMatrix& a, const FloatMatrix& b);

/// Relative Frobenius-norm error ||a-b||_F / max(||b||_F, eps).
float rel_fro_error(const FloatMatrix& a, const FloatMatrix& b);

/// Fraction of nonzero elements.
double density(const HalfMatrix& m);

/// Sum of |w_i| over all elements (used by the Fig. 11 energy metric).
double l1_energy(const HalfMatrix& m);

}  // namespace venom
