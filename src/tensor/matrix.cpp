#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace venom {

HalfMatrix random_half_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                              float sigma) {
  HalfMatrix m(rows, cols);
  for (auto& v : m.flat()) v = half_t(sigma * rng.normal());
  return m;
}

FloatMatrix random_float_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                                float sigma) {
  FloatMatrix m(rows, cols);
  for (auto& v : m.flat()) v = sigma * rng.normal();
  return m;
}

FloatMatrix to_float(const HalfMatrix& m) {
  FloatMatrix f(m.rows(), m.cols());
  half_to_float_n(m.data(), f.data(), m.size());
  return f;
}

HalfMatrix to_half(const FloatMatrix& m) {
  HalfMatrix h(m.rows(), m.cols());
  float_to_half_n(m.data(), h.data(), m.size());
  return h;
}

float max_abs_diff(const FloatMatrix& a, const FloatMatrix& b) {
  VENOM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(a.flat()[i] - b.flat()[i]));
  return worst;
}

float rel_fro_error(const FloatMatrix& a, const FloatMatrix& b) {
  VENOM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.flat()[i]) - b.flat()[i];
    num += d * d;
    den += static_cast<double>(b.flat()[i]) * b.flat()[i];
  }
  return static_cast<float>(std::sqrt(num) / std::max(std::sqrt(den), 1e-30));
}

double density(const HalfMatrix& m) {
  if (m.empty()) return 0.0;
  std::size_t nnz = 0;
  for (auto v : m.flat())
    if (!v.is_zero()) ++nnz;
  return static_cast<double>(nnz) / static_cast<double>(m.size());
}

double l1_energy(const HalfMatrix& m) {
  double e = 0.0;
  for (auto v : m.flat()) e += std::fabs(static_cast<double>(v.to_float()));
  return e;
}

}  // namespace venom
