#include "spatha/plan.hpp"

#include "common/error.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {

SpmmPlan SpmmPlan::build(const SpmmProblem& problem,
                         const HalfMatrix& dense_weight) {
  VENOM_CHECK_MSG(dense_weight.rows() == problem.rows &&
                      dense_weight.cols() == problem.cols,
                  "weight shape " << dense_weight.rows() << 'x'
                                  << dense_weight.cols()
                                  << " does not match the problem");
  return from_compressed(
      problem, VnmMatrix::from_dense_magnitude(dense_weight, problem.format));
}

SpmmPlan SpmmPlan::from_compressed(const SpmmProblem& problem,
                                   VnmMatrix compressed) {
  VENOM_CHECK_MSG(compressed.rows() == problem.rows &&
                      compressed.cols() == problem.cols &&
                      compressed.config() == problem.format,
                  "compressed operand does not match the problem");
  SpmmPlan plan;
  plan.problem_ = problem;
  plan.config_ = select_config(problem.format, problem.rows, problem.cols,
                               problem.b_cols);
  plan.weight_ = std::move(compressed);
  return plan;
}

FloatMatrix SpmmPlan::execute(const HalfMatrix& b, ThreadPool* pool) const {
  VENOM_CHECK_MSG(b.rows() == problem_.cols && b.cols() == problem_.b_cols,
                  "operand B is " << b.rows() << 'x' << b.cols()
                                  << ", plan expects " << problem_.cols << 'x'
                                  << problem_.b_cols);
  return spmm_vnm(weight_, b, config_, pool);
}

HalfMatrix SpmmPlan::execute_fused(const HalfMatrix& b,
                                   const Epilogue& epilogue,
                                   ThreadPool* pool) const {
  VENOM_CHECK_MSG(b.rows() == problem_.cols && b.cols() == problem_.b_cols,
                  "operand B is " << b.rows() << 'x' << b.cols()
                                  << ", plan expects " << problem_.cols << 'x'
                                  << problem_.b_cols);
  return spmm_vnm_fused(weight_, b, epilogue, config_, pool);
}

std::uint64_t weight_fingerprint(const HalfMatrix& m) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(m.rows());
  mix(m.cols());
  for (const half_t v : m.flat()) mix(v.bits());
  return h;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  VENOM_CHECK_MSG(capacity_ >= 1, "cache capacity must be positive");
}

std::shared_ptr<const SpmmPlan> PlanCache::get_or_build(
    const SpmmProblem& problem, const HalfMatrix& weight) {
  const Key key{problem, weight_fingerprint(weight)};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(it->second.second);
    lru_.push_front(key);
    it->second.second = lru_.begin();
    return it->second.first;
  }
  ++misses_;
  auto plan = std::make_shared<const SpmmPlan>(SpmmPlan::build(problem,
                                                               weight));
  lru_.push_front(key);
  entries_.emplace(key, std::make_pair(plan, lru_.begin()));
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return plan;
}

}  // namespace venom::spatha
