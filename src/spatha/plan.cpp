#include "spatha/plan.hpp"

#include "common/fnv.hpp"

#include "common/error.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {

SpmmPlan SpmmPlan::build(const SpmmProblem& problem,
                         const HalfMatrix& dense_weight) {
  VENOM_CHECK_MSG(dense_weight.rows() == problem.rows &&
                      dense_weight.cols() == problem.cols,
                  "weight shape " << dense_weight.rows() << 'x'
                                  << dense_weight.cols()
                                  << " does not match the problem");
  return from_compressed(
      problem, VnmMatrix::from_dense_magnitude(dense_weight, problem.format));
}

SpmmPlan SpmmPlan::from_compressed(const SpmmProblem& problem,
                                   VnmMatrix compressed) {
  return from_compressed(
      problem, std::make_shared<const VnmMatrix>(std::move(compressed)));
}

SpmmPlan SpmmPlan::from_compressed(
    const SpmmProblem& problem,
    std::shared_ptr<const VnmMatrix> compressed,
    std::shared_ptr<SpmmScratchPool> scratch, const SpmmConfig* config) {
  VENOM_CHECK_MSG(compressed != nullptr, "null compressed operand");
  VENOM_CHECK_MSG(compressed->rows() == problem.rows &&
                      compressed->cols() == problem.cols &&
                      compressed->config() == problem.format,
                  "compressed operand does not match the problem");
  SpmmPlan plan;
  plan.problem_ = problem;
  plan.config_ = config != nullptr
                     ? *config
                     : select_config(problem.format, problem.rows,
                                     problem.cols, problem.b_cols);
  plan.weight_ = std::move(compressed);
  plan.scratch_ = scratch != nullptr ? std::move(scratch)
                                     : std::make_shared<SpmmScratchPool>();
  return plan;
}

FloatMatrix SpmmPlan::execute(const HalfMatrix& b, ThreadPool* pool) const {
  VENOM_CHECK_MSG(b.rows() == problem_.cols && b.cols() == problem_.b_cols,
                  "operand B is " << b.rows() << 'x' << b.cols()
                                  << ", plan expects " << problem_.cols << 'x'
                                  << problem_.b_cols);
  return spmm_vnm(*weight_, b, config_, pool, scratch_.get());
}

HalfMatrix SpmmPlan::execute_fused(const HalfMatrix& b,
                                   const Epilogue& epilogue,
                                   ThreadPool* pool) const {
  VENOM_CHECK_MSG(b.rows() == problem_.cols && b.cols() == problem_.b_cols,
                  "operand B is " << b.rows() << 'x' << b.cols()
                                  << ", plan expects " << problem_.cols << 'x'
                                  << problem_.b_cols);
  return spmm_vnm_fused(*weight_, b, epilogue, config_, pool,
                        scratch_.get());
}

std::uint64_t weight_fingerprint(const HalfMatrix& m) {
  Fnv1a f;
  f.mix(m.rows());
  f.mix(m.cols());
  for (const half_t v : m.flat()) f.mix(v.bits());
  return f.h;
}

std::uint64_t weight_fingerprint(const VnmMatrix& m) {
  Fnv1a f;
  f.mix(m.rows());
  f.mix(m.cols());
  f.mix(m.config().v);
  f.mix(m.config().n);
  f.mix(m.config().m);
  for (const half_t v : m.values()) f.mix(v.bits());
  for (const std::uint8_t i : m.m_indices()) f.mix(i);
  for (const std::uint8_t c : m.column_locs()) f.mix(c);
  return f.h;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  VENOM_CHECK_MSG(capacity_ >= 1, "cache capacity must be positive");
}

std::shared_ptr<const SpmmPlan> PlanCache::touch_locked(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
  return it->second.first;
}

std::shared_ptr<const SpmmPlan> PlanCache::find_locked(const Key& key) {
  auto plan = touch_locked(key);
  if (plan == nullptr)
    ++misses_;
  else
    ++hits_;
  return plan;
}

std::shared_ptr<const SpmmPlan> PlanCache::find(const SpmmProblem& problem,
                                                std::uint64_t fingerprint) {
  MutexLock lock(mutex_);
  auto plan = touch_locked({problem, fingerprint});
  if (plan != nullptr) ++hits_;
  return plan;
}

std::shared_ptr<const SpmmPlan> PlanCache::insert_locked(
    const Key& key, std::shared_ptr<const SpmmPlan> plan) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.first;  // racing build lost
  lru_.push_front(key);
  entries_.emplace(key, std::make_pair(plan, lru_.begin()));
  if (entries_.size() > capacity_) {
    const Key evicted = lru_.back();
    entries_.erase(evicted);
    lru_.pop_back();
    // Drop the weight's shared scratch pool once its last plan is gone,
    // so weight churn (re-sparsifying training loops, model swaps)
    // cannot grow the pool registry past what entries_ references.
    const WeightKey wkey{evicted.second, {evicted.first.rows,
                                          evicted.first.cols}};
    bool still_referenced = false;
    for (const auto& [k, v] : entries_) {
      if (k.second == wkey.first && k.first.rows == wkey.second.first &&
          k.first.cols == wkey.second.second) {
        still_referenced = true;
        break;
      }
    }
    if (!still_referenced) scratch_pools_.erase(wkey);
  }
  return plan;
}

std::shared_ptr<const SpmmPlan> PlanCache::get_or_build(
    const SpmmProblem& problem, const HalfMatrix& weight) {
  const Key key{problem, weight_fingerprint(weight)};
  {
    MutexLock lock(mutex_);
    if (auto plan = find_locked(key)) return plan;
  }
  auto plan = std::make_shared<const SpmmPlan>(SpmmPlan::build(problem,
                                                               weight));
  MutexLock lock(mutex_);
  return insert_locked(key, std::move(plan));
}

std::shared_ptr<const SpmmPlan> PlanCache::get_or_build(
    const SpmmProblem& problem, const VnmMatrix& compressed) {
  // Copying caller: one O(nnz) copy on a miss (the plan needs owned or
  // shared storage), none on a hit. Callers that can share ownership
  // should use the shared_ptr overload instead.
  const Key key{problem, weight_fingerprint(compressed)};
  {
    MutexLock lock(mutex_);
    if (auto plan = find_locked(key)) return plan;
  }
  auto plan = std::make_shared<const SpmmPlan>(SpmmPlan::from_compressed(
      problem, std::make_shared<const VnmMatrix>(compressed)));
  MutexLock lock(mutex_);
  return insert_locked(key, std::move(plan));
}

std::shared_ptr<SpmmScratchPool> PlanCache::scratch_pool_for(
    const WeightKey& key) {
  MutexLock lock(mutex_);
  auto& pool = scratch_pools_[key];
  if (pool == nullptr) pool = std::make_shared<SpmmScratchPool>();
  return pool;
}

std::shared_ptr<const SpmmPlan> PlanCache::get_or_build(
    const SpmmProblem& problem, std::shared_ptr<const VnmMatrix> compressed,
    std::uint64_t fingerprint, const SpmmConfig* config) {
  const Key key{problem, fingerprint};
  {
    MutexLock lock(mutex_);
    if (auto plan = find_locked(key)) return plan;
  }
  // Plans for this weight share one scratch pool regardless of b_cols:
  // the panel buffers are width-agnostic capacity, so a new batch width
  // reuses warm scratch instead of starting a cold pool.
  auto scratch = scratch_pool_for(
      {fingerprint, {problem.rows, problem.cols}});
  auto plan = std::make_shared<const SpmmPlan>(SpmmPlan::from_compressed(
      problem, std::move(compressed), std::move(scratch), config));
  MutexLock lock(mutex_);
  return insert_locked(key, std::move(plan));
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t PlanCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

}  // namespace venom::spatha
