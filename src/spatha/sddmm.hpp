// SDDMM over the V:N:M pattern: the companion primitive to SpMM.
//
// Sampled Dense-Dense Matrix Multiplication computes a dense product
// only at the positions of an existing sparsity pattern:
//
//   out[i, k] = sum_d A[i, d] * B[d, k]      for (i, k) in pattern(S)
//
// It is the other half of sparse attention (computing masked score
// updates) and of sparse-weight training (the gradient restricted to the
// surviving pattern) — the routine Magicube [Li et al., SC'22] pairs
// with SpMM. The output reuses the structure (m-indices, column-loc) of
// `structure` with freshly computed values, so it feeds straight back
// into spmm_vnm.
#pragma once

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// out = (A * B) sampled at structure's nonzero positions.
/// A is rows x depth, B is depth x cols (matching structure's shape).
/// Zero-valued slots of `structure` (padding) stay zero.
VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, ThreadPool* pool = nullptr);

}  // namespace venom::spatha
