// SDDMM over the V:N:M pattern: the companion primitive to SpMM.
//
// Sampled Dense-Dense Matrix Multiplication computes a dense product
// only at the positions of an existing sparsity pattern:
//
//   out[i, k] = sum_d A[i, d] * B[d, k]      for (i, k) in pattern(S)
//
// It is the other half of sparse attention (computing masked score
// updates) and of sparse-weight training (the gradient restricted to the
// surviving pattern) — the routine Magicube [Li et al., SC'22] pairs
// with SpMM. The output reuses the structure (m-indices, column-loc) of
// `structure` with freshly computed values, so it feeds straight back
// into spmm_vnm.
//
// Two implementations:
//
//   sddmm_vnm         production path: bulk fp16->float conversion of
//                     both dense operands, per-group gather of the
//                     selected B columns into a packed float panel
//                     (reused by all V rows of the block — the PR-1
//                     panel machinery transposed), and a lane-blocked
//                     dot micro-kernel (kSddmmLanes partial sums reduced
//                     in fixed order). Deterministic, but the lane
//                     reassociation means it is numerically — not bit- —
//                     identical to the scalar oracle.
//
//   sddmm_vnm_scalar  naive single-threaded traversal with one fp32
//                     accumulator per output in ascending-depth order:
//                     the parity oracle and the reference the gradient
//                     checks validate against.
#pragma once

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/spmm.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// out = (A * B) sampled at structure's nonzero positions.
/// A is rows x depth, B is depth x cols (matching structure's shape).
/// Zero-valued slots of `structure` (padding) stay zero. `cfg` supplies
/// the chunk grain for the block-row partition and the ColumnLocMode
/// (kFixed samples column g*M + m_index, the Fig. 9 ablation's selector
/// mapping, so the op stays the exact adjoint of the kFixed forward).
/// `scratch`, when non-null, recycles the packed column panels across
/// calls (see SpmmScratchPool).
VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, const SpmmConfig& cfg,
                    ThreadPool* pool = nullptr,
                    SpmmScratchPool* scratch = nullptr);

/// Convenience overload: tuned/heuristic config via select_config (keyed
/// by the structure's R x K and the dot-product depth).
VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, ThreadPool* pool = nullptr);

/// Naive oracle: single fp32 accumulator per sampled output, ascending
/// depth, no pool.
VnmMatrix sddmm_vnm_scalar(const VnmMatrix& structure, const HalfMatrix& a,
                           const HalfMatrix& b,
                           ColumnLocMode mode = ColumnLocMode::kEnabled);

/// Useful FLOPs of the sampled product: 2 * nnz * depth.
inline double sddmm_flops(const VnmMatrix& structure, std::size_t depth) {
  return 2.0 * static_cast<double>(structure.nnz()) *
         static_cast<double>(depth);
}

}  // namespace venom::spatha
