#include "spatha/storage_order.hpp"

#include "common/error.hpp"

namespace venom::spatha {

namespace {

void check_shape(WarpTileShape shape) {
  VENOM_CHECK_MSG(shape.rows % 16 == 0 && shape.rows > 0,
                  "warp tile rows " << shape.rows << " not a multiple of 16");
  VENOM_CHECK_MSG(shape.comp_cols % 16 == 0 && shape.comp_cols > 0,
                  "warp tile compressed cols " << shape.comp_cols
                                               << " not a multiple of 16");
}

/// Offset of (row, col) inside one 16 x 16 instruction tile: thread-major
/// order with each thread's 8 registers contiguous (the 128-bit unit).
std::size_t in_tile_offset(std::size_t row, std::size_t col) {
  // Invert the A-fragment layout: find (thread, reg) owning (row, col).
  // From fragment.cpp: row = group + (reg%4>=2 ? 8:0),
  //                    col = lane*2 + reg%2 + (reg>=4 ? 8:0).
  const std::size_t group = row % 8;
  const std::size_t lane = (col % 8) / 2;
  const std::size_t thread = group * 4 + lane;
  const std::size_t reg =
      (col % 2) + (row >= 8 ? 2 : 0) + (col >= 8 ? 4 : 0);
  return thread * 8 + reg;
}

}  // namespace

std::size_t linear_offset(WarpTileShape shape, std::size_t row,
                          std::size_t col) {
  check_shape(shape);
  VENOM_CHECK_MSG(row < shape.rows && col < shape.comp_cols,
                  "coord (" << row << ',' << col << ") outside warp tile");
  const std::size_t tile_r = row / 16;
  const std::size_t tile_c = col / 16;
  const std::size_t tile_index = tile_r * shape.tiles_c() + tile_c;
  return tile_index * 256 + in_tile_offset(row % 16, col % 16);
}

sptc::TileCoord tile_coord(WarpTileShape shape, std::size_t offset) {
  check_shape(shape);
  VENOM_CHECK_MSG(offset < shape.elements(),
                  "offset " << offset << " outside warp tile");
  const std::size_t tile_index = offset / 256;
  const std::size_t tile_r = tile_index / shape.tiles_c();
  const std::size_t tile_c = tile_index % shape.tiles_c();
  const std::size_t thread = (offset % 256) / 8;
  const std::size_t reg = offset % 8;
  const sptc::TileCoord in = sptc::a_fragment_m16n8k16(thread, reg);
  return {tile_r * 16 + in.row, tile_c * 16 + in.col};
}

std::vector<half_t> pack_warp_tile(WarpTileShape shape,
                                   std::span<const half_t> row_major) {
  check_shape(shape);
  VENOM_CHECK(row_major.size() == shape.elements());
  std::vector<half_t> packed(shape.elements());
  for (std::size_t r = 0; r < shape.rows; ++r)
    for (std::size_t c = 0; c < shape.comp_cols; ++c)
      packed[linear_offset(shape, r, c)] = row_major[r * shape.comp_cols + c];
  return packed;
}

std::vector<half_t> unpack_warp_tile(WarpTileShape shape,
                                     std::span<const half_t> packed) {
  check_shape(shape);
  VENOM_CHECK(packed.size() == shape.elements());
  std::vector<half_t> row_major(shape.elements());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    const sptc::TileCoord coord = tile_coord(shape, i);
    row_major[coord.row * shape.comp_cols + coord.col] = packed[i];
  }
  return row_major;
}

}  // namespace venom::spatha
