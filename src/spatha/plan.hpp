// Plan-based execution API, mirroring the cuSparseLt workflow Spatha is
// positioned as an open-source alternative to:
//
//   cusparseLtMatmulDescriptorInit  ->  SpmmProblem
//   cusparseLtMatmulPlanInit        ->  SpmmPlan (compress + pick config)
//   cusparseLtMatmul                ->  SpmmPlan::execute(B)
//
// A plan owns the compressed operand and the kernel configuration chosen
// for the problem shape, so repeated executions (inference serving) pay
// the pruning/compression/tuning cost once. The PlanCache keys plans by
// problem descriptor for frameworks that create layers dynamically.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/epilogue.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// Problem descriptor: what cusparseLt calls the matmul descriptor.
struct SpmmProblem {
  std::size_t rows = 0;    ///< sparse operand rows (R)
  std::size_t cols = 0;    ///< sparse operand cols (K)
  std::size_t b_cols = 0;  ///< dense operand cols (C)
  VnmConfig format;

  friend auto operator<=>(const SpmmProblem&, const SpmmProblem&) = default;
};

/// An executable sparse-matmul plan.
class SpmmPlan {
 public:
  /// Builds a plan by magnitude-pruning `dense_weight` into the problem's
  /// V:N:M format and selecting a kernel configuration for the shape.
  static SpmmPlan build(const SpmmProblem& problem,
                        const HalfMatrix& dense_weight);

  /// Builds from an already-compressed operand.
  static SpmmPlan from_compressed(const SpmmProblem& problem,
                                  VnmMatrix compressed);

  /// C = A * B. B must be cols x b_cols as declared in the problem.
  FloatMatrix execute(const HalfMatrix& b, ThreadPool* pool = nullptr) const;

  /// Fused-epilogue execution (bias / activation folded into stage 3).
  HalfMatrix execute_fused(const HalfMatrix& b, const Epilogue& epilogue,
                           ThreadPool* pool = nullptr) const;

  const SpmmProblem& problem() const { return problem_; }
  const VnmMatrix& compressed() const { return weight_; }
  const SpmmConfig& config() const { return config_; }

 private:
  SpmmProblem problem_;
  VnmMatrix weight_;
  SpmmConfig config_;
};

/// LRU cache of plans keyed by problem descriptor + a weight fingerprint.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 16);

  /// Returns the cached plan for (problem, weight) or builds and caches
  /// one. The weight fingerprint is a cheap content hash, so re-pruning
  /// is skipped only when the weights are byte-identical.
  std::shared_ptr<const SpmmPlan> get_or_build(const SpmmProblem& problem,
                                               const HalfMatrix& weight);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  using Key = std::pair<SpmmProblem, std::uint64_t>;
  std::size_t capacity_;
  std::list<Key> lru_;  // front = most recent
  std::map<Key, std::pair<std::shared_ptr<const SpmmPlan>,
                          std::list<Key>::iterator>>
      entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// FNV-1a content hash of a half matrix (the cache fingerprint).
std::uint64_t weight_fingerprint(const HalfMatrix& m);

}  // namespace venom::spatha
