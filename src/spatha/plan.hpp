// Plan-based execution API, mirroring the cuSparseLt workflow Spatha is
// positioned as an open-source alternative to:
//
//   cusparseLtMatmulDescriptorInit  ->  SpmmProblem
//   cusparseLtMatmulPlanInit        ->  SpmmPlan (compress + pick config)
//   cusparseLtMatmul                ->  SpmmPlan::execute(B)
//
// A plan owns the compressed operand and the kernel configuration chosen
// for the problem shape, so repeated executions (inference serving) pay
// the pruning/compression/tuning cost once. The PlanCache keys plans by
// problem descriptor for frameworks that create layers dynamically.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>

#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/spmm.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// Problem descriptor: what cusparseLt calls the matmul descriptor.
struct SpmmProblem {
  std::size_t rows = 0;    ///< sparse operand rows (R)
  std::size_t cols = 0;    ///< sparse operand cols (K)
  std::size_t b_cols = 0;  ///< dense operand cols (C)
  VnmConfig format;

  friend auto operator<=>(const SpmmProblem&, const SpmmProblem&) = default;
};

/// An executable sparse-matmul plan. Besides the compressed operand and
/// the (tuning-cache-aware) kernel configuration, a plan owns a
/// SpmmScratchPool, so the packed fp16->float B panels and accumulator
/// tiles the kernels stage through are recycled across execute() calls —
/// steady-state repeated execution (inference serving) allocates only the
/// output matrix.
class SpmmPlan {
 public:
  /// Builds a plan by magnitude-pruning `dense_weight` into the problem's
  /// V:N:M format and selecting a kernel configuration for the shape.
  static SpmmPlan build(const SpmmProblem& problem,
                        const HalfMatrix& dense_weight);

  /// Builds from an already-compressed operand.
  static SpmmPlan from_compressed(const SpmmProblem& problem,
                                  VnmMatrix compressed);

  /// Shares an already-compressed operand instead of copying it: plans
  /// for the same weight at different batch widths (the serving case —
  /// one plan per packed-batch token total) all alias the owner's one
  /// copy. The operand must stay immutable while any plan references it.
  /// `scratch`, when supplied, replaces the plan's own pool — the
  /// SpmmScratch buffers are width-agnostic capacity, so plans for the
  /// same weight can share one pool and stay warm across widths.
  /// `config`, when non-null, pins the kernel configuration instead of
  /// consulting the process-wide select_config — an ops::ExecContext
  /// with a private tuning cache passes its own choice through here.
  static SpmmPlan from_compressed(
      const SpmmProblem& problem,
      std::shared_ptr<const VnmMatrix> compressed,
      std::shared_ptr<SpmmScratchPool> scratch = nullptr,
      const SpmmConfig* config = nullptr);

  /// C = A * B. B must be cols x b_cols as declared in the problem.
  FloatMatrix execute(const HalfMatrix& b, ThreadPool* pool = nullptr) const;

  /// Fused-epilogue execution (bias / activation folded into stage 3).
  HalfMatrix execute_fused(const HalfMatrix& b, const Epilogue& epilogue,
                           ThreadPool* pool = nullptr) const;

  const SpmmProblem& problem() const { return problem_; }
  const VnmMatrix& compressed() const { return *weight_; }
  const SpmmConfig& config() const { return config_; }

  /// The plan's reusable kernel scratch (shared across concurrent
  /// executors; exposed for pooling diagnostics).
  SpmmScratchPool& scratch() const { return *scratch_; }

 private:
  // Plans are only made through the named builders above: a
  // default-constructed plan would hold null weight/scratch pointers, so
  // the blank state never escapes this class.
  SpmmPlan() = default;

  SpmmProblem problem_;
  // Shared, not owned exclusively: see the sharing from_compressed.
  std::shared_ptr<const VnmMatrix> weight_;
  SpmmConfig config_;
  // shared_ptr so plans stay copyable and the deleter is bound where
  // detail::SpmmScratch is complete (plan.cpp).
  std::shared_ptr<SpmmScratchPool> scratch_;
};

/// LRU cache of plans keyed by problem descriptor + a weight fingerprint.
/// Thread-safe: serving workers share one cache, so lookups, insertions,
/// and the LRU bookkeeping run under a mutex (plan construction itself
/// happens outside the lock; concurrent misses on the same key build
/// twice and the first insert wins).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 16);

  /// Returns the cached plan for (problem, weight) or builds and caches
  /// one. The weight fingerprint is a cheap content hash, so re-pruning
  /// is skipped only when the weights are byte-identical.
  std::shared_ptr<const SpmmPlan> get_or_build(const SpmmProblem& problem,
                                               const HalfMatrix& weight)
      VENOM_EXCLUDES(mutex_);

  /// Same, for an operand that is already V:N:M-compressed (the serving
  /// path: transformer weights are pruned once at load time, so a cache
  /// hit must not re-prune). Fingerprints the compressed structures.
  std::shared_ptr<const SpmmPlan> get_or_build(const SpmmProblem& problem,
                                               const VnmMatrix& compressed)
      VENOM_EXCLUDES(mutex_);

  /// As above with a caller-supplied fingerprint and shared ownership:
  /// a holder of an immutable operand (transformer::Linear) hashes it
  /// once instead of once per forward, and every cached plan for it —
  /// one per batch width under dynamic batching — aliases the same copy
  /// instead of duplicating O(nnz) storage. The fingerprint must be
  /// weight_fingerprint(*compressed) — a stale one silently aliases
  /// cache entries. `config` as in SpmmPlan::from_compressed: non-null
  /// pins the built plan's kernel configuration (cache hits keep the
  /// config they were built with — a PlanCache is owned by one
  /// ExecContext, so a key never sees two different selections).
  std::shared_ptr<const SpmmPlan> get_or_build(
      const SpmmProblem& problem,
      std::shared_ptr<const VnmMatrix> compressed,
      std::uint64_t fingerprint, const SpmmConfig* config = nullptr)
      VENOM_EXCLUDES(mutex_);

  /// Probe without building: LRU-touches and counts a hit when the plan
  /// is cached; nullptr (and no miss counted — the get_or_build that
  /// typically follows counts it) otherwise. Lets the serving hot path
  /// defer config selection to actual plan builds.
  std::shared_ptr<const SpmmPlan> find(const SpmmProblem& problem,
                                       std::uint64_t fingerprint)
      VENOM_EXCLUDES(mutex_);

  std::size_t size() const VENOM_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const VENOM_EXCLUDES(mutex_);
  std::size_t misses() const VENOM_EXCLUDES(mutex_);

 private:
  using Key = std::pair<SpmmProblem, std::uint64_t>;

  /// Weight identity (fingerprint + shape) independent of b_cols: plans
  /// for the same weight at different batch widths share one scratch
  /// pool, so ragged serving traffic cannot churn the packed panels cold.
  using WeightKey = std::pair<std::uint64_t, std::pair<std::size_t,
                                                       std::size_t>>;

  /// Lookup + LRU touch, no counter updates.
  std::shared_ptr<const SpmmPlan> touch_locked(const Key& key)
      VENOM_REQUIRES(mutex_);
  /// touch_locked plus hit/miss accounting; nullptr on miss.
  std::shared_ptr<const SpmmPlan> find_locked(const Key& key)
      VENOM_REQUIRES(mutex_);
  /// Inserts `plan` (first insert wins on a racing key) and evicts LRU.
  std::shared_ptr<const SpmmPlan> insert_locked(
      const Key& key, std::shared_ptr<const SpmmPlan> plan)
      VENOM_REQUIRES(mutex_);
  /// The shared scratch pool for a weight, created on first use. Takes
  /// the lock itself — call it between locked scopes, never inside one.
  std::shared_ptr<SpmmScratchPool> scratch_pool_for(const WeightKey& key)
      VENOM_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::size_t capacity_;
  std::list<Key> lru_ VENOM_GUARDED_BY(mutex_);  // front = most recent
  std::map<Key, std::pair<std::shared_ptr<const SpmmPlan>,
                          std::list<Key>::iterator>>
      entries_ VENOM_GUARDED_BY(mutex_);
  // One pool per distinct weight (bounded by the model's layer count in
  // serving use, not by batch-width diversity); entries outlive plan
  // evictions so a re-built plan comes back warm.
  std::map<WeightKey, std::shared_ptr<SpmmScratchPool>> scratch_pools_
      VENOM_GUARDED_BY(mutex_);
  std::size_t hits_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ VENOM_GUARDED_BY(mutex_) = 0;
};

/// FNV-1a content hash of a half matrix (the cache fingerprint).
std::uint64_t weight_fingerprint(const HalfMatrix& m);

/// FNV-1a hash over the compressed V:N:M structures (values, m-indices,
/// column-locs) plus shape/format — the fingerprint for pre-compressed
/// operands.
std::uint64_t weight_fingerprint(const VnmMatrix& m);

}  // namespace venom::spatha
