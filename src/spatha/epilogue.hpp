// Fused epilogues for the Spatha SpMM (stage 3 extensions).
//
// Production GEMM libraries fuse the per-output-element tail work — bias
// add, activation — into the kernel's write-back stage instead of
// launching separate element-wise kernels. spmm_vnm_fused applies the
// epilogue inside the same tile pass that stage 3 would use, saving one
// full read+write of C per fused op; the transformer Linear layer routes
// through it.
#pragma once

#include <span>

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "spatha/spmm.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// Activation applied in the epilogue.
enum class Activation : std::uint8_t { kNone, kRelu, kGelu };

/// Epilogue description: optional per-row bias, then activation, then
/// output conversion to fp16 (the usual inference datapath).
struct Epilogue {
  std::span<const float> bias = {};  ///< empty = no bias; else size = rows
  Activation activation = Activation::kNone;
};

/// The epilogue's scalar activation (float domain). Exposed so the ops
/// layer's generic fused path applies exactly the arithmetic the fused
/// Spatha stage 3 does — keeping the two bit-identical by construction.
float apply_activation(Activation act, float v);

/// C_half = act(A_vnm * B + bias), computed tile-by-tile with the
/// epilogue fused into the write-back stage. `scratch` as in spmm_vnm:
/// a pool owned by the caller keeps the packed panels warm across calls.
HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue, const SpmmConfig& cfg,
                          ThreadPool* pool = nullptr,
                          SpmmScratchPool* scratch = nullptr);

/// Convenience overload with the heuristic kernel configuration.
HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue,
                          ThreadPool* pool = nullptr);

/// Batched SpMM: one sparse operand against `batch` dense operands
/// (weight reuse across a batch of activations, the inference hot path).
/// All B matrices must share b_rows x b_cols; outputs align by index.
/// The sparse operand's panels are gathered once per (block row, C tile)
/// and reused across the whole batch.
std::vector<FloatMatrix> spmm_vnm_batched(
    const VnmMatrix& a, std::span<const HalfMatrix> bs,
    ThreadPool* pool = nullptr);

}  // namespace venom::spatha
