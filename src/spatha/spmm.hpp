// Spatha SpMM kernels over the V:N:M format (Section 4.1, Figs. 4-8).
//
// Three implementations of C(RxC, fp32) = A_vnm(RxK) * B(KxC, fp16):
//
//   spmm_vnm            production path. Mirrors the paper's three stages:
//                       (1.1) column-loc prefetch per block row,
//                       (1.2) gather of the selected B rows into a
//                             contiguous packed float panel (the SMEM
//                             image, converted from fp16 once per gather),
//                       (1.3/2) register-blocked multiply-accumulate
//                             through the 2-bit m-indices against the
//                             panel (see microkernel.hpp),
//                       (3)  contiguous write-back of the output tile.
//                       One pool iteration per (block row, C tile) — the
//                       CPU analogue of one thread block per output tile —
//                       with scratch reused across the tiles of a chunk.
//
//   spmm_vnm_scalar     the seed's element-at-a-time path, kept as the
//                       perf baseline and bit-exactness oracle.
//
//   spmm_vnm_mma        same staging, but stage 2 executes genuine
//                       m16n8k32 mma.sp instructions via the SPTC
//                       simulator — the fidelity path proving the V:N:M
//                       mapping of Fig. 4 is exact.
//
//   spmm_vnm_reference  naive traversal used as the oracle in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

namespace detail {

/// Per-chunk kernel scratch reused across output tiles (and, through a
/// SpmmScratchPool, across calls); resize() calls settle to no-ops after
/// the buffers reach their high-water sizes, so the steady state performs
/// no allocation per panel or per tile. Populated by the micro-kernel
/// stages in microkernel.hpp.
struct SpmmScratch {
  std::vector<float> panel;           // packed float image of gathered B
  std::vector<float> acc;             // V x width fp32 accumulator tile
  std::vector<float> a_vals;          // hoisted nonzero values of one row
  std::vector<std::uint32_t> a_offs;  // matching panel-row float offsets
  // Reduced-precision datapath (quant/quantized_vnm.hpp): the gathered
  // image of quantized B — widened to int16 for the vpmaddwd micro-kernel
  // (half of `panel`) or quad-interleaved biased-u8 for the VNNI
  // vpdpbusd micro-kernel (a quarter) — its int32 accumulator tile, and
  // the hoisted A-side codes of one row (packed dwords + padded bytes).
  std::vector<std::int16_t> panel_i16;
  std::vector<std::uint8_t> panel_u8;
  std::vector<std::int32_t> acc_i32;
  std::vector<std::int32_t> a_ints;
  std::vector<std::int32_t> a_sums;
};

}  // namespace detail

/// Freelist of per-chunk kernel scratch (packed fp16->float B panels,
/// accumulator tiles, hoisted nonzero descriptors). A caller that owns one
/// — e.g. an SpmmPlan executed repeatedly while serving — amortizes the
/// panel buffers across calls: after warmup the kernels allocate nothing.
using SpmmScratchPool = ObjectPool<detail::SpmmScratch>;

namespace detail {

/// One worker-chunk's view of kernel scratch: bind() leases from the
/// caller's pool when one was supplied (cross-call buffer reuse) and
/// falls back to chunk-local storage otherwise. Shared by every kernel
/// that takes an optional SpmmScratchPool.
struct ScratchLease {
  SpmmScratch& bind(SpmmScratchPool* pool) {
    if (pool != nullptr) {
      lease_.emplace(pool->acquire());
      return **lease_;
    }
    return local_;
  }

 private:
  SpmmScratch local_;
  std::optional<SpmmScratchPool::Lease> lease_;
};

}  // namespace detail

/// Production tiled kernel. `cfg` defaults to select_config(...).
/// `scratch`, when non-null, supplies the per-chunk panel/accumulator
/// buffers instead of stack-local vectors (see SpmmScratchPool).
FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     const SpmmConfig& cfg, ThreadPool* pool = nullptr,
                     SpmmScratchPool* scratch = nullptr);

/// Convenience overload with the heuristic configuration.
FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     ThreadPool* pool = nullptr);

/// The seed's scalar stage-2 loop (half->float conversion per FMA, no
/// register blocking). Kept as the measurement baseline for the packed
/// float-panel pipeline and as a parity oracle: spmm_vnm is bit-identical
/// to this path for every configuration.
FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            const SpmmConfig& cfg,
                            ThreadPool* pool = nullptr);
FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            ThreadPool* pool = nullptr);

/// Fidelity path: stage 2 runs through sptc::mma_sp_fp16 tile by tile.
/// Requires V % 16 == 0, (cols/M)*4 % 32 == 0, and C % 8 == 0.
FloatMatrix spmm_vnm_mma(const VnmMatrix& a, const HalfMatrix& b,
                         ThreadPool* pool = nullptr);

/// Naive oracle (no tiling, no pool).
FloatMatrix spmm_vnm_reference(const VnmMatrix& a, const HalfMatrix& b);

/// Fast SpMM over the native row-wise N:M format (no V grouping): the
/// DFSS-style dynamic-attention kernel [Chen et al., PPoPP'23 — the
/// paper's ref. 6]. B converts to packed float once (bulk fp16->float),
/// each row's nonzero descriptors are hoisted into flat scratch, and the
/// multiply-accumulate runs the same register-blocked strips as the
/// V:N:M micro-kernel. Per output element products accumulate in
/// ascending (group, j) order, so the result is bit-identical to the
/// scalar `venom::spmm_24` baseline it accelerates (any N:M pattern is
/// accepted; the hardware-pattern restriction is spmm_24's, not this
/// kernel's).
FloatMatrix spmm_nm(const NmMatrix& a, const HalfMatrix& b,
                    ThreadPool* pool = nullptr);

/// Transposed SpMM: C(K x C, fp32) = A^T * B with A(R x K) in V:N:M and
/// B(R x C) dense. This is the backward-pass kernel: for y = W x with a
/// sparse W, dL/dx = W^T dL/dy. The kernel keeps the forward traversal
/// order (coalesced reads of A) and scatters each nonzero's contribution
/// into the K-indexed output; tasks partition over block rows with
/// per-task private output accumulated at the end (no atomics). `cfg`
/// supplies the ColumnLocMode (kFixed scatters to row g*M + m_index, so
/// the op stays the exact adjoint of the kFixed forward) and a chunk
/// grain that lower-bounds the block rows per task. The per-task partial
/// reduction makes the result numerically (not bit-) identical to the
/// scalar oracle, and dependent on the task count — deterministic for a
/// fixed pool.
FloatMatrix spmm_vnm_transposed(const VnmMatrix& a, const HalfMatrix& b,
                                const SpmmConfig& cfg,
                                ThreadPool* pool = nullptr);

/// Convenience overload with the tuned/heuristic configuration (keyed by
/// the forward problem R x K x C, so a tuned forward entry's chunk grain
/// carries over to its backward).
FloatMatrix spmm_vnm_transposed(const VnmMatrix& a, const HalfMatrix& b,
                                ThreadPool* pool = nullptr);

/// Naive oracle: single-threaded scatter in ascending row order.
FloatMatrix spmm_vnm_transposed_scalar(
    const VnmMatrix& a, const HalfMatrix& b,
    ColumnLocMode mode = ColumnLocMode::kEnabled);

/// Useful FLOPs of the sparse product: 2 * nnz * C.
inline double spmm_flops(const VnmMatrix& a, std::size_t b_cols) {
  return 2.0 * static_cast<double>(a.nnz()) * static_cast<double>(b_cols);
}

}  // namespace venom::spatha
