// Spatha SpMM kernels over the V:N:M format (Section 4.1, Figs. 4-8).
//
// Three implementations of C(RxC, fp32) = A_vnm(RxK) * B(KxC, fp16):
//
//   spmm_vnm            production path. Mirrors the paper's three stages:
//                       (1.1) column-loc prefetch per block row,
//                       (1.2) gather of the selected B rows into a
//                             contiguous packed float panel (the SMEM
//                             image, converted from fp16 once per gather),
//                       (1.3/2) register-blocked multiply-accumulate
//                             through the 2-bit m-indices against the
//                             panel (see microkernel.hpp),
//                       (3)  contiguous write-back of the output tile.
//                       One pool iteration per (block row, C tile) — the
//                       CPU analogue of one thread block per output tile —
//                       with scratch reused across the tiles of a chunk.
//
//   spmm_vnm_scalar     the seed's element-at-a-time path, kept as the
//                       perf baseline and bit-exactness oracle.
//
//   spmm_vnm_mma        same staging, but stage 2 executes genuine
//                       m16n8k32 mma.sp instructions via the SPTC
//                       simulator — the fidelity path proving the V:N:M
//                       mapping of Fig. 4 is exact.
//
//   spmm_vnm_reference  naive traversal used as the oracle in tests.
#pragma once

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"
#include "tensor/matrix.hpp"

namespace venom::spatha {

/// Production tiled kernel. `cfg` defaults to select_config(...).
FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     const SpmmConfig& cfg, ThreadPool* pool = nullptr);

/// Convenience overload with the heuristic configuration.
FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     ThreadPool* pool = nullptr);

/// The seed's scalar stage-2 loop (half->float conversion per FMA, no
/// register blocking). Kept as the measurement baseline for the packed
/// float-panel pipeline and as a parity oracle: spmm_vnm is bit-identical
/// to this path for every configuration.
FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            const SpmmConfig& cfg,
                            ThreadPool* pool = nullptr);
FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            ThreadPool* pool = nullptr);

/// Fidelity path: stage 2 runs through sptc::mma_sp_fp16 tile by tile.
/// Requires V % 16 == 0, (cols/M)*4 % 32 == 0, and C % 8 == 0.
FloatMatrix spmm_vnm_mma(const VnmMatrix& a, const HalfMatrix& b,
                         ThreadPool* pool = nullptr);

/// Naive oracle (no tiling, no pool).
FloatMatrix spmm_vnm_reference(const VnmMatrix& a, const HalfMatrix& b);

/// Transposed SpMM: C(K x C, fp32) = A^T * B with A(R x K) in V:N:M and
/// B(R x C) dense. This is the backward-pass kernel: for y = W x with a
/// sparse W, dL/dx = W^T dL/dy. The kernel keeps the forward traversal
/// order (coalesced reads of A) and scatters each nonzero's contribution
/// into the K-indexed output; tasks partition over block rows with
/// per-task private output accumulated at the end (no atomics).
FloatMatrix spmm_vnm_transposed(const VnmMatrix& a, const HalfMatrix& b,
                                ThreadPool* pool = nullptr);

/// Useful FLOPs of the sparse product: 2 * nnz * C.
inline double spmm_flops(const VnmMatrix& a, std::size_t b_cols) {
  return 2.0 * static_cast<double>(a.nnz()) * static_cast<double>(b_cols);
}

}  // namespace venom::spatha
