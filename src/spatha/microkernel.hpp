// Internal fast path shared by the Spatha SpMM kernels (spmm.cpp and the
// fused/batched variants in epilogue.cpp). Not part of the public API.
//
// The pipeline replaces the seed's per-FMA half->float conversion and
// per-element accessor arithmetic with:
//
//   gather_b_panel_f32     stage 1.2 gathers the selected B rows AND
//                          converts them to a packed float panel in one
//                          pass (half_to_float_n), so each gathered value
//                          is converted exactly once per panel.
//   accumulate_panel_f32   stage 2 hoists each row's nonzero values and
//                          panel-row offsets into flat scratch, then runs
//                          a register-blocked micro-kernel: fixed-size
//                          width strips accumulated in local registers.
//
// Numerics: per output element, products are accumulated in fp32 in
// ascending (group, j) order — bit-identical to spmm_vnm_reference and to
// the seed scalar path (zero-valued slots are skipped in both).
#pragma once

#include <cstdint>
#include <vector>

#include "common/half.hpp"
#include "format/vnm.hpp"
#include "spatha/spmm.hpp"  // detail::SpmmScratch
#include "tensor/matrix.hpp"

namespace venom::spatha::detail {

/// Width of the register block: 16 floats = one zmm register (or two ymm),
/// unrolled fully by the compiler.
constexpr std::size_t kStrip = 16;

/// Stage 1.2: gathers the B rows selected by column-loc for K-panel
/// [g0, g1) of block row `br` into a packed float panel restricted to
/// output columns [c0, c1). Layout matches the seed's half panel:
/// panel[((g - g0) * sel + s) * width + n]. When `fixed` is set, selectors
/// 0..sel-1 replace the column-loc reads (the Fig. 9 ablation).
inline void gather_b_panel_f32(const VnmMatrix& a, const HalfMatrix& b,
                               std::size_t br, std::size_t g0, std::size_t g1,
                               std::size_t c0, std::size_t c1, bool fixed,
                               std::vector<float>& panel) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t width = c1 - c0;
  const std::size_t groups = a.groups_per_row();
  panel.resize((g1 - g0) * sel * width);
  const std::uint8_t* cloc =
      a.column_locs().data() + (br * groups + g0) * sel;
  for (std::size_t g = g0; g < g1; ++g) {
    for (std::size_t s = 0; s < sel; ++s) {
      const std::size_t offset = fixed ? s : cloc[(g - g0) * sel + s];
      half_to_float_n(&b(g * fmt.m + offset, c0),
                      &panel[((g - g0) * sel + s) * width], width);
    }
  }
}

/// Stage 2 micro-kernel: accumulates block row `br` against the gathered
/// panel for groups [g0, g1) into `acc` (fmt.v rows of `width` floats).
inline void accumulate_panel_f32(const VnmMatrix& a, std::size_t br,
                                 std::size_t g0, std::size_t g1,
                                 std::size_t width, SpmmScratch& s,
                                 float* acc) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const std::size_t span = (g1 - g0) * fmt.n;
  s.a_vals.resize(span);
  s.a_offs.resize(span);
  const float* pan = s.panel.data();

  for (std::size_t dr = 0; dr < fmt.v; ++dr) {
    const std::size_t r = br * fmt.v + dr;
    // Hoist this row's nonzero descriptors out of the compressed
    // structures: one flat pass instead of accessor arithmetic per FMA.
    const half_t* vals = a.values().data() + (r * groups + g0) * fmt.n;
    const std::uint8_t* midx = a.m_indices().data() + (r * groups + g0) * fmt.n;
    std::size_t cnt = 0;
    for (std::size_t k = 0; k < span; ++k) {
      if (vals[k].is_zero()) continue;
      s.a_vals[cnt] = vals[k].to_float();
      s.a_offs[cnt] = static_cast<std::uint32_t>(
          ((k / fmt.n) * sel + midx[k]) * width);
      ++cnt;
    }

    float* arow = acc + dr * width;
    std::size_t n0 = 0;
    for (; n0 + kStrip <= width; n0 += kStrip) {
      float regs[kStrip];
      for (std::size_t u = 0; u < kStrip; ++u) regs[u] = arow[n0 + u];
      for (std::size_t t = 0; t < cnt; ++t) {
        const float av = s.a_vals[t];
        const float* bp = pan + s.a_offs[t] + n0;
        for (std::size_t u = 0; u < kStrip; ++u) regs[u] += av * bp[u];
      }
      for (std::size_t u = 0; u < kStrip; ++u) arow[n0 + u] = regs[u];
    }
    if (n0 < width) {
      // Ragged tail: same order, runtime-bounded strip.
      const std::size_t rem = width - n0;
      for (std::size_t t = 0; t < cnt; ++t) {
        const float av = s.a_vals[t];
        const float* bp = pan + s.a_offs[t] + n0;
        float* ar = arow + n0;
        for (std::size_t u = 0; u < rem; ++u) ar[u] += av * bp[u];
      }
    }
  }
}

}  // namespace venom::spatha::detail
