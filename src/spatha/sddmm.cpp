#include "spatha/sddmm.hpp"

#include <vector>

#include "common/error.hpp"

namespace venom::spatha {

VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, ThreadPool* pool) {
  VENOM_CHECK_MSG(a.rows() == structure.rows(),
                  "A has " << a.rows() << " rows, structure has "
                           << structure.rows());
  VENOM_CHECK_MSG(b.cols() == structure.cols(),
                  "B has " << b.cols() << " cols, structure has "
                           << structure.cols());
  VENOM_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs "
                                            << b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = structure.config();
  const std::size_t groups = structure.groups_per_row();
  const std::size_t depth = a.cols();
  std::vector<half_t> values(structure.values().size(), half_t(0.0f));

  pool->parallel_for(structure.rows(), [&](std::size_t r) {
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t j = 0; j < fmt.n; ++j) {
        // Padding slots (zero value in the structure) carry no position
        // information worth sampling; keep them zero.
        if (structure.value(r, g, j).is_zero()) continue;
        const std::size_t col = structure.dense_column(r, g, j);
        float acc = 0.0f;
        for (std::size_t d = 0; d < depth; ++d)
          acc += a(r, d).to_float() * b(d, col).to_float();
        values[(r * groups + g) * fmt.n + j] = half_t(acc);
      }
    }
  });

  return VnmMatrix::from_parts(fmt, structure.rows(), structure.cols(),
                               std::move(values), structure.m_indices(),
                               structure.column_locs());
}

}  // namespace venom::spatha
