#include "spatha/sddmm.hpp"

#include <vector>

#include "common/error.hpp"
#include "spatha/config.hpp"

namespace venom::spatha {

VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, ThreadPool* pool) {
  VENOM_CHECK_MSG(a.rows() == structure.rows(),
                  "A has " << a.rows() << " rows, structure has "
                           << structure.rows());
  VENOM_CHECK_MSG(b.cols() == structure.cols(),
                  "B has " << b.cols() << " cols, structure has "
                           << structure.cols());
  VENOM_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs "
                                            << b.rows());
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = structure.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = structure.groups_per_row();
  const std::size_t block_rows = structure.block_rows();
  const std::size_t depth = a.cols();
  std::vector<half_t> values(structure.values().size(), half_t(0.0f));

  // Bulk-convert both dense operands once; the dot products then run on
  // packed float data with no per-element conversion.
  const FloatMatrix af = to_float(a);
  const FloatMatrix bf = to_float(b);

  // Chunking follows the tuned dispatch config for this shape (keyed by
  // the structure's R x K and the dot-product depth): a tuned chunk_grain
  // applies to the SDDMM's block-row partition too, heuristic 0 (= pool
  // default) otherwise.
  const std::size_t grain =
      select_config(fmt, structure.rows(), structure.cols(), depth)
          .chunk_grain;

  // One iteration per block row: the <= 4 selected B columns of each
  // group are gathered into contiguous float scratch once and reused by
  // all V rows of the block (the paper's column-loc reuse, transposed).
  pool->parallel_for_chunks(block_rows, [&](std::size_t b0, std::size_t b1) {
    std::vector<float> cols_f(sel * depth);
    for (std::size_t br = b0; br < b1; ++br) {
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t s = 0; s < sel; ++s) {
          const std::size_t col = g * fmt.m + structure.column_loc(br, g, s);
          float* dst = &cols_f[s * depth];
          for (std::size_t d = 0; d < depth; ++d) dst[d] = bf(d, col);
        }
        for (std::size_t dr = 0; dr < fmt.v; ++dr) {
          const std::size_t r = br * fmt.v + dr;
          const float* arow = &af(r, 0);
          for (std::size_t j = 0; j < fmt.n; ++j) {
            // Padding slots (zero value in the structure) carry no
            // position information worth sampling; keep them zero.
            if (structure.value(r, g, j).is_zero()) continue;
            const float* bcol =
                &cols_f[structure.m_index(r, g, j) * depth];
            float acc = 0.0f;
            for (std::size_t d = 0; d < depth; ++d) acc += arow[d] * bcol[d];
            values[(r * groups + g) * fmt.n + j] = half_t(acc);
          }
        }
      }
    }
  }, grain);

  return VnmMatrix::from_parts(fmt, structure.rows(), structure.cols(),
                               std::move(values), structure.m_indices(),
                               structure.column_locs());
}

}  // namespace venom::spatha
