#include "spatha/sddmm.hpp"

#include <vector>

#include "common/error.hpp"

namespace venom::spatha {

namespace {

void check_shapes(const VnmMatrix& structure, const HalfMatrix& a,
                  const HalfMatrix& b) {
  VENOM_CHECK_MSG(a.rows() == structure.rows(),
                  "A has " << a.rows() << " rows, structure has "
                           << structure.rows());
  VENOM_CHECK_MSG(b.cols() == structure.cols(),
                  "B has " << b.cols() << " cols, structure has "
                           << structure.cols());
  VENOM_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs "
                                            << b.rows());
}

/// Lanes of the dot micro-kernel: partial sums the compiler keeps in
/// vector registers, reduced in ascending lane order at the end — the
/// SDDMM counterpart of the SpMM kStrip register block (there the strip
/// runs along output columns; a sampled output is a single scalar, so
/// the blocking must run along the reduction depth instead).
constexpr std::size_t kSddmmLanes = 8;

/// Dot of two packed float vectors with kSddmmLanes partial accumulators.
/// Deterministic (fixed lane assignment + fixed reduction order) but
/// reassociated relative to a single-accumulator loop.
inline float lane_dot(const float* x, const float* y, std::size_t n) {
  float lanes[kSddmmLanes] = {};
  std::size_t d = 0;
  for (; d + kSddmmLanes <= n; d += kSddmmLanes)
    for (std::size_t u = 0; u < kSddmmLanes; ++u)
      lanes[u] += x[d + u] * y[d + u];
  for (std::size_t u = 0; d + u < n; ++u) lanes[u] += x[d + u] * y[d + u];
  float acc = 0.0f;
  for (std::size_t u = 0; u < kSddmmLanes; ++u) acc += lanes[u];
  return acc;
}

}  // namespace

VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, const SpmmConfig& cfg,
                    ThreadPool* pool, SpmmScratchPool* scratch) {
  check_shapes(structure, a, b);
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = structure.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = structure.groups_per_row();
  const std::size_t block_rows = structure.block_rows();
  const std::size_t depth = a.cols();
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;
  std::vector<half_t> values(structure.values().size(), half_t(0.0f));

  // Bulk-convert both dense operands once; the dot products then run on
  // packed float data with no per-element conversion.
  const FloatMatrix af = to_float(a);
  const FloatMatrix bf = to_float(b);

  // One iteration per block row: the <= 4 selected B columns of each
  // group are gathered into a contiguous float panel once and reused by
  // all V rows of the block (the paper's column-loc reuse, transposed).
  // Under kFixed the panel holds columns g*M + 0..sel-1, so a value's
  // m-index addresses the same panel row either way.
  pool->parallel_for_chunks(block_rows, [&](std::size_t b0, std::size_t b1) {
    detail::ScratchLease scratch_lease;
    detail::SpmmScratch& s = scratch_lease.bind(scratch);
    s.panel.resize(sel * depth);
    for (std::size_t br = b0; br < b1; ++br) {
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t sidx = 0; sidx < sel; ++sidx) {
          const std::size_t col =
              g * fmt.m +
              (fixed ? sidx : structure.column_loc(br, g, sidx));
          float* dst = &s.panel[sidx * depth];
          for (std::size_t d = 0; d < depth; ++d) dst[d] = bf(d, col);
        }
        for (std::size_t dr = 0; dr < fmt.v; ++dr) {
          const std::size_t r = br * fmt.v + dr;
          const float* arow = &af(r, 0);
          for (std::size_t j = 0; j < fmt.n; ++j) {
            // Padding slots (zero value in the structure) carry no
            // position information worth sampling; keep them zero.
            if (structure.value(r, g, j).is_zero()) continue;
            const float* bcol =
                &s.panel[structure.m_index(r, g, j) * depth];
            values[(r * groups + g) * fmt.n + j] =
                half_t(lane_dot(arow, bcol, depth));
          }
        }
      }
    }
  }, cfg.chunk_grain);

  return VnmMatrix::from_parts(fmt, structure.rows(), structure.cols(),
                               std::move(values), structure.m_indices(),
                               structure.column_locs());
}

VnmMatrix sddmm_vnm(const VnmMatrix& structure, const HalfMatrix& a,
                    const HalfMatrix& b, ThreadPool* pool) {
  return sddmm_vnm(structure, a, b,
                   select_config(structure.config(), structure.rows(),
                                 structure.cols(), a.cols()),
                   pool);
}

VnmMatrix sddmm_vnm_scalar(const VnmMatrix& structure, const HalfMatrix& a,
                           const HalfMatrix& b, ColumnLocMode mode) {
  check_shapes(structure, a, b);
  const VnmConfig fmt = structure.config();
  const std::size_t groups = structure.groups_per_row();
  const std::size_t depth = a.cols();
  const bool fixed = mode == ColumnLocMode::kFixed;
  std::vector<half_t> values(structure.values().size(), half_t(0.0f));

  for (std::size_t r = 0; r < structure.rows(); ++r) {
    const std::size_t br = r / fmt.v;
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t j = 0; j < fmt.n; ++j) {
        if (structure.value(r, g, j).is_zero()) continue;
        const std::uint8_t midx = structure.m_index(r, g, j);
        const std::size_t col =
            g * fmt.m + (fixed ? midx : structure.column_loc(br, g, midx));
        float acc = 0.0f;
        for (std::size_t d = 0; d < depth; ++d)
          acc += a(r, d).to_float() * b(d, col).to_float();
        values[(r * groups + g) * fmt.n + j] = half_t(acc);
      }
    }
  }
  return VnmMatrix::from_parts(fmt, structure.rows(), structure.cols(),
                               std::move(values), structure.m_indices(),
                               structure.column_locs());
}

}  // namespace venom::spatha
