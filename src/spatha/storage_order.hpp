// The Spatha storage order for non-zero values and m-indices (Fig. 7).
//
// Spatha linearizes the compressed operand so that, during stage 1.3,
// each thread's loads are 128-bit and coalesced, and so the layout can
// dispense with ldmatrix (whose shuffle is a known source of SMEM bank
// conflicts). Within one warp tile of the compressed matrix
// (WSm rows x WSk/2 compressed columns), values are stored in the order
// the mma.sp register fragments consume them:
//
//   - the tile is split into mma instruction tiles of 16 x 16
//     (MMAm x MMAk/2 compressed);
//   - inside an instruction tile, each thread's four 2-element register
//     pairs ({a0,a1}, {a2,a3}, {a4,a5}, {a6,a7}) are stored contiguously
//     (8 fp16 = 128 bits per thread), threads in warp order;
//   - instruction tiles follow row-major order within the warp tile.
//
// linear_offset() gives the position of a compressed-tile coordinate in
// that stream; the inverse mapping plus the bijection and contiguity
// properties are exercised by the tests, and pack_warp_tile() /
// unpack_warp_tile() apply the order to real data.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/half.hpp"
#include "sptc/fragment.hpp"

namespace venom::spatha {

/// Geometry of a warp tile of the compressed operand.
struct WarpTileShape {
  std::size_t rows = 32;      ///< WSm, multiple of 16
  std::size_t comp_cols = 32; ///< WSk/2 compressed columns, multiple of 16

  std::size_t elements() const { return rows * comp_cols; }
  std::size_t tiles_r() const { return rows / 16; }
  std::size_t tiles_c() const { return comp_cols / 16; }
};

/// Position of compressed element (row, col) of the warp tile in the
/// Fig. 7 storage stream. row < shape.rows, col < shape.comp_cols.
std::size_t linear_offset(WarpTileShape shape, std::size_t row,
                          std::size_t col);

/// Inverse of linear_offset.
sptc::TileCoord tile_coord(WarpTileShape shape, std::size_t offset);

/// Reorders a row-major warp tile (rows x comp_cols) into the storage
/// stream.
std::vector<half_t> pack_warp_tile(WarpTileShape shape,
                                   std::span<const half_t> row_major);

/// Restores row-major order from a storage stream.
std::vector<half_t> unpack_warp_tile(WarpTileShape shape,
                                     std::span<const half_t> packed);

}  // namespace venom::spatha
