#include "spatha/tuning_cache.hpp"

#include <cstdlib>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "io/serialize.hpp"

namespace venom::spatha {

TuningKey make_tuning_key(const VnmConfig& fmt, std::size_t rows,
                          std::size_t cols, std::size_t b_cols) {
  TuningKey key;
  key.rows = rows;
  key.cols = cols;
  key.b_cols = b_cols;
  key.v = fmt.v;
  key.n = fmt.n;
  key.m = fmt.m;
  key.features = cpu_feature_string();
  return key;
}

TuningKey make_tuning_key_i8(const VnmConfig& fmt, std::size_t rows,
                             std::size_t cols, std::size_t b_cols) {
  TuningKey key = make_tuning_key(fmt, rows, cols, b_cols);
  key.features += "+i8";
  return key;
}

TuningKey make_tuning_key_fp8(const VnmConfig& fmt, std::size_t rows,
                              std::size_t cols, std::size_t b_cols) {
  TuningKey key = make_tuning_key(fmt, rows, cols, b_cols);
  key.features += "+fp8";
  return key;
}

TuningCache::TuningCache(TuningCache&& other) noexcept {
  MutexLock lock(other.mutex_);
  map_ = std::move(other.map_);
}

TuningCache& TuningCache::operator=(TuningCache&& other) noexcept {
  if (this != &other) {
    // Sequential locking instead of a two-lock scope: the maps hand off
    // through a local, so no thread ever holds both mutexes — there is
    // no ordering to get wrong (and nothing the analysis cannot model).
    std::map<TuningKey, TuningEntry> moved;
    {
      MutexLock lock(other.mutex_);
      moved = std::move(other.map_);
    }
    MutexLock lock(mutex_);
    map_ = std::move(moved);
  }
  return *this;
}

std::optional<TuningEntry> TuningCache::find(const TuningKey& key) const {
  MutexLock lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<SpmmConfig> TuningCache::lookup(const VnmConfig& fmt,
                                              std::size_t rows,
                                              std::size_t cols,
                                              std::size_t b_cols) const {
  // Fast path for the common untuned process: skip building the key (its
  // feature string allocates) when there is nothing to find.
  if (empty()) return std::nullopt;
  const auto entry = find(make_tuning_key(fmt, rows, cols, b_cols));
  if (!entry.has_value()) return std::nullopt;
  return entry->config;
}

std::optional<SpmmConfig> TuningCache::lookup_i8(const VnmConfig& fmt,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 std::size_t b_cols) const {
  if (empty()) return std::nullopt;
  const auto entry = find(make_tuning_key_i8(fmt, rows, cols, b_cols));
  if (!entry.has_value()) return std::nullopt;
  return entry->config;
}

std::optional<SpmmConfig> TuningCache::lookup_fp8(const VnmConfig& fmt,
                                                  std::size_t rows,
                                                  std::size_t cols,
                                                  std::size_t b_cols) const {
  if (empty()) return std::nullopt;
  const auto entry = find(make_tuning_key_fp8(fmt, rows, cols, b_cols));
  if (!entry.has_value()) return std::nullopt;
  return entry->config;
}

void TuningCache::put(const TuningKey& key, const TuningEntry& entry) {
  MutexLock lock(mutex_);
  map_[key] = entry;
}

void TuningCache::erase(const TuningKey& key) {
  MutexLock lock(mutex_);
  map_.erase(key);
}

void TuningCache::clear() {
  MutexLock lock(mutex_);
  map_.clear();
}

std::size_t TuningCache::size() const {
  MutexLock lock(mutex_);
  return map_.size();
}

std::vector<std::pair<TuningKey, TuningEntry>> TuningCache::entries() const {
  MutexLock lock(mutex_);
  return {map_.begin(), map_.end()};
}

bool TuningCache::try_load(const std::string& path) {
  TuningCache loaded;
  try {
    loaded = io::load_tuning_cache(path);
  } catch (const Error&) {
    return false;
  }
  for (const auto& [key, entry] : loaded.entries()) put(key, entry);
  return true;
}

TuningCache& TuningCache::global() {
  static TuningCache cache;
  static const bool loaded = [] {
    const char* path = std::getenv("VENOM_TUNE_CACHE");
    if (path != nullptr && *path != '\0') cache.try_load(path);
    return true;
  }();
  (void)loaded;
  return cache;
}

}  // namespace venom::spatha
