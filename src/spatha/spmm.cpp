#include "spatha/spmm.hpp"

#include <algorithm>
#include <vector>

#include "spatha/microkernel.hpp"
#include "sptc/metadata.hpp"
#include "sptc/mma.hpp"

namespace venom::spatha {

FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     const SpmmConfig& cfg, ThreadPool* pool,
                     SpmmScratchPool* scratch) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;
  const std::size_t block_rows = a.block_rows();
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;

  // One iteration per (block row, C tile): BSr = V, so each tile owns a
  // V x BSc output and reuses one column-loc row — exactly the paper's
  // thread-block decomposition (Fig. 5). Scratch lives per chunk, so the
  // panel/accumulator buffers are reused across the tiles of a chunk —
  // and, when a SpmmScratchPool is supplied, across calls.
  pool->parallel_for_chunks(
      block_rows * c_tiles, [&](std::size_t t0, std::size_t t1) {
        detail::ScratchLease scratch_lease;
        detail::SpmmScratch& s = scratch_lease.bind(scratch);
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / c_tiles;
          const std::size_t ct = t % c_tiles;
          const std::size_t c0 = ct * cfg.block_c;
          const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
          const std::size_t width = c1 - c0;

          s.acc.assign(fmt.v * width, 0.0f);
          for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
            const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
            // Stages 1.1 + 1.2: column-loc driven gather of B into a
            // packed float panel (converted once per gather).
            detail::gather_b_panel_f32(a, b, br, g0, g1, c0, c1, fixed,
                                       s.panel);
            // Stage 2: register-blocked indexed multiply-accumulate.
            detail::accumulate_panel_f32(a, br, g0, g1, width, s,
                                         s.acc.data());
          }

          // Stage 3: contiguous write-back of the finished output tile.
          for (std::size_t dr = 0; dr < fmt.v; ++dr) {
            float* crow = &c(br * fmt.v + dr, c0);
            const float* arow = &s.acc[dr * width];
            std::copy(arow, arow + width, crow);
          }
        }
      },
      cfg.chunk_grain);
  return c;
}

FloatMatrix spmm_vnm(const VnmMatrix& a, const HalfMatrix& b,
                     ThreadPool* pool) {
  return spmm_vnm(a, b,
                  select_config(a.config(), a.rows(), a.cols(), b.cols()),
                  pool);
}

FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            const SpmmConfig& cfg, ThreadPool* pool) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;
  const std::size_t block_rows = a.block_rows();
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;

  pool->parallel_for(block_rows * c_tiles, [&](std::size_t t) {
    const std::size_t br = t / c_tiles;
    const std::size_t ct = t % c_tiles;
    const std::size_t c0 = ct * cfg.block_c;
    const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
    const std::size_t width = c1 - c0;

    std::vector<half_t> panel;           // the SMEM image of gathered B
    std::vector<float> acc(fmt.v * width, 0.0f);

    for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
      const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
      panel.resize((g1 - g0) * sel * width);
      for (std::size_t g = g0; g < g1; ++g) {
        for (std::size_t s = 0; s < sel; ++s) {
          const std::size_t offset =
              fixed ? s : static_cast<std::size_t>(a.column_loc(br, g, s));
          const half_t* src = &b(g * fmt.m + offset, c0);
          std::copy(src, src + width,
                    &panel[((g - g0) * sel + s) * width]);
        }
      }
      for (std::size_t dr = 0; dr < fmt.v; ++dr) {
        const std::size_t r = br * fmt.v + dr;
        float* arow = &acc[dr * width];
        for (std::size_t g = g0; g < g1; ++g) {
          for (std::size_t j = 0; j < fmt.n; ++j) {
            const half_t v = a.value(r, g, j);
            if (v.is_zero()) continue;
            const float av = v.to_float();
            const half_t* brow =
                &panel[((g - g0) * sel + a.m_index(r, g, j)) * width];
            for (std::size_t n = 0; n < width; ++n)
              arow[n] += av * brow[n].to_float();
          }
        }
      }
    }
    for (std::size_t dr = 0; dr < fmt.v; ++dr) {
      float* crow = &c(br * fmt.v + dr, c0);
      const float* arow = &acc[dr * width];
      std::copy(arow, arow + width, crow);
    }
  });
  return c;
}

FloatMatrix spmm_vnm_scalar(const VnmMatrix& a, const HalfMatrix& b,
                            ThreadPool* pool) {
  return spmm_vnm_scalar(
      a, b, select_config(a.config(), a.rows(), a.cols(), b.cols()), pool);
}

FloatMatrix spmm_vnm_mma(const VnmMatrix& a, const HalfMatrix& b,
                         ThreadPool* pool) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK(a.cols() == b.rows());
  VENOM_CHECK_MSG(fmt.n == 2 && fmt.selected_cols() == 4,
                  "mma.sp path requires the 2:4-mapped configuration");
  VENOM_CHECK_MSG(fmt.v % 16 == 0, "mma path requires 16 | V");
  const std::size_t groups = a.groups_per_row();
  VENOM_CHECK_MSG((groups * 4) % 32 == 0,
                  "mma path requires gathered K divisible by 32");
  VENOM_CHECK_MSG(b.cols() % 8 == 0, "mma path requires 8 | C");
  if (pool == nullptr) pool = &ThreadPool::global();

  // The gathered LHS is the dense-in-2:4 view of Fig. 4: R x groups*4
  // logical, R x groups*2 compressed.
  FloatMatrix c(a.rows(), b.cols());
  const std::size_t gathered_k = groups * 4;   // logical K after gather
  const std::size_t tiles_k = gathered_k / 32;
  const std::size_t tiles_n = b.cols() / 8;
  const std::size_t block_rows = a.block_rows();
  const std::size_t row_tiles_per_block = fmt.v / 16;

  pool->parallel_for_chunks(
      block_rows * row_tiles_per_block * tiles_n,
      [&](std::size_t t0, std::size_t t1) {
        // Tile staging buffers are reused across the tiles of a chunk.
        std::vector<half_t> a_tile(16 * 16);
        std::vector<std::uint8_t> idx_tile(16 * 16);
        std::vector<half_t> b_tile(32 * 8);
        std::vector<float> c_tile(16 * 8);

        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / (row_tiles_per_block * tiles_n);
          const std::size_t rt = (t / tiles_n) % row_tiles_per_block;
          const std::size_t tn = t % tiles_n;
          const std::size_t r0 = br * fmt.v + rt * 16;
          std::fill(c_tile.begin(), c_tile.end(), 0.0f);

          for (std::size_t tk = 0; tk < tiles_k; ++tk) {
            // Each instruction tile covers 8 M-groups (8 groups * 4
            // selected columns = 32 logical / 16 compressed). The
            // compressed row is contiguous in the format arrays, so the
            // staging is two flat 16-element copies per row.
            for (std::size_t i = 0; i < 16; ++i) {
              const std::size_t r = r0 + i;
              const std::size_t base = (r * groups + tk * 8) * 2;
              std::copy(a.values().data() + base,
                        a.values().data() + base + 16, &a_tile[i * 16]);
              std::copy(a.m_indices().data() + base,
                        a.m_indices().data() + base + 16, &idx_tile[i * 16]);
            }
            const auto meta = sptc::pack_metadata(idx_tile);
            // Gathered B tile: row (gg*4 + s) is dense row g*M +
            // column_loc, copied as one contiguous 8-wide strip.
            for (std::size_t gg = 0; gg < 8; ++gg) {
              const std::size_t g = tk * 8 + gg;
              for (std::size_t s = 0; s < 4; ++s) {
                const std::size_t row = g * fmt.m + a.column_loc(br, g, s);
                const half_t* src = &b(row, tn * 8);
                std::copy(src, src + 8, &b_tile[(gg * 4 + s) * 8]);
              }
            }
            sptc::mma_sp_fp16(32, a_tile, meta, b_tile, c_tile);
          }
          for (std::size_t i = 0; i < 16; ++i)
            for (std::size_t n = 0; n < 8; ++n)
              c(r0 + i, tn * 8 + n) = c_tile[i * 8 + n];
        }
      });
  return c;
}

FloatMatrix spmm_vnm_transposed(const VnmMatrix& a, const HalfMatrix& b,
                                const SpmmConfig& cfg, ThreadPool* pool) {
  VENOM_CHECK_MSG(a.rows() == b.rows(),
                  "transposed SpMM shape mismatch: A is " << a.rows() << 'x'
                      << a.cols() << ", B is " << b.rows() << 'x'
                      << b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  const std::size_t block_rows = a.block_rows();
  const std::size_t width = b.cols();
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;

  // Convert B to float once up front: every row is re-read by each of its
  // nonzeros, so the bulk conversion amortizes across groups * N FMAs.
  const FloatMatrix bf = to_float(b);

  // Each task owns a contiguous range of block rows and scatters into a
  // private K x C accumulator; partials are reduced afterwards. Memory
  // is bounded by capping the task count (the CUDA kernel would instead
  // stage per-CTA partials in SMEM and atomically merge); a tuned chunk
  // grain lower-bounds the block rows per task, trading parallelism for
  // fewer K x C partials on small problems.
  std::size_t tasks =
      std::min<std::size_t>(block_rows, std::max<std::size_t>(
                                            1, pool->size()));
  if (cfg.chunk_grain > 0)
    tasks = std::min(tasks,
                     (block_rows + cfg.chunk_grain - 1) / cfg.chunk_grain);
  const std::size_t per_task = (block_rows + tasks - 1) / tasks;
  std::vector<FloatMatrix> partials(tasks);

  pool->parallel_for(tasks, [&](std::size_t t) {
    FloatMatrix local(a.cols(), width);
    // Flat per-row descriptor scratch: dense output row and value of each
    // nonzero, hoisted ahead of the scatter loops.
    std::vector<float> vals(groups * fmt.n);
    std::vector<std::uint32_t> rows(groups * fmt.n);
    const std::size_t br0 = t * per_task;
    const std::size_t br1 = std::min(block_rows, br0 + per_task);
    for (std::size_t br = br0; br < br1; ++br) {
      for (std::size_t dr = 0; dr < fmt.v; ++dr) {
        const std::size_t r = br * fmt.v + dr;
        const half_t* avals = a.values().data() + r * groups * fmt.n;
        const std::uint8_t* midx = a.m_indices().data() + r * groups * fmt.n;
        std::size_t cnt = 0;
        for (std::size_t k = 0; k < groups * fmt.n; ++k) {
          if (avals[k].is_zero()) continue;
          const std::size_t g = k / fmt.n;
          vals[cnt] = avals[k].to_float();
          rows[cnt] = static_cast<std::uint32_t>(
              g * fmt.m +
              (fixed ? midx[k] : a.column_loc(br, g, midx[k])));
          ++cnt;
        }
        const float* brow = &bf(r, 0);
        for (std::size_t x = 0; x < cnt; ++x) {
          const float av = vals[x];
          float* crow = &local(rows[x], 0);
          for (std::size_t n = 0; n < width; ++n) crow[n] += av * brow[n];
        }
      }
    }
    partials[t] = std::move(local);
  });

  FloatMatrix c = std::move(partials[0]);
  for (std::size_t t = 1; t < tasks; ++t)
    for (std::size_t i = 0; i < c.size(); ++i)
      c.flat()[i] += partials[t].flat()[i];
  return c;
}

FloatMatrix spmm_vnm_transposed(const VnmMatrix& a, const HalfMatrix& b,
                                ThreadPool* pool) {
  return spmm_vnm_transposed(
      a, b, select_config(a.config(), a.rows(), a.cols(), b.cols()), pool);
}

FloatMatrix spmm_vnm_transposed_scalar(const VnmMatrix& a,
                                       const HalfMatrix& b,
                                       ColumnLocMode mode) {
  VENOM_CHECK_MSG(a.rows() == b.rows(),
                  "transposed SpMM shape mismatch: A is " << a.rows() << 'x'
                      << a.cols() << ", B is " << b.rows() << 'x'
                      << b.cols());
  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  const bool fixed = mode == ColumnLocMode::kFixed;
  FloatMatrix c(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::size_t br = r / fmt.v;
    for (std::size_t g = 0; g < groups; ++g)
      for (std::size_t j = 0; j < fmt.n; ++j) {
        const half_t v = a.value(r, g, j);
        if (v.is_zero()) continue;
        const std::uint8_t midx = a.m_index(r, g, j);
        const std::size_t row =
            g * fmt.m + (fixed ? midx : a.column_loc(br, g, midx));
        const float av = v.to_float();
        for (std::size_t n = 0; n < b.cols(); ++n)
          c(row, n) += av * b(r, n).to_float();
      }
  }
  return c;
}

// Deliberately independent of spmm_24 despite the shared staging shape:
// spmm_24 is this kernel's bit-parity oracle (like spmm_vnm_scalar is for
// spmm_vnm) — its inner loop streams each nonzero through memory while
// this one keeps an output strip in registers across all of them — so
// folding the two into one implementation would make the parity test
// vacuous.
FloatMatrix spmm_nm(const NmMatrix& a, const HalfMatrix& b,
                    ThreadPool* pool) {
  const NmPattern p = a.pattern();
  VENOM_CHECK_MSG(a.cols() == b.rows(),
                  "N:M SpMM shape mismatch: A is " << a.rows() << 'x'
                      << a.cols() << ", B is " << b.rows() << 'x' << b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  const std::size_t width = b.cols();
  constexpr std::size_t kRowBlock = 32;
  const std::size_t row_blocks = (a.rows() + kRowBlock - 1) / kRowBlock;

  // Stage 1: one bulk fp16->float conversion of B, shared by every row
  // (each dense row is re-read by all the nonzeros that select it).
  const FloatMatrix bf = to_float(b);

  pool->parallel_for_chunks(row_blocks, [&](std::size_t rb0, std::size_t rb1) {
    std::vector<float> vals(groups * p.n);
    std::vector<std::uint32_t> rows(groups * p.n);
    for (std::size_t rb = rb0; rb < rb1; ++rb) {
      const std::size_t r0 = rb * kRowBlock;
      const std::size_t r1 = std::min(a.rows(), r0 + kRowBlock);
      for (std::size_t r = r0; r < r1; ++r) {
        // Hoist the row's nonzero descriptors (value, dense B row) out of
        // the compressed structures, in ascending (group, j) order.
        const half_t* avals = a.values().data() + r * groups * p.n;
        const std::uint8_t* aidx = a.indices().data() + r * groups * p.n;
        std::size_t cnt = 0;
        for (std::size_t k = 0; k < groups * p.n; ++k) {
          if (avals[k].is_zero()) continue;
          vals[cnt] = avals[k].to_float();
          rows[cnt] =
              static_cast<std::uint32_t>((k / p.n) * p.m + aidx[k]);
          ++cnt;
        }

        // Stage 2: register-blocked strips — the output strip stays in
        // registers across all of the row's nonzeros, so each element
        // still accumulates in ascending (group, j) order (bit-identical
        // to spmm_24's element order) while C traffic drops to one
        // read-modify-write per strip.
        float* crow = &c(r, 0);
        std::size_t n0 = 0;
        for (; n0 + detail::kStrip <= width; n0 += detail::kStrip) {
          float regs[detail::kStrip];
          for (std::size_t u = 0; u < detail::kStrip; ++u)
            regs[u] = crow[n0 + u];
          for (std::size_t t = 0; t < cnt; ++t) {
            const float av = vals[t];
            const float* brow = &bf(rows[t], n0);
            for (std::size_t u = 0; u < detail::kStrip; ++u)
              regs[u] += av * brow[u];
          }
          for (std::size_t u = 0; u < detail::kStrip; ++u)
            crow[n0 + u] = regs[u];
        }
        if (n0 < width) {
          const std::size_t rem = width - n0;
          for (std::size_t t = 0; t < cnt; ++t) {
            const float av = vals[t];
            const float* brow = &bf(rows[t], n0);
            float* cr = crow + n0;
            for (std::size_t u = 0; u < rem; ++u) cr[u] += av * brow[u];
          }
        }
      }
    }
  });
  return c;
}

FloatMatrix spmm_vnm_reference(const VnmMatrix& a, const HalfMatrix& b) {
  VENOM_CHECK(a.cols() == b.rows());
  FloatMatrix c(a.rows(), b.cols());
  const std::size_t groups = a.groups_per_row();
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g)
      for (std::size_t j = 0; j < a.config().n; ++j) {
        const half_t v = a.value(r, g, j);
        if (v.is_zero()) continue;
        const std::size_t col = a.dense_column(r, g, j);
        for (std::size_t n = 0; n < b.cols(); ++n)
          c(r, n) += v.to_float() * b(col, n).to_float();
      }
  return c;
}

}  // namespace venom::spatha
