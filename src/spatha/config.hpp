// Spatha kernel configuration (Section 4.1).
//
// Spatha is template-based on the GPU: thread-block tile (BSr x BSk x BSc),
// warp tile (WSr x WSk x WSc), mma shape, and memory pipeline depth
// (batchSize) are compile-time parameters chosen per problem. The CPU port
// keeps them as a runtime config validated with the same divisibility
// rules; the gpumodel module uses the same struct to cost a kernel launch.
#pragma once

#include <cstddef>
#include <string>

#include "format/vnm.hpp"

namespace venom::spatha {

/// Width of the SMEM stores used when writing output tiles (Fig. 8): the
/// padded conflict-free layout enables 128-bit stores; the fallback issues
/// 32-bit stores. Affects only modelled GPU time, not results.
enum class StoreWidth : std::uint8_t { k32bit, k128bit };

/// Whether the kernel fetches the column-loc structure (real V:N:M) or
/// uses fixed selectors (the "w/o column-loc" ideal of the Fig. 9
/// ablation, which skips the gather's metadata reads).
enum class ColumnLocMode : std::uint8_t { kEnabled, kFixed };

/// Tunable kernel parameters for an R x K x C SpMM.
struct SpmmConfig {
  // Thread-block tile. BSr is implicitly V (the paper sets BSr = V so one
  // block reuses one column-loc row); BSk/BSc are dense K/C tile extents.
  std::size_t block_k = 512;
  std::size_t block_c = 64;

  // Warp tile within the block tile.
  std::size_t warp_r = 32;
  std::size_t warp_k = 64;
  std::size_t warp_c = 64;

  // mma.sp instruction shape (fixed m16n8k32 for fp16).
  std::size_t mma_r = 16;
  std::size_t mma_k = 32;
  std::size_t mma_c = 8;

  // Depth of the GMEM->SMEM async-copy pipeline (stage 1.2/1.3 overlap).
  std::size_t batch_size = 2;

  // CPU execution knob: output tiles handed to a pool runner per claimed
  // chunk (ThreadPool::parallel_for_chunks grain). 0 lets the pool pick a
  // few chunks per worker; small grains balance ragged work, large grains
  // keep a chunk's scratch hot. Does not affect results or modelled time.
  std::size_t chunk_grain = 0;

  StoreWidth store_width = StoreWidth::k128bit;
  ColumnLocMode column_loc = ColumnLocMode::kEnabled;

  std::string describe() const;

  friend bool operator==(const SpmmConfig&, const SpmmConfig&) = default;
};

/// Validates `cfg` against a concrete problem; throws venom::Error with a
/// precise message if any divisibility rule is violated.
void validate(const SpmmConfig& cfg, const VnmConfig& fmt, std::size_t rows,
              std::size_t cols, std::size_t b_cols);

/// Configuration choice from problem shape. Consults the process-wide
/// empirical tuning cache (spatha/tuning_cache.hpp) first — an entry for
/// (shape, V:N:M, this build's CPU features) wins — and falls back to
/// select_config_heuristic when none exists. Every dispatch path that
/// defaults its config (spmm_vnm, the fused/batched variants, sddmm_vnm,
/// transformer::Linear) therefore picks up tuned configs transparently.
SpmmConfig select_config(const VnmConfig& fmt, std::size_t rows,
                         std::size_t cols, std::size_t b_cols);

class TuningCache;

/// Same selection policy against an explicit tuning cache (a tuned entry
/// that no longer validates degrades to the heuristic). The overload
/// above and ops::ExecContext both route through this, so the
/// hand-editable-cache degradation rules live in exactly one place.
SpmmConfig select_config(const TuningCache& cache, const VnmConfig& fmt,
                         std::size_t rows, std::size_t cols,
                         std::size_t b_cols);

/// The fixed shape-driven heuristic (the pre-tuning behaviour): picks
/// tile sizes that divide the problem and balance panel footprint against
/// parallelism. Also the baseline autotune_measured compares against.
SpmmConfig select_config_heuristic(const VnmConfig& fmt, std::size_t rows,
                                   std::size_t cols, std::size_t b_cols);

/// Configuration choice for the int8 datapath (quant::spmm_vnm_i8): the
/// "+i8"-tagged tuning-cache entry when one exists, else the
/// reduced-precision heuristic. Separate from select_config because the
/// integer quad micro-kernel's optimum differs structurally from the
/// fp16 one (see select_config_heuristic_i8).
SpmmConfig select_config_i8(const VnmConfig& fmt, std::size_t rows,
                            std::size_t cols, std::size_t b_cols);
SpmmConfig select_config_i8(const TuningCache& cache, const VnmConfig& fmt,
                            std::size_t rows, std::size_t cols,
                            std::size_t b_cols);

/// Configuration choice for the fp8 datapath (quant::spmm_vnm_fp8): the
/// "+fp8"-tagged tuning-cache entry when one exists, else the fp16
/// heuristic — the fp8 kernel upconverts its operands and runs the same
/// float-panel pipeline, so it shares the fp16 tiling optimum as a
/// fallback while still honouring its own measured entries.
SpmmConfig select_config_fp8(const VnmConfig& fmt, std::size_t rows,
                             std::size_t cols, std::size_t b_cols);
SpmmConfig select_config_fp8(const TuningCache& cache, const VnmConfig& fmt,
                             std::size_t rows, std::size_t cols,
                             std::size_t b_cols);

/// Shape heuristic for the int8 quad kernel: tiny K panels (a handful of
/// M-groups — the quad-interleaved panel re-streams once per column
/// strip, so it must stay L1-resident) and C tiles twice the fp16 width
/// (the per-panel pack and per-row slot-scatter costs amortize over
/// columns).
SpmmConfig select_config_heuristic_i8(const VnmConfig& fmt, std::size_t rows,
                                      std::size_t cols, std::size_t b_cols);

}  // namespace venom::spatha
