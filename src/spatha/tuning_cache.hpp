// Persistent cache of empirically tuned kernel configurations.
//
// The paper selects Spatha template parameters per problem shape from a
// tuning table built offline; this is the CPU analogue. An entry maps
// (R, K, C, V:N:M, CPU feature fingerprint) to the SpmmConfig that
// measured fastest on this machine (gpumodel::autotune_measured builds
// entries; `venomtool tune` persists them as JSON via io::serialize).
//
// Dispatch integration: spatha::select_config consults the process-wide
// cache before falling back to the fixed heuristic, so spmm_vnm, the
// fused/batched variants, sddmm_vnm, and transformer::Linear all pick up
// tuned configurations transparently. The global cache starts empty and
// lazily loads the file named by $VENOM_TUNE_CACHE on first consultation;
// a missing or corrupt file degrades silently to the heuristic.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "format/vnm.hpp"
#include "spatha/config.hpp"

namespace venom::spatha {

/// Identity of one tuned problem. `features` pins the entry to the
/// instruction-set the measuring binary was compiled for (see
/// common/cpu_features.hpp); entries from other builds never match.
struct TuningKey {
  std::size_t rows = 0;    ///< R
  std::size_t cols = 0;    ///< K
  std::size_t b_cols = 0;  ///< C
  std::size_t v = 0;
  std::size_t n = 0;
  std::size_t m = 0;
  std::string features;

  friend auto operator<=>(const TuningKey&, const TuningKey&) = default;
};

/// Key for a problem as this binary would look it up (features = this
/// build's cpu_feature_string()).
TuningKey make_tuning_key(const VnmConfig& fmt, std::size_t rows,
                          std::size_t cols, std::size_t b_cols);

/// Key for the same problem executed through the int8 datapath
/// (quant::spmm_vnm_i8). The integer micro-kernel wants very different
/// tiles than the fp16 one — small L1-resident quad panels, wide C
/// tiles — so its entries live under a "+i8"-suffixed feature tag in the
/// same cache/file rather than shadowing the fp16 entry for the shape.
TuningKey make_tuning_key_i8(const VnmConfig& fmt, std::size_t rows,
                             std::size_t cols, std::size_t b_cols);

/// Key for the fp8 datapath (quant::spmm_vnm_fp8), under a "+fp8" tag.
/// E5M2 and E4M3 share one entry: the kernel decodes either format to
/// float while hoisting and then runs the identical float-panel
/// pipeline, so the tiling optimum does not depend on the fp8 flavour.
TuningKey make_tuning_key_fp8(const VnmConfig& fmt, std::size_t rows,
                              std::size_t cols, std::size_t b_cols);

/// One measured result. The heuristic throughput is stored alongside so
/// tooling can report the tuning gain without re-measuring.
struct TuningEntry {
  SpmmConfig config;
  double gflops = 0.0;            ///< measured with `config`
  double heuristic_gflops = 0.0;  ///< same problem, fixed heuristic config
  std::size_t threads = 0;  ///< pool size the config measured fastest under
};

/// Thread-safe map of tuned configurations.
class TuningCache {
 public:
  TuningCache() = default;
  // Movable (the mutex itself is not moved) so loaders can return caches
  // by value; not copyable.
  TuningCache(TuningCache&& other) noexcept;
  TuningCache& operator=(TuningCache&& other) noexcept;

  /// The entry for `key`, if present.
  std::optional<TuningEntry> find(const TuningKey& key) const
      VENOM_EXCLUDES(mutex_);

  /// The tuned config for a problem under this build's feature set.
  std::optional<SpmmConfig> lookup(const VnmConfig& fmt, std::size_t rows,
                                   std::size_t cols,
                                   std::size_t b_cols) const;

  /// Same lookup under the int8-datapath key (make_tuning_key_i8).
  std::optional<SpmmConfig> lookup_i8(const VnmConfig& fmt, std::size_t rows,
                                      std::size_t cols,
                                      std::size_t b_cols) const;

  /// Same lookup under the fp8-datapath key (make_tuning_key_fp8).
  std::optional<SpmmConfig> lookup_fp8(const VnmConfig& fmt, std::size_t rows,
                                       std::size_t cols,
                                       std::size_t b_cols) const;

  /// Inserts or replaces the entry for `key`.
  void put(const TuningKey& key, const TuningEntry& entry)
      VENOM_EXCLUDES(mutex_);

  /// Removes the entry for `key`, if present.
  void erase(const TuningKey& key) VENOM_EXCLUDES(mutex_);

  void clear() VENOM_EXCLUDES(mutex_);
  std::size_t size() const VENOM_EXCLUDES(mutex_);
  bool empty() const { return size() == 0; }

  /// Snapshot of all entries in key order (serialization, reporting).
  std::vector<std::pair<TuningKey, TuningEntry>> entries() const
      VENOM_EXCLUDES(mutex_);

  /// Merges the entries of the JSON cache at `path` into this cache.
  /// Returns false — leaving the cache unchanged — on a missing,
  /// unreadable, or corrupt file instead of throwing.
  bool try_load(const std::string& path);

  /// Process-wide cache consulted by select_config. The first call loads
  /// $VENOM_TUNE_CACHE (when set) via try_load.
  static TuningCache& global();

 private:
  mutable Mutex mutex_;
  std::map<TuningKey, TuningEntry> map_ VENOM_GUARDED_BY(mutex_);
};

}  // namespace venom::spatha
