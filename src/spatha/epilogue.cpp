#include "spatha/epilogue.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spatha/microkernel.hpp"

namespace venom::spatha {

float apply_activation(Activation act, float v) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kGelu: {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      const float t = std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v));
      return 0.5f * v * (1.0f + t);
    }
  }
  return v;
}

namespace {

/// Shared stage-1/2 body: accumulates the V x [c0,c1) tile of block row
/// `br` into s.acc through the packed float-panel micro-kernel.
void accumulate_block(const VnmMatrix& a, const HalfMatrix& b,
                      const SpmmConfig& cfg, std::size_t br, std::size_t c0,
                      std::size_t c1, detail::SpmmScratch& s) {
  const VnmConfig fmt = a.config();
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t width = c1 - c0;
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;

  for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
    const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
    detail::gather_b_panel_f32(a, b, br, g0, g1, c0, c1, fixed, s.panel);
    detail::accumulate_panel_f32(a, br, g0, g1, width, s, s.acc.data());
  }
}

}  // namespace

HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue, const SpmmConfig& cfg,
                          ThreadPool* pool, SpmmScratchPool* scratch) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  VENOM_CHECK_MSG(epilogue.bias.empty() || epilogue.bias.size() == a.rows(),
                  "bias size " << epilogue.bias.size() << " != rows "
                               << a.rows());
  validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  HalfMatrix c(a.rows(), b.cols());
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;

  pool->parallel_for_chunks(
      a.block_rows() * c_tiles, [&](std::size_t t0, std::size_t t1) {
        detail::ScratchLease scratch_lease;
        detail::SpmmScratch& s = scratch_lease.bind(scratch);
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / c_tiles;
          const std::size_t ct = t % c_tiles;
          const std::size_t c0 = ct * cfg.block_c;
          const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
          const std::size_t width = c1 - c0;

          s.acc.assign(fmt.v * width, 0.0f);
          accumulate_block(a, b, cfg, br, c0, c1, s);

          // Fused stage 3: bias + activation in float, then one bulk fp16
          // conversion per output row.
          for (std::size_t dr = 0; dr < fmt.v; ++dr) {
            const std::size_t r = br * fmt.v + dr;
            const float bias = epilogue.bias.empty() ? 0.0f : epilogue.bias[r];
            float* arow = &s.acc[dr * width];
            for (std::size_t n = 0; n < width; ++n)
              arow[n] = apply_activation(epilogue.activation, arow[n] + bias);
            float_to_half_n(arow, &c(r, c0), width);
          }
        }
      },
      cfg.chunk_grain);
  return c;
}

HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue, ThreadPool* pool) {
  return spmm_vnm_fused(a, b, epilogue,
                        select_config(a.config(), a.rows(), a.cols(),
                                      b.cols()),
                        pool);
}

std::vector<FloatMatrix> spmm_vnm_batched(const VnmMatrix& a,
                                          std::span<const HalfMatrix> bs,
                                          ThreadPool* pool) {
  VENOM_CHECK_MSG(!bs.empty(), "empty batch");
  const std::size_t b_rows = bs[0].rows();
  const std::size_t b_cols = bs[0].cols();
  for (const auto& b : bs)
    VENOM_CHECK_MSG(b.rows() == b_rows && b.cols() == b_cols,
                    "batch operands must share a shape");
  VENOM_CHECK(a.cols() == b_rows);
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = a.config();
  const SpmmConfig cfg = select_config(fmt, a.rows(), a.cols(), b_cols);
  std::vector<FloatMatrix> cs(bs.size());
  for (auto& c : cs) c = FloatMatrix(a.rows(), b_cols);

  const std::size_t c_tiles = (b_cols + cfg.block_c - 1) / cfg.block_c;
  pool->parallel_for_chunks(
      a.block_rows() * c_tiles, [&](std::size_t t0, std::size_t t1) {
        detail::SpmmScratch s;
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / c_tiles;
          const std::size_t ct = t % c_tiles;
          const std::size_t c0 = ct * cfg.block_c;
          const std::size_t c1 = std::min(b_cols, c0 + cfg.block_c);
          const std::size_t width = c1 - c0;

          // The sparse operand's traversal order and column-loc reads
          // repeat identically for every batch element — the
          // weight-stationary reuse batched inference exploits.
          for (std::size_t batch = 0; batch < bs.size(); ++batch) {
            s.acc.assign(fmt.v * width, 0.0f);
            accumulate_block(a, bs[batch], cfg, br, c0, c1, s);
            for (std::size_t dr = 0; dr < fmt.v; ++dr)
              std::copy(&s.acc[dr * width], &s.acc[dr * width] + width,
                        &cs[batch](br * fmt.v + dr, c0));
          }
        }
      },
      cfg.chunk_grain);
  return cs;
}

}  // namespace venom::spatha
