#include "spatha/epilogue.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace venom::spatha {

namespace {

float apply_activation(Activation act, float v) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kGelu: {
      constexpr float kSqrt2OverPi = 0.7978845608028654f;
      const float t = std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v));
      return 0.5f * v * (1.0f + t);
    }
  }
  return v;
}

/// Shared stage-1/2 body: accumulates the V x [c0,c1) tile of block row
/// `br` into `acc` (row-major, width = c1-c0).
void accumulate_block(const VnmMatrix& a, const HalfMatrix& b,
                      const SpmmConfig& cfg, std::size_t br, std::size_t c0,
                      std::size_t c1, std::vector<half_t>& panel,
                      std::span<float> acc) {
  const VnmConfig fmt = a.config();
  const std::size_t sel = fmt.selected_cols();
  const std::size_t groups = a.groups_per_row();
  const std::size_t groups_per_panel = cfg.block_k / fmt.m;
  const std::size_t width = c1 - c0;
  const bool fixed = cfg.column_loc == ColumnLocMode::kFixed;

  for (std::size_t g0 = 0; g0 < groups; g0 += groups_per_panel) {
    const std::size_t g1 = std::min(groups, g0 + groups_per_panel);
    panel.resize((g1 - g0) * sel * width);
    for (std::size_t g = g0; g < g1; ++g) {
      for (std::size_t s = 0; s < sel; ++s) {
        const std::size_t offset =
            fixed ? s : static_cast<std::size_t>(a.column_loc(br, g, s));
        const half_t* src = &b(g * fmt.m + offset, c0);
        std::copy(src, src + width,
                  &panel[((g - g0) * sel + s) * width]);
      }
    }
    for (std::size_t dr = 0; dr < fmt.v; ++dr) {
      const std::size_t r = br * fmt.v + dr;
      float* arow = &acc[dr * width];
      for (std::size_t g = g0; g < g1; ++g) {
        for (std::size_t j = 0; j < fmt.n; ++j) {
          const half_t v = a.value(r, g, j);
          if (v.is_zero()) continue;
          const float av = v.to_float();
          const half_t* brow =
              &panel[((g - g0) * sel + a.m_index(r, g, j)) * width];
          for (std::size_t n = 0; n < width; ++n)
            arow[n] += av * brow[n].to_float();
        }
      }
    }
  }
}

}  // namespace

HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue, const SpmmConfig& cfg,
                          ThreadPool* pool) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  VENOM_CHECK_MSG(epilogue.bias.empty() || epilogue.bias.size() == a.rows(),
                  "bias size " << epilogue.bias.size() << " != rows "
                               << a.rows());
  validate(cfg, fmt, a.rows(), a.cols(), b.cols());
  if (pool == nullptr) pool = &ThreadPool::global();

  HalfMatrix c(a.rows(), b.cols());
  const std::size_t c_tiles = (b.cols() + cfg.block_c - 1) / cfg.block_c;

  pool->parallel_for(a.block_rows() * c_tiles, [&](std::size_t t) {
    const std::size_t br = t / c_tiles;
    const std::size_t ct = t % c_tiles;
    const std::size_t c0 = ct * cfg.block_c;
    const std::size_t c1 = std::min(b.cols(), c0 + cfg.block_c);
    const std::size_t width = c1 - c0;

    std::vector<half_t> panel;
    std::vector<float> acc(fmt.v * width, 0.0f);
    accumulate_block(a, b, cfg, br, c0, c1, panel, acc);

    // Fused stage 3: bias + activation + fp16 conversion in one pass.
    for (std::size_t dr = 0; dr < fmt.v; ++dr) {
      const std::size_t r = br * fmt.v + dr;
      const float bias = epilogue.bias.empty() ? 0.0f : epilogue.bias[r];
      for (std::size_t n = 0; n < width; ++n)
        c(r, c0 + n) = half_t(
            apply_activation(epilogue.activation, acc[dr * width + n] + bias));
    }
  });
  return c;
}

HalfMatrix spmm_vnm_fused(const VnmMatrix& a, const HalfMatrix& b,
                          const Epilogue& epilogue, ThreadPool* pool) {
  return spmm_vnm_fused(a, b, epilogue,
                        select_config(a.config(), a.rows(), a.cols(),
                                      b.cols()),
                        pool);
}

std::vector<FloatMatrix> spmm_vnm_batched(const VnmMatrix& a,
                                          std::span<const HalfMatrix> bs,
                                          ThreadPool* pool) {
  VENOM_CHECK_MSG(!bs.empty(), "empty batch");
  const std::size_t b_rows = bs[0].rows();
  const std::size_t b_cols = bs[0].cols();
  for (const auto& b : bs)
    VENOM_CHECK_MSG(b.rows() == b_rows && b.cols() == b_cols,
                    "batch operands must share a shape");
  VENOM_CHECK(a.cols() == b_rows);
  if (pool == nullptr) pool = &ThreadPool::global();

  const VnmConfig fmt = a.config();
  const SpmmConfig cfg = select_config(fmt, a.rows(), a.cols(), b_cols);
  std::vector<FloatMatrix> cs(bs.size());
  for (auto& c : cs) c = FloatMatrix(a.rows(), b_cols);

  const std::size_t c_tiles = (b_cols + cfg.block_c - 1) / cfg.block_c;
  pool->parallel_for(a.block_rows() * c_tiles, [&](std::size_t t) {
    const std::size_t br = t / c_tiles;
    const std::size_t ct = t % c_tiles;
    const std::size_t c0 = ct * cfg.block_c;
    const std::size_t c1 = std::min(b_cols, c0 + cfg.block_c);
    const std::size_t width = c1 - c0;

    std::vector<half_t> panel;
    std::vector<float> acc(fmt.v * width);
    // The sparse operand's traversal order and column-loc reads repeat
    // identically for every batch element — the weight-stationary reuse
    // batched inference exploits.
    for (std::size_t batch = 0; batch < bs.size(); ++batch) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      accumulate_block(a, bs[batch], cfg, br, c0, c1, panel, acc);
      for (std::size_t dr = 0; dr < fmt.v; ++dr)
        std::copy(&acc[dr * width], &acc[dr * width] + width,
                  &cs[batch](br * fmt.v + dr, c0));
    }
  });
  return cs;
}

}  // namespace venom::spatha
