#include "spatha/config.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "spatha/tuning_cache.hpp"

namespace venom::spatha {

std::string SpmmConfig::describe() const {
  std::ostringstream os;
  os << "BS(k=" << block_k << ",c=" << block_c << ") WS(r=" << warp_r
     << ",k=" << warp_k << ",c=" << warp_c << ") mma m" << mma_r << "n"
     << mma_c << "k" << mma_k << " pipe=" << batch_size << " grain="
     << chunk_grain << " store="
     << (store_width == StoreWidth::k128bit ? "128b" : "32b") << " cloc="
     << (column_loc == ColumnLocMode::kEnabled ? "on" : "fixed");
  return os.str();
}

void validate(const SpmmConfig& cfg, const VnmConfig& fmt, std::size_t rows,
              std::size_t cols, std::size_t b_cols) {
  VENOM_CHECK_MSG(cfg.mma_r == 16 && cfg.mma_c == 8 &&
                      (cfg.mma_k == 32 || cfg.mma_k == 16),
                  "unsupported mma shape m" << cfg.mma_r << "n" << cfg.mma_c
                                            << "k" << cfg.mma_k);
  VENOM_CHECK_MSG(rows % fmt.v == 0, "rows must be a multiple of V");
  VENOM_CHECK_MSG(cols % fmt.m == 0, "cols must be a multiple of M");
  VENOM_CHECK_MSG(cfg.block_k % fmt.m == 0,
                  "BSk=" << cfg.block_k << " must be a multiple of M="
                         << fmt.m);
  VENOM_CHECK_MSG(cfg.block_c >= 1 && cfg.block_c <= b_cols,
                  "BSc=" << cfg.block_c << " out of range for C=" << b_cols);
  VENOM_CHECK_MSG(cfg.batch_size >= 1 && cfg.batch_size <= 8,
                  "pipeline depth " << cfg.batch_size << " out of [1,8]");
  VENOM_CHECK_MSG(cfg.warp_r >= 1 && cfg.warp_k >= 1 && cfg.warp_c >= 1,
                  "warp tile must be non-degenerate");
}

SpmmConfig select_config(const VnmConfig& fmt, std::size_t rows,
                         std::size_t cols, std::size_t b_cols) {
  return select_config(TuningCache::global(), fmt, rows, cols, b_cols);
}

SpmmConfig select_config(const TuningCache& cache, const VnmConfig& fmt,
                         std::size_t rows, std::size_t cols,
                         std::size_t b_cols) {
  const auto tuned = cache.lookup(fmt, rows, cols, b_cols);
  if (tuned.has_value()) {
    // The cache file is hand-editable: an entry that no longer validates
    // (wrong divisibility, out-of-range pipeline depth) degrades to the
    // heuristic instead of poisoning every dispatch at this shape.
    try {
      validate(*tuned, fmt, rows, cols, b_cols);
      return *tuned;
    } catch (const Error&) {
    }
  }
  return select_config_heuristic(fmt, rows, cols, b_cols);
}

SpmmConfig select_config_heuristic(const VnmConfig& fmt, std::size_t rows,
                                   std::size_t cols, std::size_t b_cols) {
  (void)rows;
  SpmmConfig cfg;
  // K panel: cover many M-groups per staging step, but cap the gathered-B
  // footprint near an SMEM-sized budget (the gathered panel holds
  // (BSk/M)*4 x BSc halves).
  const std::size_t groups_budget = 128;  // 128 groups * 4 rows * 64 cols * 2B = 64 KiB
  std::size_t bk = std::min<std::size_t>(cols, groups_budget * fmt.m);
  bk = std::max<std::size_t>(fmt.m, bk - bk % fmt.m);
  cfg.block_k = bk;

  // C tile: 64 unless the activation is narrower.
  cfg.block_c = std::min<std::size_t>(64, b_cols);

  // Warp tile: rows per warp bounded by V.
  cfg.warp_r = std::min<std::size_t>(32, fmt.v);
  cfg.warp_k = std::min<std::size_t>(64, cfg.block_k);
  cfg.warp_c = cfg.block_c;

  // Deeper pipeline pays off once the K loop is long enough to fill it.
  cfg.batch_size = cols / cfg.block_k >= 4 ? 3 : 2;
  return cfg;
}

SpmmConfig select_config_i8(const VnmConfig& fmt, std::size_t rows,
                            std::size_t cols, std::size_t b_cols) {
  return select_config_i8(TuningCache::global(), fmt, rows, cols, b_cols);
}

SpmmConfig select_config_i8(const TuningCache& cache, const VnmConfig& fmt,
                            std::size_t rows, std::size_t cols,
                            std::size_t b_cols) {
  const auto tuned = cache.lookup_i8(fmt, rows, cols, b_cols);
  if (tuned.has_value()) {
    try {
      validate(*tuned, fmt, rows, cols, b_cols);
      return *tuned;
    } catch (const Error&) {
    }
  }
  return select_config_heuristic_i8(fmt, rows, cols, b_cols);
}

SpmmConfig select_config_fp8(const VnmConfig& fmt, std::size_t rows,
                             std::size_t cols, std::size_t b_cols) {
  return select_config_fp8(TuningCache::global(), fmt, rows, cols, b_cols);
}

SpmmConfig select_config_fp8(const TuningCache& cache, const VnmConfig& fmt,
                             std::size_t rows, std::size_t cols,
                             std::size_t b_cols) {
  const auto tuned = cache.lookup_fp8(fmt, rows, cols, b_cols);
  if (tuned.has_value()) {
    try {
      validate(*tuned, fmt, rows, cols, b_cols);
      return *tuned;
    } catch (const Error&) {
    }
  }
  return select_config_heuristic(fmt, rows, cols, b_cols);
}

SpmmConfig select_config_heuristic_i8(const VnmConfig& fmt, std::size_t rows,
                                      std::size_t cols, std::size_t b_cols) {
  SpmmConfig cfg = select_config_heuristic(fmt, rows, cols, b_cols);
  // Wide C tiles: the per-panel fixed costs (the byte-interleave pack,
  // the B quantization) amortize over columns, and the int32 accumulator
  // tile stays cache-resident up to V x 128.
  cfg.block_c = std::min<std::size_t>(128, b_cols);
  cfg.warp_c = cfg.block_c;
  // K panel: the quad panel is re-streamed once per 16-column strip by
  // the vpdpbusd loop, so cap it at an L1-sized budget — each group
  // packs to exactly 4 * BSc bytes regardless of sel, so 32 groups at
  // BSc=128 is 16 KiB. A sweep over the Table-1 shape is flat from a
  // few groups up to this cap and falls off beyond it.
  const std::size_t groups_budget =
      std::max<std::size_t>(1, (16u << 10) / (4 * cfg.block_c));
  cfg.block_k = std::min(cols, std::max(fmt.m, groups_budget * fmt.m));
  cfg.warp_k = std::min<std::size_t>(64, cfg.block_k);
  cfg.batch_size = cols / cfg.block_k >= 4 ? 3 : 2;
  return cfg;
}

}  // namespace venom::spatha
