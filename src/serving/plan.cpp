#include "serving/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "io/json.hpp"

namespace venom::serving {

bool EnginePlan::compatible() const {
  return features == cpu_feature_string();
}

bool EnginePlan::apply(Options& opts) const {
  if (!compatible()) return false;
  if (max_batch_tokens > 0) opts.batching.max_batch_tokens = max_batch_tokens;
  if (workers > 0) opts.workers = workers;
  return true;
}

bool EnginePlan::apply(transformer::Encoder& encoder) const {
  if (!compatible()) return false;
  const std::size_t n = std::min(layers.size(), encoder.layer_count());
  for (std::size_t i = 0; i < n; ++i)
    encoder.layer(i).set_weight_dtype(layers[i].dtype);
  return true;
}

void save_engine_plan(const EnginePlan& plan, const std::string& path) {
  std::string out = "{\n  \"format\": \"venom-engine-plan\",\n"
                    "  \"version\": 1,\n  \"model\": \"";
  io::json_escape_to(out, plan.model);
  out += "\",\n  \"features\": \"";
  io::json_escape_to(out, plan.features);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\",\n  \"max_batch_tokens\": %zu,\n  \"workers\": %zu,\n"
                "  \"measured_rps\": %.6g,\n  \"layers\": [",
                plan.max_batch_tokens, plan.workers, plan.measured_rps);
  out += buf;
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    out += i == 0 ? "\n    {\"backend\": \"" : ",\n    {\"backend\": \"";
    io::json_escape_to(out, plan.layers[i].backend);
    out += "\", \"dtype\": \"";
    out += ops::to_string(plan.layers[i].dtype);
    out += "\"}";
  }
  out += plan.layers.empty() ? "]\n}\n" : "\n  ]\n}\n";

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  VENOM_CHECK_MSG(f.good(), "cannot open '" << path << "' for writing");
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  VENOM_CHECK_MSG(f.good(), "short write to '" << path << "'");
}

EnginePlan load_engine_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VENOM_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  const io::JsonValue doc = io::parse_json(text, path);
  VENOM_CHECK_MSG(doc.type == io::JsonValue::Type::kObject,
                  "'" << path << "' is not a JSON object");
  VENOM_CHECK_MSG(io::json_string_field(doc, "format", path) ==
                      "venom-engine-plan",
                  "'" << path << "' is not a venom engine plan");
  VENOM_CHECK_MSG(io::json_size_field(doc, "version", path) ==
                      EnginePlan::kVersion,
                  "unsupported engine-plan version in " << path);

  EnginePlan plan;
  plan.model = io::json_string_field(doc, "model", path);
  plan.features = io::json_string_field(doc, "features", path);
  plan.max_batch_tokens = io::json_size_field(doc, "max_batch_tokens", path);
  plan.workers = io::json_size_field(doc, "workers", path);
  plan.measured_rps = io::json_double_field(doc, "measured_rps", path);

  const io::JsonValue* layers = doc.get("layers");
  VENOM_CHECK_MSG(layers != nullptr &&
                      layers->type == io::JsonValue::Type::kArray,
                  "'" << path << "' has no \"layers\" array");
  for (const io::JsonValue& item : layers->array) {
    VENOM_CHECK_MSG(item.type == io::JsonValue::Type::kObject,
                    "'" << path << "' has a non-object layer entry");
    EnginePlanLayer layer;
    layer.backend = io::json_string_field(item, "backend", path);
    const std::string& dtype = io::json_string_field(item, "dtype", path);
    VENOM_CHECK_MSG(ops::dtype_from_string(dtype, layer.dtype),
                    "'" << path << "' layer has unknown dtype \"" << dtype
                        << "\"");
    plan.layers.push_back(std::move(layer));
  }
  return plan;
}

Options options_with_plan(Options opts) {
  if (!opts.plan_path.empty()) load_engine_plan(opts.plan_path).apply(opts);
  return opts;
}

std::shared_ptr<const transformer::Encoder> encoder_with_plan(
    transformer::Encoder encoder, const std::string& plan_path) {
  if (!plan_path.empty()) load_engine_plan(plan_path).apply(encoder);
  return std::make_shared<const transformer::Encoder>(std::move(encoder));
}

}  // namespace venom::serving
