#include "serving/router.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"
#include "serving/plan.hpp"

namespace venom::serving {

EngineGroup::EngineGroup(std::shared_ptr<const transformer::Encoder> encoder,
                         Options opts)
    : encoder_(std::move(encoder)), opts_(options_with_plan(std::move(opts))),
      admission_(opts_.admission) {
  VENOM_CHECK_MSG(encoder_ != nullptr, "EngineGroup needs an encoder");
  opts_.validate();
  replicas_.reserve(opts_.replicas);
  for (std::size_t i = 0; i < opts_.replicas; ++i)
    replicas_.push_back(std::make_unique<InferenceEngine>(
        encoder_, opts_, static_cast<std::uint32_t>(i)));
}

// Same sequencing caution as the owning InferenceEngine constructor:
// `opts` is read by both arguments, so neither may move from it.
EngineGroup::EngineGroup(transformer::Encoder encoder, Options opts)
    : EngineGroup(encoder_with_plan(std::move(encoder), opts.plan_path),
                  opts) {}

EngineGroup::~EngineGroup() { shutdown(); }

std::future<Response> EngineGroup::submit(Request req) {
  if (shut_down_.load(std::memory_order_acquire))
    throw AdmissionError(AdmissionReason::kShutdown,
                         "engine group is shut down");
  // A generation request is admitted for its whole budget: the prompt
  // plus every token it may decode on whichever replica it sticks to.
  const std::size_t toks = req.total_tokens();
  // Admission first: a shed request must never touch a replica queue.
  // Throws AdmissionError (kRateLimited / kQueueFull) — nothing to
  // unwind yet.
  admission_.admit(req.tenant, toks);
  try {
    // Least-queued-tokens routing: each engine's gauge counts admitted-
    // but-uncompleted tokens, so the argmin is the replica that will get
    // to a new request soonest. Ties break to the lowest index, which
    // keeps a single-replica group trivially deterministic.
    std::size_t best = 0;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      const std::size_t load = replicas_[i]->load_tokens();
      if (load < best_load) {
        best = i;
        best_load = load;
      }
    }
    // The admission slot rides the engine's one-shot on_done: it is
    // released when the request leaves the system (delivered, failed, or
    // deadline-shed), never sooner and never twice.
    return replicas_[best]->submit(
        std::move(req), [this, toks] { admission_.release(toks); });
  } catch (...) {
    admission_.release(toks);  // never enqueued: the hook never armed
    throw;
  }
}

void EngineGroup::shutdown() {
  if (shut_down_.exchange(true)) return;
  for (auto& r : replicas_) r->shutdown();
}

GroupStats EngineGroup::stats() const {
  GroupStats g;
  g.admission = admission_.stats();
  g.replicas.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ServingStats s = r->stats();
    g.requests += s.requests;
    g.batches += s.batches;
    g.tokens += s.tokens;
    g.shed += s.shed;
    g.prefill_tokens += s.prefill_tokens;
    g.decode_steps += s.decode_steps;
    g.replicas.push_back(std::move(s));
  }
  return g;
}

void EngineGroup::reset_stats() {
  for (auto& r : replicas_) r->reset_stats();
}

}  // namespace venom::serving
