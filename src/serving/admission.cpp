#include "serving/admission.hpp"

#include <algorithm>
#include <sstream>

namespace venom::serving {

const char* to_string(AdmissionReason reason) {
  switch (reason) {
    case AdmissionReason::kRateLimited: return "rate-limited";
    case AdmissionReason::kQueueFull: return "queue-full";
    case AdmissionReason::kDeadlineExceeded: return "deadline-exceeded";
    case AdmissionReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionPolicy policy)
    : policy_(std::move(policy)) {}

void AdmissionController::admit(const std::string& tenant,
                                std::size_t tokens) {
  const TenantPolicy& limit = policy_.limit_for(tenant);
  const auto now = Clock::now();
  MutexLock lock(mutex_);

  // Global bound first: it protects every tenant's latency, so a full
  // queue rejects even a rate-compliant request.
  if ((policy_.max_queued_tokens != 0 &&
       inflight_tokens_ + tokens > policy_.max_queued_tokens) ||
      (policy_.max_queued_requests != 0 &&
       inflight_requests_ + 1 > policy_.max_queued_requests)) {
    ++rejected_queue_;
    std::ostringstream os;
    os << "admission: queue full (" << inflight_requests_ << " requests / "
       << inflight_tokens_ << " tokens in flight; bounds "
       << policy_.max_queued_requests << " / " << policy_.max_queued_tokens
       << ") — retry later";
    throw AdmissionError(AdmissionReason::kQueueFull, os.str());
  }

  if (limit.tokens_per_s > 0.0) {
    Bucket& bucket = buckets_[tenant];
    if (bucket.last == Clock::time_point{}) {
      bucket.level = limit.burst_tokens;  // a fresh tenant starts full
    } else {
      const double dt = std::chrono::duration<double>(now - bucket.last).count();
      bucket.level = std::min(limit.burst_tokens,
                              bucket.level + dt * limit.tokens_per_s);
    }
    bucket.last = now;
    if (bucket.level < double(tokens)) {
      ++rejected_rate_;
      std::ostringstream os;
      os << "admission: tenant '" << tenant << "' over budget (" << tokens
         << " tokens requested, " << bucket.level << " available; rate "
         << limit.tokens_per_s << " tok/s, burst " << limit.burst_tokens
         << ")";
      throw AdmissionError(AdmissionReason::kRateLimited, os.str());
    }
    bucket.level -= double(tokens);
  }

  inflight_tokens_ += tokens;
  inflight_requests_ += 1;
  ++admitted_;
}

void AdmissionController::release(std::size_t tokens) {
  MutexLock lock(mutex_);
  inflight_tokens_ -= std::min(inflight_tokens_, tokens);
  if (inflight_requests_ > 0) --inflight_requests_;
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(mutex_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected_rate = rejected_rate_;
  s.rejected_queue = rejected_queue_;
  s.inflight_tokens = inflight_tokens_;
  s.inflight_requests = inflight_requests_;
  return s;
}

}  // namespace venom::serving
