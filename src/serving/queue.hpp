// Thread-safe blocking queue — the front door of the serving engine.
//
// Producers (request submitters) push from any thread; consumers (the
// batching workers) block on pop. close() initiates shutdown: pushes are
// refused, but consumers keep draining until the queue is empty so no
// accepted request is dropped — pop() returns false only on
// closed-and-drained, the worker-loop termination signal.
//
// The lock contract is compile-time checked (common/annotations.hpp):
// items_ and closed_ are GUARDED_BY(mutex_), and every public method
// EXCLUDES(mutex_) — it takes the lock itself, so calling it while
// already holding the lock (the self-deadlock shape) is a clang
// -Wthread-safety error, not a runtime wedge.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

#include "common/mutex.hpp"

namespace venom::serving {

/// Unbounded MPMC blocking queue of move-only or copyable T.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues one item; false after close(). The item is moved from only
  /// on success — a refused caller still owns it intact (so e.g. a
  /// pending promise can be failed instead of silently dropped).
  bool push(T&& item) VENOM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives (true) or the queue is closed and
  /// drained (false).
  bool pop(T& out) VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) cv_.wait(lock);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// As pop(), but gives up at `deadline`: returns false with `timed_out`
  /// set when the wait expired while the queue was still open and empty.
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 bool& timed_out) VENOM_EXCLUDES(mutex_) {
    timed_out = false;
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // A notify can race the timeout: trust the predicate, not the
        // wait status.
        if (!closed_ && items_.empty()) {
          timed_out = true;
          return false;
        }
        break;
      }
    }
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop.
  bool try_pop(T& out) VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Refuses further pushes and wakes every blocked consumer. Items
  /// already queued remain poppable (drain-then-stop semantics).
  void close() VENOM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const VENOM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> items_ VENOM_GUARDED_BY(mutex_);
  bool closed_ VENOM_GUARDED_BY(mutex_) = false;
};

}  // namespace venom::serving
