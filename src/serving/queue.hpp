// Thread-safe blocking queue — the front door of the serving engine.
//
// Producers (request submitters) push from any thread; consumers (the
// batching workers) block on pop. close() initiates shutdown: pushes are
// refused, but consumers keep draining until the queue is empty so no
// accepted request is dropped — pop() returns false only on
// closed-and-drained, the worker-loop termination signal.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace venom::serving {

/// Unbounded MPMC blocking queue of move-only or copyable T.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues one item; false after close(). The item is moved from only
  /// on success — a refused caller still owns it intact (so e.g. a
  /// pending promise can be failed instead of silently dropped).
  bool push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives (true) or the queue is closed and
  /// drained (false).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// As pop(), but gives up at `deadline`: returns false with `timed_out`
  /// set when the wait expired while the queue was still open and empty.
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 bool& timed_out) {
    timed_out = false;
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_until(lock, deadline,
                        [this] { return closed_ || !items_.empty(); })) {
      timed_out = true;
      return false;
    }
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Refuses further pushes and wakes every blocked consumer. Items
  /// already queued remain poppable (drain-then-stop semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace venom::serving
