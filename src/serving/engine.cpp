#include "serving/engine.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/timing.hpp"

namespace venom::serving {

InferenceEngine::InferenceEngine(transformer::Encoder encoder, Options opts)
    : InferenceEngine(std::make_shared<const transformer::Encoder>(
                          std::move(encoder)),
                      std::move(opts)) {}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const transformer::Encoder> encoder, Options opts,
    std::uint32_t replica_id)
    : encoder_(std::move(encoder)), opts_(std::move(opts)),
      replica_id_(replica_id),
      ctx_(ops::ExecContextOptions{.threads = 0,
                                   .plan_cache_capacity =
                                       opts_.plan_cache_capacity,
                                   .tuning_cache_path = {}}),
      batcher_(opts_.batching),
      latency_ms_(std::max<std::size_t>(1, opts_.latency_window), 0.0) {
  VENOM_CHECK_MSG(encoder_ != nullptr, "engine needs an encoder");
  opts_.validate();
  // The encoder is never mutated: every forward below passes the
  // engine's private context per call (ops::resolve), so one const
  // encoder can back any number of replicas. Kernel configs are selected
  // once per layer shape x batch width via this context's plan cache,
  // and the plans' scratch pools keep the packed B panels warm across
  // batches.
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<Response> InferenceEngine::submit(Request req,
                                              std::function<void()> on_done) {
  VENOM_CHECK_MSG(req.input.rows() == encoder_->config().hidden,
                  "request has " << req.input.rows() << " features, encoder "
                                 << encoder_->config().hidden);
  VENOM_CHECK_MSG(req.input.cols() >= 1, "request has no tokens");
  // Reject what forward_batched would reject, here, where the error can
  // be confined to the offending caller — inside a batch it would fail
  // every co-batched request's future.
  for (std::size_t i = 0; i < encoder_->layer_count(); ++i) {
    const auto pattern =
        encoder_->layer(i).attention().dynamic_score_sparsity();
    if (pattern.has_value()) {
      VENOM_CHECK_MSG(req.input.cols() % pattern->m == 0,
                      "request length " << req.input.cols()
                          << " not divisible by the dynamic attention M="
                          << pattern->m);
    }
  }
  PendingRequest pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.request = std::move(req);
  pending.enqueued = Clock::now();
  pending.replica = replica_id_;
  const std::size_t toks = pending.tokens();
  load_tokens_.fetch_add(toks, std::memory_order_relaxed);
  // The load gauge and the caller's hook both ride the one-shot on_done
  // (request.hpp): delivery, batch failure, and deadline sheds all
  // settle them exactly once.
  pending.on_done = [this, toks, hook = std::move(on_done)] {
    load_tokens_.fetch_sub(toks, std::memory_order_relaxed);
    if (hook) hook();
  };
  std::future<Response> fut = pending.result.get_future();
  if (!batcher_.submit(pending)) {
    // Refused: the request came back intact; unwind the gauge (the
    // caller's hook never armed — submit() throws instead).
    load_tokens_.fetch_sub(toks, std::memory_order_relaxed);
    throw AdmissionError(AdmissionReason::kShutdown, "engine is shut down");
  }
  return fut;
}

std::future<HalfMatrix> InferenceEngine::submit(HalfMatrix input) {
  Request req;
  req.input = std::move(input);
  std::future<Response> fut = submit(std::move(req));
  return std::async(std::launch::deferred, [f = std::move(fut)]() mutable {
    return std::move(f.get().output);
  });
}

void InferenceEngine::shutdown() {
  if (shut_down_.exchange(true)) return;
  batcher_.close();
  for (auto& w : workers_) w.join();
}

void InferenceEngine::worker_loop() {
  WorkerState ws;
  std::vector<PendingRequest> batch;
  while (batcher_.next_batch(batch)) process_batch(batch, ws);
}

void InferenceEngine::process_batch(std::vector<PendingRequest>& batch,
                                    WorkerState& ws) {
  // Everything from staging to delivery runs under one guard: any
  // failure (a malformed request the encoder rejects, allocation
  // pressure while packing or splitting) fails this batch's remaining
  // futures and leaves the engine serving — a worker thread must never
  // let an exception escape (that would std::terminate the process).
  std::size_t delivered = 0;
  try {
    ws.arena.reset();
    const std::size_t hidden = encoder_->config().hidden;
    const std::size_t count = batch.size();

    // Segment table: exclusive end column of each request in the packed
    // batch (arena-backed — reused storage after the first batch).
    std::size_t* seq_ends = ws.arena.alloc<std::size_t>(count);
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      total += batch[i].tokens();
      seq_ends[i] = total;
    }

    // Pack the requests along the token axis. The staging matrix retains
    // its capacity, so steady-state assembly is copy-only.
    ws.staging.resize(hidden, total);
    for (std::size_t r = 0; r < hidden; ++r) {
      half_t* dst = &ws.staging(r, 0);
      std::size_t off = 0;
      for (const PendingRequest& req : batch) {
        std::memcpy(dst + off, &req.request.input(r, 0),
                    req.tokens() * sizeof(half_t));
        off += req.tokens();
      }
    }

    const auto exec_start = Clock::now();
    transformer::TimingBreakdown timing;
    const HalfMatrix y = encoder_->forward_batched(
        ws.staging, std::span<const std::size_t>(seq_ends, count), &timing,
        &ctx_);
    const auto exec_end = Clock::now();
    const double exec_ms =
        std::chrono::duration<double, std::milli>(exec_end - exec_start)
            .count();

    // Split the packed output into per-request responses (these
    // allocations are the deliverables — callers own them). Built before
    // the stats are recorded, so an allocation failure here fails the
    // batch without counting any of its requests as completed.
    std::vector<Response> outs;
    outs.reserve(count);
    std::size_t off = 0;
    for (const PendingRequest& req : batch) {
      Response resp;
      resp.output = HalfMatrix(hidden, req.tokens());
      for (std::size_t r = 0; r < hidden; ++r)
        std::memcpy(&resp.output(r, 0), &y(r, off),
                    req.tokens() * sizeof(half_t));
      off += req.tokens();
      resp.id = req.id;
      resp.replica = req.replica;
      resp.queue_ms = std::chrono::duration<double, std::milli>(
                          exec_start - req.enqueued)
                          .count();
      resp.exec_ms = exec_ms;
      resp.batch_tokens = total;
      outs.push_back(std::move(resp));
    }

    // Stats before delivery: a caller that has awaited its future must
    // already see the request counted.
    record_batch(batch, total, timing, exec_end, ws);

    for (PendingRequest& req : batch) {
      deliver(req, std::move(outs[delivered]));
      ++delivered;
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (std::size_t i = delivered; i < batch.size(); ++i)
      fail(batch[i], err);
  }
}

void InferenceEngine::record_batch(
    const std::vector<PendingRequest>& batch, std::size_t batch_tokens,
    const transformer::TimingBreakdown& timing, Clock::time_point done,
    const WorkerState& ws) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  requests_ += batch.size();
  batches_ += 1;
  tokens_ += batch_tokens;
  timing_ += timing;
  peak_arena_bytes_ = std::max(peak_arena_bytes_, ws.arena.high_water());
  for (const PendingRequest& req : batch) {
    const double ms =
        std::chrono::duration<double, std::milli>(done - req.enqueued)
            .count();
    latency_ms_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % latency_ms_.size();
    latency_count_ = std::min(latency_count_ + 1, latency_ms_.size());
  }
}

void InferenceEngine::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  requests_ = 0;
  batches_ = 0;
  tokens_ = 0;
  peak_arena_bytes_ = 0;
  timing_ = transformer::TimingBreakdown{};
  latency_next_ = 0;
  latency_count_ = 0;
}

ServingStats InferenceEngine::stats() const {
  ServingStats s;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.requests = requests_;
    s.batches = batches_;
    s.tokens = tokens_;
    s.timing = timing_;
    s.peak_arena_bytes = peak_arena_bytes_;
    s.avg_batch_tokens =
        batches_ == 0 ? 0.0 : double(tokens_) / double(batches_);
    window.assign(latency_ms_.begin(), latency_ms_.begin() + latency_count_);
  }
  s.shed = batcher_.shed();
  s.plan_cache_hits = ctx_.plan_cache().hits();
  s.plan_cache_misses = ctx_.plan_cache().misses();
  std::sort(window.begin(), window.end());
  s.p50_ms = percentile_sorted(window, 0.50);
  s.p99_ms = percentile_sorted(window, 0.99);
  return s;
}

}  // namespace venom::serving
