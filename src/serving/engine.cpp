#include "serving/engine.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/timing.hpp"
#include "serving/plan.hpp"

namespace venom::serving {

// `opts` is deliberately passed on (not moved) to the delegated
// constructor: encoder_with_plan reads opts.plan_path, and the two
// argument evaluations are indeterminately sequenced — a move here could
// hand the delegate an empty path before the encoder-side apply ran.
InferenceEngine::InferenceEngine(transformer::Encoder encoder, Options opts)
    : InferenceEngine(encoder_with_plan(std::move(encoder), opts.plan_path),
                      opts) {}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const transformer::Encoder> encoder, Options opts,
    std::uint32_t replica_id)
    : encoder_(std::move(encoder)), opts_(options_with_plan(std::move(opts))),
      replica_id_(replica_id),
      ctx_(ops::ExecContextOptions{.threads = 0,
                                   .plan_cache_capacity =
                                       opts_.plan_cache_capacity,
                                   .tuning_cache_path = {}}),
      batcher_(opts_.batching),
      latency_ms_(std::max<std::size_t>(1, opts_.latency_window), 0.0),
      decode_ms_(std::max<std::size_t>(1, opts_.latency_window), 0.0) {
  VENOM_CHECK_MSG(encoder_ != nullptr, "engine needs an encoder");
  opts_.validate();
  // The encoder is never mutated: every forward below passes the
  // engine's private context per call (ops::resolve), so one const
  // encoder can back any number of replicas. Kernel configs are selected
  // once per layer shape x batch width via this context's plan cache,
  // and the plans' scratch pools keep the packed B panels warm across
  // batches.
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<Response> InferenceEngine::submit(Request req,
                                              std::function<void()> on_done) {
  VENOM_CHECK_MSG(req.input.rows() == encoder_->config().hidden,
                  "request has " << req.input.rows() << " features, encoder "
                                 << encoder_->config().hidden);
  VENOM_CHECK_MSG(req.input.cols() >= 1, "request has no tokens");
  // Reject what the forward would reject, here, where the error can be
  // confined to the offending caller — inside a batch it would fail
  // every co-batched request's future.
  for (std::size_t i = 0; i < encoder_->layer_count(); ++i) {
    const auto pattern =
        encoder_->layer(i).attention().dynamic_score_sparsity();
    if (pattern.has_value()) {
      VENOM_CHECK_MSG(req.max_new_tokens == 0,
                      "generation is incompatible with dynamic N:M "
                      "attention (forward_cached has no pruned-score path)");
      VENOM_CHECK_MSG(req.input.cols() % pattern->m == 0,
                      "request length " << req.input.cols()
                          << " not divisible by the dynamic attention M="
                          << pattern->m);
    }
  }
  if (req.max_new_tokens > 0) {
    VENOM_CHECK_MSG(req.max_new_tokens <= opts_.max_new_tokens,
                    "request wants " << req.max_new_tokens
                                     << " tokens, options cap is "
                                     << opts_.max_new_tokens);
    VENOM_CHECK_MSG(encoder_->config().causal,
                    "generation requires a causal encoder");
    const std::size_t window = encoder_->attention_window();
    if (window != 0) {
      VENOM_CHECK_MSG(opts_.kv_capacity == window,
                      "kv_capacity " << opts_.kv_capacity
                                     << " != the encoder's attention window "
                                     << window
                                     << " (the ring must hold exactly the "
                                        "window)");
    } else {
      VENOM_CHECK_MSG(req.total_tokens() <= opts_.kv_capacity,
                      "prompt + max_new_tokens = "
                          << req.total_tokens() << " overflows kv_capacity "
                          << opts_.kv_capacity
                          << " (set an attention window for unbounded "
                             "sequences)");
    }
  }
  PendingRequest pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.request = std::move(req);
  pending.enqueued = Clock::now();
  pending.replica = replica_id_;
  if (pending.request.max_new_tokens > 0) {
    const std::size_t hidden = encoder_->config().hidden;
    auto session = std::make_shared<GenSession>();
    session->cache = encoder_->make_cache(opts_.kv_capacity);
    session->next_input = HalfMatrix(hidden, 1);
    session->generated = HalfMatrix(hidden, pending.request.max_new_tokens);
    session->prompt_tokens = pending.request.input.cols();
    session->submitted = pending.enqueued;
    pending.session = std::move(session);
    pending.phase = PendingRequest::Phase::kPrefill;
    const std::size_t chunk = opts_.prefill_chunk_tokens != 0
                                  ? opts_.prefill_chunk_tokens
                                  : opts_.batching.max_batch_tokens;
    pending.chunk_begin = 0;
    pending.chunk_end = std::min(chunk, pending.request.input.cols());
  }
  // Generation requests charge their whole budget (prompt + every token
  // they may generate) to the load gauge up front — the router's
  // least-loaded routing then accounts for the decode work a session
  // will pin to this replica.
  const std::size_t toks = pending.request.total_tokens();
  load_tokens_.fetch_add(toks, std::memory_order_relaxed);
  // The load gauge and the caller's hook both ride the one-shot on_done
  // (request.hpp): delivery, batch failure, and deadline sheds all
  // settle them exactly once.
  pending.on_done = [this, toks, hook = std::move(on_done)] {
    load_tokens_.fetch_sub(toks, std::memory_order_relaxed);
    if (hook) hook();
  };
  std::future<Response> fut = pending.result.get_future();
  if (!batcher_.submit(pending)) {
    // Refused: the request came back intact; unwind the gauge (the
    // caller's hook never armed — submit() throws instead).
    load_tokens_.fetch_sub(toks, std::memory_order_relaxed);
    throw AdmissionError(AdmissionReason::kShutdown, "engine is shut down");
  }
  return fut;
}

void InferenceEngine::shutdown() {
  if (shut_down_.exchange(true)) return;
  batcher_.close();
  for (auto& w : workers_) w.join();
}

void InferenceEngine::worker_loop() {
  WorkerState ws;
  std::vector<PendingRequest> batch;
  while (batcher_.next_batch(batch)) process_batch(batch, ws);
}

void InferenceEngine::process_batch(std::vector<PendingRequest>& batch,
                                    WorkerState& ws) {
  ws.arena.reset();
  // One formed batch, up to two forward passes: generation steps
  // (prefill chunks + decode steps, via forward_cached) and classic
  // encode requests (forward_batched) share the token budget but take
  // different code paths through the encoder. stable_partition keeps
  // each class in queue order.
  const auto mid = std::stable_partition(
      batch.begin(), batch.end(), [](const PendingRequest& r) {
        return r.phase != PendingRequest::Phase::kEncode;
      });
  const std::size_t gen_count = std::size_t(mid - batch.begin());
  if (gen_count > 0)
    process_generation(std::span<PendingRequest>(batch.data(), gen_count),
                       ws);
  if (gen_count < batch.size())
    process_encode(std::span<PendingRequest>(batch.data() + gen_count,
                                             batch.size() - gen_count),
                   ws);
}

void InferenceEngine::process_encode(std::span<PendingRequest> batch,
                                     WorkerState& ws) {
  // Everything from staging to delivery runs under one guard: any
  // failure (a malformed request the encoder rejects, allocation
  // pressure while packing or splitting) fails this batch's remaining
  // futures and leaves the engine serving — a worker thread must never
  // let an exception escape (that would std::terminate the process).
  std::size_t delivered = 0;
  try {
    const std::size_t hidden = encoder_->config().hidden;
    const std::size_t count = batch.size();

    // Segment table: exclusive end column of each request in the packed
    // batch (arena-backed — reused storage after the first batch).
    std::size_t* seq_ends = ws.arena.alloc<std::size_t>(count);
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      total += batch[i].tokens();
      seq_ends[i] = total;
    }

    // Pack the requests along the token axis. The staging matrix retains
    // its capacity, so steady-state assembly is copy-only.
    ws.staging.resize(hidden, total);
    for (std::size_t r = 0; r < hidden; ++r) {
      half_t* dst = &ws.staging(r, 0);
      std::size_t off = 0;
      for (const PendingRequest& req : batch) {
        std::memcpy(dst + off, &req.request.input(r, 0),
                    req.tokens() * sizeof(half_t));
        off += req.tokens();
      }
    }

    const auto exec_start = Clock::now();
    transformer::TimingBreakdown timing;
    const HalfMatrix y = encoder_->forward_batched(
        ws.staging, std::span<const std::size_t>(seq_ends, count), &timing,
        &ctx_);
    const auto exec_end = Clock::now();
    const double exec_ms =
        std::chrono::duration<double, std::milli>(exec_end - exec_start)
            .count();

    // Split the packed output into per-request responses (these
    // allocations are the deliverables — callers own them). Built before
    // the stats are recorded, so an allocation failure here fails the
    // batch without counting any of its requests as completed.
    std::vector<Response> outs;
    outs.reserve(count);
    std::size_t off = 0;
    for (const PendingRequest& req : batch) {
      Response resp;
      resp.output = HalfMatrix(hidden, req.tokens());
      for (std::size_t r = 0; r < hidden; ++r)
        std::memcpy(&resp.output(r, 0), &y(r, off),
                    req.tokens() * sizeof(half_t));
      off += req.tokens();
      resp.id = req.id;
      resp.replica = req.replica;
      resp.queue_ms = std::chrono::duration<double, std::milli>(
                          exec_start - req.enqueued)
                          .count();
      resp.exec_ms = exec_ms;
      resp.batch_tokens = total;
      outs.push_back(std::move(resp));
    }

    // Stats before delivery: a caller that has awaited its future must
    // already see the request counted.
    record_batch(batch, total, timing, exec_end, ws);

    for (PendingRequest& req : batch) {
      deliver(req, std::move(outs[delivered]));
      ++delivered;
    }
  } catch (...) {
    const auto err = std::current_exception();
    for (std::size_t i = delivered; i < batch.size(); ++i)
      fail(batch[i], err);
  }
}

void InferenceEngine::process_generation(std::span<PendingRequest> batch,
                                         WorkerState& ws) {
  // Each item is one phase step of a live session: a prompt chunk or a
  // single decode token. One forward_cached covers them all; afterwards
  // every item either re-enters the queue (next chunk / next token) or
  // delivers its finished Response. Outcomes are decided first, stats
  // recorded second, and the queue/promise actions executed last — the
  // stats-before-delivery invariant the encode path keeps.
  enum class Act { kRequeue, kDeliver, kFail };
  struct Outcome {
    Act act = Act::kFail;
    Response resp;
    std::exception_ptr err;
  };
  std::vector<Outcome> outcomes(batch.size());
  try {
    const std::size_t hidden = encoder_->config().hidden;
    const std::size_t count = batch.size();
    const std::size_t chunk = opts_.prefill_chunk_tokens != 0
                                  ? opts_.prefill_chunk_tokens
                                  : opts_.batching.max_batch_tokens;

    std::size_t* seq_ends = ws.arena.alloc<std::size_t>(count);
    transformer::KvCache** caches =
        ws.arena.alloc<transformer::KvCache*>(count);
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      total += batch[i].tokens();
      seq_ends[i] = total;
      caches[i] = &batch[i].session->cache;
    }

    // Pack: prefill items contribute their prompt chunk's columns,
    // decode items the session's (hook-transformed) feedback column.
    ws.gen_staging.resize(hidden, total);
    for (std::size_t r = 0; r < hidden; ++r) {
      half_t* dst = &ws.gen_staging(r, 0);
      std::size_t off = 0;
      for (const PendingRequest& item : batch) {
        if (item.phase == PendingRequest::Phase::kPrefill)
          std::memcpy(dst + off, &item.request.input(r, item.chunk_begin),
                      item.tokens() * sizeof(half_t));
        else
          dst[off] = item.session->next_input(r, 0);
        off += item.tokens();
      }
    }

    const auto exec_start = Clock::now();
    transformer::TimingBreakdown timing;
    const HalfMatrix y = encoder_->forward_cached(
        ws.gen_staging, std::span<const std::size_t>(seq_ends, count),
        std::span<transformer::KvCache* const>(caches, count), &timing,
        &ctx_);
    const auto exec_end = Clock::now();
    const double exec_ms =
        std::chrono::duration<double, std::milli>(exec_end - exec_start)
            .count();

    // Advance every session. A throwing on_token hook fails only its own
    // request; the other sessions in the batch proceed.
    std::size_t prefill_tokens = 0;
    std::size_t decode_items = 0;
    double* decode_lat = ws.arena.alloc<double>(count);
    std::size_t off = 0;
    for (std::size_t i = 0; i < count; ++i) {
      PendingRequest& item = batch[i];
      GenSession& s = *item.session;
      const std::size_t w = item.tokens();
      const std::size_t last = off + w - 1;
      off += w;
      if (!s.started) {
        s.started = true;
        s.queue_ms = std::chrono::duration<double, std::milli>(
                         exec_start - s.submitted)
                         .count();
      }
      // The newest token's output column is both the per-step deliverable
      // and (post-hook) the next decode input.
      const auto feed_hook = [&]() -> bool {
        for (std::size_t r = 0; r < hidden; ++r)
          s.next_input(r, 0) = y(r, last);
        if (!item.request.on_token) return true;
        return item.request.on_token(
            std::span<half_t>(&s.next_input(0, 0), hidden));
      };
      const auto finish = [&]() {
        Response resp;
        resp.output = HalfMatrix(hidden, s.tokens_generated);
        for (std::size_t r = 0; r < hidden; ++r)
          std::memcpy(&resp.output(r, 0), &s.generated(r, 0),
                      s.tokens_generated * sizeof(half_t));
        resp.id = item.id;
        resp.replica = item.replica;
        resp.queue_ms = s.queue_ms;
        resp.exec_ms = s.prefill_ms + s.decode_ms;
        resp.batch_tokens = total;
        resp.prefill_ms = s.prefill_ms;
        resp.decode_ms = s.decode_ms;
        resp.tokens_generated = s.tokens_generated;
        outcomes[i].resp = std::move(resp);
        outcomes[i].act = Act::kDeliver;
      };
      try {
        if (item.phase == PendingRequest::Phase::kPrefill) {
          s.prefill_ms += exec_ms;
          prefill_tokens += w;
          if (item.chunk_end < item.request.input.cols()) {
            item.chunk_begin = item.chunk_end;
            item.chunk_end = std::min(item.chunk_end + chunk,
                                      item.request.input.cols());
            outcomes[i].act = Act::kRequeue;
          } else if (feed_hook()) {
            // Prompt cached; the hook seeded the first decode input.
            item.phase = PendingRequest::Phase::kDecode;
            outcomes[i].act = Act::kRequeue;
          } else {
            finish();  // eos in the prompt: zero tokens generated
          }
        } else {
          s.decode_ms += exec_ms;
          decode_lat[decode_items++] =
              std::chrono::duration<double, std::milli>(exec_end -
                                                        item.enqueued)
                  .count();
          for (std::size_t r = 0; r < hidden; ++r)
            s.generated(r, s.tokens_generated) = y(r, last);
          ++s.tokens_generated;
          const bool more = feed_hook() &&
                            s.tokens_generated < item.request.max_new_tokens;
          if (more)
            outcomes[i].act = Act::kRequeue;
          else
            finish();
        }
      } catch (...) {
        outcomes[i].act = Act::kFail;
        outcomes[i].err = std::current_exception();
      }
    }

    // Stats before delivery/requeue, in one locked update.
    {
      MutexLock lock(stats_mutex_);
      batches_ += 1;
      tokens_ += total;
      timing_ += timing;
      prefill_tokens_ += prefill_tokens;
      decode_steps_ += decode_items;
      peak_arena_bytes_ = std::max(peak_arena_bytes_, ws.arena.high_water());
      for (std::size_t i = 0; i < decode_items; ++i) {
        decode_ms_[decode_next_] = decode_lat[i];
        decode_next_ = (decode_next_ + 1) % decode_ms_.size();
        decode_count_ = std::min(decode_count_ + 1, decode_ms_.size());
      }
      for (std::size_t i = 0; i < count; ++i) {
        if (outcomes[i].act != Act::kDeliver) continue;
        requests_ += 1;
        const double ms = std::chrono::duration<double, std::milli>(
                              exec_end - batch[i].session->submitted)
                              .count();
        latency_ms_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % latency_ms_.size();
        latency_count_ = std::min(latency_count_ + 1, latency_ms_.size());
      }
    }
  } catch (...) {
    // Staging or the forward failed: every session in this pass is dead
    // (a mid-stack failure leaves caches out of sync). Fail them all.
    const auto err = std::current_exception();
    for (PendingRequest& item : batch) fail(item, err);
    return;
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& item = batch[i];
    switch (outcomes[i].act) {
      case Act::kRequeue:
        // resubmit (not submit): generation continues through shutdown,
        // so close()d engines still drain live sessions to completion.
        item.enqueued = Clock::now();
        batcher_.resubmit(item);
        break;
      case Act::kDeliver:
        deliver(item, std::move(outcomes[i].resp));
        break;
      case Act::kFail:
        fail(item, outcomes[i].err != nullptr
                       ? outcomes[i].err
                       : std::make_exception_ptr(
                             Error("generation step failed")));
        break;
    }
  }
}

void InferenceEngine::record_batch(
    std::span<const PendingRequest> batch, std::size_t batch_tokens,
    const transformer::TimingBreakdown& timing, Clock::time_point done,
    const WorkerState& ws) {
  MutexLock lock(stats_mutex_);
  requests_ += batch.size();
  batches_ += 1;
  tokens_ += batch_tokens;
  timing_ += timing;
  peak_arena_bytes_ = std::max(peak_arena_bytes_, ws.arena.high_water());
  for (const PendingRequest& req : batch) {
    const double ms =
        std::chrono::duration<double, std::milli>(done - req.enqueued)
            .count();
    latency_ms_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % latency_ms_.size();
    latency_count_ = std::min(latency_count_ + 1, latency_ms_.size());
  }
}

void InferenceEngine::reset_stats() {
  MutexLock lock(stats_mutex_);
  requests_ = 0;
  batches_ = 0;
  tokens_ = 0;
  prefill_tokens_ = 0;
  decode_steps_ = 0;
  peak_arena_bytes_ = 0;
  timing_ = transformer::TimingBreakdown{};
  latency_next_ = 0;
  latency_count_ = 0;
  decode_next_ = 0;
  decode_count_ = 0;
}

ServingStats InferenceEngine::stats() const {
  ServingStats s;
  std::vector<double> window;
  std::vector<double> decode_window;
  {
    MutexLock lock(stats_mutex_);
    s.requests = requests_;
    s.batches = batches_;
    s.tokens = tokens_;
    s.prefill_tokens = prefill_tokens_;
    s.decode_steps = decode_steps_;
    s.timing = timing_;
    s.peak_arena_bytes = peak_arena_bytes_;
    s.avg_batch_tokens =
        batches_ == 0 ? 0.0 : double(tokens_) / double(batches_);
    window.assign(latency_ms_.begin(), latency_ms_.begin() + latency_count_);
    decode_window.assign(decode_ms_.begin(),
                         decode_ms_.begin() + decode_count_);
  }
  s.shed = batcher_.shed();
  s.plan_cache_hits = ctx_.plan_cache().hits();
  s.plan_cache_misses = ctx_.plan_cache().misses();
  std::sort(window.begin(), window.end());
  s.p50_ms = percentile_sorted(window, 0.50);
  s.p99_ms = percentile_sorted(window, 0.99);
  std::sort(decode_window.begin(), decode_window.end());
  s.decode_p50_ms = percentile_sorted(decode_window, 0.50);
  s.decode_p99_ms = percentile_sorted(decode_window, 0.99);
  return s;
}

}  // namespace venom::serving
