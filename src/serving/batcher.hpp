// Dynamic request batching with continuous top-up (the serving analogue
// of Fig. 15's model-level claim: V:N:M pays off per *deployed model*,
// not per kernel).
//
// Requests are independent sequences of hidden-dim token columns. The
// batcher coalesces queued requests into one token-packed forward pass
// under two knobs: a token budget per batch (max_batch_tokens bounds the
// SpMM's C extent and the batch's memory) and a flush timer (max_wait
// bounds the latency a lone request pays waiting for company). Batching
// is *continuous*: a forming batch keeps topping up from newly arrived
// requests until the budget fills or the flush timer expires — a late
// arrival joins the batch that is already forming instead of waiting for
// the next one. A request that would overflow the budget stays at the
// queue head for the next batch, so batches never split a request; a
// request bigger than the whole budget runs as a batch of one.
//
// Concurrency: one mutex guards the queue and one condition variable
// carries every wake-up (new work, close). Workers blocked anywhere in
// next_batch() — seeding or topping up — always wait on that cv with the
// mutex released, so close() wakes all of them promptly. (The previous
// design serialized collectors behind a second mutex held across a
// blocking pop; a worker stuck on that mutex could not be woken by
// close() — the bug this rewrite removes.) The whole contract is now
// compile-time checked: queue state is GUARDED_BY(mutex_), the *_locked
// helpers are REQUIRES(mutex_), and the public surface EXCLUDES(mutex_)
// — re-entering the batcher under its own lock (the wedge class of bug)
// is a clang -Wthread-safety build error.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.hpp"
#include "serving/request.hpp"

namespace venom::serving {

/// Batch formation knobs.
struct BatchPolicy {
  std::size_t max_batch_tokens = 256;   ///< token budget per forward pass
  std::size_t max_batch_requests = 64;  ///< cap on coalesced requests
  std::chrono::microseconds max_wait{2000};  ///< flush timer for partial batches
};

/// Coalesces a thread-safe request queue into token-budgeted batches.
class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Enqueues a request; false once close()d (the request is returned to
  /// the caller untouched so its promise can be failed). Higher-priority
  /// requests are inserted ahead of lower-priority ones; within a
  /// priority band, urgent() requests (single-token decode steps) rank
  /// ahead of throughput work, FIFO within each (priority, urgency)
  /// class — prefill traffic can never starve a live decode session.
  bool submit(PendingRequest& req) VENOM_EXCLUDES(mutex_);

  /// Re-enqueues the next step of an already-admitted generation request
  /// (prefill chunk N+1, or a decode step). Unlike submit(), this works
  /// after close(): shutdown() drains in-flight sessions to completion
  /// (bounded by max_new_tokens) instead of abandoning their caches
  /// mid-generation.
  void resubmit(PendingRequest& req) VENOM_EXCLUDES(mutex_);

  /// Refuses further submissions and wakes every worker blocked in
  /// next_batch(); next_batch() keeps returning batches until the queue
  /// is drained, then false.
  void close() VENOM_EXCLUDES(mutex_);

  /// Blocks for the next batch. `out` is cleared and filled with 1..max
  /// requests whose token counts sum within the policy budget (except a
  /// single oversized request, which forms its own batch). While the
  /// budget has room and the flush timer has not expired, newly
  /// submitted requests join the forming batch (continuous batching).
  /// Requests whose deadline lapsed while queued are shed here: failed
  /// with AdmissionError(kDeadlineExceeded), never executed, never
  /// silently dropped. A forming batch that contains an urgent request
  /// flushes as soon as the queue is empty instead of waiting out the
  /// flush timer (decode steps never pay max_wait on an idle queue).
  /// Returns false only after close() with everything drained — the
  /// worker-loop exit.
  bool next_batch(std::vector<PendingRequest>& out) VENOM_EXCLUDES(mutex_);

  std::size_t queued() const VENOM_EXCLUDES(mutex_);
  /// Token sum of the queued (not yet batched) requests.
  std::size_t queued_tokens() const VENOM_EXCLUDES(mutex_);
  /// Requests shed for a lapsed deadline (monotonic).
  std::size_t shed() const VENOM_EXCLUDES(mutex_);
  const BatchPolicy& policy() const { return policy_; }

  /// The batcher's lock, exposed for annotation only: other components
  /// (the engine's worker paths) name it in their own EXCLUDES
  /// contracts, e.g. "delivery hooks run with the batcher unlocked".
  /// Never lock it directly.
  Mutex& mu() const VENOM_RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  /// Priority/urgency-ranked insertion.
  void insert_locked(PendingRequest& req) VENOM_REQUIRES(mutex_);
  /// Fails every expired request at the queue head.
  void shed_expired_locked(Clock::time_point now) VENOM_REQUIRES(mutex_);
  /// Pops the queue head into the returned request.
  PendingRequest pop_front_locked() VENOM_REQUIRES(mutex_);

  BatchPolicy policy_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<PendingRequest> queue_ VENOM_GUARDED_BY(mutex_);
  std::size_t queued_tokens_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t shed_ VENOM_GUARDED_BY(mutex_) = 0;
  bool closed_ VENOM_GUARDED_BY(mutex_) = false;
};

}  // namespace venom::serving
