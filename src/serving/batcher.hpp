// Dynamic request batching (the serving analogue of Fig. 15's model-level
// claim: V:N:M pays off per *deployed model*, not per kernel).
//
// Requests are independent sequences of hidden-dim token columns. The
// batcher coalesces queued requests into one token-packed forward pass
// under two knobs: a token budget per batch (max_batch_tokens bounds the
// SpMM's C extent and the batch's memory) and a flush timer (max_wait
// bounds the latency a lone request pays waiting for company). A request
// that would overflow the budget is carried into the next batch, so
// batches never split a request; a request bigger than the whole budget
// runs as a batch of one.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serving/queue.hpp"
#include "tensor/matrix.hpp"

namespace venom::serving {

/// Batch formation knobs.
struct BatchPolicy {
  std::size_t max_batch_tokens = 256;   ///< token budget per forward pass
  std::size_t max_batch_requests = 64;  ///< cap on coalesced requests
  std::chrono::microseconds max_wait{2000};  ///< flush timer for partial batches
};

/// One queued inference request: input activations (hidden x tokens) and
/// the promise its output is delivered through.
struct PendingRequest {
  std::uint64_t id = 0;
  HalfMatrix input;
  std::promise<HalfMatrix> result;
  std::chrono::steady_clock::time_point enqueued{};

  std::size_t tokens() const { return input.cols(); }
};

/// Coalesces a thread-safe request queue into token-budgeted batches.
class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Enqueues a request; false once close()d (the request is returned to
  /// the caller untouched so its promise can be failed).
  bool submit(PendingRequest& req);

  /// Refuses further submissions; next_batch() keeps returning batches
  /// until the queue is drained, then false.
  void close();

  /// Blocks for the next batch. `out` is cleared and filled with 1..max
  /// requests whose token counts sum within the policy budget (except a
  /// single oversized request, which forms its own batch). Returns false
  /// only after close() with everything drained — the worker-loop exit.
  bool next_batch(std::vector<PendingRequest>& out);

  std::size_t queued() const { return queue_.size(); }
  const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  BlockingQueue<PendingRequest> queue_;
  // Collection is serialized: concurrent workers take turns forming
  // batches (formation is trivially cheap next to executing one) and the
  // carried-over request is handed to whichever worker collects next.
  std::mutex collect_mutex_;
  std::optional<PendingRequest> carry_;
};

}  // namespace venom::serving
