// Horizontally scaled serving: an EngineGroup fronts N InferenceEngine
// replicas behind one submit() — ROADMAP item 2's production tier.
//
//                         ┌────────────────────┐
//     Request ──admit──▶  │  EngineGroup       │
//       (tenant,          │  · AdmissionCtrl   │   token buckets /
//        priority,        │  · least-queued-   │   global bound
//        deadline)        │    tokens router   │
//                         └───┬─────┬─────┬────┘
//                             ▼     ▼     ▼
//                          Engine Engine Engine     private ExecContexts,
//                            0      1     N-1       private batchers
//                             └─────┴─────┘
//                        shared_ptr<const Encoder>  one copy of weights
//
// Scaling horizontally multiplies batch-execution capacity without
// multiplying weight memory: replicas share one const encoder (the
// const-shared forward path) while each owns a private ExecContext —
// plan cache, packed-panel scratch, tuning state — so they never contend
// on a cache lock. Routing is least-queued-tokens: each engine exposes
// its in-flight token gauge and submit() picks the minimum, which
// equalizes queue depth under ragged request lengths better than
// round-robin. Admission control runs before routing: over-budget
// tenants and a full global queue are rejected with a typed
// AdmissionError at submit() — load is shed by failing fast, never by
// blocking the caller or growing an unbounded queue.
//
// The correctness invariant is inherited from the batcher: per-request
// outputs are bit-identical whatever replica count, routing order, or
// batch composition served them.
//
// Generation sessions are *sticky*: routing happens exactly once, at
// submit, and the whole generation — prefill chunks and every decode
// step — lives inside the chosen InferenceEngine, which owns the
// session's KV ring. Decode steps re-enter that engine's own queue, so
// the cache never migrates and no cross-replica state exists. Admission
// and the load gauge charge a generation request's full budget (prompt +
// max_new_tokens) up front, so least-loaded routing already accounts for
// the decode work a session will pin to its replica.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "serving/admission.hpp"
#include "serving/engine.hpp"
#include "serving/options.hpp"
#include "serving/request.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

/// Aggregated group counters plus each replica's own ServingStats.
struct GroupStats {
  std::size_t requests = 0;  ///< completed, summed over replicas
  std::size_t batches = 0;
  std::size_t tokens = 0;
  std::size_t shed = 0;  ///< deadline sheds, summed over replicas
  std::size_t prefill_tokens = 0;  ///< generation prompt tokens, summed
  std::size_t decode_steps = 0;    ///< decode passes, summed
  AdmissionStats admission;
  std::vector<ServingStats> replicas;
};

/// Front-end router over N engine replicas sharing one const encoder.
class EngineGroup {
 public:
  /// Shares the encoder across opts.replicas engines. Throws venom::Error
  /// on invalid options (Options::validate).
  EngineGroup(std::shared_ptr<const transformer::Encoder> encoder,
              Options opts = {});
  /// Takes ownership and shares it (convenience overload).
  EngineGroup(transformer::Encoder encoder, Options opts = {});
  ~EngineGroup();

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  /// Admission control, then least-queued-tokens routing. Throws
  /// AdmissionError (kRateLimited / kQueueFull / kShutdown) when the
  /// request is shed at the door, venom::Error on a malformed request.
  /// The returned future fails with AdmissionError(kDeadlineExceeded)
  /// if the request's deadline lapses while queued.
  ///
  /// Lock ordering, stated as a checked contract: the router holds no
  /// lock while calling into a replica engine, and the admission lock is
  /// a leaf taken/released inside admit()/release() — so router -> engine
  /// -> batcher -> (completion hook) -> admission can never cycle back
  /// into a lock this thread still holds.
  std::future<Response> submit(Request req) VENOM_EXCLUDES(admission_.mu());

  /// Stops accepting requests and drains every replica. Idempotent; the
  /// destructor calls it.
  void shutdown();

  GroupStats stats() const VENOM_EXCLUDES(admission_.mu());
  void reset_stats();

  std::size_t replica_count() const { return replicas_.size(); }
  InferenceEngine& replica(std::size_t i) { return *replicas_[i]; }
  const InferenceEngine& replica(std::size_t i) const {
    return *replicas_[i];
  }
  const transformer::Encoder& encoder() const { return *encoder_; }
  const Options& options() const { return opts_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  std::shared_ptr<const transformer::Encoder> encoder_;
  Options opts_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<InferenceEngine>> replicas_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace venom::serving
