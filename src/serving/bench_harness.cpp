#include "serving/bench_harness.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

namespace {

transformer::Encoder pruned_encoder(const transformer::ModelConfig& model,
                                    const VnmConfig& format) {
  Rng rng = Rng::seeded("serving-model");
  transformer::Encoder enc(model, rng);
  enc.sparsify(format);
  return enc;
}

bool same_bits(const HalfMatrix& a, const HalfMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t e = 0; e < a.size(); ++e)
    if (a.flat()[e].bits() != b.flat()[e].bits()) return false;
  return true;
}

}  // namespace

BenchComparison run_serving_comparison(const BenchSetup& setup) {
  std::vector<HalfMatrix> trace;
  trace.reserve(setup.requests);
  for (std::size_t i = 0; i < setup.requests; ++i) {
    Rng rng = Rng::seeded("serving-trace", i);
    trace.push_back(
        random_half_matrix(setup.model.hidden, setup.tokens, rng, 0.5f));
  }

  transformer::Encoder seq_enc = pruned_encoder(setup.model, setup.format);
  Options opts;
  opts.batching.max_batch_tokens = setup.max_batch_tokens;
  opts.batching.max_batch_requests = setup.max_batch_requests;
  opts.batching.max_wait = setup.max_wait;
  opts.plan_path = setup.plan_path;
  if (!setup.plan_path.empty())
    load_engine_plan(setup.plan_path).apply(seq_enc);
  InferenceEngine engine(pruned_encoder(setup.model, setup.format), opts);

  // Per-request forward durations from the timed pass: the sequential
  // path's "latency" is each request's own forward time, so its p50/p99
  // are percentiles of these (not the whole-trace mean).
  std::vector<double> seq_latencies_s;
  const auto run_sequential = [&](std::vector<HalfMatrix>* out) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      HalfMatrix y = seq_enc.forward(trace[i]);
      if (out == nullptr)  // timed pass only
        seq_latencies_s.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      if (out != nullptr) (*out)[i] = std::move(y);
    }
  };
  const auto run_batched = [&](std::vector<HalfMatrix>* out) {
    std::vector<std::future<Response>> futs;
    futs.reserve(trace.size());
    for (const HalfMatrix& x : trace) {
      Request req;
      req.input = x;  // the trace is reused across passes — copy
      futs.push_back(engine.submit(std::move(req)));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      Response resp = futs[i].get();
      if (out != nullptr) (*out)[i] = std::move(resp.output);
    }
  };

  BenchComparison result;
  result.requests = setup.requests;
  result.tokens_per_request = setup.tokens;

  // Correctness pass (doubles as warmup): batching must not change any
  // request's bits.
  std::vector<HalfMatrix> seq_out(trace.size()), eng_out(trace.size());
  run_sequential(&seq_out);
  run_batched(&eng_out);
  result.bit_identical = true;
  for (std::size_t i = 0; i < trace.size() && result.bit_identical; ++i)
    result.bit_identical = same_bits(seq_out[i], eng_out[i]);

  // Timed passes run against a warm engine; dropping the warmup-pass
  // samples keeps the reported percentiles steady-state.
  engine.reset_stats();
  result.sequential_s =
      seconds_per_call([&] { run_sequential(nullptr); }, /*warmup=*/0);
  result.batched_s =
      seconds_per_call([&] { run_batched(nullptr); }, /*warmup=*/0);
  result.stats = engine.stats();

  std::sort(seq_latencies_s.begin(), seq_latencies_s.end());
  result.sequential_p50_ms = 1e3 * percentile_sorted(seq_latencies_s, 0.50);
  result.sequential_p99_ms = 1e3 * percentile_sorted(seq_latencies_s, 0.99);
  return result;
}

namespace {

// The sweep and its replay measure the identical trace the comparison
// harness uses, so a plan's measured_rps is comparable across both.
std::vector<HalfMatrix> sweep_trace(const EngineSweepSetup& setup) {
  std::vector<HalfMatrix> trace;
  trace.reserve(setup.requests);
  for (std::size_t i = 0; i < setup.requests; ++i) {
    Rng rng = Rng::seeded("serving-trace", i);
    trace.push_back(
        random_half_matrix(setup.model.hidden, setup.tokens, rng, 0.5f));
  }
  return trace;
}

double timed_batched_rps(InferenceEngine& engine,
                         const std::vector<HalfMatrix>& trace) {
  const auto run = [&] {
    std::vector<std::future<Response>> futs;
    futs.reserve(trace.size());
    for (const HalfMatrix& x : trace) {
      Request req;
      req.input = x;  // the trace is reused across passes — copy
      futs.push_back(engine.submit(std::move(req)));
    }
    for (auto& fut : futs) fut.get();
  };
  run();  // warmup: fills the plan cache and the packed-panel pools
  return static_cast<double>(trace.size()) /
         seconds_per_call(run, /*warmup=*/0);
}

}  // namespace

EngineSweepResult run_engine_sweep(const EngineSweepSetup& setup) {
  const std::vector<HalfMatrix> trace = sweep_trace(setup);

  EngineSweepResult result;
  for (const std::size_t budget : setup.token_budgets) {
    for (const std::size_t workers : setup.worker_counts) {
      for (const ops::Dtype dtype : setup.dtypes) {
        transformer::Encoder enc = pruned_encoder(setup.model, setup.format);
        enc.set_weight_dtype(dtype);
        Options opts;
        opts.batching.max_batch_tokens = budget;
        opts.batching.max_batch_requests = setup.max_batch_requests;
        opts.batching.max_wait = setup.max_wait;
        opts.workers = workers;
        InferenceEngine engine(std::move(enc), opts);
        result.ranked.push_back(
            {budget, workers, dtype, timed_batched_rps(engine, trace)});
      }
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const EngineSweepPoint& a, const EngineSweepPoint& b) {
              return a.rps > b.rps;
            });

  const EngineSweepPoint& best = result.ranked.front();
  EnginePlan& plan = result.plan;
  plan.model = setup.model.name;
  plan.features = cpu_feature_string();
  plan.max_batch_tokens = best.max_batch_tokens;
  plan.workers = best.workers;
  plan.measured_rps = best.rps;
  // Layer provenance: the backend dispatch selects for a full-budget
  // sparse product at the winning dtype (what the batched forward runs).
  // Recorded for tooling only — applying the plan sets the dtype and
  // lets dispatch re-select.
  ops::MatmulDesc desc;
  desc.rows = setup.model.hidden;
  desc.cols = setup.model.hidden;
  desc.b_cols = best.max_batch_tokens;
  desc.format = ops::OperandFormat::kVnm;
  desc.dtype = best.dtype;
  desc.vnm = setup.format;
  const std::string backend(
      ops::BackendRegistry::instance().select(desc).name());
  plan.layers.assign(setup.model.layers, EnginePlanLayer{backend, best.dtype});
  return result;
}

double measure_engine_rps(const EngineSweepSetup& setup, const Options& opts) {
  const std::vector<HalfMatrix> trace = sweep_trace(setup);
  InferenceEngine engine(pruned_encoder(setup.model, setup.format), opts);
  return timed_batched_rps(engine, trace);
}

LoadReport run_serving_load(const LoadSetup& setup) {
  // Zipf-skewed request lengths over [min_tokens, max_tokens]: weight of
  // the k-th shortest length is (k+1)^-skew, so traffic is mostly short
  // requests with a heavy tail of long ones — the ragged mix that makes
  // least-queued-tokens routing earn its keep over round-robin.
  const std::size_t span = setup.max_tokens - setup.min_tokens + 1;
  std::vector<double> cumulative(span);
  double total_weight = 0.0;
  for (std::size_t k = 0; k < span; ++k) {
    total_weight += std::pow(double(k + 1), -setup.length_skew);
    cumulative[k] = total_weight;
  }
  Rng len_rng = Rng::seeded("serving-load-lengths", setup.seed);
  const auto draw_tokens = [&] {
    const double u = double(len_rng.uniform()) * total_weight;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return setup.min_tokens +
           std::size_t(std::distance(cumulative.begin(), it));
  };

  // Deterministic trace: request i's length and contents depend only on
  // the seed, never on timing.
  std::vector<HalfMatrix> trace;
  trace.reserve(setup.requests);
  for (std::size_t i = 0; i < setup.requests; ++i) {
    Rng rng = Rng::seeded("serving-load-trace", setup.seed * 100003 + i);
    trace.push_back(
        random_half_matrix(setup.model.hidden, draw_tokens(), rng, 0.5f));
  }

  // One encoder, shared const across the replicas; an independent
  // reference instance from the same seed for the bit-identity check.
  transformer::Encoder ref_enc = pruned_encoder(setup.model, setup.format);
  Options opts;
  opts.batching.max_batch_tokens = setup.max_batch_tokens;
  opts.batching.max_wait = setup.max_wait;
  opts.workers = setup.workers;
  opts.replicas = setup.replicas;
  opts.admission.max_queued_tokens = setup.max_queued_tokens;
  opts.plan_path = setup.plan_path;
  if (!setup.plan_path.empty())
    load_engine_plan(setup.plan_path).apply(ref_enc);
  EngineGroup group(pruned_encoder(setup.model, setup.format), opts);

  LoadReport report;
  report.offered = setup.requests;

  // Closed-loop calibration (doubles as warmup): submit a burst through
  // the group, wait for all of it, and take completions/second as the
  // capacity estimate the overload rate is expressed against.
  {
    const std::size_t n = std::max<std::size_t>(1, setup.calibration_requests);
    const auto t0 = Clock::now();
    std::vector<std::future<Response>> futs;
    futs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Request req;
      req.input = trace[i % trace.size()];
      req.tenant = "calibration";
      try {
        futs.push_back(group.submit(std::move(req)));
      } catch (const AdmissionError&) {
        // Queue-full during calibration just means the burst outran the
        // bound; the capacity estimate uses what was admitted.
      }
      // Pace the burst against the admission bound: drain ahead of the
      // queue limit so calibration measures throughput, not shedding.
      if (futs.size() >= 2 * setup.replicas &&
          futs.size() % setup.replicas == 0)
        futs[futs.size() - 2 * setup.replicas].wait();
    }
    std::size_t done = 0;
    for (auto& f : futs) {
      f.get();
      ++done;
    }
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    report.capacity_rps = double(std::max<std::size_t>(1, done)) / s;
    group.reset_stats();
  }

  // Open-loop overload phase: Poisson arrivals at overload x capacity.
  // Open-loop is the point — arrivals do not slow down when the system
  // backs up, so the admission controller (not client backpressure) is
  // what keeps the admitted requests' latency bounded.
  report.offered_rps = setup.overload * report.capacity_rps;
  Rng arrival_rng = Rng::seeded("serving-load-arrivals", setup.seed);
  struct Outcome {
    std::size_t index;
    std::future<Response> fut;
  };
  std::vector<Outcome> admitted;
  admitted.reserve(setup.requests);
  const auto start = Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < setup.requests; ++i) {
    float u = arrival_rng.uniform();
    if (u < 1e-7f) u = 1e-7f;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(double(u)) /
                                      report.offered_rps));
    std::this_thread::sleep_until(next_arrival);
    Request req;
    req.input = trace[i];
    req.tenant = "load";
    try {
      admitted.push_back(Outcome{i, group.submit(std::move(req))});
    } catch (const AdmissionError& e) {
      if (e.reason() == AdmissionReason::kQueueFull)
        ++report.rejected_queue;
      else
        ++report.rejected_rate;
    }
  }

  // Collect: every admitted future must resolve (a hang here is the load
  // bench's failure mode). Client latency is queue+exec — what a caller
  // holding the future experiences once the batch is timed.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(admitted.size());
  std::vector<std::pair<std::size_t, HalfMatrix>> outputs;
  outputs.reserve(admitted.size());
  for (Outcome& o : admitted) {
    try {
      Response resp = o.fut.get();
      latencies_ms.push_back(resp.queue_ms + resp.exec_ms);
      outputs.emplace_back(o.index, std::move(resp.output));
      ++report.admitted;
    } catch (const Error&) {
      ++report.failed;
    }
  }
  report.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  // Bit-identity after the clock stops (the reference forwards are not
  // part of the serving run): every admitted output must match a direct
  // forward() on the independently built reference encoder, whatever
  // replica served it and whatever batch it rode in.
  report.bit_identical = true;
  for (const auto& [index, output] : outputs) {
    if (!report.bit_identical) break;
    report.bit_identical = same_bits(output, ref_enc.forward(trace[index]));
  }
  report.goodput_rps =
      report.wall_s > 0.0 ? double(report.admitted) / report.wall_s : 0.0;

  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = percentile_sorted(latencies_ms, 0.50);
  report.p99_ms = percentile_sorted(latencies_ms, 0.99);
  report.stats = group.stats();
  return report;
}

namespace {

/// The engine's generation contract replayed directly on the encoder:
/// prefill, seed decode with the last prompt output, identity feedback.
HalfMatrix direct_generate(const transformer::Encoder& enc,
                           const HalfMatrix& prompt, std::size_t steps,
                           std::size_t capacity) {
  transformer::KvCache cache = enc.make_cache(capacity);
  const HalfMatrix pre = enc.prefill(prompt, cache);
  const std::size_t hidden = prompt.rows();
  HalfMatrix gen(hidden, steps);
  HalfMatrix x(hidden, 1);
  for (std::size_t r = 0; r < hidden; ++r)
    x(r, 0) = pre(r, prompt.cols() - 1);
  for (std::size_t t = 0; t < steps; ++t) {
    const HalfMatrix y = enc.decode_step(x, cache);
    for (std::size_t r = 0; r < hidden; ++r) {
      gen(r, t) = y(r, 0);
      x(r, 0) = y(r, 0);
    }
  }
  return gen;
}

}  // namespace

DecodeBenchReport run_decode_bench(const DecodeBenchSetup& setup) {
  transformer::ModelConfig model = setup.model;
  model.causal = true;
  model.attn_window = setup.window;

  std::vector<HalfMatrix> prompts;
  prompts.reserve(setup.sessions);
  for (std::size_t i = 0; i < setup.sessions; ++i) {
    Rng rng = Rng::seeded("decode-trace", i);
    prompts.push_back(
        random_half_matrix(model.hidden, setup.prompt_tokens, rng, 0.5f));
  }

  transformer::Encoder ref_enc = pruned_encoder(model, setup.format);
  Options opts;
  opts.batching.max_batch_tokens = setup.max_batch_tokens;
  opts.batching.max_batch_requests = setup.sessions + 1;
  opts.batching.max_wait = setup.max_wait;
  opts.kv_capacity = setup.window != 0
                         ? setup.window
                         : setup.prompt_tokens + setup.new_tokens;
  opts.max_new_tokens = setup.new_tokens;
  opts.prefill_chunk_tokens = setup.prefill_chunk_tokens;
  InferenceEngine engine(pruned_encoder(model, setup.format), opts);

  const auto submit_generation = [&](std::size_t i) {
    Request req;
    req.input = prompts[i];  // prompts are reused across phases — copy
    req.max_new_tokens = setup.new_tokens;
    return engine.submit(std::move(req));
  };

  DecodeBenchReport report;
  report.sessions = setup.sessions;
  report.prompt_tokens = setup.prompt_tokens;
  report.new_tokens = setup.new_tokens;

  // Correctness pass (doubles as warmup): every session's generated
  // columns must bit-match the direct prefill + decode_step loop on the
  // independently built reference encoder — whatever batches its prefill
  // chunks and decode steps rode in.
  {
    std::vector<std::future<Response>> futs;
    futs.reserve(setup.sessions);
    for (std::size_t i = 0; i < setup.sessions; ++i)
      futs.push_back(submit_generation(i));
    report.bit_identical = true;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const Response resp = futs[i].get();
      report.bit_identical =
          report.bit_identical &&
          same_bits(resp.output, direct_generate(ref_enc, prompts[i],
                                                 setup.new_tokens,
                                                 opts.kv_capacity));
    }
  }

  // Prefill-only phase: the prompts as plain encode traffic. This is the
  // bulk-throughput workload a decode step contends with; the per-batch
  // forward time (exec_ms, shared by every request in the batch) is the
  // latency bar the mixed run's decode p99 is judged against.
  engine.reset_stats();
  {
    const auto t0 = Clock::now();
    std::vector<std::future<Response>> futs;
    futs.reserve(setup.sessions);
    for (std::size_t i = 0; i < setup.sessions; ++i) {
      Request req;
      req.input = prompts[i];
      futs.push_back(engine.submit(std::move(req)));
    }
    std::vector<double> batch_ms;
    batch_ms.reserve(futs.size());
    for (auto& f : futs) batch_ms.push_back(f.get().exec_ms);
    report.solo_prefill_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    report.solo_prefill_tok_s =
        double(setup.sessions * setup.prompt_tokens) / report.solo_prefill_s;
    std::sort(batch_ms.begin(), batch_ms.end());
    report.solo_prefill_batch_p50_ms = percentile_sorted(batch_ms, 0.50);
  }

  // Mixed phase: every session generating concurrently — prefill chunks
  // and 1-token decode steps sharing one batch queue, decode ranked
  // urgent. decode_p50/p99 (queue + exec per step) land in stats.
  engine.reset_stats();
  {
    const auto t0 = Clock::now();
    std::vector<std::future<Response>> futs;
    futs.reserve(setup.sessions);
    for (std::size_t i = 0; i < setup.sessions; ++i)
      futs.push_back(submit_generation(i));
    for (auto& f : futs) f.get();
    report.mixed_wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    report.decode_tok_s =
        double(setup.sessions * setup.new_tokens) / report.mixed_wall_s;
  }
  report.stats = engine.stats();
  return report;
}

}  // namespace venom::serving
