#include "serving/bench_harness.hpp"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/timing.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

namespace {

transformer::Encoder pruned_encoder(const BenchSetup& setup) {
  Rng rng = Rng::seeded("serving-model");
  transformer::Encoder enc(setup.model, rng);
  enc.sparsify(setup.format);
  return enc;
}

}  // namespace

BenchComparison run_serving_comparison(const BenchSetup& setup) {
  std::vector<HalfMatrix> trace;
  trace.reserve(setup.requests);
  for (std::size_t i = 0; i < setup.requests; ++i) {
    Rng rng = Rng::seeded("serving-trace", i);
    trace.push_back(
        random_half_matrix(setup.model.hidden, setup.tokens, rng, 0.5f));
  }

  transformer::Encoder seq_enc = pruned_encoder(setup);
  InferenceEngine engine(
      pruned_encoder(setup),
      {.batching = {.max_batch_tokens = setup.max_batch_tokens,
                    .max_batch_requests = setup.max_batch_requests,
                    .max_wait = setup.max_wait}});

  // Per-request forward durations from the timed pass: the sequential
  // path's "latency" is each request's own forward time, so its p50/p99
  // are percentiles of these (not the whole-trace mean).
  std::vector<double> seq_latencies_s;
  const auto run_sequential = [&](std::vector<HalfMatrix>* out) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      HalfMatrix y = seq_enc.forward(trace[i]);
      if (out == nullptr)  // timed pass only
        seq_latencies_s.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      if (out != nullptr) (*out)[i] = std::move(y);
    }
  };
  const auto run_batched = [&](std::vector<HalfMatrix>* out) {
    std::vector<std::future<HalfMatrix>> futs;
    futs.reserve(trace.size());
    for (const HalfMatrix& x : trace) futs.push_back(engine.submit(x));
    for (std::size_t i = 0; i < futs.size(); ++i) {
      HalfMatrix y = futs[i].get();
      if (out != nullptr) (*out)[i] = std::move(y);
    }
  };

  BenchComparison result;
  result.requests = setup.requests;
  result.tokens_per_request = setup.tokens;

  // Correctness pass (doubles as warmup): batching must not change any
  // request's bits.
  std::vector<HalfMatrix> seq_out(trace.size()), eng_out(trace.size());
  run_sequential(&seq_out);
  run_batched(&eng_out);
  result.bit_identical = true;
  for (std::size_t i = 0; i < trace.size() && result.bit_identical; ++i) {
    result.bit_identical = seq_out[i].rows() == eng_out[i].rows() &&
                           seq_out[i].cols() == eng_out[i].cols();
    for (std::size_t e = 0;
         result.bit_identical && e < seq_out[i].size(); ++e)
      result.bit_identical =
          seq_out[i].flat()[e].bits() == eng_out[i].flat()[e].bits();
  }

  // Timed passes run against a warm engine; dropping the warmup-pass
  // samples keeps the reported percentiles steady-state.
  engine.reset_stats();
  result.sequential_s =
      seconds_per_call([&] { run_sequential(nullptr); }, /*warmup=*/0);
  result.batched_s =
      seconds_per_call([&] { run_batched(nullptr); }, /*warmup=*/0);
  result.stats = engine.stats();

  std::sort(seq_latencies_s.begin(), seq_latencies_s.end());
  result.sequential_p50_ms = 1e3 * percentile_sorted(seq_latencies_s, 0.50);
  result.sequential_p99_ms = 1e3 * percentile_sorted(seq_latencies_s, 0.99);
  return result;
}

}  // namespace venom::serving
