// Persisted engine-level tuning: the serving analogue of the kernel
// tuning cache.
//
// The kernel tier tunes one SpMM shape; this tier tunes the knobs above
// the kernels — the batcher's token budget, the worker split, and which
// datapath (fp16 / int8 / fp8) each encoder layer's weights run on. A
// `venomtool tune-engine` sweep measures real serving throughput over
// those axes and persists the winner as an EnginePlan: a small versioned
// JSON artefact fingerprinted with the measuring build's CPU feature
// string, exactly like a TuningKey. Point serving::Options::plan_path at
// the file (or pass --plan= to venomtool serve-bench / route-bench) and
// the engine folds the measured knobs back in at construction.
//
// Lifecycle rules mirror the tuning cache where the artefacts agree and
// diverge where they must:
//   * a plan whose `features` fingerprint does not match this build is
//     ignored gracefully (entries from other machines never apply);
//   * a missing or corrupt plan file THROWS venom::Error — unlike the
//     env-var tuning cache, plan_path is an explicit per-run request,
//     and silently serving untuned would defeat the point of asking.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ops/matmul.hpp"
#include "serving/options.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

/// Measured per-layer datapath choice. `backend` records the registry
/// backend the sweep's dispatch selected for this layer's dtype (pure
/// provenance — application sets the dtype and lets the registry
/// re-select, so a VENOM_BACKEND override still wins); `dtype` is what
/// apply() actually sets on the layer's weights.
struct EnginePlanLayer {
  std::string backend;
  ops::Dtype dtype = ops::Dtype::kF16;
};

/// One measured serving configuration for one model on one machine.
struct EnginePlan {
  static constexpr std::size_t kVersion = 1;

  std::string model;     ///< ModelConfig::name the sweep ran over
  std::string features;  ///< cpu_feature_string() of the measuring build
  /// Batcher token budget the sweep measured fastest (0 = not tuned,
  /// apply() leaves Options::batching untouched).
  std::size_t max_batch_tokens = 0;
  /// Batch-execution workers per engine (0 = not tuned).
  std::size_t workers = 0;
  /// Serving throughput of the winning configuration during the sweep —
  /// provenance for tooling; reloading the plan should reproduce it
  /// within measurement tolerance.
  double measured_rps = 0.0;
  /// Per-layer datapath, index-aligned with Encoder::layer(i). Empty =
  /// the sweep did not tune dtypes.
  std::vector<EnginePlanLayer> layers;

  /// Whether the plan was measured by a build with this CPU fingerprint
  /// (plans from other builds never apply, like tuning-cache entries).
  bool compatible() const;

  /// Folds the measured serving knobs (token budget, worker split) into
  /// `opts`. Returns false — leaving opts untouched — when the
  /// fingerprint does not match this build.
  bool apply(Options& opts) const;

  /// Applies the per-layer dtype choice to a mutable encoder (possible
  /// only before the encoder is shared const — the owning
  /// InferenceEngine / EngineGroup constructors). Plan entries beyond
  /// encoder.layer_count() are ignored. Returns false (encoder
  /// untouched) on a fingerprint mismatch.
  bool apply(transformer::Encoder& encoder) const;
};

/// Writes the plan as a JSON document:
///
///   {"format": "venom-engine-plan", "version": 1, "model": "…",
///    "features": "…", "max_batch_tokens": …, "workers": …,
///    "measured_rps": …,
///    "layers": [{"backend": "…", "dtype": "int8"}, …]}
void save_engine_plan(const EnginePlan& plan, const std::string& path);

/// Parses an engine plan. Throws venom::Error on a missing file,
/// malformed JSON, a foreign "format" tag, an unsupported version, or an
/// unknown dtype name.
EnginePlan load_engine_plan(const std::string& path);

/// Returns `opts` with its plan (when Options::plan_path is set) folded
/// in via EnginePlan::apply. The engine/group constructors call this at
/// member-init time, before any member derived from the options exists —
/// the batcher copies opts_.batching, so the fold must happen first.
Options options_with_plan(Options opts);

/// Applies the plan's per-layer dtypes (when `plan_path` is non-empty)
/// to the still-mutable encoder, then freezes it as shared const. Only
/// the owning (by-value) engine/group constructors can use this — once
/// the encoder is shared, its weights are immutable by contract.
std::shared_ptr<const transformer::Encoder> encoder_with_plan(
    transformer::Encoder encoder, const std::string& plan_path);

}  // namespace venom::serving
