// The serving request/response surface (PR 7's API redesign; PR 8 grows
// it a generation mode).
//
// The original engine exposed a bare submit(HalfMatrix) -> future<HalfMatrix>
// — fine for one worker loop, but unable to express who is asking
// (tenants with rate limits), how urgently (priorities, deadlines), or
// what happened (which replica served it, how long it queued vs ran).
// serving::Request / serving::Response carry exactly that, and every
// serving surface (InferenceEngine, EngineGroup) speaks them.
//
// A Request with max_new_tokens > 0 is a *generation* request: the
// engine prefills a per-sequence KV cache from the prompt, then decodes
// autoregressively — one token per step, each step a 1-token entry in
// the shared batch queue so decode latency rides ahead of bulk prefill
// work (see PendingRequest::urgent). The per-sequence session state (the
// KV ring, the feedback buffer) is owned by the engine and never crosses
// replicas: a session is sticky to the replica that admitted it.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "tensor/matrix.hpp"

namespace venom::serving {

using Clock = std::chrono::steady_clock;

/// One inference request: input activations (hidden x tokens) plus the
/// serving metadata the router and admission control act on.
struct Request {
  HalfMatrix input{};
  /// Admission-control identity: rate limits are per tenant.
  std::string tenant = "default";
  /// Higher priorities are dequeued first (FIFO within a priority).
  /// Batch composition never changes any request's bits, so priority
  /// reordering cannot break the bit-identity invariant.
  int priority = 0;
  /// If set and the request is still queued past this point, it is shed
  /// with AdmissionError(kDeadlineExceeded) instead of executed. A batch
  /// already running is never cancelled.
  std::optional<Clock::time_point> deadline{};

  // ---------------------------------------------------------- generation
  /// 0 = classic single-shot encode (Response::output mirrors the input
  /// shape). > 0 = generation: `input` is the prompt, the engine prefills
  /// a KV cache from it and then decodes up to this many steps.
  std::size_t max_new_tokens = 0;
  /// Per-step feedback hook for generation. After prefill and after
  /// every decode step the engine copies the newest token's encoder
  /// output column into the session's (hidden x 1) feedback buffer and
  /// calls this with a span over it; the hook may transform it in place
  /// into the next step's input (e.g. logits -> argmax -> embedding) and
  /// returns false to stop early (eos). Absent, the output feeds back
  /// unchanged and generation runs to max_new_tokens. Called from a
  /// worker thread; a throwing hook fails the request's future.
  std::function<bool(std::span<half_t>)> on_token;

  /// Admission/routing weight: the prompt plus every token the request
  /// may generate.
  std::size_t total_tokens() const { return input.cols() + max_new_tokens; }
};

/// The delivered result and its serving telemetry.
struct Response {
  /// Encode: the encoder output, same shape as the input. Generation:
  /// one column per decode step (hidden x tokens_generated), i.e. the
  /// newest token's output at each step, pre-hook.
  HalfMatrix output;
  std::uint64_t id = 0;       ///< engine-assigned, unique per engine
  std::uint32_t replica = 0;  ///< which EngineGroup replica executed it
  double queue_ms = 0.0;      ///< submit -> first batch execution start
  double exec_ms = 0.0;       ///< forward wall time (all phases summed)
  std::size_t batch_tokens = 0;  ///< tokens co-batched with this request
  // Generation telemetry (zero for plain encode requests).
  double prefill_ms = 0.0;  ///< forward time spent on prompt chunks
  double decode_ms = 0.0;   ///< forward time spent on decode steps
  std::size_t tokens_generated = 0;  ///< decode steps executed
};

struct GenSession;  // engine-owned per-sequence state (engine.hpp)

/// A queued request inside the serving machinery: the Request, the
/// promise its Response travels through, and the bookkeeping hooks.
/// Internal to serving (the batcher and engines pass these around);
/// callers only ever see Request / future<Response>.
struct PendingRequest {
  std::uint64_t id = 0;
  Request request;
  std::promise<Response> result;
  Clock::time_point enqueued{};
  std::uint32_t replica = 0;
  /// Invoked exactly once when the request leaves the system (delivered,
  /// failed, or shed) — the router releases admission tokens here, the
  /// engine its in-flight load gauge. Chained, never copied.
  std::function<void()> on_done;

  /// A generation request cycles through the queue once per phase step:
  /// kPrefill entries carry a prompt chunk, kDecode entries exactly one
  /// token. kEncode is the classic single-shot path.
  enum class Phase { kEncode, kPrefill, kDecode };
  Phase phase = Phase::kEncode;
  /// The engine-owned session (KV cache, feedback buffer, phase timing);
  /// null for kEncode.
  std::shared_ptr<GenSession> session;
  /// The prompt columns [chunk_begin, chunk_end) this kPrefill pass runs.
  std::size_t chunk_begin = 0;
  std::size_t chunk_end = 0;

  /// Tokens this queue entry contributes to a batch's budget (NOT the
  /// request's total: a generation request re-enters the queue per step).
  std::size_t tokens() const {
    switch (phase) {
      case Phase::kPrefill: return chunk_end - chunk_begin;
      case Phase::kDecode: return 1;
      case Phase::kEncode: break;
    }
    return request.input.cols();
  }

  /// Latency-critical single-token work: the batcher ranks these ahead
  /// of same-priority throughput work and flushes a forming batch
  /// immediately instead of holding them on the flush timer.
  bool urgent() const { return phase == Phase::kDecode; }
};

/// Delivers the response and fires the completion hook (exactly once).
/// The hook fires BEFORE the promise is settled: a caller that awaits
/// the future may immediately submit again, and must then observe the
/// load gauge decremented and the admission slot released — settling
/// first would race that resubmission against the hook.
inline void deliver(PendingRequest& req, Response&& response) {
  if (req.on_done) {
    auto done = std::move(req.on_done);
    req.on_done = nullptr;
    done();
  }
  req.result.set_value(std::move(response));
}

/// Fails the request and fires the completion hook (exactly once). Hook
/// before settling, for the same resubmission-race reason as deliver().
inline void fail(PendingRequest& req, std::exception_ptr err) {
  if (req.on_done) {
    auto done = std::move(req.on_done);
    req.on_done = nullptr;
    done();
  }
  req.result.set_exception(std::move(err));
}

}  // namespace venom::serving
