// The serving request/response surface (PR 7's API redesign).
//
// The original engine exposed a bare submit(HalfMatrix) -> future<HalfMatrix>
// — fine for one worker loop, but unable to express who is asking
// (tenants with rate limits), how urgently (priorities, deadlines), or
// what happened (which replica served it, how long it queued vs ran).
// serving::Request / serving::Response carry exactly that, and every
// serving surface (InferenceEngine, EngineGroup) speaks them; the legacy
// bare-matrix overload survives only as a deprecated shim.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>

#include "tensor/matrix.hpp"

namespace venom::serving {

using Clock = std::chrono::steady_clock;

/// One inference request: input activations (hidden x tokens) plus the
/// serving metadata the router and admission control act on.
struct Request {
  HalfMatrix input{};
  /// Admission-control identity: rate limits are per tenant.
  std::string tenant = "default";
  /// Higher priorities are dequeued first (FIFO within a priority).
  /// Batch composition never changes any request's bits, so priority
  /// reordering cannot break the bit-identity invariant.
  int priority = 0;
  /// If set and the request is still queued past this point, it is shed
  /// with AdmissionError(kDeadlineExceeded) instead of executed. A batch
  /// already running is never cancelled.
  std::optional<Clock::time_point> deadline{};
};

/// The delivered result and its serving telemetry.
struct Response {
  HalfMatrix output;  ///< encoder output, same shape as the input
  std::uint64_t id = 0;       ///< engine-assigned, unique per engine
  std::uint32_t replica = 0;  ///< which EngineGroup replica executed it
  double queue_ms = 0.0;      ///< submit -> batch execution start
  double exec_ms = 0.0;       ///< the batch's forward wall time
  std::size_t batch_tokens = 0;  ///< tokens co-batched with this request
};

/// A queued request inside the serving machinery: the Request, the
/// promise its Response travels through, and the bookkeeping hooks.
/// Internal to serving (the batcher and engines pass these around);
/// callers only ever see Request / future<Response>.
struct PendingRequest {
  std::uint64_t id = 0;
  Request request;
  std::promise<Response> result;
  Clock::time_point enqueued{};
  std::uint32_t replica = 0;
  /// Invoked exactly once when the request leaves the system (delivered,
  /// failed, or shed) — the router releases admission tokens here, the
  /// engine its in-flight load gauge. Chained, never copied.
  std::function<void()> on_done;

  std::size_t tokens() const { return request.input.cols(); }
};

/// Delivers the response and fires the completion hook (exactly once).
/// The hook fires BEFORE the promise is settled: a caller that awaits
/// the future may immediately submit again, and must then observe the
/// load gauge decremented and the admission slot released — settling
/// first would race that resubmission against the hook.
inline void deliver(PendingRequest& req, Response&& response) {
  if (req.on_done) {
    auto done = std::move(req.on_done);
    req.on_done = nullptr;
    done();
  }
  req.result.set_value(std::move(response));
}

/// Fails the request and fires the completion hook (exactly once). Hook
/// before settling, for the same resubmission-race reason as deliver().
inline void fail(PendingRequest& req, std::exception_ptr err) {
  if (req.on_done) {
    auto done = std::move(req.on_done);
    req.on_done = nullptr;
    done();
  }
  req.result.set_exception(std::move(err));
}

}  // namespace venom::serving
