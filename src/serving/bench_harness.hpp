// Shared harnesses for the serving benchmarks, used by the bench/
// executables (CI-gated) and venomtool's serve-bench / route-bench
// commands (the ad-hoc CLI probes) so both surfaces measure exactly the
// same thing.
//
// Two harnesses:
//   * run_serving_comparison — one deterministic request trace, one
//     pruned encoder per path built from the same seed, a timed
//     sequential forward() loop vs the dynamic-batching engine, and an
//     element-wise bit-identity check of every request's outputs.
//   * run_serving_load — the scaled-serving overload experiment: an
//     EngineGroup of N replicas under an open-loop Poisson arrival
//     process offered at a multiple of the group's calibrated capacity,
//     with Zipf-skewed request lengths and a bounded admission queue.
//     Reports goodput and client latency percentiles of the admitted
//     requests, the explicit AdmissionError shed counts, and a
//     bit-identity check of every admitted output against a direct
//     forward() on a reference encoder.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "format/vnm.hpp"
#include "ops/matmul.hpp"
#include "serving/engine.hpp"
#include "serving/plan.hpp"
#include "serving/router.hpp"
#include "transformer/config.hpp"

namespace venom::serving {

/// What to measure: model, pruning format, trace shape, batching knobs.
struct BenchSetup {
  transformer::ModelConfig model;
  VnmConfig format{64, 2, 8};
  std::size_t requests = 64;
  std::size_t tokens = 4;  ///< per request
  std::size_t max_batch_tokens = 256;
  std::size_t max_batch_requests = 64;
  std::chrono::microseconds max_wait{500};
  /// Optional EnginePlan path. Applied to BOTH paths — the engine via
  /// Options::plan_path, the sequential reference encoder directly — so
  /// the bit-identity check keeps comparing like with like when the plan
  /// switches layer dtypes.
  std::string plan_path;
};

/// Measured outcome of one comparison run.
struct BenchComparison {
  std::size_t requests = 0;
  std::size_t tokens_per_request = 0;
  double sequential_s = 0.0;  ///< wall seconds for the whole trace
  double batched_s = 0.0;     ///< same trace through the engine
  double sequential_p50_ms = 0.0;  ///< true per-request forward percentiles
  double sequential_p99_ms = 0.0;
  bool bit_identical = false;  ///< every request, every element
  /// Engine-side counters and latencies, from the timed pass only (the
  /// warmup/correctness pass is excluded, so p50/p99 are steady-state
  /// with a warm plan cache).
  ServingStats stats;

  double speedup() const { return sequential_s / batched_s; }
  double sequential_rps() const {
    return static_cast<double>(requests) / sequential_s;
  }
  double batched_rps() const {
    return static_cast<double>(requests) / batched_s;
  }
};

/// Runs the canonical comparison: deterministic trace (request i is seeded
/// "serving-trace"/i), encoder weights seeded "serving-model" and
/// magnitude-pruned to setup.format for both paths, a correctness pass
/// asserting per-request bit-identity (doubling as warmup), then timed
/// sequential and batched passes over the full trace.
BenchComparison run_serving_comparison(const BenchSetup& setup);

/// Axes of the `venomtool tune-engine` sweep: the engine-level knobs the
/// kernel tuning cache cannot see — batcher token budget, worker split,
/// and the uniform weight dtype the encoder's layers run on.
struct EngineSweepSetup {
  transformer::ModelConfig model;
  VnmConfig format{64, 2, 8};
  std::size_t requests = 32;
  std::size_t tokens = 4;  ///< per request
  std::size_t max_batch_requests = 64;
  std::chrono::microseconds max_wait{500};
  std::vector<std::size_t> token_budgets = {128, 256, 512};
  std::vector<std::size_t> worker_counts = {1, 2};
  std::vector<ops::Dtype> dtypes = {ops::Dtype::kF16, ops::Dtype::kI8};
};

/// One measured point of the sweep.
struct EngineSweepPoint {
  std::size_t max_batch_tokens = 0;
  std::size_t workers = 0;
  ops::Dtype dtype = ops::Dtype::kF16;
  double rps = 0.0;  ///< batched trace throughput for this combination
};

/// Every measured point (fastest first) plus the winner packaged as a
/// ready-to-save EnginePlan (fingerprinted for this build, per-layer
/// backend provenance recorded from dispatch).
struct EngineSweepResult {
  std::vector<EngineSweepPoint> ranked;
  EnginePlan plan;
};

/// Measures every combination of the setup's axes over the canonical
/// deterministic trace (same "serving-trace" stream as
/// run_serving_comparison): each combination gets a fresh pruned
/// "serving-model" encoder at the combination's dtype and a fresh engine,
/// one warmup pass, then one timed pass.
EngineSweepResult run_engine_sweep(const EngineSweepSetup& setup);

/// Batched throughput of the canonical trace through an engine built
/// with `opts` as given — `venomtool tune-engine` uses this to confirm a
/// reloaded plan (opts.plan_path) reproduces the sweep's measured_rps
/// within tolerance.
double measure_engine_rps(const EngineSweepSetup& setup, const Options& opts);

/// The overload experiment's knobs.
struct LoadSetup {
  transformer::ModelConfig model;
  VnmConfig format{64, 2, 8};
  std::size_t replicas = 4;
  std::size_t workers = 1;  ///< batch workers per replica
  std::size_t requests = 192;  ///< offered during the overload phase
  /// Offered arrival rate as a multiple of the calibrated closed-loop
  /// capacity — 2.0 is the canonical "2x overload" burst.
  double overload = 2.0;
  /// Request lengths are Zipf-skewed over [min_tokens, max_tokens]:
  /// mostly short, a heavy tail of long ones (exponent length_skew).
  std::size_t min_tokens = 4;
  std::size_t max_tokens = 64;
  double length_skew = 1.1;
  std::size_t max_batch_tokens = 256;
  std::chrono::microseconds max_wait{500};
  /// Global admission bound (tokens admitted but not completed). The
  /// shedding path under overload: beyond this, submit() throws
  /// AdmissionError(kQueueFull) instead of queueing unboundedly. Sized
  /// to the latency target: an admitted request waits at most roughly
  /// max_queued_tokens / token-throughput, so this bound IS the p99 cap.
  std::size_t max_queued_tokens = 512;
  std::size_t calibration_requests = 64;  ///< closed-loop warmup+capacity
  std::uint64_t seed = 0;  ///< trace stream index (same seed, same trace)
  /// Optional EnginePlan path, applied to the group (Options::plan_path)
  /// and to the direct-forward reference encoder alike.
  std::string plan_path;
};

/// Measured outcome of one overload run.
struct LoadReport {
  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t rejected_queue = 0;  ///< AdmissionError(kQueueFull) at submit
  std::size_t rejected_rate = 0;   ///< AdmissionError(kRateLimited)
  std::size_t failed = 0;  ///< admitted but failed (should stay 0)
  double capacity_rps = 0.0;  ///< closed-loop calibration estimate
  double offered_rps = 0.0;   ///< the Poisson arrival rate actually used
  double wall_s = 0.0;        ///< first submit -> last completion
  double goodput_rps = 0.0;   ///< admitted completions / wall_s
  double p50_ms = 0.0;  ///< client latency (queue+exec) of admitted reqs
  double p99_ms = 0.0;
  bool bit_identical = false;  ///< every admitted output vs direct forward
  GroupStats stats;
};

/// Runs the overload experiment: calibrate capacity closed-loop over the
/// group (doubling as warmup), then offer setup.requests Poisson arrivals
/// at overload x capacity. Deterministic trace; the wall-clock arrival
/// jitter is the only nondeterminism, which is why the report separates
/// counters (exact) from rates (measured).
LoadReport run_serving_load(const LoadSetup& setup);

/// The autoregressive-decode experiment's knobs. The harness forces the
/// model causal with attention window == `window` (the KV ring capacity);
/// each session is a prompt of prompt_tokens and new_tokens decode steps
/// with identity feedback (each step's input is the previous output).
struct DecodeBenchSetup {
  transformer::ModelConfig model;
  VnmConfig format{64, 2, 8};
  std::size_t sessions = 16;
  std::size_t prompt_tokens = 32;
  std::size_t new_tokens = 32;
  /// Attention window == KV ring capacity. prompt + new_tokens beyond it
  /// exercises ring wraparound under the benchmark clock.
  std::size_t window = 48;
  std::size_t max_batch_tokens = 256;
  /// Prompt tokens per prefill pass — smaller chunks give decode steps
  /// of live sessions more seams to slot into.
  std::size_t prefill_chunk_tokens = 32;
  std::chrono::microseconds max_wait{500};
};

/// Measured outcome of one decode run.
struct DecodeBenchReport {
  std::size_t sessions = 0;
  std::size_t prompt_tokens = 0;
  std::size_t new_tokens = 0;
  /// Prefill-only phase: the same prompts as plain encode traffic.
  double solo_prefill_s = 0.0;        ///< wall seconds, all prompts
  double solo_prefill_tok_s = 0.0;    ///< prompt tokens / wall
  /// p50 forward time of one token-budget prefill batch — the latency a
  /// decode step would pay if it had to wait out bulk prefill work. The
  /// mixed run's decode p99 must come in under this.
  double solo_prefill_batch_p50_ms = 0.0;
  /// Mixed phase: every session generating concurrently, prefill chunks
  /// and decode steps sharing the batch queue.
  double mixed_wall_s = 0.0;
  double decode_tok_s = 0.0;  ///< generated tokens / mixed wall
  bool bit_identical = false;  ///< every session vs the direct decode loop
  ServingStats stats;  ///< mixed phase (decode_p50_ms / decode_p99_ms)
};

/// Runs the decode benchmark: a correctness pass checking every session's
/// generated columns bit-match a direct prefill + decode_step loop on an
/// independently built reference encoder (doubles as warmup), then a
/// timed prefill-only phase and a timed mixed generation phase.
DecodeBenchReport run_decode_bench(const DecodeBenchSetup& setup);

}  // namespace venom::serving
