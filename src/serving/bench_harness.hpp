// Shared harness for the serving throughput comparison, used by both
// bench_serving (the CI-gated benchmark) and `venomtool serve-bench` (the
// ad-hoc CLI probe) so the two surfaces measure exactly the same thing:
// one deterministic request trace, one pruned encoder per path built from
// the same seed, a timed sequential forward() loop vs the dynamic-batching
// engine, and an element-wise bit-identity check of every request's
// outputs.
#pragma once

#include <chrono>
#include <cstddef>

#include "format/vnm.hpp"
#include "serving/engine.hpp"
#include "transformer/config.hpp"

namespace venom::serving {

/// What to measure: model, pruning format, trace shape, batching knobs.
struct BenchSetup {
  transformer::ModelConfig model;
  VnmConfig format{64, 2, 8};
  std::size_t requests = 64;
  std::size_t tokens = 4;  ///< per request
  std::size_t max_batch_tokens = 256;
  std::size_t max_batch_requests = 64;
  std::chrono::microseconds max_wait{500};
};

/// Measured outcome of one comparison run.
struct BenchComparison {
  std::size_t requests = 0;
  std::size_t tokens_per_request = 0;
  double sequential_s = 0.0;  ///< wall seconds for the whole trace
  double batched_s = 0.0;     ///< same trace through the engine
  double sequential_p50_ms = 0.0;  ///< true per-request forward percentiles
  double sequential_p99_ms = 0.0;
  bool bit_identical = false;  ///< every request, every element
  /// Engine-side counters and latencies, from the timed pass only (the
  /// warmup/correctness pass is excluded, so p50/p99 are steady-state
  /// with a warm plan cache).
  ServingStats stats;

  double speedup() const { return sequential_s / batched_s; }
  double sequential_rps() const {
    return static_cast<double>(requests) / sequential_s;
  }
  double batched_rps() const {
    return static_cast<double>(requests) / batched_s;
  }
};

/// Runs the canonical comparison: deterministic trace (request i is seeded
/// 1000+i), encoder weights seeded 42 and magnitude-pruned to
/// setup.format for both paths, a correctness pass asserting per-request
/// bit-identity (doubling as warmup), then timed sequential and batched
/// passes over the full trace.
BenchComparison run_serving_comparison(const BenchSetup& setup);

}  // namespace venom::serving
