// One coherent configuration surface for the serving layer.
//
// Before PR 7 the knobs were scattered: BatchPolicy (batcher), a
// separate ServingConfig (engine), and nothing for the router. Options
// folds all of them — batching, per-replica engine knobs, replica count,
// admission policy — into one struct with *validated* construction:
// validate() rejects zero budgets, zero replicas, and rate limits with
// no burst capacity by throwing venom::Error at construction time,
// instead of letting a zero budget hang a worker loop forever.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.hpp"
#include "serving/admission.hpp"
#include "serving/batcher.hpp"

namespace venom::serving {

/// Every serving knob: batch formation, per-replica engine resources,
/// horizontal scale, and admission control. InferenceEngine reads the
/// first three groups; EngineGroup reads all four.
struct Options {
  /// Batch formation (token budget, request cap, flush timer).
  BatchPolicy batching;
  /// Batch-execution workers per engine. One worker already parallelizes
  /// inside the kernels via the shared ThreadPool; extra workers overlap
  /// batch assembly/split with compute at the cost of pool contention.
  std::size_t workers = 1;
  std::size_t plan_cache_capacity = 64;
  /// Latency samples retained for the p50/p99 estimate (ring buffer).
  std::size_t latency_window = 4096;
  /// Engine replicas an EngineGroup routes across (shared const weights,
  /// private ExecContexts). Ignored by a bare InferenceEngine.
  std::size_t replicas = 1;
  /// Per-tenant rate limits and the global in-flight bound. Ignored by a
  /// bare InferenceEngine (admission is the router's job).
  AdmissionPolicy admission{};
  /// KV ring capacity per generation session (columns of fp16 K and V
  /// per layer — kv_cache.hpp has the memory math). When the encoder has
  /// an attention window this must equal it; otherwise each session's
  /// prompt + max_new_tokens must fit within it (checked at submit).
  std::size_t kv_capacity = 512;
  /// Upper bound on Request::max_new_tokens (rejected at submit) — also
  /// what bounds the work a generation session can hold across shutdown
  /// (in-flight sessions drain to completion).
  std::size_t max_new_tokens = 256;
  /// Prompt tokens per prefill pass of a generation request. 0 sizes
  /// chunks to batching.max_batch_tokens. Smaller chunks interleave
  /// decode steps of live sessions between prompt chunks of new ones.
  std::size_t prefill_chunk_tokens = 0;
  /// Path of a persisted EnginePlan (serving/plan.hpp) produced by
  /// `venomtool tune-engine`. When set, the engine / group constructors
  /// load it and fold the measured knobs (batcher token budget, worker
  /// split, per-layer weight dtype where the encoder is still mutable)
  /// into this Options before validation. A missing or corrupt file
  /// throws venom::Error; a plan measured by a build with a different
  /// CPU fingerprint is ignored gracefully.
  std::string plan_path{};

  /// Throws venom::Error on configurations that could never serve a
  /// request or would hang instead of failing fast.
  void validate() const {
    VENOM_CHECK_MSG(batching.max_batch_tokens >= 1,
                    "Options: max_batch_tokens must be positive");
    VENOM_CHECK_MSG(batching.max_batch_requests >= 1,
                    "Options: max_batch_requests must be positive");
    VENOM_CHECK_MSG(workers >= 1, "Options: engine needs at least one worker");
    VENOM_CHECK_MSG(latency_window >= 1,
                    "Options: latency_window must be positive");
    VENOM_CHECK_MSG(replicas >= 1, "Options: at least one replica");
    const auto check_limit = [](const TenantPolicy& limit, const char* who) {
      VENOM_CHECK_MSG(limit.tokens_per_s >= 0.0 && limit.burst_tokens >= 0.0,
                      "Options: negative admission budget for " << who);
      // A positive rate with a zero burst admits nothing, ever — reject
      // the configuration instead of rejecting every request.
      VENOM_CHECK_MSG(limit.tokens_per_s == 0.0 || limit.burst_tokens >= 1.0,
                      "Options: tenant rate limit for "
                          << who << " has zero burst capacity");
    };
    check_limit(admission.default_limit, "the default tenant");
    for (const auto& [tenant, limit] : admission.tenants)
      check_limit(limit, tenant.c_str());
    VENOM_CHECK_MSG(kv_capacity >= 1,
                    "Options: kv_capacity must be positive (a generation "
                    "session needs at least one KV slot)");
  }
};

}  // namespace venom::serving
