// One coherent configuration surface for the serving layer.
//
// Before PR 7 the knobs were scattered: BatchPolicy (batcher), a
// separate ServingConfig (engine), and nothing for the router. Options
// folds all of them — batching, per-replica engine knobs, replica count,
// admission policy — into one struct with *validated* construction:
// validate() rejects zero budgets, zero replicas, and rate limits with
// no burst capacity by throwing venom::Error at construction time,
// instead of letting a zero budget hang a worker loop forever.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "serving/admission.hpp"
#include "serving/batcher.hpp"

namespace venom::serving {

/// Every serving knob: batch formation, per-replica engine resources,
/// horizontal scale, and admission control. InferenceEngine reads the
/// first three groups; EngineGroup reads all four.
struct Options {
  /// Batch formation (token budget, request cap, flush timer).
  BatchPolicy batching;
  /// Batch-execution workers per engine. One worker already parallelizes
  /// inside the kernels via the shared ThreadPool; extra workers overlap
  /// batch assembly/split with compute at the cost of pool contention.
  std::size_t workers = 1;
  std::size_t plan_cache_capacity = 64;
  /// Latency samples retained for the p50/p99 estimate (ring buffer).
  std::size_t latency_window = 4096;
  /// Engine replicas an EngineGroup routes across (shared const weights,
  /// private ExecContexts). Ignored by a bare InferenceEngine.
  std::size_t replicas = 1;
  /// Per-tenant rate limits and the global in-flight bound. Ignored by a
  /// bare InferenceEngine (admission is the router's job).
  AdmissionPolicy admission{};

  /// Throws venom::Error on configurations that could never serve a
  /// request or would hang instead of failing fast.
  void validate() const {
    VENOM_CHECK_MSG(batching.max_batch_tokens >= 1,
                    "Options: max_batch_tokens must be positive");
    VENOM_CHECK_MSG(batching.max_batch_requests >= 1,
                    "Options: max_batch_requests must be positive");
    VENOM_CHECK_MSG(workers >= 1, "Options: engine needs at least one worker");
    VENOM_CHECK_MSG(latency_window >= 1,
                    "Options: latency_window must be positive");
    VENOM_CHECK_MSG(replicas >= 1, "Options: at least one replica");
    const auto check_limit = [](const TenantPolicy& limit, const char* who) {
      VENOM_CHECK_MSG(limit.tokens_per_s >= 0.0 && limit.burst_tokens >= 0.0,
                      "Options: negative admission budget for " << who);
      // A positive rate with a zero burst admits nothing, ever — reject
      // the configuration instead of rejecting every request.
      VENOM_CHECK_MSG(limit.tokens_per_s == 0.0 || limit.burst_tokens >= 1.0,
                      "Options: tenant rate limit for "
                          << who << " has zero burst capacity");
    };
    check_limit(admission.default_limit, "the default tenant");
    for (const auto& [tenant, limit] : admission.tenants)
      check_limit(limit, tenant.c_str());
  }
};

/// Pre-PR-7 name for the engine's construction knobs.
using ServingConfig [[deprecated("use serving::Options")]] = Options;

}  // namespace venom::serving
