#include "serving/batcher.hpp"

#include "common/error.hpp"

namespace venom::serving {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  VENOM_CHECK_MSG(policy_.max_batch_tokens >= 1,
                  "max_batch_tokens must be positive");
  VENOM_CHECK_MSG(policy_.max_batch_requests >= 1,
                  "max_batch_requests must be positive");
}

bool DynamicBatcher::submit(PendingRequest& req) {
  // push moves from req only on success: a refused request stays intact
  // with its promise, as batcher.hpp documents.
  return queue_.push(std::move(req));
}

void DynamicBatcher::close() { queue_.close(); }

bool DynamicBatcher::next_batch(std::vector<PendingRequest>& out) {
  out.clear();
  std::lock_guard<std::mutex> lock(collect_mutex_);

  // Seed the batch: the carried-over request from the previous
  // collection, or a blocking wait for fresh work.
  PendingRequest first;
  if (carry_.has_value()) {
    first = std::move(*carry_);
    carry_.reset();
  } else if (!queue_.pop(first)) {
    return false;  // closed and drained
  }
  std::size_t tokens = first.tokens();
  out.push_back(std::move(first));

  // Greedy fill until the budget is met or the flush timer expires. The
  // deadline is absolute from the moment the batch opened, so a trickle
  // of small requests cannot stall the first one indefinitely.
  const auto deadline = std::chrono::steady_clock::now() + policy_.max_wait;
  while (out.size() < policy_.max_batch_requests &&
         tokens < policy_.max_batch_tokens) {
    PendingRequest next;
    bool timed_out = false;
    if (!queue_.pop_until(next, deadline, timed_out))
      break;  // flush: timer expired, or closed and drained
    if (tokens + next.tokens() > policy_.max_batch_tokens) {
      carry_.emplace(std::move(next));  // never split a request
      break;
    }
    tokens += next.tokens();
    out.push_back(std::move(next));
  }
  return true;
}

}  // namespace venom::serving
