#include "serving/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "serving/admission.hpp"

namespace venom::serving {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  VENOM_CHECK_MSG(policy_.max_batch_tokens >= 1,
                  "max_batch_tokens must be positive");
  VENOM_CHECK_MSG(policy_.max_batch_requests >= 1,
                  "max_batch_requests must be positive");
}

bool DynamicBatcher::submit(PendingRequest& req) {
  {
    MutexLock lock(mutex_);
    if (closed_) return false;  // req stays intact with its promise
    insert_locked(req);
  }
  cv_.notify_one();
  return true;
}

void DynamicBatcher::resubmit(PendingRequest& req) {
  {
    MutexLock lock(mutex_);
    // Deliberately no closed_ check: a generation step continues work the
    // batcher already admitted, and next_batch() keeps draining a closed
    // queue until it is empty — so shutdown finishes live sessions.
    insert_locked(req);
  }
  cv_.notify_one();
}

void DynamicBatcher::insert_locked(PendingRequest& req) {
  // Rank = (priority, urgent): ahead of strictly lower priorities, and
  // within a band ahead of non-urgent work when urgent; FIFO within each
  // class. The common all-zero case is a plain push_back.
  auto pos = queue_.end();
  while (pos != queue_.begin() &&
         (std::prev(pos)->request.priority < req.request.priority ||
          (std::prev(pos)->request.priority == req.request.priority &&
           req.urgent() && !std::prev(pos)->urgent())))
    --pos;
  queued_tokens_ += req.tokens();
  queue_.insert(pos, std::move(req));
}

void DynamicBatcher::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void DynamicBatcher::shed_expired_locked(Clock::time_point now) {
  while (!queue_.empty()) {
    PendingRequest& front = queue_.front();
    if (!front.request.deadline.has_value() ||
        *front.request.deadline >= now)
      return;
    PendingRequest expired = pop_front_locked();
    ++shed_;
    fail(expired,
         std::make_exception_ptr(AdmissionError(
             AdmissionReason::kDeadlineExceeded,
             "request deadline lapsed while queued (shed, not executed)")));
  }
}

PendingRequest DynamicBatcher::pop_front_locked() {
  VENOM_DCHECK(!queue_.empty());
  PendingRequest req = std::move(queue_.front());
  queue_.pop_front();
  queued_tokens_ -= std::min(queued_tokens_, req.tokens());
  return req;
}

bool DynamicBatcher::next_batch(std::vector<PendingRequest>& out) {
  out.clear();
  MutexLock lock(mutex_);

  // Seed the batch: wait (on the cv, mutex released) for work or close.
  for (;;) {
    while (!closed_ && queue_.empty()) cv_.wait(lock);
    shed_expired_locked(Clock::now());
    if (!queue_.empty()) break;
    if (closed_) return false;  // closed and drained
  }
  PendingRequest first = pop_front_locked();
  std::size_t tokens = first.tokens();
  bool has_urgent = first.urgent();
  out.push_back(std::move(first));

  // Continuous top-up: keep admitting queued AND newly arriving requests
  // into the forming batch until the budget or the flush timer hits. The
  // deadline is absolute from the moment the batch opened, so a trickle
  // of small requests cannot stall the first one indefinitely.
  const auto flush_at = Clock::now() + policy_.max_wait;
  while (out.size() < policy_.max_batch_requests &&
         tokens < policy_.max_batch_tokens) {
    shed_expired_locked(Clock::now());
    if (queue_.empty()) {
      if (closed_) break;  // no more arrivals, ever
      if (has_urgent) break;  // decode steps don't wait out the timer
      if (cv_.wait_until(lock, flush_at) == std::cv_status::timeout)
        break;  // flush: the timer expired
      continue;  // woken by a submit or close — re-examine the queue
    }
    if (tokens + queue_.front().tokens() > policy_.max_batch_tokens)
      break;  // never split a request; it stays at the head
    PendingRequest next = pop_front_locked();
    tokens += next.tokens();
    has_urgent = has_urgent || next.urgent();
    out.push_back(std::move(next));
  }
  return true;
}

std::size_t DynamicBatcher::queued() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t DynamicBatcher::queued_tokens() const {
  MutexLock lock(mutex_);
  return queued_tokens_;
}

std::size_t DynamicBatcher::shed() const {
  MutexLock lock(mutex_);
  return shed_;
}

}  // namespace venom::serving
