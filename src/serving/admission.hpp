// Per-tenant admission control for the scaled serving layer.
//
// A production front end sheds load it cannot serve instead of queueing
// it forever: an unbounded queue under overload means every request
// eventually times out (congestion collapse), while a bounded queue with
// explicit rejection keeps the admitted requests' latency bounded. The
// AdmissionController enforces two limits at submit time:
//
//   * per-tenant token buckets — each tenant accrues `tokens_per_s`
//     admission tokens up to a `burst_tokens` cap, and a request costs
//     its sequence length; a tenant over budget is rejected with
//     AdmissionError(kRateLimited) without touching other tenants,
//   * a global in-flight bound — tokens/requests admitted but not yet
//     completed; overflow is rejected with AdmissionError(kQueueFull).
//
// Rejection is always a typed exception thrown from submit() — never a
// silently dropped future and never an unbounded blocking wait.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "serving/request.hpp"

namespace venom::serving {

/// Why a request was refused or shed.
enum class AdmissionReason {
  kRateLimited,       ///< the tenant's token bucket is empty
  kQueueFull,         ///< the global in-flight bound is reached
  kDeadlineExceeded,  ///< still queued past the request's deadline
  kShutdown,          ///< the engine/group no longer accepts work
};

const char* to_string(AdmissionReason reason);

/// Typed rejection: thrown by submit() for shed load (and delivered
/// through the future for deadline sheds). Catch venom::Error to treat
/// all failures alike, or AdmissionError to branch on the reason.
class AdmissionError : public Error {
 public:
  AdmissionError(AdmissionReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  AdmissionReason reason() const { return reason_; }

 private:
  AdmissionReason reason_;
};

/// One tenant's token bucket: `tokens_per_s` sustained admission rate
/// with bursts up to `burst_tokens`. A zero rate means unlimited.
struct TenantPolicy {
  double tokens_per_s = 0.0;
  double burst_tokens = 0.0;
};

/// Admission knobs for an engine group.
struct AdmissionPolicy {
  /// Applied to tenants without an explicit entry (unlimited by default).
  TenantPolicy default_limit;
  /// Per-tenant overrides, keyed by Request::tenant.
  std::map<std::string, TenantPolicy> tenants{};
  /// Global bound on admitted-but-uncompleted tokens (0 = unbounded).
  std::size_t max_queued_tokens = 4096;
  /// Global bound on admitted-but-uncompleted requests (0 = unbounded).
  std::size_t max_queued_requests = 1024;

  const TenantPolicy& limit_for(const std::string& tenant) const {
    const auto it = tenants.find(tenant);
    return it != tenants.end() ? it->second : default_limit;
  }
};

/// Monotonic admission counters plus the live in-flight gauges.
struct AdmissionStats {
  std::size_t admitted = 0;
  std::size_t rejected_rate = 0;   ///< kRateLimited rejections
  std::size_t rejected_queue = 0;  ///< kQueueFull rejections
  std::size_t inflight_tokens = 0;
  std::size_t inflight_requests = 0;
};

/// Thread-safe admission gate: token buckets per tenant plus the global
/// in-flight budget. admit() throws AdmissionError on rejection; every
/// admitted request must be balanced by exactly one release() when it
/// leaves the system (the router wires this through PendingRequest's
/// on_done hook, so sheds and failures release too).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy);

  /// Charges `tokens` against the tenant's bucket and the global bound.
  /// Throws AdmissionError (kRateLimited / kQueueFull) on rejection — in
  /// which case nothing was charged.
  void admit(const std::string& tenant, std::size_t tokens)
      VENOM_EXCLUDES(mutex_);

  /// Returns one admitted request's tokens to the global budget. Called
  /// from request-completion hooks, which may fire under a batcher or
  /// engine lock — this lock is a leaf: release() touches nothing but
  /// its own state, so the ordering can never cycle.
  void release(std::size_t tokens) VENOM_EXCLUDES(mutex_);

  AdmissionStats stats() const VENOM_EXCLUDES(mutex_);
  const AdmissionPolicy& policy() const { return policy_; }

  /// The controller's lock, exposed for annotation only (EngineGroup
  /// names it in EXCLUDES contracts). Never lock it directly.
  Mutex& mu() const VENOM_RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  struct Bucket {
    double level = 0.0;
    Clock::time_point last{};
  };

  /// Immutable after construction — readable without the lock.
  AdmissionPolicy policy_;
  mutable Mutex mutex_;
  std::map<std::string, Bucket> buckets_ VENOM_GUARDED_BY(mutex_);
  std::size_t inflight_tokens_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t inflight_requests_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t admitted_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_rate_ VENOM_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_queue_ VENOM_GUARDED_BY(mutex_) = 0;
};

}  // namespace venom::serving
