// Batched sparse-transformer inference engine — one replica of the
// serving layer (EngineGroup in router.hpp scales it horizontally).
//
// An InferenceEngine serves concurrent submit() calls over one (typically
// V:N:M-pruned) encoder through a dynamic batcher: queued sequences are
// packed along the token axis into one forward_batched() pass per batch,
// so every sparse weight is streamed once per batch instead of once per
// request (the weight-stationary reuse that makes batching pay), while
// attention stays confined to each request's span — per-request outputs
// are bit-identical to unbatched forward() calls.
//
// The encoder is held as shared_ptr<const>: an EngineGroup builds N
// engines over ONE encoder, so replicating the serving capacity does not
// replicate a single weight byte. Each engine owns a private
// ops::ExecContext (thread pool handle, PlanCache with tuned SpmmConfig
// selection and warm packed-panel scratch, tuning cache) passed per
// forward call — the const-shared forward path added in this PR — so
// replicas never contend on one plan cache.
//
// Steady-state hot path: each worker owns a ScratchArena (segment
// tables) and a reusable staging matrix whose buffers settle at their
// high-water size, so after warmup the batching layer performs no
// allocation beyond the per-request output matrices it hands back.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "ops/context.hpp"
#include "serving/batcher.hpp"
#include "serving/options.hpp"
#include "serving/request.hpp"
#include "tensor/matrix.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

/// Monotonic serving counters plus latency percentiles over the window.
struct ServingStats {
  std::size_t requests = 0;  ///< completed requests
  std::size_t batches = 0;   ///< executed forward passes
  std::size_t tokens = 0;    ///< tokens pushed through the encoder
  std::size_t shed = 0;      ///< requests shed for a lapsed deadline
  double avg_batch_tokens = 0.0;
  double p50_ms = 0.0;  ///< submit-to-completion, over the window
  double p99_ms = 0.0;
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  std::size_t peak_arena_bytes = 0;  ///< largest per-batch arena cycle
  transformer::TimingBreakdown timing;  ///< aggregated over all batches
};

/// Thread-safe batched inference front end over one pruned encoder.
class InferenceEngine {
 public:
  /// Takes ownership of the encoder (prune/sparsify it before handing it
  /// over). Workers start immediately. Throws venom::Error on invalid
  /// options (Options::validate).
  explicit InferenceEngine(transformer::Encoder encoder, Options opts = {});

  /// Shares a read-only encoder — the replicated-serving constructor. N
  /// engines over one shared_ptr serve from the same weights while each
  /// dispatches through its private ExecContext. `replica_id` is echoed
  /// in every Response this engine delivers.
  InferenceEngine(std::shared_ptr<const transformer::Encoder> encoder,
                  Options opts = {}, std::uint32_t replica_id = 0);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Queues one request and returns the future of its Response. Throws
  /// venom::Error on a shape mismatch and AdmissionError(kShutdown) once
  /// shut down. `on_done` (optional — the router's hook) fires exactly
  /// once when the request leaves the system: delivered, failed, or
  /// shed. Safe from any thread.
  std::future<Response> submit(Request req,
                               std::function<void()> on_done = {});

  /// Pre-PR-7 surface: bare matrix in, bare matrix out. One-line shim
  /// over the Request/Response API (default tenant, no deadline; the
  /// returned future is deferred — its get() unwraps Response::output).
  [[deprecated("use submit(serving::Request) -> future<serving::Response>")]]
  std::future<HalfMatrix> submit(HalfMatrix input);

  /// Stops accepting requests, lets the workers drain everything already
  /// queued, and joins them. Idempotent; the destructor calls it.
  void shutdown();

  ServingStats stats() const;

  /// Zeroes the serving counters, latency window, and timing aggregate —
  /// e.g. after a warmup phase, so percentiles reflect steady state. The
  /// plan cache (and its cumulative hit/miss counters) is deliberately
  /// kept: discarding it would un-warm exactly what warmup warmed.
  void reset_stats();

  /// Tokens admitted but not yet completed — the router's routing key
  /// (least-queued-tokens). Lock-free.
  std::size_t load_tokens() const {
    return load_tokens_.load(std::memory_order_relaxed);
  }
  std::uint32_t replica_id() const { return replica_id_; }

  const transformer::Encoder& encoder() const { return *encoder_; }
  const Options& options() const { return opts_; }

  /// The engine's execution context (pool, plan cache, tuning cache,
  /// kernel scratch) — every forward dispatches through it. Exposed for
  /// diagnostics; safe to share with other dispatch work.
  ops::ExecContext& context() { return ctx_; }
  const ops::ExecContext& context() const { return ctx_; }

 private:
  /// Per-worker reusable buffers (never shared, so unsynchronized).
  struct WorkerState {
    ScratchArena arena;
    HalfMatrix staging;  ///< packed batch input, capacity retained
  };

  void worker_loop();
  void process_batch(std::vector<PendingRequest>& batch, WorkerState& ws);
  void record_batch(const std::vector<PendingRequest>& batch,
                    std::size_t batch_tokens,
                    const transformer::TimingBreakdown& timing,
                    Clock::time_point done, const WorkerState& ws);

  std::shared_ptr<const transformer::Encoder> encoder_;
  Options opts_;
  std::uint32_t replica_id_ = 0;
  ops::ExecContext ctx_;
  DynamicBatcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> load_tokens_{0};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mutex_;
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  std::size_t tokens_ = 0;
  std::size_t peak_arena_bytes_ = 0;
  transformer::TimingBreakdown timing_;
  std::vector<double> latency_ms_;  ///< ring buffer of latency_window
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;
};

}  // namespace venom::serving
