// Batched sparse-transformer inference engine — one replica of the
// serving layer (EngineGroup in router.hpp scales it horizontally).
//
// An InferenceEngine serves concurrent submit() calls over one (typically
// V:N:M-pruned) encoder through a dynamic batcher: queued sequences are
// packed along the token axis into one forward_batched() pass per batch,
// so every sparse weight is streamed once per batch instead of once per
// request (the weight-stationary reuse that makes batching pay), while
// attention stays confined to each request's span — per-request outputs
// are bit-identical to unbatched forward() calls.
//
// The encoder is held as shared_ptr<const>: an EngineGroup builds N
// engines over ONE encoder, so replicating the serving capacity does not
// replicate a single weight byte. Each engine owns a private
// ops::ExecContext (thread pool handle, PlanCache with tuned SpmmConfig
// selection and warm packed-panel scratch, tuning cache) passed per
// forward call — the const-shared forward path added in this PR — so
// replicas never contend on one plan cache.
//
// Steady-state hot path: each worker owns a ScratchArena (segment
// tables) and a reusable staging matrix whose buffers settle at their
// high-water size, so after warmup the batching layer performs no
// allocation beyond the per-request output matrices it hands back.
//
// Generation (Request::max_new_tokens > 0): the engine owns a GenSession
// per live request — a KV ring (kv_cache.hpp) plus the feedback buffer —
// and cycles the request through the shared queue one phase step at a
// time: prompt chunks (throughput work), then 1-token decode steps that
// the batcher ranks ahead of prefill and flushes without waiting on the
// timer (latency work). Both phases run Encoder::forward_cached, so a
// generation batch mixes prefill chunks and decode steps of different
// sessions in one pass, and the outputs stay bit-identical to a full
// causal forward over each accumulated sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/mutex.hpp"
#include "ops/context.hpp"
#include "serving/batcher.hpp"
#include "serving/options.hpp"
#include "serving/request.hpp"
#include "tensor/matrix.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

/// Monotonic serving counters plus latency percentiles over the window.
struct ServingStats {
  std::size_t requests = 0;  ///< completed requests
  std::size_t batches = 0;   ///< executed forward passes
  std::size_t tokens = 0;    ///< tokens pushed through the encoder
  std::size_t shed = 0;      ///< requests shed for a lapsed deadline
  double avg_batch_tokens = 0.0;
  double p50_ms = 0.0;  ///< submit-to-completion, over the window
  double p99_ms = 0.0;
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  std::size_t peak_arena_bytes = 0;  ///< largest per-batch arena cycle
  transformer::TimingBreakdown timing;  ///< aggregated over all batches
  // Generation traffic (zero on encode-only workloads).
  std::size_t prefill_tokens = 0;  ///< prompt tokens run through prefill
  std::size_t decode_steps = 0;    ///< single-token decode passes
  double decode_p50_ms = 0.0;  ///< per-step queue+exec, over the window
  double decode_p99_ms = 0.0;
};

/// Engine-owned per-sequence generation state. Lives on the replica that
/// admitted the request (sessions are sticky — the KV ring is here), and
/// travels through the queue inside the request's PendingRequest.
struct GenSession {
  transformer::KvCache cache;
  /// (hidden x 1) feedback buffer: the newest output column, which the
  /// on_token hook may rewrite into the next decode input.
  HalfMatrix next_input;
  /// (hidden x max_new_tokens) decode outputs, filled left to right.
  HalfMatrix generated;
  std::size_t tokens_generated = 0;
  std::size_t prompt_tokens = 0;
  double prefill_ms = 0.0;  ///< forward time over the prompt chunks
  double decode_ms = 0.0;   ///< forward time over the decode steps
  Clock::time_point submitted{};
  double queue_ms = 0.0;  ///< submit -> first forward (set once)
  bool started = false;
};

/// Thread-safe batched inference front end over one pruned encoder.
class InferenceEngine {
 public:
  /// Takes ownership of the encoder (prune/sparsify it before handing it
  /// over). Workers start immediately. Throws venom::Error on invalid
  /// options (Options::validate).
  explicit InferenceEngine(transformer::Encoder encoder, Options opts = {});

  /// Shares a read-only encoder — the replicated-serving constructor. N
  /// engines over one shared_ptr serve from the same weights while each
  /// dispatches through its private ExecContext. `replica_id` is echoed
  /// in every Response this engine delivers.
  InferenceEngine(std::shared_ptr<const transformer::Encoder> encoder,
                  Options opts = {}, std::uint32_t replica_id = 0);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Queues one request and returns the future of its Response. Throws
  /// venom::Error on a shape mismatch and AdmissionError(kShutdown) once
  /// shut down. `on_done` (optional — the router's hook) fires exactly
  /// once when the request leaves the system: delivered, failed, or
  /// shed. Safe from any thread.
  std::future<Response> submit(Request req,
                               std::function<void()> on_done = {});

  /// Stops accepting requests, lets the workers drain everything already
  /// queued — including in-flight generation sessions, which run to
  /// completion (bounded by max_new_tokens) — and joins them.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServingStats stats() const VENOM_EXCLUDES(stats_mutex_);

  /// Zeroes the serving counters, latency window, and timing aggregate —
  /// e.g. after a warmup phase, so percentiles reflect steady state. The
  /// plan cache (and its cumulative hit/miss counters) is deliberately
  /// kept: discarding it would un-warm exactly what warmup warmed.
  void reset_stats() VENOM_EXCLUDES(stats_mutex_);

  /// Tokens admitted but not yet completed — the router's routing key
  /// (least-queued-tokens). Lock-free.
  std::size_t load_tokens() const {
    return load_tokens_.load(std::memory_order_relaxed);
  }
  std::uint32_t replica_id() const { return replica_id_; }

  const transformer::Encoder& encoder() const { return *encoder_; }
  const Options& options() const { return opts_; }

  /// The engine's execution context (pool, plan cache, tuning cache,
  /// kernel scratch) — every forward dispatches through it. Exposed for
  /// diagnostics; safe to share with other dispatch work.
  ops::ExecContext& context() { return ctx_; }
  const ops::ExecContext& context() const { return ctx_; }

 private:
  /// Per-worker reusable buffers (never shared, so unsynchronized).
  struct WorkerState {
    ScratchArena arena;
    HalfMatrix staging;      ///< packed encode batch, capacity retained
    HalfMatrix gen_staging;  ///< packed prefill/decode batch
  };

  // The worker paths run with no engine lock held: they take
  // stats_mutex_ only for the bounded stats update, and touch the
  // batcher only through its own-locked public surface — so "forward
  // passes never run under a lock" is a checked contract, not a comment.
  void worker_loop() VENOM_EXCLUDES(stats_mutex_);
  void process_batch(std::vector<PendingRequest>& batch, WorkerState& ws)
      VENOM_EXCLUDES(stats_mutex_);
  /// The classic single-shot path: one forward_batched over the span.
  void process_encode(std::span<PendingRequest> batch, WorkerState& ws)
      VENOM_EXCLUDES(stats_mutex_);
  /// The generation path: one forward_cached over the span's prefill
  /// chunks and decode steps, then per-item advance (requeue the next
  /// step, or deliver the finished session).
  void process_generation(std::span<PendingRequest> batch, WorkerState& ws)
      VENOM_EXCLUDES(stats_mutex_);
  void record_batch(std::span<const PendingRequest> batch,
                    std::size_t batch_tokens,
                    const transformer::TimingBreakdown& timing,
                    Clock::time_point done, const WorkerState& ws)
      VENOM_EXCLUDES(stats_mutex_);

  std::shared_ptr<const transformer::Encoder> encoder_;
  Options opts_;
  std::uint32_t replica_id_ = 0;
  ops::ExecContext ctx_;
  DynamicBatcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> load_tokens_{0};
  std::atomic<bool> shut_down_{false};

  // stats_mutex_ orders AFTER the batcher's lock is released: stats
  // updates never touch the batcher and the batcher never calls back
  // into the engine, so the two locks are never held together (each
  // surface EXCLUDES the other's lock by construction).
  mutable Mutex stats_mutex_;
  std::size_t requests_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t batches_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t tokens_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t prefill_tokens_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t decode_steps_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t peak_arena_bytes_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  transformer::TimingBreakdown timing_ VENOM_GUARDED_BY(stats_mutex_);
  /// Ring buffer of latency_window samples.
  std::vector<double> latency_ms_ VENOM_GUARDED_BY(stats_mutex_);
  std::size_t latency_next_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t latency_count_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  /// Per-decode-step latency ring.
  std::vector<double> decode_ms_ VENOM_GUARDED_BY(stats_mutex_);
  std::size_t decode_next_ VENOM_GUARDED_BY(stats_mutex_) = 0;
  std::size_t decode_count_ VENOM_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace venom::serving
