// Batched sparse-transformer inference engine — the serving layer the
// ROADMAP's "heavy traffic" north star asks for.
//
// An InferenceEngine owns a (typically V:N:M-pruned) Encoder and serves
// concurrent submit() calls through a dynamic batcher: queued sequences
// are packed along the token axis into one forward_batched() pass per
// batch, so every sparse weight is streamed once per batch instead of
// once per request (the weight-stationary reuse that makes batching pay),
// while attention stays confined to each request's span — per-request
// outputs are bit-identical to unbatched forward() calls.
//
// Steady-state hot path:
//   * the engine owns an ops::ExecContext — the thread pool, the
//     PlanCache reusing kernel plans (tuned SpmmConfig selection,
//     compressed-operand bookkeeping) and their scratch pools (packed
//     fp16->float B panels), and the tuning cache — that every layer of
//     the encoder dispatches through,
//   * each worker owns a ScratchArena (segment tables) and a reusable
//     staging matrix whose buffers settle at their high-water size,
// so after warmup the engine's batching layer performs no allocation
// beyond the per-request output matrices it hands back to callers.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "ops/context.hpp"
#include "serving/batcher.hpp"
#include "tensor/matrix.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {

/// Engine construction knobs.
struct ServingConfig {
  BatchPolicy batching;
  /// Batch-execution workers. One worker already parallelizes inside the
  /// kernels via the shared ThreadPool; extra workers overlap batch
  /// assembly/split with compute at the cost of pool contention.
  std::size_t workers = 1;
  std::size_t plan_cache_capacity = 64;
  /// Latency samples retained for the p50/p99 estimate (ring buffer).
  std::size_t latency_window = 4096;
};

/// Monotonic serving counters plus latency percentiles over the window.
struct ServingStats {
  std::size_t requests = 0;  ///< completed requests
  std::size_t batches = 0;   ///< executed forward passes
  std::size_t tokens = 0;    ///< tokens pushed through the encoder
  double avg_batch_tokens = 0.0;
  double p50_ms = 0.0;  ///< submit-to-completion, over the window
  double p99_ms = 0.0;
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  std::size_t peak_arena_bytes = 0;  ///< largest per-batch arena cycle
  transformer::TimingBreakdown timing;  ///< aggregated over all batches
};

/// Thread-safe batched inference front end over one pruned encoder.
class InferenceEngine {
 public:
  /// Takes ownership of the encoder (prune/sparsify it before handing it
  /// over). Workers start immediately.
  explicit InferenceEngine(transformer::Encoder encoder,
                           ServingConfig cfg = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Queues one sequence (hidden x tokens) and returns the future of its
  /// encoder output (same shape). Throws venom::Error on a shape mismatch
  /// or when the engine is shut down. Safe from any thread.
  std::future<HalfMatrix> submit(HalfMatrix input);

  /// Stops accepting requests, lets the workers drain everything already
  /// queued, and joins them. Idempotent; the destructor calls it.
  void shutdown();

  ServingStats stats() const;

  /// Zeroes the serving counters, latency window, and timing aggregate —
  /// e.g. after a warmup phase, so percentiles reflect steady state. The
  /// plan cache (and its cumulative hit/miss counters) is deliberately
  /// kept: discarding it would un-warm exactly what warmup warmed.
  void reset_stats();

  const transformer::Encoder& encoder() const { return encoder_; }
  const ServingConfig& config() const { return cfg_; }

  /// The engine's execution context (pool, plan cache, tuning cache,
  /// kernel scratch) — every encoder layer dispatches through it.
  /// Exposed for diagnostics; safe to share with other dispatch work.
  ops::ExecContext& context() { return ctx_; }
  const ops::ExecContext& context() const { return ctx_; }

 private:
  /// Per-worker reusable buffers (never shared, so unsynchronized).
  struct WorkerState {
    ScratchArena arena;
    HalfMatrix staging;  ///< packed batch input, capacity retained
  };

  void worker_loop();
  void process_batch(std::vector<PendingRequest>& batch, WorkerState& ws);
  void record_batch(const std::vector<PendingRequest>& batch,
                    std::size_t batch_tokens,
                    const transformer::TimingBreakdown& timing,
                    std::chrono::steady_clock::time_point done,
                    const WorkerState& ws);

  transformer::Encoder encoder_;
  ServingConfig cfg_;
  ops::ExecContext ctx_;
  DynamicBatcher batcher_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mutex_;
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  std::size_t tokens_ = 0;
  std::size_t peak_arena_bytes_ = 0;
  transformer::TimingBreakdown timing_;
  std::vector<double> latency_ms_;  ///< ring buffer of latency_window
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;
};

}  // namespace venom::serving
