#include "sptc/u4.hpp"

#include "common/error.hpp"
#include "sptc/metadata.hpp"
#include "sptc/shapes.hpp"

namespace venom::sptc {

std::vector<std::uint8_t> pack_u4(std::span<const std::uint8_t> values) {
  std::vector<std::uint8_t> packed((values.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    VENOM_CHECK_MSG(values[i] < 16,
                    "u4 value " << int(values[i]) << " exceeds 4 bits");
    packed[i / 2] |= static_cast<std::uint8_t>(
        (i % 2 == 0) ? values[i] : (values[i] << 4));
  }
  return packed;
}

std::vector<std::uint8_t> unpack_u4(std::span<const std::uint8_t> packed,
                                    std::size_t count) {
  VENOM_CHECK(count <= packed.size() * 2);
  std::vector<std::uint8_t> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = u4_at(packed, i);
  return values;
}

void mma_sp_u4(std::size_t k, std::span<const std::uint8_t> a_comp,
               std::span<const std::uint32_t> metadata,
               std::span<const std::uint8_t> b, std::span<std::int32_t> c) {
  VENOM_CHECK_MSG(is_supported(Precision::kUint4, k),
                  "mma.sp u4 does not support k=" << k);
  const std::size_t kc = k / 2;  // compressed row length
  VENOM_CHECK_MSG(a_comp.size() == (16 * kc + 1) / 2,
                  "A tile packed size " << a_comp.size());
  VENOM_CHECK_MSG(b.size() == (k * 8 + 1) / 2, "B tile packed size "
                                                   << b.size());
  VENOM_CHECK_MSG(c.size() == 16 * 8, "C tile size " << c.size());
  VENOM_CHECK(metadata.size() * kIndicesPerWord >= 16 * kc);

  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < kc; ++j) {
      const std::int32_t a = u4_at(a_comp, i * kc + j);
      const std::uint8_t sel = metadata_at(metadata, i * kc + j);
      const std::size_t col = (j / 2) * 4 + sel;
      for (std::size_t n = 0; n < 8; ++n)
        c[i * 8 + n] += a * std::int32_t(u4_at(b, col * 8 + n));
    }
  }
}

}  // namespace venom::sptc
