#include "sptc/metadata.hpp"

namespace venom::sptc {

std::vector<std::uint32_t> pack_metadata(
    std::span<const std::uint8_t> indices) {
  std::vector<std::uint32_t> words((indices.size() + kIndicesPerWord - 1) /
                                   kIndicesPerWord);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    VENOM_CHECK_MSG(indices[i] < 4,
                    "metadata index " << int(indices[i]) << " exceeds 2 bits");
    words[i / kIndicesPerWord] |= static_cast<std::uint32_t>(indices[i])
                                  << (2 * (i % kIndicesPerWord));
  }
  return words;
}

std::vector<std::uint8_t> unpack_metadata(
    std::span<const std::uint32_t> words, std::size_t count) {
  VENOM_CHECK(count <= words.size() * kIndicesPerWord);
  std::vector<std::uint8_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) indices[i] = metadata_at(words, i);
  return indices;
}

}  // namespace venom::sptc
