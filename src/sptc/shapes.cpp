#include "sptc/shapes.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace venom::sptc {

std::string to_string(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp16:
      return "half";
    case Precision::kUint8:
      return "uint8";
    case Precision::kUint4:
      return "uint4";
  }
  return "?";
}

std::string MmaShape::name(std::size_t k) const {
  return "m" + std::to_string(m) + "n" + std::to_string(n) + "k" +
         std::to_string(k);
}

std::span<const MmaShape> mma_shape_table() {
  // Table 1 of the paper (Ampere mma.sp).
  static const std::vector<MmaShape> table = {
      {Precision::kFp32, 1, 2, 16, 8, {8, 16}},
      {Precision::kFp16, 2, 4, 16, 8, {16, 32}},
      {Precision::kUint8, 2, 4, 16, 8, {32, 64}},
      {Precision::kUint4, 2, 4, 16, 8, {64, 128}},
  };
  return table;
}

const MmaShape& shape_for(Precision p) {
  for (const auto& s : mma_shape_table())
    if (s.precision == p) return s;
  throw Error("no mma.sp shape for precision " + to_string(p));
}

bool is_supported(Precision p, std::size_t k) {
  for (const auto& s : mma_shape_table()) {
    if (s.precision != p) continue;
    return std::find(s.supported_k.begin(), s.supported_k.end(), k) !=
           s.supported_k.end();
  }
  return false;
}

}  // namespace venom::sptc
