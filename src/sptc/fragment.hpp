// Register-fragment layouts for Tensor Core MMA (paper Fig. 6).
//
// A warp of 32 threads collectively holds each MMA operand tile in
// registers. These functions give the (row, col) tile coordinate owned by
// a given (thread, register slot) pair for the m16n8k16 dense and
// m16n8k32 sparse fp16 shapes. The SpMM kernel uses them to stage data in
// the Fig. 7 storage order, and the tests verify the layouts partition the
// tile exactly (every element owned by exactly one slot, 128-bit
// contiguity of per-thread pairs, and coalesced quarter-warp rows).
#pragma once

#include <cstddef>

namespace venom::sptc {

/// A coordinate within an operand tile.
struct TileCoord {
  std::size_t row;
  std::size_t col;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

// ---- m16n8k16 dense fp16 (HMMA) -----------------------------------------

/// A operand (16x16), 8 fp16 registers per thread (a0..a7).
TileCoord a_fragment_m16n8k16(std::size_t thread, std::size_t reg);

/// B operand (16x8), 4 fp16 registers per thread (b0..b3).
TileCoord b_fragment_m16n8k16(std::size_t thread, std::size_t reg);

/// C/D accumulator (16x8), 4 fp32 registers per thread (c0..c3).
TileCoord c_fragment_m16n8(std::size_t thread, std::size_t reg);

// ---- m16n8k32 sparse fp16 (mma.sp) ---------------------------------------

/// Compressed A operand (16 x 16 = 16 x 32/2), 8 fp16 registers per thread.
/// Same distribution as the dense 16x16 A tile (Fig. 6, step 2.2).
TileCoord a_fragment_m16n8k32_sp(std::size_t thread, std::size_t reg);

/// B operand (32x8), 8 fp16 registers per thread (Fig. 6, step 2.3).
TileCoord b_fragment_m16n8k32_sp(std::size_t thread, std::size_t reg);

/// Which thread carries the packed metadata word covering compressed row
/// `row` of the sparse A tile (threads 0,4,...,28 each carry two rows'
/// 2-bit indices in one 32-bit register).
std::size_t metadata_owner_m16n8k32_sp(std::size_t row);

}  // namespace venom::sptc
