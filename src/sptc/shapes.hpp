// Table 1: instruction shapes supported by mma.sp on Sparse Tensor Cores.
//
// M and N are fixed at 16 and 8; K varies with precision. The registry is
// used by the kernel dispatcher to validate tile configurations and by the
// bench_table1_shapes binary to regenerate the table.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace venom::sptc {

/// Operand precision of an mma.sp variant.
enum class Precision : std::uint8_t { kFp32, kFp16, kUint8, kUint4 };

std::string to_string(Precision p);

/// One row of Table 1: a supported mma.sp instruction shape family.
struct MmaShape {
  Precision precision;
  std::size_t pattern_n;  ///< N of the hardware N:M pattern (1 or 2).
  std::size_t pattern_m;  ///< M of the hardware N:M pattern (2 or 4).
  std::size_t m = 16;     ///< Fixed output rows.
  std::size_t n = 8;      ///< Fixed output cols.
  std::vector<std::size_t> supported_k;  ///< Sparsified K dimensions.

  /// PTX-style name, e.g. "m16n8k32".
  std::string name(std::size_t k) const;
};

/// The full Table-1 registry.
std::span<const MmaShape> mma_shape_table();

/// Looks up the entry for a precision; throws if absent.
const MmaShape& shape_for(Precision p);

/// True if (precision, k) is a legal mma.sp configuration.
bool is_supported(Precision p, std::size_t k);

}  // namespace venom::sptc
