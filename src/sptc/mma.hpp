// Functional simulator of Tensor Core MMA instructions.
//
// Two operations are modelled at tile level:
//   mma        — dense  D = A(16xK) * B(Kx8) + C           (HMMA)
//   mma_sp     — sparse D = select(A_comp, meta) * B + C   (Fig. 1 right)
//
// mma_sp takes the compressed LHS (16 x K/2 fp16 for the 2:4 pattern) and
// packed 2-bit metadata; the simulator performs exactly the hardware's
// metadata-driven mux of B rows. Numerics follow the hardware: fp16
// products accumulated in fp32.
//
// The simulator is deliberately layout-agnostic at this level (row-major
// tiles); the per-thread register distribution of Fig. 6 is modelled in
// fragment.hpp and exercised by its own tests.
#pragma once

#include <cstdint>
#include <span>

#include "common/half.hpp"
#include "sptc/shapes.hpp"

namespace venom::sptc {

/// Dense HMMA: C(16x8, fp32) += A(16xk, fp16) * B(kx8, fp16).
/// k must be 8 or 16 (the dense m16n8k8 / m16n8k16 shapes).
/// All tiles row-major: A[i*k+j], B[j*8+c], C[i*8+c].
void mma_dense_fp16(std::size_t k, std::span<const half_t> a,
                    std::span<const half_t> b, std::span<float> c);

/// Sparse HMMA (mma.sp) with the 2:4 pattern:
///   C(16x8, fp32) += select(A_comp, metadata) (16xk) * B(kx8).
/// k in {16, 32} per Table 1. A_comp is 16 x k/2 row-major; metadata holds
/// one packed 2-bit selector per compressed element, row-major (16*k/2
/// indices; index j of row i selects the column (j/2)*4 + meta within the
/// logical 16xk tile). B is k x 8 row-major, C 16 x 8.
void mma_sp_fp16(std::size_t k, std::span<const half_t> a_comp,
                 std::span<const std::uint32_t> metadata,
                 std::span<const half_t> b, std::span<float> c);

/// fp32 variant of mma.sp with the 1:2 pattern (Table 1, first row):
/// A_comp is 16 x k/2 fp32; each compressed element selects one of 2
/// columns per group (metadata still 2-bit, value in {0,1}).
void mma_sp_fp32(std::size_t k, std::span<const float> a_comp,
                 std::span<const std::uint32_t> metadata,
                 std::span<const float> b, std::span<float> c);

/// Integer variant (uint8, 2:4, k in {32, 64}); accumulates in int32.
void mma_sp_u8(std::size_t k, std::span<const std::uint8_t> a_comp,
               std::span<const std::uint32_t> metadata,
               std::span<const std::uint8_t> b, std::span<std::int32_t> c);

}  // namespace venom::sptc
