#include "sptc/fragment.hpp"

#include "common/error.hpp"

namespace venom::sptc {

namespace {

void check(std::size_t thread, std::size_t reg, std::size_t regs) {
  VENOM_CHECK_MSG(thread < 32, "thread " << thread << " out of warp");
  VENOM_CHECK_MSG(reg < regs, "register " << reg << " out of " << regs);
}

}  // namespace

TileCoord a_fragment_m16n8k16(std::size_t thread, std::size_t reg) {
  check(thread, reg, 8);
  const std::size_t group = thread / 4;   // 0..7
  const std::size_t lane = thread % 4;    // 0..3
  // Registers pair into 32-bit halves-of-halves: {a0,a1},{a2,a3},... Each
  // pair is two adjacent columns; pairs alternate between row `group` and
  // row `group+8`, and the upper half of K (cols 8..15) for regs 4..7.
  const std::size_t row = group + (reg % 4 >= 2 ? 8 : 0);
  const std::size_t col = lane * 2 + (reg % 2) + (reg >= 4 ? 8 : 0);
  return {row, col};
}

TileCoord b_fragment_m16n8k16(std::size_t thread, std::size_t reg) {
  check(thread, reg, 4);
  const std::size_t group = thread / 4;
  const std::size_t lane = thread % 4;
  const std::size_t row = lane * 2 + (reg % 2) + (reg >= 2 ? 8 : 0);
  return {row, group};
}

TileCoord c_fragment_m16n8(std::size_t thread, std::size_t reg) {
  check(thread, reg, 4);
  const std::size_t group = thread / 4;
  const std::size_t lane = thread % 4;
  const std::size_t row = group + (reg >= 2 ? 8 : 0);
  const std::size_t col = lane * 2 + (reg % 2);
  return {row, col};
}

TileCoord a_fragment_m16n8k32_sp(std::size_t thread, std::size_t reg) {
  // The compressed sparse A tile is 16 x 16 (K/2 columns kept), with the
  // same per-thread distribution as the dense 16x16 tile.
  return a_fragment_m16n8k16(thread, reg);
}

TileCoord b_fragment_m16n8k32_sp(std::size_t thread, std::size_t reg) {
  check(thread, reg, 8);
  const std::size_t group = thread / 4;
  const std::size_t lane = thread % 4;
  // 32 rows of B: four 8-row segments; each thread holds two adjacent rows
  // per segment at column `group`.
  const std::size_t segment = reg / 2;  // 0..3
  const std::size_t row = segment * 8 + lane * 2 + (reg % 2);
  return {row, group};
}

std::size_t metadata_owner_m16n8k32_sp(std::size_t row) {
  VENOM_CHECK_MSG(row < 16, "sparse A row " << row << " out of tile");
  // Threads 0,4,8,...,28 carry metadata; thread 4*(row/2) covers rows
  // 2*(row/2) and 2*(row/2)+1 in one 32-bit word (16 2-bit selectors).
  return 4 * (row / 2);
}

}  // namespace venom::sptc
