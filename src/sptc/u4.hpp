// Packed 4-bit unsigned integer support for the uint4 mma.sp variant
// (Table 1, last row: 2:4 pattern, k64 / k128).
//
// Values are packed two per byte, low nibble first — the layout CUDA's
// u4 fragments use. The codec plus mma_sp_u4 complete the Table-1
// precision coverage of the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace venom::sptc {

/// Packs 4-bit values (each < 16) two per byte, low nibble first.
std::vector<std::uint8_t> pack_u4(std::span<const std::uint8_t> values);

/// Unpacks `count` 4-bit values.
std::vector<std::uint8_t> unpack_u4(std::span<const std::uint8_t> packed,
                                    std::size_t count);

/// Reads the i-th 4-bit value from a packed stream.
inline std::uint8_t u4_at(std::span<const std::uint8_t> packed,
                          std::size_t i) {
  const std::uint8_t byte = packed[i / 2];
  return (i % 2 == 0) ? (byte & 0x0fu) : (byte >> 4);
}

/// Sparse integer MMA on packed uint4 operands (2:4 pattern):
///   C(16x8, int32) += select(A_comp, metadata) (16xk) * B(kx8).
/// k in {64, 128}. a_comp holds 16 * k/2 packed u4 values; b holds k * 8.
/// Metadata is the same packed 2-bit stream as the fp16 variant.
void mma_sp_u4(std::size_t k, std::span<const std::uint8_t> a_comp,
               std::span<const std::uint32_t> metadata,
               std::span<const std::uint8_t> b, std::span<std::int32_t> c);

}  // namespace venom::sptc
