#include "sptc/mma.hpp"

#include <type_traits>

#include "common/error.hpp"
#include "sptc/metadata.hpp"

namespace venom::sptc {

namespace {

constexpr std::size_t kM = 16;
constexpr std::size_t kN = 8;

void check_dims(std::size_t k, std::size_t a_size, std::size_t b_size,
                std::size_t c_size, std::size_t compress_ratio) {
  VENOM_CHECK_MSG(a_size == kM * k / compress_ratio,
                  "A tile size " << a_size << " != " << kM * k / compress_ratio);
  VENOM_CHECK_MSG(b_size == k * kN, "B tile size " << b_size);
  VENOM_CHECK_MSG(c_size == kM * kN, "C tile size " << c_size);
}

/// Generic sparse MMA: `group` logical columns per group, `keep` kept.
template <typename In, typename Acc>
void mma_sp_generic(std::size_t k, std::span<const In> a_comp,
                    std::span<const std::uint32_t> metadata,
                    std::span<const In> b, std::span<Acc> c,
                    std::size_t group, std::size_t keep) {
  const std::size_t kc = k * keep / group;  // compressed row length
  VENOM_CHECK(metadata.size() * kIndicesPerWord >= kM * kc);
  for (std::size_t i = 0; i < kM; ++i) {
    for (std::size_t j = 0; j < kc; ++j) {
      const In a = a_comp[i * kc + j];
      const std::uint8_t sel = metadata_at(metadata, i * kc + j);
      VENOM_CHECK_MSG(sel < group, "metadata selector " << int(sel)
                                                        << " out of group "
                                                        << group);
      const std::size_t col = (j / keep) * group + sel;
      for (std::size_t n = 0; n < kN; ++n) {
        if constexpr (std::is_same_v<In, half_t>) {
          fma_fp16_fp32(c[i * kN + n], a, b[col * kN + n]);
        } else {
          c[i * kN + n] += static_cast<Acc>(a) *
                           static_cast<Acc>(b[col * kN + n]);
        }
      }
    }
  }
}

}  // namespace

void mma_dense_fp16(std::size_t k, std::span<const half_t> a,
                    std::span<const half_t> b, std::span<float> c) {
  VENOM_CHECK_MSG(k == 8 || k == 16, "dense HMMA k must be 8 or 16, got " << k);
  check_dims(k, a.size(), b.size(), c.size(), 1);
  for (std::size_t i = 0; i < kM; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      const half_t av = a[i * k + j];
      for (std::size_t n = 0; n < kN; ++n)
        fma_fp16_fp32(c[i * kN + n], av, b[j * kN + n]);
    }
}

void mma_sp_fp16(std::size_t k, std::span<const half_t> a_comp,
                 std::span<const std::uint32_t> metadata,
                 std::span<const half_t> b, std::span<float> c) {
  VENOM_CHECK_MSG(is_supported(Precision::kFp16, k),
                  "mma.sp fp16 does not support k=" << k);
  check_dims(k, a_comp.size(), b.size(), c.size(), 2);
  mma_sp_generic<half_t, float>(k, a_comp, metadata, b, c, /*group=*/4,
                                /*keep=*/2);
}

void mma_sp_fp32(std::size_t k, std::span<const float> a_comp,
                 std::span<const std::uint32_t> metadata,
                 std::span<const float> b, std::span<float> c) {
  VENOM_CHECK_MSG(is_supported(Precision::kFp32, k),
                  "mma.sp fp32 does not support k=" << k);
  check_dims(k, a_comp.size(), b.size(), c.size(), 2);
  mma_sp_generic<float, float>(k, a_comp, metadata, b, c, /*group=*/2,
                               /*keep=*/1);
}

void mma_sp_u8(std::size_t k, std::span<const std::uint8_t> a_comp,
               std::span<const std::uint32_t> metadata,
               std::span<const std::uint8_t> b, std::span<std::int32_t> c) {
  VENOM_CHECK_MSG(is_supported(Precision::kUint8, k),
                  "mma.sp u8 does not support k=" << k);
  check_dims(k, a_comp.size(), b.size(), c.size(), 2);
  mma_sp_generic<std::uint8_t, std::int32_t>(k, a_comp, metadata, b, c,
                                             /*group=*/4, /*keep=*/2);
}

}  // namespace venom::sptc
