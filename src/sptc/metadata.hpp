// Hardware metadata codec for Sparse Tensor Cores.
//
// mma.sp consumes the 2:4 selection pattern as packed 2-bit indices, 16
// indices per 32-bit word (Fig. 1's "metadata indices"). This module packs
// and unpacks those words from/to the uint8 index arrays used by NmMatrix
// and VnmMatrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace venom::sptc {

/// Number of 2-bit indices carried per 32-bit metadata word.
inline constexpr std::size_t kIndicesPerWord = 16;

/// Packs 2-bit indices (each in [0,4)) into 32-bit words, 16 per word,
/// little-end first. The tail word is zero-padded.
std::vector<std::uint32_t> pack_metadata(std::span<const std::uint8_t> indices);

/// Unpacks `count` 2-bit indices from packed words.
std::vector<std::uint8_t> unpack_metadata(
    std::span<const std::uint32_t> words, std::size_t count);

/// Extracts the i-th 2-bit index from a packed stream.
inline std::uint8_t metadata_at(std::span<const std::uint32_t> words,
                                std::size_t i) {
  return static_cast<std::uint8_t>(
      (words[i / kIndicesPerWord] >> (2 * (i % kIndicesPerWord))) & 0x3u);
}

}  // namespace venom::sptc
