// Second-order (OBS-style) pruning tailored to V:N:M (Section 6.1).
//
// For a removal set Q within a 1 x M group with inverse Fisher block
// F^-1, the loss increase after the optimal update of the surviving
// weights is the saliency
//
//   rho_Q = 1/2 * w_Q^T ( (F^-1)_QQ )^-1 w_Q                 [paper eq.]
//
// and the optimal update is  w <- w - F^-1[:,Q] ((F^-1)_QQ)^-1 w_Q.
//
// Two selection strategies are provided, mirroring the paper:
//   kCombinatorial — enumerate all C(M, N) kept sets and score each
//                    removal exactly (intractable for large M);
//   kPairwise      — iterative greedy OBS: repeatedly remove the single
//                    weight with the smallest marginal saliency, applying
//                    the rank-1 Fisher downdate after each removal. This
//                    captures pair correlations step by step (the paper's
//                    E_Q = [[1,0],[0,1],[1,1]] relaxation).
//   kAuto          — combinatorial when C(M, N) is small, else pairwise
//                    (the paper's dynamic selection).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "pruning/fisher.hpp"
#include "tensor/matrix.hpp"

namespace venom::pruning {

enum class SelectionMode { kCombinatorial, kPairwise, kAuto };

/// rho_Q for a group: w and finv are the M-vector and M x M inverse
/// Fisher; q lists the removed positions.
double obs_saliency(std::span<const double> w, std::span<const double> finv,
                    std::span<const std::size_t> q);

/// Applies the optimal OBS update for removal set q: surviving weights
/// are adjusted, removed ones zeroed.
void obs_update(std::span<double> w, std::span<const double> finv,
                std::span<const std::size_t> q);

/// Chooses the removal set leaving exactly `keep` survivors in the group,
/// optionally restricted so survivors lie within `allowed` positions
/// (empty = no restriction). Returns the removal set; `saliency_out`
/// (if non-null) receives the achieved rho_Q.
std::vector<std::size_t> select_removal(std::span<const double> w,
                                        std::span<const double> finv,
                                        std::size_t keep, SelectionMode mode,
                                        std::span<const std::size_t> allowed,
                                        double* saliency_out);

/// Result of a second-order pruning pass.
struct ObsResult {
  FloatMatrix weights;        ///< pruned + OBS-updated weights
  double loss_increase = 0.0; ///< sum of group saliencies (predicted dLoss)
};

/// Prunes to row-wise N:M with OBS selection and update.
ObsResult obs_prune_nm(const FloatMatrix& w, const GroupFisher& fisher,
                       NmPattern pattern, SelectionMode mode);

/// Prunes to V:N:M: per V x M block, selects the 4 columns with the
/// largest retained saliency (sum over rows of w_i^2 / (2 (F^-1)_ii));
/// then per row keeps the best N among them, with the full-group OBS
/// update (Section 6.1's row-decorrelated scheme).
ObsResult obs_prune_vnm(const FloatMatrix& w, const GroupFisher& fisher,
                        VnmConfig cfg, SelectionMode mode);

/// Prunes vertical length-l vectors by aggregate second-order saliency,
/// keeping the top (1 - sparsity) fraction; survivors get OBS updates.
ObsResult obs_prune_vector_wise(const FloatMatrix& w,
                                const GroupFisher& fisher,
                                std::size_t vec_len, double sparsity);

}  // namespace venom::pruning
