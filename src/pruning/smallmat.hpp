// Small dense linear algebra for OBS blocks.
//
// Second-order pruning inverts M x M Fisher blocks (M <= ~100) and
// |Q| x |Q| sub-blocks per candidate removal set. These routines are
// plain Gauss-Jordan with partial pivoting — sizes are tiny, so clarity
// beats blocking.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace venom::pruning {

/// In-place inverse of a row-major n x n matrix. Throws venom::Error if
/// (numerically) singular.
void invert_inplace(std::span<double> a, std::size_t n);

/// Returns the inverse of a row-major n x n matrix.
std::vector<double> inverted(std::span<const double> a, std::size_t n);

/// y = A x for row-major n x n A.
void matvec(std::span<const double> a, std::span<const double> x,
            std::span<double> y, std::size_t n);

/// x^T A x for row-major n x n A.
double quad_form(std::span<const double> a, std::span<const double> x,
                 std::size_t n);

/// Extracts the sub-matrix A[idx, idx] (row-major) from n x n A.
std::vector<double> submatrix(std::span<const double> a, std::size_t n,
                              std::span<const std::size_t> idx);

}  // namespace venom::pruning
