// Synthetic quadratic-loss models — the Table-2 substitution substrate.
//
// The paper measures SQuAD F1 after second-order pruning of BERT. We
// cannot fine-tune BERT here, but OBS saliency provably minimizes the
// loss increase of a *quadratic* objective; a quadratic model with a
// known block Hessian therefore exposes exactly the quantity the paper's
// pruning method optimizes, so the relative ordering of formats (1:N:M vs
// 64:N:M vs 128:N:M vs vw_8) transfers. See DESIGN.md §2.
//
//   loss(W) = 1/2 sum_groups (w_g - w*_g)^T H_g (w_g - w*_g)
//
// with per-(row, M-group) SPD Hessian blocks H_g of controllable
// correlation strength.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "pruning/fisher.hpp"
#include "tensor/matrix.hpp"

namespace venom::pruning {

/// Quadratic model with a block-diagonal Hessian over 1 x M row-groups.
class QuadraticModel {
 public:
  /// Synthesizes an R x K model. `correlation` in [0, 1] blends a random
  /// SPD block (correlated) against its diagonal (uncorrelated): higher
  /// values make second-order selection matter more vs magnitude.
  /// `outlier_fraction` > 0 gives that fraction of weight *columns* a 4x
  /// magnitude scale — the outlier-dimension structure of trained
  /// transformers that column-granular policies exploit.
  static QuadraticModel synthesize(std::size_t rows, std::size_t cols,
                                   std::size_t m, Rng& rng,
                                   double correlation = 0.6,
                                   double outlier_fraction = 0.0);

  /// Loss at W (0 at the optimum).
  double loss(const FloatMatrix& w) const;

  /// Gradient at W: per group, H (w - w*).
  FloatMatrix gradient(const FloatMatrix& w) const;

  /// The dense optimum w*.
  const FloatMatrix& optimum() const { return optimum_; }

  /// Exact curvature as a GroupFisher (what OBS should be given).
  GroupFisher fisher() const;

  /// Loss of the all-zero model: normalizer so scores are comparable
  /// across models (loss_increase / normalizer() in [0, ~1]).
  double normalizer() const;

  std::size_t rows() const { return optimum_.rows(); }
  std::size_t cols() const { return optimum_.cols(); }
  std::size_t m() const { return m_; }

  /// Quadratic form q = 1/2 d^T H d of one (row, group) — the building
  /// block the non-quadratic extension scales.
  double group_quadratic(const FloatMatrix& w, std::size_t r,
                         std::size_t g) const;

 private:
  std::size_t m_ = 0;
  FloatMatrix optimum_;
  std::vector<double> h_blocks_;  // rows*groups blocks of m x m
};

/// Non-quadratic extension used to study the structure-decay scheduler:
/// per group with quadratic form q = 1/2 d^T H d, the loss is
///
///   q + (kappa / 2) * q^2
///
/// Its Hessian at the optimum is still H (so OBS's curvature input is
/// correct *locally*), but the loss grows faster than the quadratic
/// Taylor model predicts for large moves — exactly the regime where the
/// paper says one-shot pruning "results in worse Taylor approximations"
/// and gradual N-decay plus fine-tuning wins.
class NonQuadraticModel {
 public:
  NonQuadraticModel(QuadraticModel base, double kappa)
      : base_(std::move(base)), kappa_(kappa) {}

  double loss(const FloatMatrix& w) const;
  FloatMatrix gradient(const FloatMatrix& w) const;

  const QuadraticModel& base() const { return base_; }
  const FloatMatrix& optimum() const { return base_.optimum(); }
  GroupFisher fisher() const { return base_.fisher(); }
  double normalizer() const;

 private:
  QuadraticModel base_;
  double kappa_;
};

}  // namespace venom::pruning
