#include "pruning/smallmat.hpp"

#include <cmath>

#include "common/error.hpp"

namespace venom::pruning {

void invert_inplace(std::span<double> a, std::size_t n) {
  VENOM_CHECK(a.size() == n * n);
  // Gauss-Jordan on [A | I], I kept implicitly by writing the inverse over A.
  std::vector<double> inv(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1.0;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    VENOM_CHECK_MSG(best > 1e-14, "singular matrix in OBS block inverse");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[col * n + c]);
        std::swap(inv[pivot * n + c], inv[col * n + c]);
      }
    }
    const double d = a[col * n + col];
    for (std::size_t c = 0; c < n; ++c) {
      a[col * n + c] /= d;
      inv[col * n + c] /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a[r * n + c] -= f * a[col * n + c];
        inv[r * n + c] -= f * inv[col * n + c];
      }
    }
  }
  std::copy(inv.begin(), inv.end(), a.begin());
}

std::vector<double> inverted(std::span<const double> a, std::size_t n) {
  std::vector<double> copy(a.begin(), a.end());
  invert_inplace(copy, n);
  return copy;
}

void matvec(std::span<const double> a, std::span<const double> x,
            std::span<double> y, std::size_t n) {
  VENOM_CHECK(a.size() == n * n && x.size() == n && y.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * x[j];
    y[i] = acc;
  }
}

double quad_form(std::span<const double> a, std::span<const double> x,
                 std::size_t n) {
  VENOM_CHECK(a.size() == n * n && x.size() == n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) acc += x[i] * a[i * n + j] * x[j];
  return acc;
}

std::vector<double> submatrix(std::span<const double> a, std::size_t n,
                              std::span<const std::size_t> idx) {
  std::vector<double> sub(idx.size() * idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    for (std::size_t j = 0; j < idx.size(); ++j)
      sub[i * idx.size() + j] = a[idx[i] * n + idx[j]];
  return sub;
}

}  // namespace venom::pruning
