#include "pruning/fisher.hpp"

#include "common/error.hpp"
#include "pruning/smallmat.hpp"

namespace venom::pruning {

GroupFisher GroupFisher::from_blocks(std::vector<double> blocks,
                                     std::size_t rows, std::size_t groups,
                                     std::size_t m) {
  VENOM_CHECK(blocks.size() == rows * groups * m * m);
  GroupFisher f;
  f.rows_ = rows;
  f.groups_ = groups;
  f.m_ = m;
  for (std::size_t b = 0; b < rows * groups; ++b)
    invert_inplace(
        std::span<double>(blocks.data() + b * m * m, m * m), m);
  f.inv_blocks_ = std::move(blocks);
  return f;
}

GroupFisher GroupFisher::estimate(std::span<const FloatMatrix> grad_samples,
                                  std::size_t m, double damp) {
  VENOM_CHECK_MSG(!grad_samples.empty(), "need at least one gradient sample");
  const std::size_t rows = grad_samples[0].rows();
  const std::size_t cols = grad_samples[0].cols();
  VENOM_CHECK(cols % m == 0);
  const std::size_t groups = cols / m;

  std::vector<double> blocks(rows * groups * m * m, 0.0);
  for (const auto& g : grad_samples) {
    VENOM_CHECK(g.rows() == rows && g.cols() == cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t grp = 0; grp < groups; ++grp) {
        double* blk = blocks.data() + (r * groups + grp) * m * m;
        for (std::size_t i = 0; i < m; ++i) {
          const double gi = g(r, grp * m + i);
          for (std::size_t j = 0; j < m; ++j)
            blk[i * m + j] += gi * g(r, grp * m + j);
        }
      }
  }
  const double scale = 1.0 / double(grad_samples.size());
  for (std::size_t b = 0; b < rows * groups; ++b) {
    double* blk = blocks.data() + b * m * m;
    for (std::size_t i = 0; i < m * m; ++i) blk[i] *= scale;
    for (std::size_t i = 0; i < m; ++i) blk[i * m + i] += damp;
  }
  return from_blocks(std::move(blocks), rows, groups, m);
}

GroupFisher GroupFisher::from_activation_covariance(
    const HalfMatrix& activations, std::size_t rows, std::size_t m,
    double damp) {
  const std::size_t features = activations.rows();
  const std::size_t samples = activations.cols();
  VENOM_CHECK_MSG(samples >= 1, "need at least one activation sample");
  VENOM_CHECK_MSG(features % m == 0,
                  "features " << features << " not divisible by M=" << m);
  const std::size_t groups = features / m;

  // One M x M covariance block per group, shared across weight rows.
  std::vector<double> group_blocks(groups * m * m, 0.0);
  for (std::size_t g = 0; g < groups; ++g) {
    double* blk = group_blocks.data() + g * m * m;
    for (std::size_t s = 0; s < samples; ++s)
      for (std::size_t i = 0; i < m; ++i) {
        const double xi = double(activations(g * m + i, s).to_float());
        for (std::size_t j = 0; j <= i; ++j)
          blk[i * m + j] +=
              xi * double(activations(g * m + j, s).to_float());
      }
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < i; ++j) blk[j * m + i] = blk[i * m + j];
    const double scale = 1.0 / double(samples);
    for (std::size_t i = 0; i < m * m; ++i) blk[i] *= scale;
    for (std::size_t i = 0; i < m; ++i) blk[i * m + i] += damp;
  }

  std::vector<double> blocks(rows * groups * m * m);
  for (std::size_t r = 0; r < rows; ++r)
    std::copy(group_blocks.begin(), group_blocks.end(),
              blocks.begin() + std::ptrdiff_t(r * groups * m * m));
  return from_blocks(std::move(blocks), rows, groups, m);
}

GroupFisher GroupFisher::diagonal(const FloatMatrix& grad_sq_mean,
                                  std::size_t m, double damp) {
  VENOM_CHECK(grad_sq_mean.cols() % m == 0);
  const std::size_t rows = grad_sq_mean.rows();
  const std::size_t groups = grad_sq_mean.cols() / m;
  std::vector<double> blocks(rows * groups * m * m, 0.0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t grp = 0; grp < groups; ++grp) {
      double* blk = blocks.data() + (r * groups + grp) * m * m;
      for (std::size_t i = 0; i < m; ++i)
        blk[i * m + i] =
            double(grad_sq_mean(r, grp * m + i)) + damp;
    }
  return from_blocks(std::move(blocks), rows, groups, m);
}

}  // namespace venom::pruning
