#include "pruning/quadratic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "pruning/smallmat.hpp"

namespace venom::pruning {

QuadraticModel QuadraticModel::synthesize(std::size_t rows, std::size_t cols,
                                          std::size_t m, Rng& rng,
                                          double correlation,
                                          double outlier_fraction) {
  VENOM_CHECK(cols % m == 0);
  VENOM_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                  "correlation " << correlation << " out of [0,1]");
  QuadraticModel model;
  model.m_ = m;
  model.optimum_ = random_float_matrix(rows, cols, rng, 1.0f);
  if (outlier_fraction > 0.0) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform() >= float(outlier_fraction)) continue;
      for (std::size_t r = 0; r < rows; ++r) model.optimum_(r, c) *= 4.0f;
    }
  }

  const std::size_t groups = cols / m;
  model.h_blocks_.resize(rows * groups * m * m, 0.0);
  const std::size_t p = m + 4;  // samples per Gram block -> well-conditioned
  std::vector<double> g(m * p);
  for (std::size_t b = 0; b < rows * groups; ++b) {
    double* blk = model.h_blocks_.data() + b * m * m;
    for (auto& x : g) x = double(rng.normal());
    // Gram matrix (correlated SPD), blended toward its own diagonal.
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) {
        double acc = 0.0;
        for (std::size_t s = 0; s < p; ++s) acc += g[i * p + s] * g[j * p + s];
        blk[i * m + j] = acc / double(p);
      }
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (i != j) blk[i * m + j] *= correlation;
    // Damping keeps every block comfortably invertible.
    for (std::size_t i = 0; i < m; ++i) blk[i * m + i] += 0.05;
  }
  return model;
}

double QuadraticModel::loss(const FloatMatrix& w) const {
  VENOM_CHECK(w.rows() == rows() && w.cols() == cols());
  const std::size_t groups = cols() / m_;
  double total = 0.0;
  std::vector<double> d(m_);
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t i = 0; i < m_; ++i)
        d[i] = double(w(r, g * m_ + i)) - double(optimum_(r, g * m_ + i));
      total += 0.5 * quad_form(
                         std::span<const double>(
                             h_blocks_.data() + (r * groups + g) * m_ * m_,
                             m_ * m_),
                         d, m_);
    }
  return total;
}

FloatMatrix QuadraticModel::gradient(const FloatMatrix& w) const {
  VENOM_CHECK(w.rows() == rows() && w.cols() == cols());
  const std::size_t groups = cols() / m_;
  FloatMatrix grad(rows(), cols());
  std::vector<double> d(m_), y(m_);
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t i = 0; i < m_; ++i)
        d[i] = double(w(r, g * m_ + i)) - double(optimum_(r, g * m_ + i));
      matvec(std::span<const double>(
                 h_blocks_.data() + (r * groups + g) * m_ * m_, m_ * m_),
             d, y, m_);
      for (std::size_t i = 0; i < m_; ++i)
        grad(r, g * m_ + i) = float(y[i]);
    }
  return grad;
}

GroupFisher QuadraticModel::fisher() const {
  return GroupFisher::from_blocks(h_blocks_, rows(), cols() / m_, m_);
}

double QuadraticModel::normalizer() const {
  FloatMatrix zero(rows(), cols());
  return loss(zero);
}

double QuadraticModel::group_quadratic(const FloatMatrix& w, std::size_t r,
                                       std::size_t g) const {
  const std::size_t groups = cols() / m_;
  std::vector<double> d(m_);
  for (std::size_t i = 0; i < m_; ++i)
    d[i] = double(w(r, g * m_ + i)) - double(optimum_(r, g * m_ + i));
  return 0.5 * quad_form(
                   std::span<const double>(
                       h_blocks_.data() + (r * groups + g) * m_ * m_, m_ * m_),
                   d, m_);
}

double NonQuadraticModel::loss(const FloatMatrix& w) const {
  const std::size_t m = base_.m();
  const std::size_t groups = base_.cols() / m;
  double total = 0.0;
  for (std::size_t r = 0; r < base_.rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g) {
      const double q = base_.group_quadratic(w, r, g);
      total += q + 0.5 * kappa_ * q * q;
    }
  return total;
}

FloatMatrix NonQuadraticModel::gradient(const FloatMatrix& w) const {
  // d/dw [q + kappa/2 q^2] = (1 + kappa q) * H d, per group.
  FloatMatrix grad = base_.gradient(w);
  const std::size_t m = base_.m();
  const std::size_t groups = base_.cols() / m;
  for (std::size_t r = 0; r < base_.rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g) {
      const double q = base_.group_quadratic(w, r, g);
      const double scale = 1.0 + kappa_ * q;
      for (std::size_t i = 0; i < m; ++i)
        grad(r, g * m + i) *= float(scale);
    }
  return grad;
}

double NonQuadraticModel::normalizer() const {
  FloatMatrix zero(base_.rows(), base_.cols());
  return loss(zero);
}

}  // namespace venom::pruning
