#include "pruning/obs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "pruning/smallmat.hpp"

namespace venom::pruning {

namespace {

/// C(n, k) with saturation (avoids overflow for the kAuto threshold).
std::size_t choose_sat(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) {
    if (r > (std::numeric_limits<std::size_t>::max() / (n - i))) return
        std::numeric_limits<std::size_t>::max();
    r = r * (n - i) / (i + 1);
  }
  return r;
}

/// Advances `comb` (ascending indices into [0, n)) to the next
/// combination; returns false when exhausted.
bool next_combination(std::vector<std::size_t>& comb, std::size_t n) {
  const std::size_t k = comb.size();
  if (k == 0 || k > n) return false;
  for (std::size_t i = k; i-- > 0;) {
    if (comb[i] != i + n - k) {
      ++comb[i];
      for (std::size_t j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// Exhaustive search over kept subsets of `allowed` of size `keep`.
std::vector<std::size_t> select_combinatorial(
    std::span<const double> w, std::span<const double> finv, std::size_t keep,
    std::span<const std::size_t> allowed, double* saliency_out) {
  const std::size_t m = w.size();
  std::vector<std::size_t> best_q;
  double best = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> comb(keep);
  std::iota(comb.begin(), comb.end(), std::size_t{0});
  do {
    // Kept positions for this candidate.
    std::vector<bool> kept(m, false);
    for (std::size_t i : comb) kept[allowed[i]] = true;
    std::vector<std::size_t> q;
    q.reserve(m - keep);
    for (std::size_t i = 0; i < m; ++i)
      if (!kept[i]) q.push_back(i);
    const double s = obs_saliency(w, finv, q);
    if (s < best) {
      best = s;
      best_q = std::move(q);
    }
  } while (next_combination(comb, allowed.size()));

  if (saliency_out != nullptr) *saliency_out = best;
  return best_q;
}

/// Iterative greedy OBS: remove the cheapest weight, downdate the inverse
/// Fisher (Sherman-Morrison), repeat. Weights outside `allowed` are
/// removed first (cheapest-first among them).
std::vector<std::size_t> select_pairwise(std::span<const double> w,
                                         std::span<const double> finv,
                                         std::size_t keep,
                                         std::span<const std::size_t> allowed,
                                         double* saliency_out) {
  const std::size_t m = w.size();
  std::vector<double> wc(w.begin(), w.end());
  std::vector<double> fc(finv.begin(), finv.end());
  std::vector<bool> removed(m, false);
  std::vector<bool> is_allowed(m, allowed.empty());
  for (std::size_t i : allowed) is_allowed[i] = true;

  std::vector<std::size_t> q;
  std::size_t survivors = m;
  while (survivors > keep) {
    // Forced removals (outside `allowed`) take priority.
    bool forcing = false;
    for (std::size_t i = 0; i < m; ++i)
      if (!removed[i] && !is_allowed[i]) forcing = true;

    std::size_t pick = m;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (removed[i]) continue;
      if (forcing && is_allowed[i]) continue;
      const double d = fc[i * m + i];
      if (d <= 1e-18) continue;
      const double s = wc[i] * wc[i] / (2.0 * d);
      if (s < best) {
        best = s;
        pick = i;
      }
    }
    VENOM_CHECK_MSG(pick < m, "greedy OBS could not find a removable weight");

    // Optimal single-weight update + rank-1 downdate of F^-1.
    const double d = fc[pick * m + pick];
    const double wp = wc[pick];
    for (std::size_t i = 0; i < m; ++i)
      if (!removed[i]) wc[i] -= wp / d * fc[i * m + pick];
    std::vector<double> col(m);
    for (std::size_t i = 0; i < m; ++i) col[i] = fc[i * m + pick];
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        fc[i * m + j] -= col[i] * col[j] / d;
    wc[pick] = 0.0;
    removed[pick] = true;
    q.push_back(pick);
    --survivors;
  }
  std::sort(q.begin(), q.end());
  if (saliency_out != nullptr) *saliency_out = obs_saliency(w, finv, q);
  return q;
}

constexpr std::size_t kCombinatorialBudget = 512;  // max kept-set candidates

}  // namespace

double obs_saliency(std::span<const double> w, std::span<const double> finv,
                    std::span<const std::size_t> q) {
  if (q.empty()) return 0.0;
  const std::size_t m = w.size();
  VENOM_CHECK(finv.size() == m * m);
  std::vector<double> wq(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) wq[i] = w[q[i]];
  auto fqq = submatrix(finv, m, q);
  invert_inplace(fqq, q.size());
  return 0.5 * quad_form(fqq, wq, q.size());
}

void obs_update(std::span<double> w, std::span<const double> finv,
                std::span<const std::size_t> q) {
  if (q.empty()) return;
  const std::size_t m = w.size();
  VENOM_CHECK(finv.size() == m * m);
  std::vector<double> wq(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) wq[i] = w[q[i]];
  auto fqq = submatrix(finv, m, q);
  invert_inplace(fqq, q.size());
  std::vector<double> t(q.size());
  matvec(fqq, wq, t, q.size());
  // w -= F^-1[:, Q] * t
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j)
      acc += finv[i * m + q[j]] * t[j];
    w[i] -= acc;
  }
  for (std::size_t i : q) w[i] = 0.0;
}

std::vector<std::size_t> select_removal(std::span<const double> w,
                                        std::span<const double> finv,
                                        std::size_t keep, SelectionMode mode,
                                        std::span<const std::size_t> allowed,
                                        double* saliency_out) {
  const std::size_t m = w.size();
  VENOM_CHECK_MSG(keep <= m, "cannot keep " << keep << " of " << m);
  std::vector<std::size_t> all;
  if (allowed.empty()) {
    all.resize(m);
    std::iota(all.begin(), all.end(), std::size_t{0});
    allowed = all;
  }
  VENOM_CHECK_MSG(keep <= allowed.size(),
                  "keep " << keep << " exceeds allowed positions "
                          << allowed.size());

  SelectionMode resolved = mode;
  if (mode == SelectionMode::kAuto) {
    resolved = choose_sat(allowed.size(), keep) <= kCombinatorialBudget
                   ? SelectionMode::kCombinatorial
                   : SelectionMode::kPairwise;
  }
  if (resolved == SelectionMode::kCombinatorial)
    return select_combinatorial(w, finv, keep, allowed, saliency_out);
  return select_pairwise(w, finv, keep, allowed, saliency_out);
}

namespace {

/// Shared traversal: for each (row, group) builds the double-precision
/// group vector, applies `choose` to get the removal set, updates, and
/// accumulates the saliency. Rows are independent (the Fisher is block
/// diagonal over row-groups), so they run on the thread pool.
template <typename ChooseFn>
ObsResult prune_groups(const FloatMatrix& w, const GroupFisher& fisher,
                       std::size_t m, ChooseFn&& choose) {
  VENOM_CHECK(w.cols() % m == 0);
  VENOM_CHECK(fisher.m() == m && fisher.rows() == w.rows() &&
              fisher.groups() == w.cols() / m);
  ObsResult result;
  result.weights = w;
  const std::size_t groups = w.cols() / m;
  std::vector<double> row_loss(w.rows(), 0.0);

  ThreadPool::global().parallel_for(w.rows(), [&](std::size_t r) {
    std::vector<double> wg(m);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t i = 0; i < m; ++i)
        wg[i] = double(result.weights(r, g * m + i));
      const auto finv = fisher.inv_block(r, g);
      double saliency = 0.0;
      const std::vector<std::size_t> q = choose(r, g, wg, finv, &saliency);
      obs_update(wg, finv, q);
      row_loss[r] += saliency;
      for (std::size_t i = 0; i < m; ++i)
        result.weights(r, g * m + i) = float(wg[i]);
    }
  });
  for (double l : row_loss) result.loss_increase += l;
  return result;
}

}  // namespace

ObsResult obs_prune_nm(const FloatMatrix& w, const GroupFisher& fisher,
                       NmPattern pattern, SelectionMode mode) {
  return prune_groups(
      w, fisher, pattern.m,
      [&](std::size_t, std::size_t, std::span<const double> wg,
          std::span<const double> finv, double* s) {
        return select_removal(wg, finv, pattern.n, mode, {}, s);
      });
}

ObsResult obs_prune_vnm(const FloatMatrix& w, const GroupFisher& fisher,
                        VnmConfig cfg, SelectionMode mode) {
  VENOM_CHECK(w.rows() % cfg.v == 0);
  VENOM_CHECK(w.cols() % cfg.m == 0);
  const std::size_t groups = w.cols() / cfg.m;
  const std::size_t sel = cfg.selected_cols();

  // Stage 1 (vector-wise): per V x M block, rank columns by the summed
  // single-weight saliency w_i^2 / (2 (F^-1)_ii) and keep the best `sel`.
  const std::size_t block_rows = w.rows() / cfg.v;
  std::vector<std::vector<std::size_t>> selected(block_rows * groups);
  for (std::size_t br = 0; br < block_rows; ++br) {
    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<double> score(cfg.m, 0.0);
      for (std::size_t dr = 0; dr < cfg.v; ++dr) {
        const std::size_t r = br * cfg.v + dr;
        const auto finv = fisher.inv_block(r, g);
        for (std::size_t c = 0; c < cfg.m; ++c) {
          const double wi = double(w(r, g * cfg.m + c));
          const double d = finv[c * cfg.m + c];
          if (d > 1e-18) score[c] += wi * wi / (2.0 * d);
        }
      }
      std::vector<std::size_t> order(cfg.m);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return score[a] > score[b];
                       });
      order.resize(sel);
      std::sort(order.begin(), order.end());
      selected[br * groups + g] = std::move(order);
    }
  }

  // Stage 2 (N:M within the selection) with the full-group OBS update.
  return prune_groups(
      w, fisher, cfg.m,
      [&](std::size_t r, std::size_t g, std::span<const double> wg,
          std::span<const double> finv, double* s) {
        const auto& allowed = selected[(r / cfg.v) * groups + g];
        return select_removal(wg, finv, cfg.n, mode, allowed, s);
      });
}

ObsResult obs_prune_vector_wise(const FloatMatrix& w,
                                const GroupFisher& fisher,
                                std::size_t vec_len, double sparsity) {
  VENOM_CHECK(w.rows() % vec_len == 0);
  VENOM_CHECK_MSG(sparsity >= 0.0 && sparsity < 1.0,
                  "sparsity " << sparsity << " out of [0,1)");
  const std::size_t m = fisher.m();
  VENOM_CHECK(w.cols() % m == 0);
  const std::size_t vgroups = w.rows() / vec_len;

  // Rank vertical vectors by aggregate single-weight saliency.
  std::vector<double> score(vgroups * w.cols(), 0.0);
  for (std::size_t vg = 0; vg < vgroups; ++vg)
    for (std::size_t c = 0; c < w.cols(); ++c)
      for (std::size_t dr = 0; dr < vec_len; ++dr) {
        const std::size_t r = vg * vec_len + dr;
        const auto finv = fisher.inv_block(r, c / m);
        const double d = finv[(c % m) * m + (c % m)];
        const double wi = double(w(r, c));
        if (d > 1e-18) score[vg * w.cols() + c] += wi * wi / (2.0 * d);
      }
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto keep = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * double(score.size())));
  std::vector<bool> kept(score.size(), false);
  if (keep > 0) {
    std::nth_element(order.begin(), order.begin() + (keep - 1), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return score[a] > score[b];
                     });
    for (std::size_t i = 0; i < keep; ++i) kept[order[i]] = true;
  }

  // Per (row, group) removal = positions whose vector was dropped.
  return prune_groups(
      w, fisher, m,
      [&](std::size_t r, std::size_t g, std::span<const double> wg,
          std::span<const double> finv, double* s) {
        const std::size_t vg = r / vec_len;
        std::vector<std::size_t> q;
        for (std::size_t i = 0; i < m; ++i)
          if (!kept[vg * w.cols() + g * m + i]) q.push_back(i);
        *s = obs_saliency(wg, finv, q);
        return q;
      });
}

}  // namespace venom::pruning
