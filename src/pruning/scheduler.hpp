// Structure-decay scheduler for gradual V:N:M pruning (Section 6.1.1).
//
// One-shot pruning to a high-sparsity pattern damages accuracy beyond
// what fine-tuning recovers; the paper instead decays N over beta steps,
// N_0 >> N_beta, re-running second-order pruning at each step so every
// stage works from OBS-updated (implicitly fine-tuned, for quadratic
// losses exactly fine-tuned) weights.
#pragma once

#include <cstddef>
#include <vector>

#include "pruning/obs.hpp"

namespace venom::pruning {

/// A decreasing sequence of N values ending at the target.
struct DecaySchedule {
  std::vector<std::size_t> n_values;
};

/// Builds a geometric decay from n0 down to n_target over `steps` stages
/// (n0 >= n_target >= 1, steps >= 1). The last entry is always n_target;
/// intermediate values halve toward the target, deduplicated.
DecaySchedule structure_decay_schedule(std::size_t n0, std::size_t n_target,
                                       std::size_t steps);

/// Gradual V:N:M pruning: intermediate stages prune row-wise N_i:M with
/// OBS (no column constraint yet — they exist only to walk the loss
/// surface gently); the final stage prunes to the full V:N:M pattern.
/// Returns the final weights and the *measured-by-saliency* cumulative
/// loss increase across stages.
ObsResult obs_prune_vnm_gradual(const FloatMatrix& w,
                                const GroupFisher& fisher, VnmConfig cfg,
                                const DecaySchedule& schedule,
                                SelectionMode mode);

}  // namespace venom::pruning
