#include "pruning/policies.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace venom::pruning {

namespace {

/// Keeps the `keep` highest-scoring items; returns a keep-flag vector.
std::vector<bool> top_k_flags(const std::vector<double>& score,
                              std::size_t keep) {
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  keep = std::min(keep, order.size());
  if (keep > 0) {
    std::nth_element(order.begin(), order.begin() + (keep - 1), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return score[a] > score[b];
                     });
  }
  std::vector<bool> flags(score.size(), false);
  for (std::size_t i = 0; i < keep; ++i) flags[order[i]] = true;
  return flags;
}

}  // namespace

HalfMatrix prune_unstructured(const HalfMatrix& w, double sparsity) {
  VENOM_CHECK_MSG(sparsity >= 0.0 && sparsity < 1.0,
                  "sparsity " << sparsity << " out of [0,1)");
  std::vector<double> score(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    score[i] = std::fabs(double(w.flat()[i].to_float()));
  const auto keep = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * double(w.size())));
  const auto flags = top_k_flags(score, keep);
  HalfMatrix out = w;
  for (std::size_t i = 0; i < w.size(); ++i)
    if (!flags[i]) out.flat()[i] = half_t(0.0f);
  return out;
}

HalfMatrix prune_nm(const HalfMatrix& w, NmPattern pattern) {
  return NmMatrix::from_dense_magnitude(w, pattern).to_dense();
}

HalfMatrix prune_vnm(const HalfMatrix& w, VnmConfig cfg) {
  return VnmMatrix::from_dense_magnitude(w, cfg).to_dense();
}

HalfMatrix prune_vector_wise(const HalfMatrix& w, std::size_t vec_len,
                             double sparsity) {
  VENOM_CHECK(w.rows() % vec_len == 0);
  VENOM_CHECK_MSG(sparsity >= 0.0 && sparsity < 1.0,
                  "sparsity " << sparsity << " out of [0,1)");
  const std::size_t groups = w.rows() / vec_len;
  std::vector<double> score(groups * w.cols(), 0.0);
  for (std::size_t g = 0; g < groups; ++g)
    for (std::size_t c = 0; c < w.cols(); ++c)
      for (std::size_t dr = 0; dr < vec_len; ++dr)
        score[g * w.cols() + c] +=
            std::fabs(double(w(g * vec_len + dr, c).to_float()));
  const auto keep = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * double(score.size())));
  const auto flags = top_k_flags(score, keep);
  HalfMatrix out = w;
  for (std::size_t g = 0; g < groups; ++g)
    for (std::size_t c = 0; c < w.cols(); ++c)
      if (!flags[g * w.cols() + c])
        for (std::size_t dr = 0; dr < vec_len; ++dr)
          out(g * vec_len + dr, c) = half_t(0.0f);
  return out;
}

HalfMatrix prune_block_wise(const HalfMatrix& w, std::size_t block,
                            double sparsity) {
  VENOM_CHECK(w.rows() % block == 0 && w.cols() % block == 0);
  VENOM_CHECK_MSG(sparsity >= 0.0 && sparsity < 1.0,
                  "sparsity " << sparsity << " out of [0,1)");
  const std::size_t br = w.rows() / block;
  const std::size_t bc = w.cols() / block;
  std::vector<double> score(br * bc, 0.0);
  for (std::size_t i = 0; i < br; ++i)
    for (std::size_t j = 0; j < bc; ++j)
      for (std::size_t dr = 0; dr < block; ++dr)
        for (std::size_t dc = 0; dc < block; ++dc)
          score[i * bc + j] += std::fabs(
              double(w(i * block + dr, j * block + dc).to_float()));
  const auto keep = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * double(score.size())));
  const auto flags = top_k_flags(score, keep);
  HalfMatrix out = w;
  for (std::size_t i = 0; i < br; ++i)
    for (std::size_t j = 0; j < bc; ++j)
      if (!flags[i * bc + j])
        for (std::size_t dr = 0; dr < block; ++dr)
          for (std::size_t dc = 0; dc < block; ++dc)
            out(i * block + dr, j * block + dc) = half_t(0.0f);
  return out;
}

double energy(const HalfMatrix& pruned, const HalfMatrix& dense) {
  const double denom = l1_energy(dense);
  if (denom == 0.0) return 0.0;
  return l1_energy(pruned) / denom;
}

HalfMatrix synthetic_bert_weight(std::size_t rows, std::size_t cols,
                                 Rng& rng, double outlier_fraction,
                                 float outlier_scale, float sigma) {
  std::vector<float> col_scale(cols, 1.0f);
  for (auto& s : col_scale)
    if (rng.uniform() < float(outlier_fraction)) s = outlier_scale;
  HalfMatrix w(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      w(r, c) = half_t(sigma * col_scale[c] * rng.normal());
  return w;
}

}  // namespace venom::pruning
