#include "pruning/finetune.hpp"

#include <utility>

#include "common/error.hpp"
#include "ops/context.hpp"

namespace venom::pruning {

namespace {

/// Mean squared error per token plus its gradient: L = 1/(2T) Σ (y−t)²,
/// dL/dy = (y − t)/T. Loss accumulates in double so the reported curve
/// is stable to summation order.
double mse_and_grad(const HalfMatrix& y, const FloatMatrix& t,
                    FloatMatrix* grad) {
  VENOM_CHECK(y.rows() == t.rows() && y.cols() == t.cols());
  const float inv_tokens = 1.0f / float(t.cols());
  double loss = 0.0;
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c) {
      const float d = y(r, c).to_float() - t(r, c);
      loss += 0.5 * double(d) * double(d);
      if (grad != nullptr) (*grad)(r, c) = d * inv_tokens;
    }
  return loss * double(inv_tokens);
}

}  // namespace

SparseFinetuneReport finetune_linear(transformer::Linear& student,
                                     const workloads::RegressionTask& task,
                                     const SparseFinetuneConfig& cfg,
                                     ops::ExecContext* ctx) {
  VENOM_CHECK_MSG(student.in_features() == task.inputs.rows() &&
                      student.out_features() == task.targets.rows(),
                  "student shape does not match the regression task");
  if (ctx != nullptr) student.set_exec_context(ctx);

  SparseFinetuneReport report;
  report.dense_loss = mse_and_grad(student.forward(task.inputs), task.targets,
                                   nullptr);

  // Magnitude-prune + V:N:M convert: from here on every forward runs the
  // Spatha SpMM and every backward the transposed SpMM + masked SDDMM.
  student.sparsify(cfg.format);
  const std::size_t out = student.out_features();
  const std::size_t tokens = task.inputs.cols();
  FloatMatrix grad_y(out, tokens);
  double current =
      mse_and_grad(student.forward(task.inputs), task.targets, &grad_y);
  report.post_prune_loss = current;
  report.curve.push_back(current);

  float lr = cfg.lr;
  // The gradient is a pure function of (student, grad_y): a rejected
  // trial step changes neither, so it is only recomputed after an
  // accepted one — a backtracking plateau costs loss evaluations, not
  // redundant sparse backward passes.
  transformer::Linear::Grads grads = student.backward(task.inputs, grad_y);
  for (std::size_t s = 0; s < cfg.steps; ++s) {
    // Projected trial step with backtracking: a step that fails to
    // decrease the full-batch loss is rolled back and the rate halved,
    // so the loop is monotone (and still fully deterministic).
    transformer::Linear trial = student;
    trial.apply_gradients(grads, lr);
    FloatMatrix trial_grad(out, tokens);
    const double next =
        mse_and_grad(trial.forward(task.inputs), task.targets, &trial_grad);
    if (next < current) {
      student = std::move(trial);
      grad_y = std::move(trial_grad);
      current = next;
      if (s + 1 < cfg.steps) grads = student.backward(task.inputs, grad_y);
    } else {
      lr *= 0.5f;
      if (lr < 1e-8f) break;
    }
    report.curve.push_back(current);
  }
  report.final_loss = current;
  return report;
}

SparseFinetuneReport finetune_encoder(transformer::Encoder& enc,
                                      const HalfMatrix& inputs,
                                      const FloatMatrix& targets,
                                      const SparseFinetuneConfig& cfg) {
  SparseFinetuneReport report;
  report.dense_loss =
      mse_and_grad(enc.forward(inputs), targets, nullptr);

  enc.sparsify(cfg.format);
  FloatMatrix grad_out(targets.rows(), targets.cols());
  double current = mse_and_grad(enc.forward(inputs), targets, &grad_out);
  report.post_prune_loss = current;
  report.curve.push_back(current);

  std::vector<transformer::EncoderLayerGrads> grads;
  float lr = cfg.lr;
  enc.backward(inputs, grad_out, &grads);
  for (std::size_t s = 0; s < cfg.steps; ++s) {
    transformer::Encoder trial = enc;
    trial.apply_gradients(grads, lr);
    FloatMatrix trial_grad(targets.rows(), targets.cols());
    const double next =
        mse_and_grad(trial.forward(inputs), targets, &trial_grad);
    if (next < current) {
      enc = std::move(trial);
      grad_out = std::move(trial_grad);
      current = next;
      if (s + 1 < cfg.steps) enc.backward(inputs, grad_out, &grads);
    } else {
      lr *= 0.5f;
      if (lr < 1e-8f) break;
    }
    report.curve.push_back(current);
  }
  report.final_loss = current;
  return report;
}

}  // namespace venom::pruning
