// Fisher information estimation for second-order pruning (Section 6).
//
// Following Optimal BERT Surgeon [Kurtic et al. 2022] — the method the
// paper builds on — correlations across rows of a V x M block are
// disregarded, so the Fisher is kept block-diagonal over 1 x M row-groups
// of the weight matrix. GroupFisher stores the *inverse* M x M block per
// (row, group), built either from an exact Hessian (the synthetic
// Table-2 models) or from sampled gradients (the empirical Fisher
// F = 1/S sum_s g_s g_s^T + lambda I).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace venom::pruning {

/// Block-diagonal inverse Fisher over 1 x M row-groups of an R x K
/// weight matrix.
class GroupFisher {
 public:
  GroupFisher() = default;

  /// Builds from exact blocks: `blocks` holds rows*groups M x M row-major
  /// matrices (the Fisher/Hessian itself, NOT its inverse).
  static GroupFisher from_blocks(std::vector<double> blocks,
                                 std::size_t rows, std::size_t groups,
                                 std::size_t m);

  /// Empirical Fisher from gradient samples: F_block = 1/S sum g g^T
  /// + damp * I, per (row, group). Each sample has the weight shape.
  static GroupFisher estimate(std::span<const FloatMatrix> grad_samples,
                              std::size_t m, double damp = 1e-4);

  /// Diagonal-only Fisher (ignores in-group correlation) from per-weight
  /// squared-gradient averages. Used as the cheap baseline.
  static GroupFisher diagonal(const FloatMatrix& grad_sq_mean, std::size_t m,
                              double damp = 1e-4);

  /// OBC / SparseGPT-style curvature for a linear layer y = W x under a
  /// squared loss: the Hessian of every output row is H = X X^T / S over
  /// activation samples. `activations` holds the layer inputs column-wise
  /// (in_features x samples, the library's activation layout); the same
  /// per-group block is shared by all `rows` weight rows. This is how
  /// second-order pruning scales to real layers: one covariance pass over
  /// calibration data instead of per-weight gradient statistics.
  static GroupFisher from_activation_covariance(const HalfMatrix& activations,
                                                std::size_t rows,
                                                std::size_t m,
                                                double damp = 1e-4);

  std::size_t rows() const { return rows_; }
  std::size_t groups() const { return groups_; }
  std::size_t m() const { return m_; }

  /// Inverse Fisher block (M x M row-major) for (row, group).
  std::span<const double> inv_block(std::size_t row, std::size_t group) const {
    return std::span<const double>(
        inv_blocks_.data() + (row * groups_ + group) * m_ * m_, m_ * m_);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t groups_ = 0;
  std::size_t m_ = 0;
  std::vector<double> inv_blocks_;
};

}  // namespace venom::pruning
