#include "pruning/scheduler.hpp"

#include "common/error.hpp"

namespace venom::pruning {

DecaySchedule structure_decay_schedule(std::size_t n0, std::size_t n_target,
                                       std::size_t steps) {
  VENOM_CHECK_MSG(n_target >= 1 && n0 >= n_target,
                  "need N0 >= N_target >= 1, got " << n0 << " -> "
                                                   << n_target);
  VENOM_CHECK_MSG(steps >= 1, "need at least one step");
  DecaySchedule s;
  std::size_t n = n0;
  for (std::size_t i = 0; i + 1 < steps && n > n_target; ++i) {
    if (s.n_values.empty() || s.n_values.back() != n) s.n_values.push_back(n);
    n = std::max(n_target, n / 2);
  }
  if (s.n_values.empty() || s.n_values.back() != n_target)
    s.n_values.push_back(n_target);
  return s;
}

ObsResult obs_prune_vnm_gradual(const FloatMatrix& w,
                                const GroupFisher& fisher, VnmConfig cfg,
                                const DecaySchedule& schedule,
                                SelectionMode mode) {
  VENOM_CHECK_MSG(!schedule.n_values.empty(), "empty schedule");
  VENOM_CHECK_MSG(schedule.n_values.back() == cfg.n,
                  "schedule must end at the target N=" << cfg.n);

  ObsResult acc;
  acc.weights = w;
  for (std::size_t step = 0; step < schedule.n_values.size(); ++step) {
    const std::size_t n = schedule.n_values[step];
    const bool final_step = step + 1 == schedule.n_values.size();
    ObsResult r =
        final_step
            ? obs_prune_vnm(acc.weights, fisher, cfg, mode)
            : obs_prune_nm(acc.weights, fisher,
                           NmPattern{.n = n, .m = cfg.m}, mode);
    acc.weights = std::move(r.weights);
    acc.loss_increase += r.loss_increase;
  }
  return acc;
}

}  // namespace venom::pruning
