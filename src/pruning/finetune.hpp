// Masked fine-tuning: projected gradient descent over surviving weights.
//
// After each pruning stage the paper fine-tunes the model to recover
// accuracy. For quadratic losses the OBS update already gives the exact
// constrained optimum, but for non-quadratic losses real descent is
// needed — this is what gives the structure-decay scheduler its edge.
//
// Model concept: `double loss(const FloatMatrix&)` and
// `FloatMatrix gradient(const FloatMatrix&)`.
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace venom::pruning {

/// Runs `steps` of gradient descent on `w`, projecting pruned entries
/// (exact zeros in the incoming `w`) back to zero after every step.
/// Backtracks the step size whenever a step fails to decrease the loss.
/// Returns the final loss.
template <typename Model>
double fine_tune(const Model& model, FloatMatrix& w, std::size_t steps = 100,
                 double lr = 0.05) {
  // The sparsity mask is fixed by the incoming weights.
  std::vector<bool> alive(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) alive[i] = w.flat()[i] != 0.0f;

  double current = model.loss(w);
  for (std::size_t s = 0; s < steps; ++s) {
    const FloatMatrix grad = model.gradient(w);
    FloatMatrix trial = w;
    for (std::size_t i = 0; i < w.size(); ++i)
      if (alive[i]) trial.flat()[i] -= float(lr * grad.flat()[i]);
    const double next = model.loss(trial);
    if (next < current) {
      w = std::move(trial);
      current = next;
    } else {
      lr *= 0.5;  // backtrack
      if (lr < 1e-8) break;
    }
  }
  return current;
}

}  // namespace venom::pruning
