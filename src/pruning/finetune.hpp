// Masked fine-tuning: projected gradient descent over surviving weights.
//
// After each pruning stage the paper fine-tunes the model to recover
// accuracy. For quadratic losses the OBS update already gives the exact
// constrained optimum, but for non-quadratic losses real descent is
// needed — this is what gives the structure-decay scheduler its edge.
//
// Two surfaces:
//
//   fine_tune            the original weight-matrix-level loop over an
//                        abstract Model concept (`double loss(const
//                        FloatMatrix&)` / `FloatMatrix gradient(...)`).
//
//   finetune_linear /    the end-to-end sparse-training loop of §9a:
//   finetune_encoder     magnitude-prune -> V:N:M convert -> SGD steps
//                        where every forward runs the Spatha SpMM and
//                        every backward runs the transposed SpMM (input
//                        gradient) and the masked SDDMM (weight
//                        gradient) through the venom::ops registry.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "transformer/encoder.hpp"
#include "transformer/linear.hpp"
#include "workloads/generators.hpp"

namespace venom::ops {
class ExecContext;
}

namespace venom::pruning {

/// Runs `steps` of gradient descent on `w`, projecting pruned entries
/// (exact zeros in the incoming `w`) back to zero after every step.
/// Backtracks the step size whenever a step fails to decrease the loss.
/// Returns the final loss.
template <typename Model>
double fine_tune(const Model& model, FloatMatrix& w, std::size_t steps = 100,
                 double lr = 0.05) {
  // The sparsity mask is fixed by the incoming weights.
  std::vector<bool> alive(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) alive[i] = w.flat()[i] != 0.0f;

  double current = model.loss(w);
  for (std::size_t s = 0; s < steps; ++s) {
    const FloatMatrix grad = model.gradient(w);
    FloatMatrix trial = w;
    for (std::size_t i = 0; i < w.size(); ++i)
      if (alive[i]) trial.flat()[i] -= float(lr * grad.flat()[i]);
    const double next = model.loss(trial);
    if (next < current) {
      w = std::move(trial);
      current = next;
    } else {
      lr *= 0.5;  // backtrack
      if (lr < 1e-8) break;
    }
  }
  return current;
}

/// Knobs of the sparse fine-tuning loops.
struct SparseFinetuneConfig {
  VnmConfig format{8, 2, 8};  ///< pruning target
  std::size_t steps = 60;     ///< SGD steps (full-batch, deterministic)
  float lr = 0.5f;            ///< initial step size (halved on backtrack)
};

/// Loss trajectory of one fine-tuning run. Losses are the mean squared
/// error per token: L = 1/(2 T) * sum (y - t)^2.
struct SparseFinetuneReport {
  double dense_loss = 0.0;       ///< before pruning
  double post_prune_loss = 0.0;  ///< right after magnitude prune + convert
  double final_loss = 0.0;       ///< after the SGD steps
  std::vector<double> curve;     ///< loss per step (curve[0] = post-prune)

  /// Fraction of the post-prune loss removed by fine-tuning (1 = fully
  /// recovered). The acceptance bar for the demo is >= 0.5.
  double recovery() const {
    return post_prune_loss > 0.0 ? 1.0 - final_loss / post_prune_loss : 1.0;
  }
};

/// Magnitude-prunes `student` to cfg.format, then runs cfg.steps of
/// full-batch projected SGD against the regression task, with every
/// forward/backward dispatched through the sparse kernels. Deterministic
/// for fixed inputs. `ctx` routes the dispatches (nullptr = global).
SparseFinetuneReport finetune_linear(transformer::Linear& student,
                                     const workloads::RegressionTask& task,
                                     const SparseFinetuneConfig& cfg,
                                     ops::ExecContext* ctx = nullptr);

/// The encoder-level variant: prunes every linear weight of `enc` to
/// cfg.format and fine-tunes it to reproduce `targets` (typically the
/// dense encoder's own outputs — recovery as distillation) on `inputs`.
SparseFinetuneReport finetune_encoder(transformer::Encoder& enc,
                                      const HalfMatrix& inputs,
                                      const FloatMatrix& targets,
                                      const SparseFinetuneConfig& cfg);

}  // namespace venom::pruning
