// Magnitude-based pruning policies and the energy metric (Section 5).
//
// Each policy takes a dense weight matrix and returns the pruned dense
// matrix (zeros where removed), so policies compose with any compression
// format. The Fig. 11 study compares the energy these policies retain:
//
//   energy(w) = sum_i |w_i| / sum_i |w*_i|   in [0, 1], higher is better.
#pragma once

#include <cstddef>

#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "tensor/matrix.hpp"

namespace venom::pruning {

/// Unstructured magnitude pruning — the "ideal" selection policy: keeps
/// the top (1 - sparsity) fraction of weights by |w| with no structural
/// constraint.
HalfMatrix prune_unstructured(const HalfMatrix& w, double sparsity);

/// Row-wise N:M magnitude pruning (the native hardware pattern).
HalfMatrix prune_nm(const HalfMatrix& w, NmPattern pattern);

/// V:N:M magnitude pruning (column selection + per-row N:M, Fig. 2).
HalfMatrix prune_vnm(const HalfMatrix& w, VnmConfig cfg);

/// Vector-wise pruning (vw_l): keeps the top (1 - sparsity) fraction of
/// vertical length-l vectors by L1 norm.
HalfMatrix prune_vector_wise(const HalfMatrix& w, std::size_t vec_len,
                             double sparsity);

/// Block-wise pruning: keeps the top (1 - sparsity) fraction of v x v
/// square blocks by L1 norm.
HalfMatrix prune_block_wise(const HalfMatrix& w, std::size_t block,
                            double sparsity);

/// energy = l1(pruned) / l1(dense); 0 for an all-zero dense input.
double energy(const HalfMatrix& pruned, const HalfMatrix& dense);

/// Synthesizes a transformer-like weight matrix for the Fig. 11 study:
/// i.i.d. Gaussian entries modulated by per-column outlier scales
/// (a fraction of "outlier dimensions" carries systematically larger
/// weights — the documented structure of trained BERT encoders the paper
/// cites [Kovaleva et al., "BERT Busters"]). This column structure is
/// what the V:N:M column-selection stage exploits.
HalfMatrix synthetic_bert_weight(std::size_t rows, std::size_t cols,
                                 Rng& rng, double outlier_fraction = 0.15,
                                 float outlier_scale = 4.0f,
                                 float sigma = 0.05f);

}  // namespace venom::pruning
