// Model-driven autotuning of the Spatha kernel configuration.
//
// Spatha on the GPU is a template library: tile sizes and pipeline depth
// are compile-time parameters chosen per problem from a tuning table.
// This module reproduces that selection with an exhaustive search over
// the configuration space, costed by the analytical device model — the
// CPU-side analogue of building the paper's autotune table offline.
#pragma once

#include <vector>

#include "gpumodel/kernel_models.hpp"
#include "spatha/config.hpp"

namespace venom::gpumodel {

/// One scored candidate from the search.
struct TunedConfig {
  spatha::SpmmConfig config;
  KernelCost cost;
  double total_s() const { return cost.total(); }
};

/// Search-space bounds. Defaults cover the tile sizes the paper's
/// templates instantiate.
struct TuneSpace {
  std::vector<std::size_t> block_c = {32, 64, 128};
  std::vector<std::size_t> block_k_groups = {16, 32, 64, 128, 256};
  std::vector<std::size_t> batch_sizes = {1, 2, 3, 4};
};

/// Exhaustively scores every valid configuration for the problem and
/// returns them sorted by modeled time (best first). Never empty —
/// throws venom::Error only if no candidate validates.
std::vector<TunedConfig> enumerate_configs(const DeviceSpec& dev,
                                           GemmShape shape, VnmConfig fmt,
                                           const TuneSpace& space = {});

/// The best configuration for the problem.
TunedConfig autotune(const DeviceSpec& dev, GemmShape shape, VnmConfig fmt,
                     const TuneSpace& space = {});

}  // namespace venom::gpumodel
