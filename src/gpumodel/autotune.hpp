// Autotuning of the Spatha kernel configuration: analytical and measured.
//
// Spatha on the GPU is a template library: tile sizes and pipeline depth
// are compile-time parameters chosen per problem from a tuning table.
// This module reproduces building that table two ways:
//
//   enumerate_configs / autotune   the offline analytical half — every
//       valid configuration costed by the device model and ranked by
//       modeled time (the paper's table built without hardware).
//
//   autotune_measured   the empirical half — real spmm_vnm executions
//       benchmarked on this machine over the tile candidates, seeded and
//       pruned by the analytical ranking so only the top tiles (crossed
//       with the CPU-side chunk-grain axis) are timed. The result carries
//       a ready-to-persist tuning-cache entry; once inserted into
//       spatha::TuningCache, select_config dispatches it transparently.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.hpp"
#include "format/vnm.hpp"
#include "gpumodel/kernel_models.hpp"
#include "ops/matmul.hpp"
#include "spatha/config.hpp"
#include "spatha/tuning_cache.hpp"
#include "tensor/matrix.hpp"

namespace venom::gpumodel {

/// One scored candidate from the analytical search.
struct TunedConfig {
  spatha::SpmmConfig config;
  KernelCost cost;
  double total_s() const { return cost.total(); }
};

/// Search-space bounds. The tile axes cover the sizes the paper's
/// templates instantiate; the chunk-grain and thread-count axes exist
/// only on the CPU executor and are exercised by the measured search
/// (the analytical model ignores them).
struct TuneSpace {
  std::vector<std::size_t> block_c = {16, 32, 64, 128};
  std::vector<std::size_t> block_k_groups = {16, 32, 64, 128, 256};
  std::vector<std::size_t> batch_sizes = {1, 2, 3, 4};

  /// parallel_for_chunks grains (output tiles per claimed chunk); 0 is
  /// the pool's own choice of a few chunks per worker.
  std::vector<std::size_t> chunk_grains = {0, 1, 2, 4};

  /// Pool sizes to re-measure the winning config under (0 = the
  /// measuring pool). Empty skips the refinement. Advisory: the fastest
  /// pool size lands in MeasuredResult::entry.threads, but dispatch
  /// always runs on the caller's pool, so the reported throughputs stay
  /// the measuring pool's.
  std::vector<std::size_t> thread_counts = {};
};

/// Exhaustively scores every valid configuration for the problem and
/// returns them sorted by modeled time (best first). Never empty —
/// throws venom::Error only if no candidate validates.
std::vector<TunedConfig> enumerate_configs(const DeviceSpec& dev,
                                           GemmShape shape, VnmConfig fmt,
                                           const TuneSpace& space = {});

/// The best configuration for the problem under the analytical model.
TunedConfig autotune(const DeviceSpec& dev, GemmShape shape, VnmConfig fmt,
                     const TuneSpace& space = {});

/// Knobs of the measured search.
struct MeasureOptions {
  /// Distinct (block_k, block_c) tiles measured in total, INCLUDING the
  /// heuristic baseline tile that always occupies the first slot.
  std::size_t max_tiles = 8;
  double min_sample_s = 0.02;   ///< per-candidate timing budget (seconds)
  std::size_t warmup = 1;       ///< untimed calls per candidate
  /// Bit-compare the winner against the dtype's own scalar oracle
  /// (spmm_vnm_reference / spmm_vnm_i8_scalar / spmm_vnm_fp8_scalar).
  bool verify = true;
  ThreadPool* pool = nullptr;   ///< measuring pool; nullptr = global()
  const DeviceSpec* dev = nullptr;  ///< seeding model; nullptr = rtx3090()
  /// Datapath to tune: measurement runs the matching kernel (spmm_vnm /
  /// spmm_vnm_i8 / spmm_vnm_fp8 over a one-time quantized image of `a`),
  /// the baseline comes from the matching heuristic, and the result key
  /// carries the matching feature tag ("+i8" / "+fp8") so the entry is
  /// exactly what select_config_i8 / select_config_fp8 look up.
  ops::Dtype dtype = ops::Dtype::kF16;
};

/// One empirically timed candidate.
struct MeasuredConfig {
  spatha::SpmmConfig config;
  double seconds = 0.0;  ///< wall-clock per spmm_vnm call
  double gflops = 0.0;   ///< useful (sparse) FLOPs / seconds
};

/// Outcome of the measured search. `best.gflops >= heuristic.gflops` by
/// construction: the fixed heuristic is always in the measured set.
struct MeasuredResult {
  MeasuredConfig best;
  MeasuredConfig heuristic;
  std::vector<MeasuredConfig> ranked;  ///< all measured, best first

  /// Cache entry for the winner, keyed by this problem and this build's
  /// CPU features — pass straight to TuningCache::put / io persistence.
  spatha::TuningKey key;
  spatha::TuningEntry entry;
};

/// Benchmarks real kernel executions of `a * b` — on the datapath
/// `opts.dtype` selects — over at most `opts.max_tiles` distinct tiles
/// (the fixed heuristic first, then the analytically best tiles of
/// `space`), crossed with `space.chunk_grains`, and returns the measured
/// ranking. With `opts.verify`, the winner's output is checked
/// bit-identical to the dtype's scalar oracle (throws venom::Error
/// otherwise).
MeasuredResult autotune_measured(const VnmMatrix& a, const HalfMatrix& b,
                                 const TuneSpace& space = {},
                                 const MeasureOptions& opts = {});

}  // namespace venom::gpumodel
