// Per-library analytical kernel models (the timing substitute for the
// paper's RTX 3090 measurements — see DESIGN.md §2).
//
// Each model decomposes a kernel launch into main-loop compute, main-loop
// memory traffic, output phase, and fixed overhead (KernelCost). The
// constants are calibrated once, against the published characteristics of
// each library, so that the *ratios* reproduce the paper's figures:
//
//   cuBLAS       dense tensor-core GEMM at ~60% of peak, flat in K.
//   cuSparseLt   2:4 SPTC SpMM; efficiency ramps slowly with K (weaker on
//                small problems than Spatha — Fig. 12's crossover).
//   Spatha       V:N:M SPTC SpMM. Compute runs on the gathered 2:4
//                problem (K' = 4K/M), so the compute-bound speedup cap is
//                M/2 (the paper's "theoretical peak" per sparsity).
//                Adds the column-loc gather, an L2 term that grows as V
//                shrinks (Fig. 10), and an output phase whose throughput
//                depends on the 32- vs 128-bit SMEM store layout (Fig. 8).
//   Sputnik      unstructured CSR on CUDA cores; memory-bound, low
//                efficiency from index traffic and load imbalance.
//   CLASP        column-vector sparsity on tensor cores; efficiency grows
//                with vector length.
#pragma once

#include "format/vnm.hpp"
#include "gpumodel/device.hpp"
#include "spatha/config.hpp"

namespace venom::gpumodel {

/// Dense GEMM through cuBLAS (the denominator of every speedup).
KernelCost cublas_gemm(const DeviceSpec& dev, GemmShape g);

/// 2:4 SpMM through cuSparseLt.
KernelCost cusparselt_spmm(const DeviceSpec& dev, GemmShape g);

/// V:N:M SpMM through Spatha with an explicit kernel configuration.
KernelCost spatha_spmm(const DeviceSpec& dev, GemmShape g, VnmConfig fmt,
                       const spatha::SpmmConfig& cfg);

/// Spatha with the heuristic configuration.
KernelCost spatha_spmm(const DeviceSpec& dev, GemmShape g, VnmConfig fmt);

/// Unstructured CSR SpMM through Sputnik at the given density (nnz/total).
KernelCost sputnik_spmm(const DeviceSpec& dev, GemmShape g, double density);

/// Column-vector SpMM through CLASP at the given density and vector size.
KernelCost clasp_spmm(const DeviceSpec& dev, GemmShape g, double density,
                      std::size_t vec_len);

/// Elementwise / reduction op over `bytes` of activations (softmax,
/// layernorm, GELU, residual...) — bandwidth-bound.
KernelCost elementwise(const DeviceSpec& dev, double bytes);

/// Achieved TFLOP/s of a cost against the *dense-equivalent* FLOP count.
double tflops(const KernelCost& cost, double flops);

/// speedup = cublas(g) / cost.
double speedup_vs_cublas(const DeviceSpec& dev, GemmShape g,
                         const KernelCost& cost);

}  // namespace venom::gpumodel
