#include "gpumodel/autotune.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/timing.hpp"
#include "spatha/spmm.hpp"

namespace venom::gpumodel {

std::vector<TunedConfig> enumerate_configs(const DeviceSpec& dev,
                                           GemmShape shape, VnmConfig fmt,
                                           const TuneSpace& space) {
  std::vector<TunedConfig> results;
  std::set<std::size_t> seen_bk;  // clamping can alias K-tile candidates
  for (const std::size_t groups : space.block_k_groups) {
    const std::size_t bk = std::min(groups * fmt.m, shape.k - shape.k % fmt.m);
    if (bk == 0 || !seen_bk.insert(bk).second) continue;
    for (const std::size_t bc : space.block_c) {
      if (bc > shape.c) continue;
      for (const std::size_t depth : space.batch_sizes) {
        spatha::SpmmConfig cfg;
        cfg.block_k = bk;
        cfg.block_c = bc;
        cfg.warp_r = std::min<std::size_t>(32, fmt.v);
        cfg.warp_k = std::min<std::size_t>(64, bk);
        cfg.warp_c = bc;
        cfg.batch_size = depth;
        try {
          spatha::validate(cfg, fmt, shape.r, shape.k, shape.c);
        } catch (const Error&) {
          continue;
        }
        results.push_back({cfg, spatha_spmm(dev, shape, fmt, cfg)});
      }
    }
  }
  VENOM_CHECK_MSG(!results.empty(),
                  "no valid Spatha configuration for the problem");
  std::sort(results.begin(), results.end(),
            [](const TunedConfig& a, const TunedConfig& b) {
              return a.total_s() < b.total_s();
            });
  // Deduplicate identical times with identical configs is unnecessary;
  // callers take the front or inspect the ranking.
  return results;
}

TunedConfig autotune(const DeviceSpec& dev, GemmShape shape, VnmConfig fmt,
                     const TuneSpace& space) {
  return enumerate_configs(dev, shape, fmt, space).front();
}

namespace {

double measure_config(const VnmMatrix& a, const HalfMatrix& b,
                      const spatha::SpmmConfig& cfg, ThreadPool* pool,
                      const MeasureOptions& opts) {
  volatile float sink = 0.0f;  // keep the product from being elided
  return seconds_per_call(
      [&] {
        const FloatMatrix c = spatha::spmm_vnm(a, b, cfg, pool);
        sink = sink + c.flat()[0];
      },
      opts.warmup, opts.min_sample_s);
}

}  // namespace

MeasuredResult autotune_measured(const VnmMatrix& a, const HalfMatrix& b,
                                 const TuneSpace& space,
                                 const MeasureOptions& opts) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  const GemmShape shape{a.rows(), a.cols(), b.cols()};
  ThreadPool* pool = opts.pool != nullptr ? opts.pool : &ThreadPool::global();
  const DeviceSpec& dev = opts.dev != nullptr ? *opts.dev : rtx3090();

  // Tile candidates: the fixed heuristic first, then the analytically
  // best distinct (block_k, block_c) tiles — the model prunes the search
  // so only configurations it considers competitive are ever timed.
  const spatha::SpmmConfig heuristic_cfg =
      spatha::select_config_heuristic(fmt, shape.r, shape.k, shape.c);
  std::vector<spatha::SpmmConfig> tiles = {heuristic_cfg};
  std::set<std::pair<std::size_t, std::size_t>> seen = {
      {heuristic_cfg.block_k, heuristic_cfg.block_c}};
  try {
    for (const TunedConfig& tc : enumerate_configs(dev, shape, fmt, space)) {
      if (tiles.size() > opts.max_tiles) break;
      if (!seen.insert({tc.config.block_k, tc.config.block_c}).second)
        continue;
      tiles.push_back(tc.config);
    }
  } catch (const Error&) {
    // No analytical candidate validated (degenerate shape); the
    // heuristic tile alone is still measurable.
  }

  const std::vector<std::size_t> grains =
      space.chunk_grains.empty() ? std::vector<std::size_t>{0}
                                 : space.chunk_grains;
  const double flops = spatha::spmm_flops(a, shape.c);

  MeasuredResult result;
  // The heuristic baseline — the untouched select_config_heuristic choice
  // — is always measured, so best.gflops >= heuristic.gflops holds by
  // construction.
  result.heuristic.config = heuristic_cfg;
  result.heuristic.seconds = measure_config(a, b, heuristic_cfg, pool, opts);
  result.heuristic.gflops = flops / result.heuristic.seconds * 1e-9;
  result.ranked.push_back(result.heuristic);

  for (std::size_t t = 0; t < tiles.size(); ++t) {
    for (const std::size_t grain : grains) {
      spatha::SpmmConfig cfg = tiles[t];
      cfg.chunk_grain = grain;
      if (cfg == heuristic_cfg) continue;  // already measured
      MeasuredConfig mc;
      mc.config = cfg;
      mc.seconds = measure_config(a, b, cfg, pool, opts);
      mc.gflops = flops / mc.seconds * 1e-9;
      result.ranked.push_back(std::move(mc));
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const MeasuredConfig& x, const MeasuredConfig& y) {
              return x.seconds < y.seconds;
            });
  result.best = result.ranked.front();

  // Thread-count refinement: re-measure the winner under dedicated pools
  // and record the fastest pool size (0 = the measuring pool, already
  // covered). Advisory only — dispatch always runs on the caller's pool,
  // so best/ranked keep the measuring pool's numbers.
  std::size_t best_threads = pool->size();
  double best_refined_s = result.best.seconds;
  for (const std::size_t t : space.thread_counts) {
    if (t == 0 || t == pool->size()) continue;
    ThreadPool scoped(t);
    const double s = measure_config(a, b, result.best.config, &scoped, opts);
    if (s < best_refined_s) {
      best_refined_s = s;
      best_threads = t;
    }
  }

  if (opts.verify) {
    const FloatMatrix got = spatha::spmm_vnm(a, b, result.best.config, pool);
    const FloatMatrix want = spatha::spmm_vnm_reference(a, b);
    VENOM_CHECK_MSG(
        got.size() == want.size() &&
            std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) == 0,
        "tuned config " << result.best.config.describe()
                        << " is not bit-identical to the reference");
  }

  result.key = spatha::make_tuning_key(fmt, shape.r, shape.k, shape.c);
  result.entry.config = result.best.config;
  result.entry.gflops = result.best.gflops;
  result.entry.heuristic_gflops = result.heuristic.gflops;
  result.entry.threads = best_threads;
  return result;
}

}  // namespace venom::gpumodel
