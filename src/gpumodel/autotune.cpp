#include "gpumodel/autotune.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace venom::gpumodel {

std::vector<TunedConfig> enumerate_configs(const DeviceSpec& dev,
                                           GemmShape shape, VnmConfig fmt,
                                           const TuneSpace& space) {
  std::vector<TunedConfig> results;
  std::set<std::size_t> seen_bk;  // clamping can alias K-tile candidates
  for (const std::size_t groups : space.block_k_groups) {
    const std::size_t bk = std::min(groups * fmt.m, shape.k - shape.k % fmt.m);
    if (bk == 0 || !seen_bk.insert(bk).second) continue;
    for (const std::size_t bc : space.block_c) {
      if (bc > shape.c) continue;
      for (const std::size_t depth : space.batch_sizes) {
        spatha::SpmmConfig cfg;
        cfg.block_k = bk;
        cfg.block_c = bc;
        cfg.warp_r = std::min<std::size_t>(32, fmt.v);
        cfg.warp_k = std::min<std::size_t>(64, bk);
        cfg.warp_c = bc;
        cfg.batch_size = depth;
        try {
          spatha::validate(cfg, fmt, shape.r, shape.k, shape.c);
        } catch (const Error&) {
          continue;
        }
        results.push_back({cfg, spatha_spmm(dev, shape, fmt, cfg)});
      }
    }
  }
  VENOM_CHECK_MSG(!results.empty(),
                  "no valid Spatha configuration for the problem");
  std::sort(results.begin(), results.end(),
            [](const TunedConfig& a, const TunedConfig& b) {
              return a.total_s() < b.total_s();
            });
  // Deduplicate identical times with identical configs is unnecessary;
  // callers take the front or inspect the ranking.
  return results;
}

TunedConfig autotune(const DeviceSpec& dev, GemmShape shape, VnmConfig fmt,
                     const TuneSpace& space) {
  return enumerate_configs(dev, shape, fmt, space).front();
}

}  // namespace venom::gpumodel
