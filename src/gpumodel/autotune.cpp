#include "gpumodel/autotune.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/timing.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/spmm.hpp"

namespace venom::gpumodel {

std::vector<TunedConfig> enumerate_configs(const DeviceSpec& dev,
                                           GemmShape shape, VnmConfig fmt,
                                           const TuneSpace& space) {
  std::vector<TunedConfig> results;
  std::set<std::size_t> seen_bk;  // clamping can alias K-tile candidates
  for (const std::size_t groups : space.block_k_groups) {
    const std::size_t bk = std::min(groups * fmt.m, shape.k - shape.k % fmt.m);
    if (bk == 0 || !seen_bk.insert(bk).second) continue;
    for (const std::size_t bc : space.block_c) {
      if (bc > shape.c) continue;
      for (const std::size_t depth : space.batch_sizes) {
        spatha::SpmmConfig cfg;
        cfg.block_k = bk;
        cfg.block_c = bc;
        cfg.warp_r = std::min<std::size_t>(32, fmt.v);
        cfg.warp_k = std::min<std::size_t>(64, bk);
        cfg.warp_c = bc;
        cfg.batch_size = depth;
        try {
          spatha::validate(cfg, fmt, shape.r, shape.k, shape.c);
        } catch (const Error&) {
          continue;
        }
        results.push_back({cfg, spatha_spmm(dev, shape, fmt, cfg)});
      }
    }
  }
  VENOM_CHECK_MSG(!results.empty(),
                  "no valid Spatha configuration for the problem");
  std::sort(results.begin(), results.end(),
            [](const TunedConfig& a, const TunedConfig& b) {
              return a.total_s() < b.total_s();
            });
  // Deduplicate identical times with identical configs is unnecessary;
  // callers take the front or inspect the ranking.
  return results;
}

TunedConfig autotune(const DeviceSpec& dev, GemmShape shape, VnmConfig fmt,
                     const TuneSpace& space) {
  return enumerate_configs(dev, shape, fmt, space).front();
}

MeasuredResult autotune_measured(const VnmMatrix& a, const HalfMatrix& b,
                                 const TuneSpace& space,
                                 const MeasureOptions& opts) {
  const VnmConfig fmt = a.config();
  VENOM_CHECK_MSG(a.cols() == b.rows(), "SpMM shape mismatch");
  const GemmShape shape{a.rows(), a.cols(), b.cols()};
  ThreadPool* pool = opts.pool != nullptr ? opts.pool : &ThreadPool::global();
  const DeviceSpec& dev = opts.dev != nullptr ? *opts.dev : rtx3090();
  const ops::Dtype dtype = opts.dtype;

  // Reduced-precision images of A, built once up front: every candidate
  // then measures exactly the operand bytes dispatch-time execution of
  // that datapath would consume (the quantization cost is a per-weight
  // one-off at serving time, so it does not belong inside the timer).
  quant::QuantizedVnmMatrix qa;
  quant::Fp8VnmMatrix fa;
  if (dtype == ops::Dtype::kI8) {
    qa = quant::QuantizedVnmMatrix::quantize(a);
  } else if (dtype == ops::Dtype::kF8E5M2 || dtype == ops::Dtype::kF8E4M3) {
    fa = quant::Fp8VnmMatrix::quantize(a, dtype == ops::Dtype::kF8E5M2
                                              ? Fp8Format::kE5M2
                                              : Fp8Format::kE4M3);
  }

  // One call on the datapath under tune. Used for timing and for the
  // winner's verification, so what is verified is what was measured.
  const auto run_once = [&](const spatha::SpmmConfig& cfg,
                            ThreadPool* p) -> FloatMatrix {
    switch (dtype) {
      case ops::Dtype::kI8:
        return quant::spmm_vnm_i8(qa, b, cfg, p);
      case ops::Dtype::kF8E5M2:
      case ops::Dtype::kF8E4M3:
        return quant::spmm_vnm_fp8(fa, b, cfg, p);
      case ops::Dtype::kF16:
        break;
    }
    return spatha::spmm_vnm(a, b, cfg, p);
  };
  const auto measure = [&](const spatha::SpmmConfig& cfg, ThreadPool* p) {
    volatile float sink = 0.0f;  // keep the product from being elided
    return seconds_per_call(
        [&] {
          const FloatMatrix c = run_once(cfg, p);
          sink = sink + c.flat()[0];
        },
        opts.warmup, opts.min_sample_s);
  };

  // Tile candidates: the datapath's fixed heuristic occupies the first
  // of the max_tiles slots, then the analytically best distinct
  // (block_k, block_c) tiles fill the rest — the model prunes the search
  // so only configurations it considers competitive are ever timed.
  const spatha::SpmmConfig heuristic_cfg =
      dtype == ops::Dtype::kI8
          ? spatha::select_config_heuristic_i8(fmt, shape.r, shape.k,
                                               shape.c)
          : spatha::select_config_heuristic(fmt, shape.r, shape.k, shape.c);
  std::vector<spatha::SpmmConfig> tiles = {heuristic_cfg};
  std::set<std::pair<std::size_t, std::size_t>> seen = {
      {heuristic_cfg.block_k, heuristic_cfg.block_c}};
  try {
    for (const TunedConfig& tc : enumerate_configs(dev, shape, fmt, space)) {
      if (tiles.size() >= opts.max_tiles) break;
      if (!seen.insert({tc.config.block_k, tc.config.block_c}).second)
        continue;
      tiles.push_back(tc.config);
    }
  } catch (const Error&) {
    // No analytical candidate validated (degenerate shape); the
    // heuristic tile alone is still measurable.
  }

  const std::vector<std::size_t> grains =
      space.chunk_grains.empty() ? std::vector<std::size_t>{0}
                                 : space.chunk_grains;
  const double flops = spatha::spmm_flops(a, shape.c);

  MeasuredResult result;
  // The heuristic baseline — the untouched heuristic choice for this
  // datapath — is always measured, so best.gflops >= heuristic.gflops
  // holds by construction.
  result.heuristic.config = heuristic_cfg;
  result.heuristic.seconds = measure(heuristic_cfg, pool);
  result.heuristic.gflops = flops / result.heuristic.seconds * 1e-9;
  result.ranked.push_back(result.heuristic);

  for (std::size_t t = 0; t < tiles.size(); ++t) {
    for (const std::size_t grain : grains) {
      spatha::SpmmConfig cfg = tiles[t];
      cfg.chunk_grain = grain;
      // The heuristic's exact config was already timed as the baseline;
      // its other grain variants are distinct candidates and stay in the
      // search (the grain axis is part of what the measured pass tunes).
      if (cfg == heuristic_cfg) continue;
      MeasuredConfig mc;
      mc.config = cfg;
      mc.seconds = measure(cfg, pool);
      mc.gflops = flops / mc.seconds * 1e-9;
      result.ranked.push_back(std::move(mc));
    }
  }
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const MeasuredConfig& x, const MeasuredConfig& y) {
              return x.seconds < y.seconds;
            });
  result.best = result.ranked.front();

  // Thread-count refinement: re-measure the winner under dedicated pools
  // and record the fastest pool size (0 = the measuring pool, already
  // covered). Advisory only — dispatch always runs on the caller's pool,
  // so best/ranked keep the measuring pool's numbers.
  std::size_t best_threads = pool->size();
  double best_refined_s = result.best.seconds;
  for (const std::size_t t : space.thread_counts) {
    if (t == 0 || t == pool->size()) continue;
    ThreadPool scoped(t);
    const double s = measure(result.best.config, &scoped);
    if (s < best_refined_s) {
      best_refined_s = s;
      best_threads = t;
    }
  }

  if (opts.verify) {
    // Each datapath checks against its own scalar oracle: the int8 and
    // fp8 kernels are bit-contracted to their scalar traversals, not to
    // the fp16 reference (whose arithmetic they do not perform).
    const FloatMatrix got = run_once(result.best.config, pool);
    FloatMatrix want;
    switch (dtype) {
      case ops::Dtype::kI8:
        want = quant::spmm_vnm_i8_scalar(qa, b, result.best.config.column_loc);
        break;
      case ops::Dtype::kF8E5M2:
      case ops::Dtype::kF8E4M3:
        want =
            quant::spmm_vnm_fp8_scalar(fa, b, result.best.config.column_loc);
        break;
      case ops::Dtype::kF16:
        want = spatha::spmm_vnm_reference(a, b);
        break;
    }
    VENOM_CHECK_MSG(
        got.size() == want.size() &&
            std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) == 0,
        "tuned config " << result.best.config.describe()
                        << " is not bit-identical to the "
                        << ops::to_string(dtype) << " oracle");
  }

  // The key carries the datapath's feature tag, so the entry lands where
  // the matching select_config_* lookup will find it.
  switch (dtype) {
    case ops::Dtype::kI8:
      result.key = spatha::make_tuning_key_i8(fmt, shape.r, shape.k, shape.c);
      break;
    case ops::Dtype::kF8E5M2:
    case ops::Dtype::kF8E4M3:
      result.key =
          spatha::make_tuning_key_fp8(fmt, shape.r, shape.k, shape.c);
      break;
    case ops::Dtype::kF16:
      result.key = spatha::make_tuning_key(fmt, shape.r, shape.k, shape.c);
      break;
  }
  result.entry.config = result.best.config;
  result.entry.gflops = result.best.gflops;
  result.entry.heuristic_gflops = result.heuristic.gflops;
  result.entry.threads = best_threads;
  return result;
}

}  // namespace venom::gpumodel
