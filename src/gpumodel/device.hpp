// Analytical GPU device model (RTX 3090 / GA102, the paper's testbed).
//
// The paper's timing figures were measured on Sparse Tensor Cores we do
// not have; this model substitutes an analytical latency estimate built
// from the device's published throughput numbers plus calibrated
// efficiency curves. See DESIGN.md §2: the goal is to reproduce *shape*
// (speedup ratios, crossovers, saturation with arithmetic intensity), not
// absolute milliseconds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace venom::gpumodel {

/// Static device capabilities.
struct DeviceSpec {
  std::string name = "NVIDIA GeForce RTX 3090 (GA102, Ampere)";
  std::size_t sm_count = 82;
  double clock_ghz = 1.695;

  // Peak math throughput, FLOP/s.
  double fp16_tc_dense = 71.0e12;   ///< Tensor-core fp16 (fp32 acc), dense.
  double fp16_tc_sparse = 142.0e12; ///< Same with 2:4 sparsity (2x).
  double fp16_cuda_core = 35.6e12;  ///< CUDA-core fp16 FMA (no TCs).

  // Memory system.
  double dram_bw = 936.0e9;   ///< GDDR6X bytes/s.
  double l2_bw = 2.0e12;      ///< Aggregate L2 bytes/s (measured-class).
  double smem_bw = 17.0e12;   ///< Aggregate SMEM bytes/s at 128-bit width.
  std::size_t l2_bytes = 6 * 1024 * 1024;
  std::size_t smem_per_sm = 128 * 1024;

  double kernel_launch_s = 4.0e-6;  ///< Fixed launch + tail latency.
};

/// The default modelled device.
const DeviceSpec& rtx3090();

/// Dense GEMM problem dimensions: C(r x c) = A(r x k) * B(k x c).
struct GemmShape {
  std::size_t r;
  std::size_t k;
  std::size_t c;
  double flops() const { return 2.0 * double(r) * double(k) * double(c); }
};

/// A cost estimate decomposed the way the paper discusses kernels:
/// main-loop compute, main-loop memory, output (stage 3), fixed overhead.
/// Compute and memory overlap (pipelined); the output phase and fixed
/// overhead do not.
struct KernelCost {
  double compute_s = 0;
  double memory_s = 0;
  double output_s = 0;
  double overhead_s = 0;

  /// Total with compute/memory overlap controlled by `pipeline_overlap`
  /// in [0,1]: 1 = perfect overlap (max), 0 = fully serialized (sum).
  double total(double pipeline_overlap = 1.0) const {
    const double overlapped =
        pipeline_overlap * std::max(compute_s, memory_s) +
        (1.0 - pipeline_overlap) * (compute_s + memory_s);
    return overlapped + output_s + overhead_s;
  }
};

}  // namespace venom::gpumodel
