#include "gpumodel/kernel_models.hpp"

#include <algorithm>
#include <cmath>

namespace venom::gpumodel {

namespace {

// ---- calibration constants -----------------------------------------------
// Chosen once so the acceptance criteria in DESIGN.md §5 hold; every
// constant is tied to a published characteristic of the library it models.

// cuBLAS reaches ~60% of tensor-core peak on transformer-sized GEMMs and
// is nearly flat in K (Fig. 12's cuBLAS line).
constexpr double kCublasEffMax = 0.60;
constexpr double kCublasKRamp = 200.0;

// Spatha's efficiency ramps with the *gathered* inner dimension
// K' = 4K/M: short K' cannot fill the mma.sp pipeline (Fig. 9's
// approach-to-peak behaviour). Calibrated so 2:10 reaches ~4.5x of the 5x
// cap and 2:100 ~37x of 50x at K=12288 (paper §4.1 ablation).
constexpr double kSpathaEffMax = 0.60;
constexpr double kSpathaKRamp = 100.0;

// cuSparseLt ramps more slowly — it underperforms Spatha on small GEMMs
// (Fig. 12) and matches it at large K.
constexpr double kCusparseltEffMax = 0.60;
constexpr double kCusparseltKRamp = 600.0;
constexpr double kCusparseltLaunch = 8.0e-6;

// Output phase (stage 3): effective SMEM-staging throughput. The Fig. 8
// padded layout allows 128-bit conflict-free stores; the naive layout
// issues 32-bit stores that serialize 4-way on bank conflicts.
// 32-bit stores pay the 4-way bank-conflict serialization plus the 4x
// instruction-issue count of non-vectorized stores.
constexpr double kStore128Bps = 2.0e12;
constexpr double kStore32Bps = 0.4e12;

// Residual column-loc cost: the dependent B-row gather leaves a small
// per-K-panel latency bubble that the two-level prefetch cannot fully
// hide; amortized by the async-copy pipeline depth (Fig. 9 ablation).
constexpr double kColumnLocPanelLatency = 1.5e-7;

// Sputnik: CUDA-core kernel; efficiency limited by index decode and row
// imbalance, degrading at very high sparsity (short rows cut occupancy —
// this is what caps the library near ~3x over cuBLAS in Fig. 13).
constexpr double kSputnikEffMax = 0.25;
constexpr double kSputnikDensityKnee = 0.05;
// Unstructured column access touches B with poor coalescing.
constexpr double kSputnikBTrafficAmp = 2.0;

// CLASP: tensor-core kernel over column vectors; vector length 8 reaches
// ~20% of dense TC peak (PACT'22 reports ~1.7-7x over cuSPARSE). Sparse
// vector rows shrink with density, degrading occupancy like Sputnik's.
constexpr double kClaspEffMax = 0.20;
constexpr double kClaspDensityKnee = 0.06;

double ramp(double x, double half) { return x / (x + half); }

/// Mild efficiency dependence on output width (narrow C starves warps).
double c_factor(std::size_t c) { return ramp(double(c), 512.0); }

/// Spatha is more sensitive to narrow C than cuBLAS: its gathered panels
/// amortize over output columns, so short C leaves warp tiles underfull.
/// This is what keeps the paper's Fig. 15 GEMM-time reduction (~11x at
/// 2:32, C = 2048) below the Fig. 9 ratios measured at C = 4096.
double spatha_c_factor(std::size_t c) { return ramp(double(c), 1024.0); }

}  // namespace

KernelCost cublas_gemm(const DeviceSpec& dev, GemmShape g) {
  KernelCost cost;
  const double eff =
      kCublasEffMax * ramp(double(g.k), kCublasKRamp) * c_factor(g.c);
  cost.compute_s = g.flops() / (dev.fp16_tc_dense * eff);
  const double bytes =
      2.0 * (double(g.r) * g.k + double(g.k) * g.c) + 4.0 * double(g.r) * g.c;
  cost.memory_s = bytes / dev.dram_bw;
  cost.overhead_s = dev.kernel_launch_s;
  return cost;
}

KernelCost cusparselt_spmm(const DeviceSpec& dev, GemmShape g) {
  KernelCost cost;
  // cuSparseLt is the same class of SPTC SpMM pipeline as Spatha, so it
  // shares the narrow-C sensitivity (spatha_c_factor); only its K ramp is
  // slower (Fig. 12's small-GEMM crossover).
  const double eff = kCusparseltEffMax * ramp(double(g.k), kCusparseltKRamp) *
                     spatha_c_factor(g.c);
  // 2:4: half the multiplications, executed at the doubled SPTC rate.
  cost.compute_s = g.flops() / (dev.fp16_tc_sparse * eff);
  const double bytes = 2.0 * (double(g.r) * g.k / 2.0 + double(g.k) * g.c) +
                       0.25 * double(g.r) * g.k / 2.0 +  // metadata
                       4.0 * double(g.r) * g.c;
  cost.memory_s = bytes / dev.dram_bw;
  cost.output_s = 4.0 * double(g.r) * g.c / kStore128Bps;
  cost.overhead_s = kCusparseltLaunch;
  return cost;
}

KernelCost spatha_spmm(const DeviceSpec& dev, GemmShape g, VnmConfig fmt,
                       const spatha::SpmmConfig& cfg) {
  KernelCost cost;
  const double sel = double(fmt.selected_cols());
  const double gathered_k = sel * double(g.k) / double(fmt.m);

  // Stage 2: the SPTC executes the gathered 2:4 problem R x K' x C at the
  // sparse rate -> compute-bound speedup cap M/2 over dense.
  const double eff =
      kSpathaEffMax * ramp(gathered_k, kSpathaKRamp) * spatha_c_factor(g.c);
  const double gathered_flops = 2.0 * double(g.r) * gathered_k * double(g.c);
  cost.compute_s = gathered_flops / (dev.fp16_tc_sparse * eff);

  // Stage 1 memory: compressed A (values + 2-bit m-indices), the selected
  // B rows once from DRAM, and the per-block-row panel re-reads from L2 —
  // the term that rewards large V (Fig. 10).
  const double nnz = double(g.r) * double(g.k) / double(fmt.m) * double(fmt.n);
  const double a_bytes = nnz * 2.0 + nnz * 0.25;
  const double b_dram = gathered_k * double(g.c) * 2.0;
  const double block_rows = double(g.r) / double(fmt.v);
  const double b_l2 = std::max(0.0, block_rows - 1.0) * b_dram;
  cost.memory_s = (a_bytes + b_dram) / dev.dram_bw + b_l2 / dev.l2_bw;

  // Stage 3: output staging through SMEM at the layout-dependent rate.
  const double out_bytes = 4.0 * double(g.r) * double(g.c);
  cost.output_s = out_bytes / (cfg.store_width == spatha::StoreWidth::k128bit
                                   ? kStore128Bps
                                   : kStore32Bps);

  // column-loc: metadata traffic plus the residual dependent-load bubble
  // per K panel, divided by the async-copy pipeline depth.
  cost.overhead_s = dev.kernel_launch_s;
  if (cfg.column_loc == spatha::ColumnLocMode::kEnabled) {
    const double cloc_bytes =
        block_rows * (double(g.k) / double(fmt.m)) * sel;
    const double c_tiles = std::ceil(double(g.c) / double(cfg.block_c));
    const double blocks = block_rows * c_tiles;
    const double waves = std::ceil(blocks / double(dev.sm_count));
    const double panels = std::ceil(double(g.k) / double(cfg.block_k));
    cost.overhead_s += cloc_bytes / dev.l2_bw +
                       waves * panels * kColumnLocPanelLatency /
                           double(cfg.batch_size);
  }
  return cost;
}

KernelCost spatha_spmm(const DeviceSpec& dev, GemmShape g, VnmConfig fmt) {
  // Deliberately the fixed heuristic, not select_config: the analytical
  // model reproduces the paper's GPU figures and must not shift when a
  // CPU-measured tuning cache ($VENOM_TUNE_CACHE) is loaded.
  return spatha_spmm(dev, g, fmt,
                     spatha::select_config_heuristic(fmt, g.r, g.k, g.c));
}

KernelCost sputnik_spmm(const DeviceSpec& dev, GemmShape g, double density) {
  KernelCost cost;
  const double nnz = density * double(g.r) * double(g.k);
  // CUDA cores only; short rows at high sparsity cut occupancy.
  const double eff = kSputnikEffMax * ramp(density, kSputnikDensityKnee) *
                     c_factor(g.c);
  cost.compute_s = 2.0 * nnz * double(g.c) / (dev.fp16_cuda_core * eff);
  // CSR values+indices, amplified B traffic (unstructured gather touches
  // rows with poor coalescing), output.
  const double bytes = nnz * 6.0 +
                       kSputnikBTrafficAmp * double(g.k) * g.c * 2.0 +
                       4.0 * double(g.r) * g.c;
  cost.memory_s = bytes / dev.dram_bw;
  cost.overhead_s = dev.kernel_launch_s;
  return cost;
}

KernelCost clasp_spmm(const DeviceSpec& dev, GemmShape g, double density,
                      std::size_t vec_len) {
  KernelCost cost;
  // Kept vectors are dense in-column: compute spans all stored elements.
  const double nnz = density * double(g.r) * double(g.k);
  const double vl_eff = ramp(double(vec_len), 2.0);  // longer vectors -> TC-friendlier
  const double eff = kClaspEffMax * vl_eff * ramp(density, kClaspDensityKnee) *
                     c_factor(g.c);
  cost.compute_s = 2.0 * nnz * double(g.c) / (dev.fp16_tc_dense * eff);
  const double vectors = nnz / double(vec_len);
  const double bytes = nnz * 2.0 + vectors * 4.0 +
                       double(g.k) * g.c * 2.0 + 4.0 * double(g.r) * g.c;
  cost.memory_s = bytes / dev.dram_bw;
  cost.overhead_s = dev.kernel_launch_s;
  return cost;
}

KernelCost elementwise(const DeviceSpec& dev, double bytes) {
  KernelCost cost;
  cost.memory_s = bytes / (0.8 * dev.dram_bw);
  cost.overhead_s = dev.kernel_launch_s;
  return cost;
}

double tflops(const KernelCost& cost, double flops) {
  return flops / cost.total() / 1.0e12;
}

double speedup_vs_cublas(const DeviceSpec& dev, GemmShape g,
                         const KernelCost& cost) {
  return cublas_gemm(dev, g).total() / cost.total();
}

}  // namespace venom::gpumodel
