#include "gpumodel/device.hpp"

namespace venom::gpumodel {

const DeviceSpec& rtx3090() {
  static const DeviceSpec spec{};
  return spec;
}

}  // namespace venom::gpumodel
