// Serving walkthrough: scaled sparse-transformer inference with the
// Request/Response API, an EngineGroup of replicas, and admission
// control.
//
//   $ ./example_serving
//
// Walks through the serving layer end to end:
//   1. build a small encoder and prune every linear weight to V:N:M,
//   2. take a reference forward through a caller-owned ops::ExecContext,
//   3. hand the encoder to an EngineGroup — N replicas share the
//      read-only weights while each dispatches through a private
//      ExecContext, behind least-queued-tokens routing,
//   4. submit serving::Requests (tenant, priority, deadline) and read
//      the serving telemetry off each Response,
//   5. verify a routed request's output is bit-identical to the
//      unbatched forward, watch a rate-limited tenant get shed with a
//      typed AdmissionError, and read the group statistics.
#include <cstdio>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "serving/router.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

using namespace venom;

int main() {
  // 1. A 2-layer encoder, every weight magnitude-pruned to 64:2:8 (75%
  //    sparsity) so all six GEMMs per layer run through Spatha.
  const transformer::ModelConfig model{.name = "demo", .layers = 2,
                                       .hidden = 128, .heads = 4,
                                       .ffn_hidden = 256, .seq_len = 16};
  Rng rng(7);
  transformer::Encoder encoder(model, rng);
  encoder.sparsify({64, 2, 8});

  // 2. A reference forward through a caller-owned execution context (the
  //    thread pool, plan cache, tuning cache, and kernel scratch a
  //    dispatch runs against). Computed before the group takes ownership
  //    of the encoder.
  ops::ExecContext ctx;
  Rng data_rng(100);
  const HalfMatrix probe = random_half_matrix(model.hidden, 8, data_rng);
  const HalfMatrix probe_ref = encoder.forward(probe, nullptr, &ctx);
  std::printf("reference forward: plan cache %zu misses (one per pruned "
              "weight), %zu hits\n",
              ctx.plan_cache().misses(), ctx.plan_cache().hits());

  // 3. The group owns the encoder once, shared read-only across two
  //    replicas; each replica batches up to 64 tokens per forward pass
  //    (waiting at most 2 ms for stragglers) through its own private
  //    ExecContext. Admission control caps the in-flight queue and rate-
  //    limits the "guest" tenant to a handful of tokens per second.
  serving::Options opts;
  opts.batching.max_batch_tokens = 64;
  opts.batching.max_batch_requests = 16;
  opts.batching.max_wait = std::chrono::milliseconds(2);
  opts.replicas = 2;
  opts.admission.max_queued_tokens = 512;
  opts.admission.tenants["guest"] = {.tokens_per_s = 8.0,
                                     .burst_tokens = 16.0};
  serving::EngineGroup group(std::move(encoder), opts);

  // 4. Submit a burst of requests with ragged lengths (4..16 tokens).
  //    submit() is thread-safe; here one thread queues them all, the
  //    router spreads them over the least-loaded replicas, and each
  //    replica's batcher packs them along the token axis.
  std::vector<std::future<serving::Response>> futures;
  for (int i = 0; i < 12; ++i) {
    Rng req_rng(200 + i);
    serving::Request req;
    req.input = random_half_matrix(model.hidden, 4 + 4 * (i % 4), req_rng);
    req.tenant = "demo";
    req.priority = i % 2;  // odd requests jump the queue within a batch
    futures.push_back(group.submit(std::move(req)));
  }

  for (auto& f : futures) {
    const serving::Response r = f.get();
    std::printf("served request %llu on replica %u: %zux%zu output, "
                "queued %.3f ms, exec %.3f ms, co-batched with %zu tokens\n",
                static_cast<unsigned long long>(r.id), r.replica,
                r.output.rows(), r.output.cols(), r.queue_ms, r.exec_ms,
                r.batch_tokens);
  }

  // 5a. Routing and batching must not change results: the probe's served
  //     output is bit-identical to the unbatched forward computed above,
  //     whichever replica and batch served it.
  serving::Request probe_req;
  probe_req.input = probe;
  const serving::Response probe_resp = group.submit(std::move(probe_req)).get();
  bool identical = probe_resp.output.rows() == probe_ref.rows() &&
                   probe_resp.output.cols() == probe_ref.cols();
  for (std::size_t i = 0; identical && i < probe_ref.size(); ++i)
    identical =
        probe_resp.output.flat()[i].bits() == probe_ref.flat()[i].bits();
  std::printf("probe output bit-identical to unbatched forward: %s\n",
              identical ? "yes" : "NO");

  // 5b. Overload is shed with a typed error, never an unbounded queue:
  //     the "guest" tenant's bucket holds 16 tokens, so a second 16-token
  //     request inside the same second is rejected at submit().
  bool guest_shed = false;
  try {
    for (int i = 0; i < 2; ++i) {
      Rng guest_rng(300 + i);
      serving::Request req;
      req.input = random_half_matrix(model.hidden, 16, guest_rng);
      req.tenant = "guest";
      group.submit(std::move(req)).get();
    }
  } catch (const serving::AdmissionError& e) {
    guest_shed = e.reason() == serving::AdmissionReason::kRateLimited;
    std::printf("guest tenant shed as expected: %s\n", e.what());
  }

  const serving::GroupStats stats = group.stats();
  std::printf("group served %zu requests (%zu tokens) in %zu batches "
              "across %zu replicas; %zu admitted, %zu rate-limited\n",
              stats.requests, stats.tokens, stats.batches,
              stats.replicas.size(), stats.admission.admitted,
              stats.admission.rejected_rate);
  for (std::size_t i = 0; i < stats.replicas.size(); ++i) {
    const serving::ServingStats& s = stats.replicas[i];
    std::printf("  replica %zu: %zu requests, %zu batches, avg %.1f "
                "tokens/batch, p50 %.3f ms, plan cache %zu hits / %zu "
                "misses\n",
                i, s.requests, s.batches, s.avg_batch_tokens, s.p50_ms,
                s.plan_cache_hits, s.plan_cache_misses);
  }
  return identical && guest_shed ? 0 : 1;
}
