// Serving walkthrough: batched sparse-transformer inference with the
// InferenceEngine, built on the venom::ops execution context.
//
//   $ ./example_serving
//
// Walks through the serving layer end to end:
//   1. build a small encoder and prune every linear weight to V:N:M,
//   2. attach an ops::ExecContext (pool + plan cache + tuning cache +
//      kernel scratch) and take a reference forward through it,
//   3. hand the encoder to an InferenceEngine — the engine owns its own
//      ExecContext that every layer dispatches through,
//   4. submit concurrent requests and await their futures,
//   5. verify a request's output is bit-identical to an unbatched
//      forward, and read the engine's serving + context statistics.
#include <cstdio>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "serving/engine.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

using namespace venom;

int main() {
  // 1. A 2-layer encoder, every weight magnitude-pruned to 64:2:8 (75%
  //    sparsity) so all six GEMMs per layer run through Spatha.
  const transformer::ModelConfig model{.name = "demo", .layers = 2,
                                       .hidden = 128, .heads = 4,
                                       .ffn_hidden = 256, .seq_len = 16};
  Rng rng(7);
  transformer::Encoder encoder(model, rng);
  encoder.sparsify({64, 2, 8});

  // 2. A caller-owned execution context: the thread pool, plan cache,
  //    tuning cache, and kernel scratch every dispatch below shares.
  //    (Without one, forwards use ops::ExecContext::global().) Keep a
  //    reference output to demonstrate bit-identity later — the engine
  //    takes ownership of the encoder below, so compute this first.
  ops::ExecContext ctx;
  encoder.set_exec_context(&ctx);
  Rng data_rng(100);
  const HalfMatrix probe = random_half_matrix(model.hidden, 8, data_rng);
  const HalfMatrix probe_ref = encoder.forward(probe);
  std::printf("reference forward: plan cache %zu misses (one per pruned "
              "weight), %zu hits\n",
              ctx.plan_cache().misses(), ctx.plan_cache().hits());
  encoder.set_exec_context(nullptr);  // the engine attaches its own

  // 3. The engine owns the encoder (and a private ExecContext for it).
  //    The batcher coalesces queued requests into forward passes of up
  //    to 64 tokens, waiting at most 2 ms for stragglers; the context's
  //    plan cache reuses kernel configurations and packed-panel scratch
  //    across batches.
  serving::ServingConfig cfg;
  cfg.batching.max_batch_tokens = 64;
  cfg.batching.max_batch_requests = 16;
  cfg.batching.max_wait = std::chrono::milliseconds(2);
  serving::InferenceEngine engine(std::move(encoder), cfg);

  // 4. Submit a burst of requests with ragged lengths (4..16 tokens).
  //    submit() is thread-safe; here one thread queues them all and the
  //    batcher packs them along the token axis.
  std::vector<std::future<HalfMatrix>> futures;
  std::size_t submitted_tokens = 0;
  for (int i = 0; i < 12; ++i) {
    Rng req_rng(200 + i);
    const std::size_t tokens = 4 + 4 * (i % 4);
    submitted_tokens += tokens;
    futures.push_back(
        engine.submit(random_half_matrix(model.hidden, tokens, req_rng)));
  }
  futures.push_back(engine.submit(probe));

  for (auto& f : futures) {
    const HalfMatrix y = f.get();
    std::printf("served request: %zux%zu output\n", y.rows(), y.cols());
  }

  // 5. Batching must not change results: the probe's served output is
  //    bit-identical to the unbatched forward computed above (even
  //    though the two passes ran through different ExecContexts).
  const HalfMatrix probe_served = engine.submit(probe).get();
  bool identical = probe_served.rows() == probe_ref.rows() &&
                   probe_served.cols() == probe_ref.cols();
  for (std::size_t i = 0; identical && i < probe_ref.size(); ++i)
    identical = probe_served.flat()[i].bits() == probe_ref.flat()[i].bits();
  std::printf("probe output bit-identical to unbatched forward: %s\n",
              identical ? "yes" : "NO");

  const serving::ServingStats stats = engine.stats();
  std::printf("served %zu requests (%zu tokens) in %zu batches; avg batch "
              "%.1f tokens\n",
              stats.requests, stats.tokens, stats.batches,
              stats.avg_batch_tokens);
  std::printf("latency p50 %.3f ms, p99 %.3f ms; plan cache %zu hits / %zu "
              "misses; peak arena %zu bytes\n",
              stats.p50_ms, stats.p99_ms, stats.plan_cache_hits,
              stats.plan_cache_misses, stats.peak_arena_bytes);
  std::printf("engine context: plan cache holds %zu plans (capacity %zu)\n",
              engine.context().plan_cache().size(),
              engine.context().plan_cache().capacity());
  return identical ? 0 : 1;
}
