// Quickstart: compress a matrix to the V:N:M format, multiply it with
// Spatha, and check the result against the dense reference.
//
//   $ ./quickstart
//
// Walks through the library's core loop:
//   1. synthesize a dense fp16 weight matrix,
//   2. magnitude-prune it into VENOM's V:N:M format (here 64:2:8 = 75%),
//   3. run the Spatha SpMM against a dense activation matrix,
//   4. verify against dense GEMM and print format statistics.
#include <cstdio>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "format/vnm.hpp"
#include "spatha/spmm.hpp"

using namespace venom;

int main() {
  // 1. A 512 x 1024 fp16 weight and a 1024 x 256 activation matrix.
  Rng rng(42);
  const HalfMatrix weight = random_half_matrix(512, 1024, rng, 0.05f);
  const HalfMatrix activations = random_half_matrix(1024, 256, rng, 0.05f);

  // 2. Prune + compress to V:N:M = 64:2:8 (75% sparsity). The format
  //    keeps, per 64x8 block, the 4 most significant columns, and per row
  //    the 2 largest weights among them — executable on 2:4 SPTCs.
  const VnmConfig cfg{64, 2, 8};
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(weight, cfg);

  std::printf("V:N:M          : %zu:%zu:%zu (%.0f%% sparse)\n", cfg.v, cfg.n,
              cfg.m, cfg.sparsity() * 100.0);
  std::printf("dense bytes    : %zu\n", weight.size() * sizeof(half_t));
  std::printf("compressed     : %zu (values + 2-bit m-indices + column-loc)\n",
              sparse.compressed_bytes());
  std::printf("nonzeros       : %zu of %zu\n", sparse.nnz(), weight.size());

  // 3. Sparse x dense with Spatha (tile sizes picked by the heuristic).
  const FloatMatrix c_sparse = spatha::spmm_vnm(sparse, activations);

  // 4. Reference: dense GEMM of the decompressed (pruned) weight.
  const FloatMatrix c_ref = gemm_dense(sparse.to_dense(), activations);
  const float err = rel_fro_error(c_sparse, c_ref);
  std::printf("rel. error     : %.3e  %s\n", double(err),
              err < 1e-5f ? "(bit-faithful modulo fp32 sum order)" : "(!!)");

  // How much the pruning changed the layer's output (information lost).
  const FloatMatrix c_dense = gemm_dense(weight, activations);
  std::printf("pruning impact : %.1f%% relative output deviation\n",
              double(rel_fro_error(c_ref, c_dense)) * 100.0);
  return 0;
}
