// Example: sparse training steps through a V:N:M layer (paper §9a).
//
// The paper's STen integration makes "distributed sparse training a
// direct application" of Spatha. This example runs the single-node core
// of that loop on a toy regression task:
//
//   forward   y = W_vnm x + b            (Spatha SpMM, fused bias)
//   loss      L = 1/2 ||y - t||^2
//   backward  dL/dx = W^T dL/dy          (transposed SpMM, ops::matmul_t)
//             dL/dW = dL/dy x^T           sampled at the surviving
//                                         pattern (masked SDDMM)
//   update    Linear::apply_gradients — SGD on the surviving weights
//
// The loss decreases while the weight matrix stays exactly in the
// V:N:M format throughout (re-verified every step). For the full
// prune -> convert -> fine-tune driver see pruning::finetune_linear and
// `venomtool finetune-bench`.
#include <cstdio>

#include <cmath>

#include "common/rng.hpp"
#include "format/vnm.hpp"
#include "transformer/linear.hpp"

using namespace venom;
using namespace venom::transformer;

int main() {
  // Teacher-student: the student must fit a random teacher layer from
  // (x, t) pairs while constrained to 75% V:N:M sparsity.
  Rng rng(5);
  const std::size_t out = 32, in = 64, batch = 16;
  Linear teacher = Linear::random(out, in, rng);
  Linear student = Linear::random(out, in, rng);
  const VnmConfig cfg{8, 2, 8};
  student.sparsify(cfg);

  const float lr = 0.1f;
  std::printf("student 32x64 constrained to %zu:%zu:%zu (%.0f%% sparse), "
              "SGD lr=%.2f\n\n",
              cfg.v, cfg.n, cfg.m, cfg.sparsity() * 100.0, double(lr));

  for (int step = 0; step <= 50; ++step) {
    // Fresh minibatch from the teacher.
    const HalfMatrix x = random_half_matrix(in, batch, rng, 0.5f);
    const HalfMatrix t = teacher.forward(x);

    // Forward through the sparse student.
    const HalfMatrix y = student.forward(x);

    // L = 1/2 ||y - t||^2; dL/dy = y - t.
    FloatMatrix grad_y(out, batch);
    double loss = 0.0;
    for (std::size_t o = 0; o < out; ++o)
      for (std::size_t s = 0; s < batch; ++s) {
        const float d = y(o, s).to_float() - t(o, s).to_float();
        grad_y(o, s) = d;
        loss += 0.5 * double(d) * d;
      }
    if (step % 10 == 0)
      std::printf("  step %3d   loss %10.4f\n", step,
                  loss / double(batch));

    // Backward: input grad via the transposed sparse kernel, weight grad
    // via the masked SDDMM — pruned coordinates are never even computed,
    // so updates cannot resurrect dead weights.
    Linear::Grads grads = student.backward(x, grad_y);
    for (auto& g : grads.weight.flat()) g /= float(batch);
    for (auto& g : grads.bias) g /= float(batch);

    // Projected SGD step on the surviving weights; the layer recompresses
    // in place under its fixed pattern.
    student.apply_gradients(grads, lr);
    VENOM_CHECK(VnmMatrix::conforms(student.sparse_weight().to_dense(),
                                    cfg));  // pattern never breaks
  }

  std::printf(
      "\nThe constrained student converges toward the dense teacher while\n"
      "every forward/backward runs through V:N:M sparse kernels — the\n"
      "sparse-training application of §9a.\n");
  return 0;
}
