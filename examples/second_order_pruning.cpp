// Example: second-order (OBS) pruning to V:N:M with the structure-decay
// scheduler (Section 6 end to end).
//
// Uses a synthetic quadratic model with a known block Hessian so the loss
// increase of every decision is exact. Compares:
//   magnitude one-shot  vs  OBS one-shot  vs  OBS + structure decay,
// at the 87.5% (2:16) sparsity of Table 2, and shows the empirical-Fisher
// path (estimating curvature from sampled gradients) used when the true
// Hessian is unavailable.
#include <cstdio>

#include "common/rng.hpp"
#include "pruning/fisher.hpp"
#include "pruning/obs.hpp"
#include "pruning/policies.hpp"
#include "pruning/quadratic.hpp"
#include "pruning/scheduler.hpp"

using namespace venom;
using namespace venom::pruning;

int main() {
  Rng rng(3);
  // 64 x 64 weights, Hessian blocks over 1x16 groups, strong correlation
  // (the regime where second-order selection matters most).
  QuadraticModel model = QuadraticModel::synthesize(64, 64, 16, rng, 0.85);
  const GroupFisher exact = model.fisher();
  const VnmConfig target{64, 2, 16};  // 87.5% sparsity
  const double norm = model.normalizer();

  std::printf("Quadratic model 64x64, M=16 blocks, target %zu:%zu:%zu "
              "(%.1f%% sparse)\n\n",
              target.v, target.n, target.m, target.sparsity() * 100.0);
  std::printf("%-34s %14s\n", "method", "dLoss/norm");

  // Magnitude baseline: no curvature, no weight update.
  {
    HalfMatrix hw(64, 64);
    for (std::size_t i = 0; i < hw.size(); ++i)
      hw.flat()[i] = half_t(model.optimum().flat()[i]);
    const HalfMatrix pruned = prune_vnm(hw, target);
    FloatMatrix w(64, 64);
    for (std::size_t i = 0; i < w.size(); ++i)
      w.flat()[i] = pruned.flat()[i].to_float();
    std::printf("%-34s %14.4f\n", "magnitude one-shot",
                model.loss(w) / norm);
  }

  // OBS one-shot with the exact Hessian.
  const ObsResult oneshot =
      obs_prune_vnm(model.optimum(), exact, target, SelectionMode::kAuto);
  std::printf("%-34s %14.4f\n", "OBS one-shot (exact Fisher)",
              model.loss(oneshot.weights) / norm);

  // OBS + structure decay: N walks 8 -> 4 -> 2 (Section 6.1.1).
  const DecaySchedule sched = structure_decay_schedule(8, 2, 3);
  const ObsResult gradual = obs_prune_vnm_gradual(
      model.optimum(), exact, target, sched, SelectionMode::kAuto);
  std::printf("%-34s %14.4f   (N: 8 -> 4 -> 2)\n",
              "OBS + structure decay", model.loss(gradual.weights) / norm);

  // Empirical Fisher: curvature estimated from 128 sampled gradients —
  // the path a real model (no closed-form Hessian) uses.
  std::vector<FloatMatrix> grads;
  for (int s = 0; s < 128; ++s) {
    FloatMatrix w = model.optimum();
    for (auto& v : w.flat()) v += 0.1f * rng.normal();
    grads.push_back(model.gradient(w));
  }
  const GroupFisher estimated = GroupFisher::estimate(grads, 16, 1e-3);
  const ObsResult emp =
      obs_prune_vnm(model.optimum(), estimated, target, SelectionMode::kAuto);
  std::printf("%-34s %14.4f   (128 gradient samples)\n",
              "OBS one-shot (empirical Fisher)", model.loss(emp.weights) / norm);

  std::printf(
      "\nReading: OBS beats magnitude because it prices in curvature and\n"
      "refits survivors; the decay scheduler softens the final step; the\n"
      "empirical Fisher approaches the exact result as samples grow.\n");
  return 0;
}
