// Example: pruning a BERT-style linear layer across V:N:M configurations.
//
// Mirrors the workflow behind Figs. 9-11: take an encoder weight with
// outlier-column structure, prune it to several V:N:M configurations,
// and report (a) retained energy, (b) compressed footprint, (c) real CPU
// kernel error vs the dense layer, (d) the modeled RTX 3090 speedup the
// same layer would see through Spatha.
#include <cstdio>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "gpumodel/kernel_models.hpp"
#include "pruning/policies.hpp"
#include "spatha/spmm.hpp"

using namespace venom;

int main() {
  // BERT-base FFN-in layer: 3072 x 768, seq 512 x batch 8 activations.
  Rng rng(7);
  const HalfMatrix w = pruning::synthetic_bert_weight(3072, 768, rng);
  const HalfMatrix x = random_half_matrix(768, 512, rng, 0.05f);
  const FloatMatrix y_dense = gemm_dense(w, x);
  const gpumodel::GemmShape shape{3072, 768, 4096};

  std::printf("BERT-base FFN layer 3072x768, activations 768x512\n\n");
  std::printf("%10s %10s %12s %12s %12s\n", "V:N:M", "sparsity", "energy",
              "out-dev%", "model-spdup");

  const VnmConfig configs[] = {
      {64, 2, 4}, {64, 2, 8}, {64, 2, 16}, {128, 2, 8}, {128, 2, 16},
      {128, 2, 32},
  };
  for (const VnmConfig cfg : configs) {
    const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(w, cfg);
    const HalfMatrix pruned = sparse.to_dense();
    const double e = pruning::energy(pruned, w);

    // Real kernel: Spatha SpMM on the CPU, deviation vs the dense layer.
    const FloatMatrix y_sparse = spatha::spmm_vnm(sparse, x);
    const double dev = double(rel_fro_error(y_sparse, y_dense)) * 100.0;

    // Modeled GPU speedup of this layer at inference batch 8.
    const double spd = gpumodel::speedup_vs_cublas(
        gpumodel::rtx3090(), shape,
        gpumodel::spatha_spmm(gpumodel::rtx3090(), shape, cfg));

    std::printf("%4zu:%zu:%-3zu %9.0f%% %12.3f %12.1f %11.2fx\n", cfg.v,
                cfg.n, cfg.m, cfg.sparsity() * 100.0, e, dev, spd);
  }
  std::printf(
      "\nReading: energy and output deviation quantify the accuracy cost;\n"
      "the modeled speedup is what the same layer gains on SPTCs. The\n"
      "trade-off between them is the V:N:M design space of the paper.\n");
  return 0;
}
