// Example: sparse transformer inference end to end (the Fig. 14/15
// workflow at laptop scale).
//
// Builds a 2-layer encoder with BERT-like geometry, runs a dense forward
// pass, sparsifies every linear weight to V:N:M (rerouting all six GEMMs
// per layer through Spatha), runs again, and reports:
//   - measured CPU timing breakdown (GEMMs / softmax / matmul / others),
//   - output agreement between dense and sparse models,
//   - the modeled RTX 3090 latency for the real BERT-large at batch 32.
#include <cstdio>

#include "common/rng.hpp"
#include "transformer/encoder.hpp"
#include "transformer/latency_model.hpp"

using namespace venom;
using namespace venom::transformer;

namespace {

void print_breakdown(const char* label, const TimingBreakdown& t) {
  std::printf("%-8s gemm %7.1fms | matmul %6.1fms | softmax %5.1fms | "
              "other %5.1fms | total %7.1fms\n",
              label, t.gemm_s * 1e3, t.attn_matmul_s * 1e3,
              t.softmax_s * 1e3, t.other_s * 1e3, t.total() * 1e3);
}

}  // namespace

int main() {
  // A scaled-down BERT: 2 layers, hidden 256, 8 heads, seq 64.
  const ModelConfig cfg{.name = "mini-BERT", .layers = 2, .hidden = 256,
                        .heads = 8, .ffn_hidden = 1024, .seq_len = 64};
  Rng rng(11);
  Encoder dense_model(cfg, rng);
  Rng rng_same(11);
  Encoder sparse_model(cfg, rng_same);  // identical weights
  const VnmConfig sparsity{64, 2, 8};   // 75%
  sparse_model.sparsify(sparsity);

  Rng data_rng(23);
  const HalfMatrix x = random_half_matrix(cfg.hidden, cfg.seq_len, data_rng,
                                          0.5f);

  TimingBreakdown t_dense, t_sparse;
  const HalfMatrix y_dense = dense_model.forward(x, &t_dense);
  const HalfMatrix y_sparse = sparse_model.forward(x, &t_sparse);

  std::printf("mini-BERT (%zu layers, hidden %zu, seq %zu), weights 64:2:8\n\n",
              cfg.layers, cfg.hidden, cfg.seq_len);
  std::printf("Measured CPU forward-pass breakdown:\n");
  print_breakdown("dense", t_dense);
  print_breakdown("sparse", t_sparse);

  // Output agreement (cosine similarity across all activations).
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < y_dense.size(); ++i) {
    const double a = y_dense.flat()[i].to_float();
    const double b = y_sparse.flat()[i].to_float();
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  std::printf("\ndense/sparse output cosine similarity: %.4f\n",
              dot / std::sqrt(n1 * n2));

  // What the same sparsification buys on the paper's testbed.
  const auto& dev = gpumodel::rtx3090();
  const auto lat_d = model_encoder_latency(dev, bert_large(), 32, std::nullopt);
  const auto lat_s = model_encoder_latency(dev, bert_large(), 32, sparsity);
  std::printf(
      "\nModeled BERT-large (24 layers, bs=32) on RTX 3090:\n"
      "  dense  %.0fms   sparse(64:2:8)  %.0fms   -> %.2fx end-to-end,\n"
      "  GEMM time %.0fms -> %.0fms (%.1fx tensor-contraction reduction)\n",
      lat_d.total() * 1e3, lat_s.total() * 1e3, lat_d.total() / lat_s.total(),
      lat_d.gemm_s * 1e3, lat_s.gemm_s * 1e3, lat_d.gemm_s / lat_s.gemm_s);
  return 0;
}
