// Example: V:N:M sparse kernels outside deep learning (paper §9a).
//
// The paper notes Spatha is a general SpMM tool, not a DL-only one. This
// example builds a 2-D diffusion operator (5-point stencil), stores its
// off-diagonal part in the V:N:M format, and runs weighted-Jacobi
// iterations whose hot loop is the Spatha SpMM over a block of
// right-hand sides:
//
//   X_{k+1} = (1-w) X_k + w D^-1 (B - R X_k),   A = D + R
//
// A banded operator conforms naturally to V:N:M with a modest M: within
// any V x M block the stencil occupies few distinct columns, so the
// vector-wise stage loses nothing and the kernel runs at N:M=2:M cost.
#include <cstdio>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "format/vnm.hpp"
#include "spatha/spmm.hpp"

using namespace venom;

namespace {

// Grid is g x g unknowns; matrix is n x n with n = g*g.
constexpr std::size_t kGrid = 24;
constexpr std::size_t kN = kGrid * kGrid;  // 576
constexpr std::size_t kRhs = 16;           // solve 16 systems at once

/// Builds the off-diagonal part R of the 5-point Laplacian (diagonal 4).
HalfMatrix build_off_diagonal() {
  HalfMatrix r(kN, kN);
  const auto at = [](std::size_t i, std::size_t j) { return i * kGrid + j; };
  for (std::size_t i = 0; i < kGrid; ++i)
    for (std::size_t j = 0; j < kGrid; ++j) {
      const std::size_t row = at(i, j);
      if (i > 0) r(row, at(i - 1, j)) = half_t(-1.0f);
      if (i + 1 < kGrid) r(row, at(i + 1, j)) = half_t(-1.0f);
      if (j > 0) r(row, at(i, j - 1)) = half_t(-1.0f);
      if (j + 1 < kGrid) r(row, at(i, j + 1)) = half_t(-1.0f);
    }
  return r;
}

double residual_norm(const HalfMatrix& r_dense, const FloatMatrix& x,
                     const FloatMatrix& b) {
  // ||b - (D + R) x||_F with D = 4 I.
  double acc = 0.0;
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t s = 0; s < kRhs; ++s) {
      double ax = 4.0 * x(i, s);
      for (std::size_t j = 0; j < kN; ++j) {
        const float v = r_dense(i, j).to_float();
        if (v != 0.0f) ax += double(v) * x(j, s);
      }
      const double d = b(i, s) - ax;
      acc += d * d;
    }
  return std::sqrt(acc);
}

}  // namespace

int main() {
  const HalfMatrix r_dense = build_off_diagonal();

  // Within any 2 x 8 block the stencil occupies at most 4 distinct
  // columns ({i-1, i, i+1, i+2} for the horizontal neighbours of two
  // consecutive rows; the vertical neighbours land in other groups), and
  // each row has at most 2 entries per group — so compression to 2:2:8 is
  // exactly lossless for this operator.
  const VnmConfig cfg{2, 2, 8};
  VENOM_CHECK(VnmMatrix::conforms(r_dense, cfg));
  const VnmMatrix r_sparse = VnmMatrix::compress(r_dense, cfg);
  std::printf("diffusion operator %zux%zu: dense %zu bytes -> V:N:M %zu "
              "bytes (%.1fx), lossless\n",
              kN, kN, kN * kN * 2, r_sparse.compressed_bytes(),
              double(kN * kN * 2) / double(r_sparse.compressed_bytes()));

  // Random right-hand sides, zero initial guess.
  Rng rng(31);
  FloatMatrix b = random_float_matrix(kN, kRhs, rng, 1.0f);
  FloatMatrix x(kN, kRhs, 0.0f);
  const float omega = 0.8f;

  std::printf("\nweighted Jacobi (omega=%.1f), %zu right-hand sides:\n",
              double(omega), kRhs);
  for (int iter = 0; iter <= 60; ++iter) {
    if (iter % 10 == 0)
      std::printf("  iter %3d   residual %.4e\n", iter,
                  residual_norm(r_dense, x, b));
    // Hot loop: R * X through Spatha.
    HalfMatrix x_half = to_half(x);
    const FloatMatrix rx = spatha::spmm_vnm(r_sparse, x_half);
    for (std::size_t i = 0; i < kN; ++i)
      for (std::size_t s = 0; s < kRhs; ++s)
        x(i, s) = (1.0f - omega) * x(i, s) +
                  omega * (b(i, s) - rx(i, s)) / 4.0f;
  }
  std::printf(
      "\nThe residual contracts every iteration with the SpMM running\n"
      "entirely through the V:N:M compressed operator — the \"other\n"
      "domains\" application the paper's discussion points to.\n");
  return 0;
}
