// venomtool — command-line utility over the VENOM library.
//
//   venomtool gen <rows> <cols> <out.mat> [seed] [sigma]
//       synthesize a dense fp16 matrix (transformer-like, with outlier
//       columns) and write it in the MATH container
//   venomtool compress <in.mat> <out.vnm> <V> <N> <M>
//       magnitude-prune + compress to V:N:M
//   venomtool decompress <in.vnm> <out.mat>
//       expand a compressed matrix back to dense
//   venomtool quantize <in.vnm> <out> <int8|e5m2|e4m3>
//       re-encode a compressed V:N:M matrix at reduced precision (QVN1 /
//       FVN1 containers), print the size and scale statistics, and
//       round-trip-check the written file
//   venomtool info <file>
//       describe any container (shape, format, density, footprint)
//   venomtool spmm <a.vnm|a.qvnm|a.fvnm> <b.mat> <out.matf>
//       C = A_vnm * B through Spatha (fp32 output container); A may be
//       fp16 or a `quantize` artefact — dispatch follows its dtype
//   venomtool energy <pruned.mat> <dense.mat>
//       Fig. 11 energy metric of a pruned matrix vs its dense origin
//   venomtool autotune <R> <K> <C> <V> <N> <M>
//       rank Spatha kernel configurations for a GEMM shape (RTX 3090
//       model) and print the top candidates
//   venomtool tune <R> <K> <C> <V> <N> <M> [cache.json]
//       empirical autotuning: benchmark real spmm_vnm executions on this
//       machine (analytically pruned candidates), print tuned vs
//       heuristic GFLOP/s, and merge the winner into the JSON tuning
//       cache (default venom_tune.json). Export VENOM_TUNE_CACHE=<file>
//       so select_config dispatches the tuned configs transparently.
//   venomtool model <R> <K> <C> <V> <N> <M>
//       modeled kernel times and speedup vs cuBLAS for one problem
//   venomtool backends [R K C V N M [dtype]]
//       list the registered venom::ops matmul backends; with a shape,
//       print which backend dispatch would select for that RxKxC V:N:M
//       problem and the kernel config with and without the tuning cache
//       (dtype f16|int8|e5m2|e4m3 selects the datapath, default f16)
//   venomtool serve-bench [--requests=N] [--tokens=N] [--batch-tokens=N]
//                         [--hidden=N] [--layers=N]
//       serving throughput: dynamic batching through the InferenceEngine
//       vs a sequential one-request-at-a-time loop over the same pruned
//       encoder; prints req/s, tok/s, p50/p99 latency, and the speedup
//   venomtool route-bench [--replicas=N] [--requests=N] [--overload=X]
//                         [--queue-tokens=N] [--workers=N] [--seed=N]
//       scaled serving probe: an EngineGroup of N replicas (shared const
//       weights, least-queued-tokens routing, bounded admission) under a
//       Poisson arrival burst at `overload` x the calibrated capacity;
//       prints goodput, admitted p50/p99, shed counts, and the per-replica
//       batch split, and bit-checks every admitted output against a
//       direct forward
//   venomtool finetune-bench [out] [in] [tokens] [steps] [V N M]
//       sparse fine-tuning demo: a random student layer is magnitude-
//       pruned to V:N:M and fine-tuned against a synthetic regression
//       task with every forward/backward on the sparse kernels (SpMM /
//       transposed SpMM / masked SDDMM). Prints the loss curve and the
//       recovery fraction; exits nonzero below the recovery bar
//       (VENOM_FINETUNE_RECOVERY_BAR, default 0.5)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "format/vnm.hpp"
#include "gpumodel/autotune.hpp"
#include "io/serialize.hpp"
#include "ops/ops.hpp"
#include "pruning/finetune.hpp"
#include "pruning/policies.hpp"
#include "serving/bench_harness.hpp"
#include "spatha/spmm.hpp"
#include "transformer/config.hpp"

namespace {

using namespace venom;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  venomtool gen <rows> <cols> <out.mat> [seed] [sigma]\n"
               "  venomtool compress <in.mat> <out.vnm> <V> <N> <M>\n"
               "  venomtool decompress <in.vnm> <out.mat>\n"
               "  venomtool quantize <in.vnm> <out> <int8|e5m2|e4m3>\n"
               "  venomtool info <file>\n"
               "  venomtool spmm <a.vnm|a.qvnm|a.fvnm> <b.mat> <out.matf>\n"
               "  venomtool energy <pruned.mat> <dense.mat>\n"
               "  venomtool autotune <R> <K> <C> <V> <N> <M>\n"
               "  venomtool tune <R> <K> <C> <V> <N> <M> [cache.json]\n"
               "  venomtool model <R> <K> <C> <V> <N> <M>\n"
               "  venomtool backends [R K C V N M [dtype]]\n"
               "  venomtool serve-bench [--requests=N] [--tokens=N]"
               " [--batch-tokens=N] [--hidden=N] [--layers=N]\n"
               "  venomtool route-bench [--replicas=N] [--requests=N]"
               " [--overload=X] [--queue-tokens=N] [--workers=N]"
               " [--seed=N]\n"
               "  venomtool finetune-bench [out] [in] [tokens] [steps]"
               " [V N M]\n");
  return 2;
}

std::size_t to_size(const std::string& s) {
  return static_cast<std::size_t>(std::stoull(s));
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 3 || args.size() > 5) return usage();
  const std::size_t rows = to_size(args[0]);
  const std::size_t cols = to_size(args[1]);
  const std::uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 42;
  const float sigma = args.size() > 4 ? std::stof(args[4]) : 0.05f;
  Rng rng(seed);
  const HalfMatrix m =
      pruning::synthetic_bert_weight(rows, cols, rng, 0.15, 4.0f, sigma);
  io::save(m, args[2]);
  std::printf("wrote %zux%zu fp16 matrix to %s (seed %llu)\n", rows, cols,
              args[2].c_str(), static_cast<unsigned long long>(seed));
  return 0;
}

int cmd_compress(const std::vector<std::string>& args) {
  if (args.size() != 5) return usage();
  const HalfMatrix dense = io::load_half_matrix(args[0]);
  const VnmConfig cfg{to_size(args[2]), to_size(args[3]), to_size(args[4])};
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(dense, cfg);
  io::save(sparse, args[1]);
  std::printf("compressed %zux%zu to %zu:%zu:%zu (%.0f%% sparse): %zu -> %zu "
              "bytes (%.1fx)\n",
              dense.rows(), dense.cols(), cfg.v, cfg.n, cfg.m,
              cfg.sparsity() * 100.0, dense.size() * 2,
              sparse.compressed_bytes(),
              double(dense.size() * 2) / double(sparse.compressed_bytes()));
  return 0;
}

int cmd_decompress(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const VnmMatrix sparse = io::load_vnm_matrix(args[0]);
  io::save(sparse.to_dense(), args[1]);
  std::printf("expanded %zux%zu V:N:M matrix to %s\n", sparse.rows(),
              sparse.cols(), args[1].c_str());
  return 0;
}

int cmd_quantize(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const VnmMatrix fp16 = io::load_vnm_matrix(args[0]);
  const std::string& dtype = args[2];
  const std::size_t fp16_bytes = fp16.compressed_bytes();

  // Quantization error of the written image, relative to the largest
  // fp16 magnitude (symmetric int8 bounds this by scale/2 per element).
  const auto report_error = [&](const VnmMatrix& deq) {
    float max_abs = 0.0f, max_err = 0.0f;
    for (std::size_t i = 0; i < fp16.values().size(); ++i)
      max_abs = std::max(max_abs, std::fabs(fp16.values()[i].to_float()));
    for (std::size_t i = 0; i < fp16.values().size(); ++i)
      max_err = std::max(max_err,
                         std::fabs(deq.values()[i].to_float() -
                                   fp16.values()[i].to_float()));
    std::printf("  max abs error    : %.6g (%.4f%% of max |value| %.6g)\n",
                max_err, max_abs > 0 ? 100.0 * max_err / max_abs : 0.0,
                max_abs);
  };

  if (dtype == "int8") {
    const auto q = quant::QuantizedVnmMatrix::quantize(fp16);
    io::save(q, args[1]);
    float smin = 0.0f, smax = 0.0f;
    double ssum = 0.0;
    for (std::size_t r = 0; r < q.rows(); ++r) {
      const float s = q.row_scale(r);
      smin = r == 0 ? s : std::min(smin, s);
      smax = std::max(smax, s);
      ssum += s;
    }
    std::printf("quantized %zux%zu %zu:%zu:%zu to int8: %zu -> %zu bytes "
                "(%.2fx)\n",
                q.rows(), q.cols(), q.config().v, q.config().n, q.config().m,
                fp16_bytes, q.compressed_bytes(),
                double(fp16_bytes) / double(q.compressed_bytes()));
    std::printf("  row scales       : min %.6g  max %.6g  mean %.6g\n", smin,
                smax, q.rows() > 0 ? ssum / double(q.rows()) : 0.0);
    report_error(q.dequantize());
    // Round-trip check: the written container must reload to the exact
    // in-memory structures.
    const auto back = io::load_quant_vnm_matrix(args[1]);
    const bool ok = back.values() == q.values() &&
                    back.m_indices() == q.m_indices() &&
                    back.column_locs() == q.column_locs() &&
                    back.row_scales() == q.row_scales();
    std::printf("  round trip       : %s\n", ok ? "ok" : "MISMATCH");
    return ok ? 0 : 1;
  }
  if (dtype == "e5m2" || dtype == "e4m3") {
    const Fp8Format format =
        dtype == "e5m2" ? Fp8Format::kE5M2 : Fp8Format::kE4M3;
    const auto q = quant::Fp8VnmMatrix::quantize(fp16, format);
    io::save(q, args[1]);
    std::printf("quantized %zux%zu %zu:%zu:%zu to fp8 %s: %zu -> %zu bytes "
                "(%.2fx)\n",
                q.rows(), q.cols(), q.config().v, q.config().n, q.config().m,
                to_string(format), fp16_bytes, q.compressed_bytes(),
                double(fp16_bytes) / double(q.compressed_bytes()));
    report_error(q.dequantize());
    const auto back = io::load_fp8_vnm_matrix(args[1]);
    const bool ok = back.format() == q.format() &&
                    back.values() == q.values() &&
                    back.m_indices() == q.m_indices() &&
                    back.column_locs() == q.column_locs();
    std::printf("  round trip       : %s\n", ok ? "ok" : "MISMATCH");
    return ok ? 0 : 1;
  }
  return usage();
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  switch (io::probe(args[0])) {
    case io::FileKind::kHalfMatrix: {
      const HalfMatrix m = io::load_half_matrix(args[0]);
      std::printf("fp16 dense matrix  %zux%zu  density %.3f  l1 %.3f\n",
                  m.rows(), m.cols(), density(m), l1_energy(m));
      return 0;
    }
    case io::FileKind::kFloatMatrix: {
      const FloatMatrix m = io::load_float_matrix(args[0]);
      std::printf("fp32 dense matrix  %zux%zu\n", m.rows(), m.cols());
      return 0;
    }
    case io::FileKind::kVnmMatrix: {
      const VnmMatrix m = io::load_vnm_matrix(args[0]);
      std::printf("V:N:M matrix  %zux%zu  format %zu:%zu:%zu  (%.0f%% "
                  "sparse)  nnz %zu  %zu bytes\n",
                  m.rows(), m.cols(), m.config().v, m.config().n,
                  m.config().m, m.config().sparsity() * 100.0, m.nnz(),
                  m.compressed_bytes());
      return 0;
    }
    case io::FileKind::kNmMatrix: {
      const NmMatrix m = io::load_nm_matrix(args[0]);
      std::printf("N:M matrix  %zux%zu  pattern %zu:%zu  (%.0f%% sparse)  "
                  "nnz %zu  %zu bytes\n",
                  m.rows(), m.cols(), m.pattern().n, m.pattern().m,
                  m.pattern().sparsity() * 100.0, m.nnz(),
                  m.compressed_bytes());
      return 0;
    }
    case io::FileKind::kCsrMatrix: {
      const CsrMatrix m = io::load_csr_matrix(args[0]);
      std::printf("CSR matrix  %zux%zu  nnz %zu (density %.3f)\n", m.rows(),
                  m.cols(), m.nnz(),
                  m.rows() * m.cols() == 0
                      ? 0.0
                      : double(m.nnz()) / double(m.rows() * m.cols()));
      return 0;
    }
    case io::FileKind::kQuantVnmMatrix: {
      const quant::QuantizedVnmMatrix m = io::load_quant_vnm_matrix(args[0]);
      float smin = 0.0f, smax = 0.0f;
      for (std::size_t r = 0; r < m.rows(); ++r) {
        const float s = m.row_scale(r);
        smin = r == 0 ? s : std::min(smin, s);
        smax = std::max(smax, s);
      }
      std::printf("int8 V:N:M matrix  %zux%zu  format %zu:%zu:%zu  (%.0f%% "
                  "sparse)  nnz %zu  %zu bytes  row scales [%.6g, %.6g]\n",
                  m.rows(), m.cols(), m.config().v, m.config().n,
                  m.config().m, m.config().sparsity() * 100.0, m.nnz(),
                  m.compressed_bytes(), smin, smax);
      return 0;
    }
    case io::FileKind::kFp8VnmMatrix: {
      const quant::Fp8VnmMatrix m = io::load_fp8_vnm_matrix(args[0]);
      std::printf("fp8 %s V:N:M matrix  %zux%zu  format %zu:%zu:%zu  "
                  "(%.0f%% sparse)  nnz %zu  %zu bytes\n",
                  to_string(m.format()), m.rows(), m.cols(), m.config().v,
                  m.config().n, m.config().m, m.config().sparsity() * 100.0,
                  m.nnz(), m.compressed_bytes());
      return 0;
    }
    case io::FileKind::kTuningCache: {
      const spatha::TuningCache cache = io::load_tuning_cache(args[0]);
      std::printf("tuning cache  %zu entr%s\n", cache.size(),
                  cache.size() == 1 ? "y" : "ies");
      for (const auto& [key, e] : cache.entries())
        std::printf("  %zux%zux%zu %zu:%zu:%zu [%s]  %.2f GFLOP/s "
                    "(heuristic %.2f)  %s\n",
                    key.rows, key.cols, key.b_cols, key.v, key.n, key.m,
                    key.features.c_str(), e.gflops, e.heuristic_gflops,
                    e.config.describe().c_str());
      return 0;
    }
    case io::FileKind::kUnknown:
      std::fprintf(stderr, "unrecognized file: %s\n", args[0].c_str());
      return 1;
  }
  return 1;
}

int cmd_spmm(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const HalfMatrix b = io::load_half_matrix(args[1]);
  // The A operand may be any compressed V:N:M container — fp16 (VNM1)
  // or a `venomtool quantize` artefact (QVN1 / FVN1); the magic picks
  // the loader and desc().dtype routes dispatch to the matching
  // datapath. Dispatched through the ops registry (honors
  // VENOM_BACKEND), so the CLI exercises the same selection path the
  // library layers use. One selection serves both the run and the
  // printed name.
  VnmMatrix a_fp16;
  quant::QuantizedVnmMatrix a_i8;
  quant::Fp8VnmMatrix a_f8;
  ops::MatmulArgs margs;
  const io::FileKind kind = io::probe(args[0]);
  if (kind == io::FileKind::kQuantVnmMatrix) {
    a_i8 = io::load_quant_vnm_matrix(args[0]);
    margs = ops::MatmulArgs::make(a_i8, b);
  } else if (kind == io::FileKind::kFp8VnmMatrix) {
    a_f8 = io::load_fp8_vnm_matrix(args[0]);
    margs = ops::MatmulArgs::make(a_f8, b);
  } else {
    a_fp16 = io::load_vnm_matrix(args[0]);
    margs = ops::MatmulArgs::make(a_fp16, b);
  }
  const ops::MatmulDesc desc = margs.desc();
  const ops::Matmul& backend = ops::BackendRegistry::instance().select(desc);
  const FloatMatrix c = backend.run(margs, ops::ExecContext::global());
  io::save(c, args[2]);
  std::printf("spmm %zux%zu (%zu:%zu:%zu, %s) * %zux%zu -> %s [backend %s]\n",
              desc.rows, desc.cols, desc.vnm.v, desc.vnm.n, desc.vnm.m,
              std::string(to_string(desc.dtype)).c_str(), b.rows(), b.cols(),
              args[2].c_str(), std::string(backend.name()).c_str());
  return 0;
}

int cmd_backends(const std::vector<std::string>& args) {
  if (!args.empty() && args.size() != 6 && args.size() != 7) return usage();
  const auto& registry = ops::BackendRegistry::instance();

  std::printf("registered matmul backends (features: %s):\n",
              cpu_feature_string().c_str());
  for (const ops::Matmul* b : registry.backends())
    std::printf("  %-12s prio %3d  %s\n", std::string(b->name()).c_str(),
                b->priority(), b->describe().c_str());

  if (args.empty()) return 0;

  const std::size_t r = to_size(args[0]);
  const std::size_t k = to_size(args[1]);
  const std::size_t c = to_size(args[2]);
  const VnmConfig fmt{to_size(args[3]), to_size(args[4]), to_size(args[5])};
  ops::Dtype dtype = ops::Dtype::kF16;
  if (args.size() == 7) {
    if (args[6] == "f16") dtype = ops::Dtype::kF16;
    else if (args[6] == "int8") dtype = ops::Dtype::kI8;
    else if (args[6] == "e5m2") dtype = ops::Dtype::kF8E5M2;
    else if (args[6] == "e4m3") dtype = ops::Dtype::kF8E4M3;
    else return usage();
  }

  ops::MatmulDesc desc;
  desc.rows = r;
  desc.cols = k;
  desc.b_cols = c;
  desc.format = ops::OperandFormat::kVnm;
  desc.vnm = fmt;
  desc.dtype = dtype;

  const auto sel = registry.select_explained(desc);
  std::printf("\ndispatch for %zux%zux%zu at %zu:%zu:%zu (%s):\n", r, k, c,
              fmt.v, fmt.n, fmt.m, std::string(to_string(dtype)).c_str());
  if (!sel.forced_ignored.empty())
    std::printf("  (override '%s' ignored: unknown backend or unsupported "
                "problem)\n",
                sel.forced_ignored.c_str());
  std::printf("  selected backend : %s\n",
              std::string(sel.backend->name()).c_str());
  std::printf("  eligible         :");
  for (const ops::Matmul* b : registry.backends())
    if (b->supports(desc, cpu_feature_string()))
      std::printf(" %s", std::string(b->name()).c_str());
  std::printf("\n");

  const auto& ctx = ops::ExecContext::global();
  const auto tuned = ctx.tuned_config(fmt, r, k, c);
  const auto heuristic = spatha::select_config_heuristic(fmt, r, k, c);
  if (tuned.has_value()) {
    // Print what dispatch would actually run: a cache entry that no
    // longer validates is degraded to the heuristic there, so report
    // that instead of the dead entry.
    const auto effective = ctx.select_config(fmt, r, k, c);
    if (effective == *tuned)
      std::printf("  config (tuned)   : %s\n", tuned->describe().c_str());
    else
      std::printf("  config (tuned)   : cache entry invalid for this "
                  "problem (%s), dispatch degrades to heuristic\n",
                  tuned->describe().c_str());
  } else {
    std::printf("  config (tuned)   : no tuning-cache entry ($VENOM_TUNE_"
                "CACHE), falling back to heuristic\n");
  }
  std::printf("  config (heuristic): %s\n", heuristic.describe().c_str());
  return 0;
}

int cmd_energy(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const HalfMatrix pruned = io::load_half_matrix(args[0]);
  const HalfMatrix dense = io::load_half_matrix(args[1]);
  std::printf("energy = %.4f\n", pruning::energy(pruned, dense));
  return 0;
}

int cmd_autotune(const std::vector<std::string>& args) {
  if (args.size() != 6) return usage();
  const gpumodel::GemmShape g{to_size(args[0]), to_size(args[1]),
                              to_size(args[2])};
  const VnmConfig fmt{to_size(args[3]), to_size(args[4]), to_size(args[5])};
  const auto ranked =
      gpumodel::enumerate_configs(gpumodel::rtx3090(), g, fmt);
  std::printf("%zu valid configurations for %zux%zux%zu at %zu:%zu:%zu; "
              "top 5:\n",
              ranked.size(), g.r, g.k, g.c, fmt.v, fmt.n, fmt.m);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i)
    std::printf("  %8.2f us   %s\n", ranked[i].total_s() * 1e6,
                ranked[i].config.describe().c_str());
  return 0;
}

int cmd_tune(const std::vector<std::string>& args) {
  if (args.size() < 6 || args.size() > 7) return usage();
  const std::size_t r = to_size(args[0]);
  const std::size_t k = to_size(args[1]);
  const std::size_t c = to_size(args[2]);
  const VnmConfig fmt{to_size(args[3]), to_size(args[4]), to_size(args[5])};
  const std::string cache_path =
      args.size() > 6 ? args[6] : "venom_tune.json";

  // Deterministic synthetic problem: the transformer-like weight the gen
  // command produces, pruned to V:N:M, against random activations.
  Rng rng(42);
  const HalfMatrix w = pruning::synthetic_bert_weight(r, k, rng, 0.15, 4.0f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);
  Rng rng_b(43);
  const HalfMatrix b = random_half_matrix(k, c, rng_b, 0.05f);

  std::printf("tuning spmm_vnm %zux%zux%zu at %zu:%zu:%zu on '%s' ...\n", r,
              k, c, fmt.v, fmt.n, fmt.m, cpu_feature_string().c_str());
  const auto tuned = gpumodel::autotune_measured(a, b);

  std::printf("measured %zu candidates; top 5:\n", tuned.ranked.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, tuned.ranked.size());
       ++i)
    std::printf("  %8.2f GFLOP/s   %s\n", tuned.ranked[i].gflops,
                tuned.ranked[i].config.describe().c_str());
  std::printf("heuristic: %8.2f GFLOP/s   %s\n", tuned.heuristic.gflops,
              tuned.heuristic.config.describe().c_str());
  std::printf("tuned:     %8.2f GFLOP/s   (%.2fx over heuristic)\n",
              tuned.best.gflops,
              tuned.best.gflops / tuned.heuristic.gflops);

  // Merge into the existing cache so repeated tune runs for different
  // shapes accumulate in one file; a corrupt file is rebuilt from scratch.
  spatha::TuningCache cache;
  if (!cache.try_load(cache_path) && io::probe(cache_path) != io::FileKind::kUnknown)
    std::fprintf(stderr, "warning: ignoring unreadable cache '%s'\n",
                 cache_path.c_str());
  cache.put(tuned.key, tuned.entry);
  io::save_tuning_cache(cache, cache_path);
  std::printf("wrote %zu entr%s to %s (export VENOM_TUNE_CACHE=%s to "
              "dispatch tuned configs)\n",
              cache.size(), cache.size() == 1 ? "y" : "ies",
              cache_path.c_str(), cache_path.c_str());
  return 0;
}

// Shared --key=value flag parser for the serving bench commands, so
// serve-bench and route-bench expose one flag surface instead of two
// positional-argument orders to memorize. Unknown flags and malformed
// arguments are reported (with the offending text) and fail to usage().
class Flags {
 public:
  static bool parse(const std::vector<std::string>& args,
                    std::initializer_list<const char*> allowed, Flags& out) {
    for (const std::string& a : args) {
      const std::size_t eq = a.find('=');
      if (a.rfind("--", 0) != 0 || eq == std::string::npos || eq < 3) {
        std::fprintf(stderr, "malformed argument '%s' (expected "
                             "--key=value)\n", a.c_str());
        return false;
      }
      const std::string key = a.substr(2, eq - 2);
      if (std::find_if(allowed.begin(), allowed.end(), [&](const char* k) {
            return key == k;
          }) == allowed.end()) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        return false;
      }
      out.values_[key] = a.substr(eq + 1);
    }
    return true;
  }

  std::size_t size(const char* key, std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : to_size(it->second);
  }
  double num(const char* key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_serve_bench(const std::vector<std::string>& args) {
  Flags flags;
  if (!Flags::parse(args,
                    {"requests", "tokens", "batch-tokens", "hidden",
                     "layers"},
                    flags))
    return usage();
  serving::BenchSetup setup;
  setup.requests = flags.size("requests", 64);
  setup.tokens = flags.size("tokens", 4);
  setup.max_batch_tokens = flags.size("batch-tokens", 256);
  const std::size_t hidden = flags.size("hidden", 256);
  const std::size_t layers = flags.size("layers", 2);
  setup.model = transformer::ModelConfig{.name = "serve-bench",
                                         .layers = layers, .hidden = hidden,
                                         .heads = 4,
                                         .ffn_hidden = 2 * hidden,
                                         .seq_len = setup.tokens};
  setup.max_batch_requests = setup.requests;

  std::printf("serve-bench: %zu requests x %zu tokens, hidden %zu, %zu "
              "layers, %zu:%zu:%zu weights, batch budget %zu tokens\n",
              setup.requests, setup.tokens, hidden, layers, setup.format.v,
              setup.format.n, setup.format.m, setup.max_batch_tokens);

  // The measurement is shared with bench_serving (the CI-gated bench) so
  // the two surfaces report comparable numbers by construction.
  const serving::BenchComparison r = serving::run_serving_comparison(setup);
  if (!r.bit_identical) {
    std::fprintf(stderr, "FAIL: batched outputs differ from the "
                         "sequential forward\n");
    return 1;
  }

  std::printf("  sequential : %8.1f req/s  %8.0f tok/s\n",
              r.sequential_rps(), r.sequential_rps() * double(setup.tokens));
  std::printf("  batched    : %8.1f req/s  %8.0f tok/s   p50 %.3f ms  "
              "p99 %.3f ms\n",
              r.batched_rps(), r.batched_rps() * double(setup.tokens),
              r.stats.p50_ms, r.stats.p99_ms);
  std::printf("  speedup    : %.2fx  (avg batch %.1f tokens, %zu batches, "
              "plan cache %zu hits / %zu misses)\n",
              r.speedup(), r.stats.avg_batch_tokens, r.stats.batches,
              r.stats.plan_cache_hits, r.stats.plan_cache_misses);
  std::printf("  per-request outputs bit-identical to sequential: yes\n");
  return 0;
}

int cmd_route_bench(const std::vector<std::string>& args) {
  Flags flags;
  if (!Flags::parse(args,
                    {"replicas", "requests", "overload", "queue-tokens",
                     "workers", "seed"},
                    flags))
    return usage();
  serving::LoadSetup setup;
  setup.model = transformer::ModelConfig{.name = "route-bench", .layers = 2,
                                         .hidden = 256, .heads = 4,
                                         .ffn_hidden = 512, .seq_len = 128};
  setup.replicas = flags.size("replicas", 4);
  setup.requests = flags.size("requests", 128);
  setup.overload = flags.num("overload", 2.0);
  setup.max_queued_tokens = flags.size("queue-tokens", 512);
  setup.workers = flags.size("workers", 1);
  setup.seed = flags.size("seed", 0);

  std::printf("route-bench: %zu replicas, %zu requests of %zu-%zu tokens, "
              "%.1fx overload, %zu-token admission bound\n",
              setup.replicas, setup.requests, setup.min_tokens,
              setup.max_tokens, setup.overload, setup.max_queued_tokens);

  // The measurement is shared with bench_serving_load (the CI-gated
  // bench) so the two surfaces report comparable numbers by construction.
  const serving::LoadReport r = serving::run_serving_load(setup);
  if (!r.bit_identical) {
    std::fprintf(stderr, "FAIL: a routed output differs from the direct "
                         "forward\n");
    return 1;
  }
  if (r.failed != 0) {
    std::fprintf(stderr, "FAIL: %zu admitted requests failed\n", r.failed);
    return 1;
  }

  std::printf("  capacity   : %8.1f req/s (closed-loop calibration)\n",
              r.capacity_rps);
  std::printf("  offered    : %8.1f req/s (Poisson)\n", r.offered_rps);
  std::printf("  goodput    : %8.1f req/s  (%zu/%zu admitted)\n",
              r.goodput_rps, r.admitted, r.offered);
  std::printf("  shed       : %zu queue-full, %zu rate-limited "
              "(AdmissionError at submit)\n",
              r.rejected_queue, r.rejected_rate);
  std::printf("  latency    : p50 %.3f ms  p99 %.3f ms (admitted only)\n",
              r.p50_ms, r.p99_ms);
  std::printf("  replica batches:");
  for (const auto& s : r.stats.replicas) std::printf(" %zu", s.batches);
  std::printf("\n");
  std::printf("  admitted outputs bit-identical to direct forward: yes\n");
  return 0;
}

int cmd_finetune_bench(const std::vector<std::string>& args) {
  if (args.size() > 7 || args.size() == 5 || args.size() == 6)
    return usage();
  const std::size_t out = args.size() > 0 ? to_size(args[0]) : 64;
  const std::size_t in = args.size() > 1 ? to_size(args[1]) : 128;
  const std::size_t tokens = args.size() > 2 ? to_size(args[2]) : 256;
  pruning::SparseFinetuneConfig cfg;
  cfg.steps = args.size() > 3 ? to_size(args[3]) : 60;
  if (args.size() == 7)
    cfg.format = VnmConfig{to_size(args[4]), to_size(args[5]),
                           to_size(args[6])};

  Rng task_rng = Rng::seeded("finetune-task");
  const workloads::RegressionTask task =
      workloads::regression_task(out, in, tokens, task_rng);
  Rng student_rng = Rng::seeded("finetune-student");
  transformer::Linear student =
      transformer::Linear::random(out, in, student_rng);

  std::printf("finetune-bench: %zux%zu student, %zu tokens, %zu:%zu:%zu "
              "(%.0f%% sparse), %zu SGD steps\n",
              out, in, tokens, cfg.format.v, cfg.format.n, cfg.format.m,
              cfg.format.sparsity() * 100.0, cfg.steps);
  const pruning::SparseFinetuneReport r =
      pruning::finetune_linear(student, task, cfg);

  std::printf("  dense loss      : %10.6f\n", r.dense_loss);
  std::printf("  post-prune loss : %10.6f\n", r.post_prune_loss);
  for (std::size_t s = 0; s < r.curve.size();
       s += std::max<std::size_t>(1, r.curve.size() / 8))
    std::printf("    step %3zu      : %10.6f\n", s, r.curve[s]);
  std::printf("  final loss      : %10.6f\n", r.final_loss);
  std::printf("  recovery        : %.1f%% of the post-prune loss removed\n",
              r.recovery() * 100.0);

  double bar = 0.5;
  if (const char* env = std::getenv("VENOM_FINETUNE_RECOVERY_BAR"))
    bar = std::atof(env);
  if (r.recovery() < bar) {
    std::fprintf(stderr, "FAIL: recovery %.3f below the %.3f bar\n",
                 r.recovery(), bar);
    return 1;
  }
  return 0;
}

int cmd_model(const std::vector<std::string>& args) {
  if (args.size() != 6) return usage();
  const auto& dev = gpumodel::rtx3090();
  const gpumodel::GemmShape g{to_size(args[0]), to_size(args[1]),
                              to_size(args[2])};
  const VnmConfig fmt{to_size(args[3]), to_size(args[4]), to_size(args[5])};
  const auto dense = gpumodel::cublas_gemm(dev, g);
  const auto sparse = gpumodel::spatha_spmm(dev, g, fmt);
  std::printf("modeled on %s:\n", dev.name.c_str());
  std::printf("  cuBLAS dense : %9.2f us  (%.1f TFLOPS)\n",
              dense.total() * 1e6, gpumodel::tflops(dense, g.flops()));
  std::printf("  Spatha %zu:%zu:%zu : %9.2f us  -> %.2fx speedup "
              "(theoretical cap %.1fx)\n",
              fmt.v, fmt.n, fmt.m, sparse.total() * 1e6,
              dense.total() / sparse.total(),
              double(fmt.m) / (2.0 * double(fmt.n)) * 2.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "compress") return cmd_compress(args);
    if (cmd == "decompress") return cmd_decompress(args);
    if (cmd == "quantize") return cmd_quantize(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "spmm") return cmd_spmm(args);
    if (cmd == "energy") return cmd_energy(args);
    if (cmd == "autotune") return cmd_autotune(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "model") return cmd_model(args);
    if (cmd == "backends") return cmd_backends(args);
    if (cmd == "serve-bench") return cmd_serve_bench(args);
    if (cmd == "route-bench") return cmd_route_bench(args);
    if (cmd == "finetune-bench") return cmd_finetune_bench(args);
  } catch (const venom::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
