// Adversarial shutdown/contention schedules for the serving concurrency
// layer (ctest label: stress; CI runs this suite under ThreadSanitizer).
//
// The annotations of PR 9 prove lock *discipline* at compile time; these
// tests attack the schedules the analysis cannot see — close() racing
// submit(), shutdown() racing a full submission storm — and assert the
// liveness/accounting contracts: no wedge, and every accepted request's
// future settles exactly once (a value or a typed error, never a broken
// promise). The EngineGroup case is a regression test for the PR-7 wedge
// class: a worker blocked in next_batch() that close() failed to wake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serving/batcher.hpp"
#include "tensor/matrix.hpp"
#include "serving/options.hpp"
#include "serving/queue.hpp"
#include "serving/request.hpp"
#include "serving/router.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {
namespace {

using namespace std::chrono_literals;

// ---- BlockingQueue: close() racing producers and consumers ---------------

TEST(StressBlockingQueue, CloseWhileSubmittingNeverLosesAcceptedItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;

  BlockingQueue<int> queue;
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = i;
        if (queue.push(std::move(item)))
          accepted.fetch_add(1, std::memory_order_relaxed);
        else
          refused.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int item = 0;
      while (queue.pop(item)) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Close mid-storm: producers keep hammering, consumers keep draining.
  std::this_thread::sleep_for(2ms);
  queue.close();
  for (auto& t : threads) t.join();

  // Drain-then-stop: everything accepted before close() must come out.
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(accepted.load() + refused.load(), kProducers * kPerProducer);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(StressBlockingQueue, ConsumersBlockedInPopAllWakeOnClose) {
  BlockingQueue<int> queue;
  constexpr int kConsumers = 8;
  std::vector<std::future<bool>> done;
  done.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    done.push_back(std::async(std::launch::async, [&] {
      int item = 0;
      return queue.pop(item);  // blocks on the empty queue
    }));
  }
  std::this_thread::sleep_for(2ms);
  queue.close();
  // The wedge failure mode is a consumer that never wakes: bound the
  // wait so a regression fails fast instead of hanging the suite.
  for (auto& f : done) {
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "consumer wedged";
    EXPECT_FALSE(f.get());  // closed-and-drained, not an item
  }
}

// ---- DynamicBatcher: close() under a submission storm --------------------

PendingRequest make_pending(std::uint64_t id, Rng& rng) {
  PendingRequest req;
  req.id = id;
  req.request.input = random_half_matrix(8, 1 + id % 4, rng);
  req.enqueued = Clock::now();
  return req;
}

TEST(StressDynamicBatcher, CloseUnderLoadSettlesEveryFuture) {
  constexpr int kSubmitters = 4;
  constexpr int kWorkers = 2;
  constexpr int kPerSubmitter = 500;

  BatchPolicy policy;
  policy.max_batch_tokens = 16;
  policy.max_wait = 200us;
  DynamicBatcher batcher(policy);

  std::atomic<int> delivered{0};
  std::atomic<int> refused{0};
  std::vector<std::future<Response>> futures(
      static_cast<std::size_t>(kSubmitters) * kPerSubmitter);

  std::vector<std::thread> threads;
  threads.reserve(kSubmitters + kWorkers);
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(static_cast<std::uint64_t>(s) + 1);
      for (int i = 0; i < kPerSubmitter; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(s) * kPerSubmitter + i;
        PendingRequest req = make_pending(slot, rng);
        futures[slot] = req.result.get_future();
        if (!batcher.submit(req)) {
          // Refused at the door: the batcher returned the request
          // intact, so the caller settles its promise (the engine does
          // exactly this with AdmissionError(kShutdown)).
          fail(req, std::make_exception_ptr(
                        std::runtime_error("refused: batcher closed")));
          refused.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      std::vector<PendingRequest> batch;
      while (batcher.next_batch(batch)) {
        for (PendingRequest& req : batch) {
          deliver(req, Response{});
          delivered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(2ms);
  batcher.close();  // races the submitters AND the draining workers
  for (auto& t : threads) t.join();

  EXPECT_EQ(delivered.load() + refused.load(),
            kSubmitters * kPerSubmitter);
  EXPECT_EQ(batcher.queued(), 0u);  // close() drains, never abandons
  // Every future settles: a value (batched before close) or the
  // caller-side failure (refused at the door). A future that throws
  // std::future_error here means a promise was dropped unsettled.
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready) << "future wedged";
    try {
      f.get();
    } catch (const std::runtime_error&) {
      // refused-at-close is a legal outcome
    }
  }
}

// ---- EngineGroup: shutdown() racing a submission storm (PR-7 wedge) ------

transformer::Encoder tiny_encoder() {
  Rng rng(7);
  transformer::Encoder enc(
      transformer::ModelConfig{.name = "tiny", .layers = 2, .hidden = 32,
                               .heads = 4, .ffn_hidden = 64, .seq_len = 16},
      rng);
  enc.sparsify({8, 2, 4});
  return enc;
}

TEST(StressEngineGroup, ConcurrentSubmitAndShutdownSettlesEverything) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 60;

  Options opts;
  opts.replicas = 2;
  opts.workers = 2;
  auto group = std::make_unique<EngineGroup>(tiny_encoder(), opts);

  std::atomic<int> submitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::future<Response>> futures;
  futures.reserve(static_cast<std::size_t>(kSubmitters) * kPerSubmitter);
  Mutex futures_mutex;

  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(static_cast<std::uint64_t>(s) + 11);
      for (int i = 0; i < kPerSubmitter; ++i) {
        Request req;
        req.input = random_half_matrix(32, 2 + i % 3, rng);
        req.tenant = "stress-" + std::to_string(s);
        try {
          auto fut = group->submit(std::move(req));
          submitted.fetch_add(1, std::memory_order_relaxed);
          MutexLock lock(futures_mutex);
          futures.push_back(std::move(fut));
        } catch (const AdmissionError&) {
          // kShutdown (the race we are provoking) or load shedding —
          // rejected at the door is a settled outcome by definition.
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Shut down while every submitter is mid-storm. The PR-7 wedge was a
  // batcher worker close() could not wake: shutdown() would then block
  // forever and this test would time out rather than fail an assert.
  std::this_thread::sleep_for(3ms);
  group->shutdown();
  for (auto& t : threads) t.join();

  EXPECT_EQ(submitted.load() + rejected.load(),
            kSubmitters * kPerSubmitter);
  // Accepted-before-shutdown requests drain to completion: every future
  // holds a response (shutdown drains, it does not abandon).
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready) << "future wedged";
    EXPECT_NO_THROW(f.get());
  }
  // Destroying the group after an explicit shutdown must be idempotent.
  EXPECT_NO_THROW(group.reset());
}

TEST(StressEngineGroup, RepeatedShutdownIsIdempotentUnderConcurrency) {
  Options opts;
  opts.replicas = 2;
  EngineGroup group(tiny_encoder(), opts);
  Rng rng(3);
  Request first;
  first.input = random_half_matrix(32, 4, rng);
  auto fut = group.submit(std::move(first));
  std::vector<std::thread> closers;
  closers.reserve(4);
  for (int i = 0; i < 4; ++i)
    closers.emplace_back([&] { group.shutdown(); });
  for (auto& t : closers) t.join();
  EXPECT_NO_THROW(fut.get());  // admitted before shutdown → drained
  Request late;
  late.input = random_half_matrix(32, 4, rng);
  EXPECT_THROW(group.submit(std::move(late)), AdmissionError);
}

}  // namespace
}  // namespace venom::serving
