// Unit tests for the fp8 (E5M2 / E4M3-FN) storage formats: exhaustive
// 256-code sweeps against an independent double-precision reference,
// round-to-nearest-even encode, saturation/overflow policy, and the
// bulk converters (the fp8 analogue of the binary16 suite).
#include "common/fp8.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace venom {
namespace {

/// Independent decode in double precision, straight from the format
/// definition (sign, biased exponent, mantissa) — no shared code with
/// the implementation's table builder.
double reference_decode(std::uint8_t bits, Fp8Format fmt) {
  const int mant = fmt == Fp8Format::kE5M2 ? 2 : 3;
  const int bias = fmt == Fp8Format::kE5M2 ? 15 : 7;
  const int exp_bits = 7 - mant;
  const double sign = (bits & 0x80) != 0 ? -1.0 : 1.0;
  const int e = (bits >> mant) & ((1 << exp_bits) - 1);
  const int m = bits & ((1 << mant) - 1);
  if (fmt == Fp8Format::kE5M2 && e == (1 << exp_bits) - 1) {
    if (m == 0) return sign * std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (fmt == Fp8Format::kE4M3 && e == (1 << exp_bits) - 1 &&
      m == (1 << mant) - 1)
    return std::numeric_limits<double>::quiet_NaN();
  if (e == 0) return sign * double(m) * std::ldexp(1.0, 1 - bias - mant);
  return sign * (1.0 + double(m) / double(1 << mant)) *
         std::ldexp(1.0, e - bias);
}

TEST(Fp8, FormatNames) {
  EXPECT_STREQ(to_string(Fp8Format::kE5M2), "e5m2");
  EXPECT_STREQ(to_string(Fp8Format::kE4M3), "e4m3");
}

TEST(Fp8, E5M2SpecialValues) {
  EXPECT_EQ(fp8_to_float(0x00, Fp8Format::kE5M2), 0.0f);
  EXPECT_TRUE(std::signbit(fp8_to_float(0x80, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isinf(fp8_to_float(0x7c, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isinf(fp8_to_float(0xfc, Fp8Format::kE5M2)));
  EXPECT_LT(fp8_to_float(0xfc, Fp8Format::kE5M2), 0.0f);
  // Mantissa != 0 at the top exponent is NaN (three codes per sign).
  for (std::uint8_t m : {0x7d, 0x7e, 0x7f, 0xfd, 0xfe, 0xff})
    EXPECT_TRUE(std::isnan(fp8_to_float(m, Fp8Format::kE5M2))) << int(m);
  // Largest finite: 1.75 * 2^15 = 57344.
  EXPECT_EQ(fp8_to_float(0x7b, Fp8Format::kE5M2), 57344.0f);
  EXPECT_EQ(fp8_to_float(0x3c, Fp8Format::kE5M2), 1.0f);
}

TEST(Fp8, E4M3SpecialValues) {
  EXPECT_EQ(fp8_to_float(0x00, Fp8Format::kE4M3), 0.0f);
  // E4M3-FN has no infinities; only S.1111.111 is NaN.
  EXPECT_TRUE(std::isnan(fp8_to_float(0x7f, Fp8Format::kE4M3)));
  EXPECT_TRUE(std::isnan(fp8_to_float(0xff, Fp8Format::kE4M3)));
  EXPECT_EQ(fp8_to_float(0x7e, Fp8Format::kE4M3), 448.0f);  // max finite
  EXPECT_EQ(fp8_to_float(0xfe, Fp8Format::kE4M3), -448.0f);
  EXPECT_EQ(fp8_to_float(0x38, Fp8Format::kE4M3), 1.0f);
}

TEST(Fp8, ExhaustiveDecodeMatchesReference) {
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    for (int code = 0; code < 256; ++code) {
      const float got = fp8_to_float(std::uint8_t(code), fmt);
      const double ref = reference_decode(std::uint8_t(code), fmt);
      if (std::isnan(ref)) {
        EXPECT_TRUE(std::isnan(got)) << to_string(fmt) << " code " << code;
      } else {
        // Every fp8 value is exactly representable in float.
        EXPECT_EQ(double(got), ref) << to_string(fmt) << " code " << code;
      }
    }
  }
}

TEST(Fp8, ExhaustiveEncodeRoundTrip) {
  // Every non-NaN code must survive decode -> encode bit-exactly
  // (including both zeros and the E5M2 infinities).
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    for (int code = 0; code < 256; ++code) {
      const float v = fp8_to_float(std::uint8_t(code), fmt);
      if (std::isnan(v)) continue;
      EXPECT_EQ(int(float_to_fp8(v, fmt)), code) << to_string(fmt);
    }
  }
}

TEST(Fp8, ExhaustiveMidpointsRoundToEven) {
  // The exact midpoint between every pair of adjacent finite positive
  // codes must round to the even code, above-midpoint up, below down —
  // for both signs.
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    const int max_finite = fmt == Fp8Format::kE5M2 ? 0x7b : 0x7e;
    for (int code = 0; code + 1 <= max_finite; ++code) {
      const double lo = reference_decode(std::uint8_t(code), fmt);
      const double hi = reference_decode(std::uint8_t(code + 1), fmt);
      const double mid = (lo + hi) / 2.0;
      const int even = (code & 1) == 0 ? code : code + 1;
      EXPECT_EQ(int(float_to_fp8(float(mid), fmt)), even)
          << to_string(fmt) << " code " << code;
      // The float one step off the midpoint lands on the near neighbor.
      const float above = std::nextafter(float(mid),
                                         std::numeric_limits<float>::max());
      const float below = std::nextafter(float(mid), 0.0f);
      EXPECT_EQ(int(float_to_fp8(above, fmt)), code + 1) << to_string(fmt);
      EXPECT_EQ(int(float_to_fp8(below, fmt)), code) << to_string(fmt);
      // Mirror for the negative sign.
      EXPECT_EQ(int(float_to_fp8(float(-mid), fmt)), 0x80 | even)
          << to_string(fmt);
    }
  }
}

TEST(Fp8, E5M2OverflowToInfinity) {
  // Midpoint between max finite (57344) and the would-be 65536 is 61440;
  // 65536's mantissa is even, so the tie rounds up to infinity.
  EXPECT_EQ(float_to_fp8(57344.0f, Fp8Format::kE5M2), 0x7b);
  EXPECT_EQ(float_to_fp8(61439.0f, Fp8Format::kE5M2), 0x7b);
  EXPECT_EQ(float_to_fp8(61440.0f, Fp8Format::kE5M2), 0x7c);
  EXPECT_EQ(float_to_fp8(1e30f, Fp8Format::kE5M2), 0x7c);
  EXPECT_EQ(float_to_fp8(-1e30f, Fp8Format::kE5M2), 0xfc);
  EXPECT_EQ(
      float_to_fp8(std::numeric_limits<float>::infinity(), Fp8Format::kE5M2),
      0x7c);
}

TEST(Fp8, E4M3SaturatesInsteadOfOverflowing) {
  // E4M3-FN is saturating: anything past 448 — including infinity —
  // clamps to the max finite code.
  EXPECT_EQ(float_to_fp8(448.0f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(float_to_fp8(449.0f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(float_to_fp8(1e30f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(
      float_to_fp8(std::numeric_limits<float>::infinity(), Fp8Format::kE4M3),
      0x7e);
  EXPECT_EQ(float_to_fp8(-1e30f, Fp8Format::kE4M3), 0xfe);
}

TEST(Fp8, NanEncodesToCanonicalCode) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(float_to_fp8(nan, Fp8Format::kE5M2), 0x7e);
  EXPECT_EQ(float_to_fp8(nan, Fp8Format::kE4M3), 0x7f);
  EXPECT_EQ(float_to_fp8(-nan, Fp8Format::kE5M2), 0xfe);
  EXPECT_EQ(float_to_fp8(-nan, Fp8Format::kE4M3), 0xff);
}

TEST(Fp8, SubnormalsAndFlushToZero) {
  // E5M2 smallest subnormal is 2^-16; below half of it flushes to zero
  // (the tie at exactly half rounds to the even code, which is zero).
  EXPECT_EQ(fp8_to_float(0x01, Fp8Format::kE5M2), 0x1.0p-16f);
  EXPECT_EQ(float_to_fp8(0x1.0p-16f, Fp8Format::kE5M2), 0x01);
  EXPECT_EQ(float_to_fp8(0x1.0p-17f, Fp8Format::kE5M2), 0x00);  // tie->even
  EXPECT_EQ(float_to_fp8(0x1.2p-17f, Fp8Format::kE5M2), 0x01);
  EXPECT_EQ(float_to_fp8(-0x1.0p-18f, Fp8Format::kE5M2), 0x80);  // signed 0
  // E4M3 smallest subnormal is 2^-9.
  EXPECT_EQ(fp8_to_float(0x01, Fp8Format::kE4M3), 0x1.0p-9f);
  EXPECT_EQ(float_to_fp8(0x1.0p-9f, Fp8Format::kE4M3), 0x01);
  EXPECT_EQ(float_to_fp8(0x1.0p-10f, Fp8Format::kE4M3), 0x00);
  EXPECT_EQ(float_to_fp8(0x1.2p-10f, Fp8Format::kE4M3), 0x01);
}

TEST(Fp8, SignedZeroRoundTrips) {
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    EXPECT_EQ(float_to_fp8(0.0f, fmt), 0x00) << to_string(fmt);
    EXPECT_EQ(float_to_fp8(-0.0f, fmt), 0x80) << to_string(fmt);
    EXPECT_EQ(fp8_to_float(0x80, fmt), 0.0f);
    EXPECT_TRUE(std::signbit(fp8_to_float(0x80, fmt)));
  }
}

TEST(Fp8, PrecisionBounds) {
  // Relative conversion error of in-range values is bounded by half an
  // ulp: 2^-3 relative for E5M2 (2 mantissa bits), 2^-4 for E4M3.
  for (float v : {0.1f, 0.3333f, 3.14159f, 123.456f, 0.017f}) {
    EXPECT_NEAR(fp8_to_float(float_to_fp8(v, Fp8Format::kE5M2),
                             Fp8Format::kE5M2),
                v, v * 0x1.0p-3f)
        << v;
    EXPECT_NEAR(fp8_to_float(float_to_fp8(v, Fp8Format::kE4M3),
                             Fp8Format::kE4M3),
                v, v * 0x1.0p-4f)
        << v;
  }
}

TEST(Fp8, BulkConvertersMatchElementwise) {
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    std::vector<std::uint8_t> codes(256);
    for (int i = 0; i < 256; ++i) codes[std::size_t(i)] = std::uint8_t(i);
    std::vector<float> decoded(256);
    fp8_to_float_n(codes.data(), decoded.data(), codes.size(), fmt);
    for (int i = 0; i < 256; ++i) {
      const float one = fp8_to_float(std::uint8_t(i), fmt);
      if (std::isnan(one)) {
        EXPECT_TRUE(std::isnan(decoded[std::size_t(i)]));
      } else {
        EXPECT_EQ(decoded[std::size_t(i)], one) << i;
      }
    }
    std::vector<std::uint8_t> encoded(256);
    float_to_fp8_n(decoded.data(), encoded.data(), decoded.size(), fmt);
    for (int i = 0; i < 256; ++i)
      EXPECT_EQ(encoded[std::size_t(i)],
                float_to_fp8(decoded[std::size_t(i)], fmt))
          << i;
  }
}

}  // namespace
}  // namespace venom
