// Tests for the transformer substrate: ops, linear layers (dense and
// Spatha-sparse), attention, and the encoder stack.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "spatha/plan.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"
#include "transformer/ops.hpp"

namespace venom::transformer {
namespace {

TEST(Config, Presets) {
  EXPECT_EQ(bert_base().hidden, 768u);
  EXPECT_EQ(bert_base().heads, 12u);
  EXPECT_EQ(bert_base().head_dim(), 64u);
  EXPECT_EQ(bert_large().hidden, 1024u);
  EXPECT_EQ(gpt2_large().hidden, 1280u);
  EXPECT_EQ(gpt3_175b().hidden, 12288u);
  // Parameter counts in the ballpark the paper quotes.
  EXPECT_NEAR(double(bert_base().encoder_params()), 85e6, 5e6);
  EXPECT_GT(gpt3_175b().encoder_params(), 150e9);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(1);
  FloatMatrix scores = random_float_matrix(6, 9, rng, 3.0f);
  softmax_rows(scores);
  for (std::size_t r = 0; r < 6; ++r) {
    float sum = 0.0f;
    for (float v : scores.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxStableUnderLargeInputs) {
  FloatMatrix scores(1, 3);
  scores(0, 0) = 1000.0f;
  scores(0, 1) = 1001.0f;
  scores(0, 2) = 999.0f;
  softmax_rows(scores);
  EXPECT_FALSE(std::isnan(scores(0, 0)));
  EXPECT_GT(scores(0, 1), scores(0, 0));
  EXPECT_GT(scores(0, 0), scores(0, 2));
}

TEST(Ops, LayerNormNormalizesPerToken) {
  Rng rng(2);
  const HalfMatrix x = random_half_matrix(64, 3, rng, 4.0f);
  std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
  const HalfMatrix y = layer_norm(x, gamma, beta);
  for (std::size_t t = 0; t < 3; ++t) {
    float mean = 0.0f, var = 0.0f;
    for (std::size_t f = 0; f < 64; ++f) mean += y(f, t).to_float();
    mean /= 64.0f;
    for (std::size_t f = 0; f < 64; ++f) {
      const float d = y(f, t).to_float() - mean;
      var += d * d;
    }
    var /= 64.0f;
    EXPECT_NEAR(mean, 0.0f, 2e-2f);
    EXPECT_NEAR(var, 1.0f, 5e-2f);
  }
}

TEST(Ops, LayerNormAppliesGammaBeta) {
  HalfMatrix x(2, 1);
  x(0, 0) = half_t(1.0f);
  x(1, 0) = half_t(-1.0f);
  std::vector<float> gamma = {2.0f, 2.0f}, beta = {1.0f, 1.0f};
  const HalfMatrix y = layer_norm(x, gamma, beta);
  EXPECT_NEAR(y(0, 0).to_float(), 3.0f, 2e-2f);   // 1*2+1
  EXPECT_NEAR(y(1, 0).to_float(), -1.0f, 2e-2f);  // -1*2+1
}

TEST(Ops, GeluKnownValues) {
  HalfMatrix x(1, 3);
  x(0, 0) = half_t(0.0f);
  x(0, 1) = half_t(10.0f);
  x(0, 2) = half_t(-10.0f);
  const HalfMatrix y = gelu(x);
  EXPECT_FLOAT_EQ(y(0, 0).to_float(), 0.0f);
  EXPECT_NEAR(y(0, 1).to_float(), 10.0f, 1e-2f);
  EXPECT_NEAR(y(0, 2).to_float(), 0.0f, 1e-2f);
}

TEST(Ops, AddAndBias) {
  HalfMatrix a(2, 2, half_t(1.0f)), b(2, 2, half_t(2.5f));
  const HalfMatrix c = add(a, b);
  EXPECT_FLOAT_EQ(c(1, 1).to_float(), 3.5f);
  FloatMatrix f(2, 2, 1.0f);
  std::vector<float> bias = {10.0f, 20.0f};
  add_bias(f, bias);
  EXPECT_FLOAT_EQ(f(0, 1), 11.0f);
  EXPECT_FLOAT_EQ(f(1, 0), 21.0f);
}

TEST(Ops, AttentionScoresAndContext) {
  // 1-dim head: scores reduce to outer product of scalars.
  HalfMatrix q(1, 2), k(1, 2), v(1, 2);
  q(0, 0) = half_t(1.0f);
  q(0, 1) = half_t(2.0f);
  k(0, 0) = half_t(3.0f);
  k(0, 1) = half_t(4.0f);
  v(0, 0) = half_t(1.0f);
  v(0, 1) = half_t(-1.0f);
  const FloatMatrix s = attention_scores(q, k, 0.5f);
  EXPECT_FLOAT_EQ(s(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(s(1, 1), 4.0f);
  FloatMatrix p(2, 2, 0.5f);  // uniform attention
  const HalfMatrix ctx = attention_context(p, v);
  EXPECT_NEAR(ctx(0, 0).to_float(), 0.0f, 1e-3f);
}

TEST(Linear, DenseMatchesManualGemm) {
  Rng rng(3);
  Linear lin = Linear::random(8, 16, rng);
  const HalfMatrix x = random_half_matrix(16, 5, rng);
  const HalfMatrix y = lin.forward(x);
  FloatMatrix ref = gemm_dense(lin.dense_weight(), x);
  add_bias(ref, lin.bias());
  for (std::size_t o = 0; o < 8; ++o)
    for (std::size_t t = 0; t < 5; ++t)
      EXPECT_NEAR(y(o, t).to_float(), ref(o, t), 0.05f + 0.02f * std::fabs(ref(o, t)));
}

TEST(Linear, SparsifyRoutesThroughSpathaAndApproximatesDense) {
  Rng rng(4);
  Linear lin = Linear::random(32, 64, rng);
  const HalfMatrix x = random_half_matrix(64, 8, rng);
  const HalfMatrix dense_out = lin.forward(x);
  lin.sparsify({8, 2, 4});  // 2:4 — mild pruning, output stays close
  EXPECT_TRUE(lin.is_sparse());
  const HalfMatrix sparse_out = lin.forward(x);
  // 50% magnitude pruning keeps the dominant terms; correlation stays high.
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < dense_out.size(); ++i) {
    const double a = dense_out.flat()[i].to_float();
    const double b = sparse_out.flat()[i].to_float();
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  EXPECT_GT(dot / std::sqrt(n1 * n2), 0.7);
}

TEST(Linear, SparseForwardEqualsSpmmOfPrunedWeight) {
  Rng rng(5);
  Linear lin = Linear::random(16, 32, rng);
  const HalfMatrix x = random_half_matrix(32, 4, rng);
  const HalfMatrix w_dense = lin.dense_weight();
  lin.sparsify({4, 2, 8});
  const HalfMatrix y = lin.forward(x);
  // The sparse weight decompresses to the magnitude-pruned dense weight.
  const HalfMatrix pruned = lin.sparse_weight().to_dense();
  EXPECT_TRUE(VnmMatrix::conforms(pruned, {4, 2, 8}));
  FloatMatrix ref = gemm_dense(pruned, x);
  add_bias(ref, lin.bias());
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(y(0, i).to_float(), ref(0, i), 0.05f + 0.02f * std::fabs(ref(0, i)));
  (void)w_dense;
}

TEST(Linear, TimingAccumulates) {
  Rng rng(6);
  Linear lin = Linear::random(16, 16, rng);
  const HalfMatrix x = random_half_matrix(16, 4, rng);
  TimingBreakdown t;
  lin.forward(x, &t);
  EXPECT_GT(t.gemm_s, 0.0);
  EXPECT_DOUBLE_EQ(t.softmax_s, 0.0);
}

TEST(Attention, ShapePreservedAndFinite) {
  Rng rng(7);
  MultiHeadAttention mha(32, 4, rng);
  const HalfMatrix x = random_half_matrix(32, 6, rng);
  const HalfMatrix y = mha.forward(x);
  EXPECT_EQ(y.rows(), 32u);
  EXPECT_EQ(y.cols(), 6u);
  for (auto v : y.flat()) EXPECT_FALSE(v.is_nan());
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(8);
  EXPECT_THROW(MultiHeadAttention(30, 4, rng), Error);
}

TEST(Attention, CausalMaskBlocksFutureTokens) {
  // With the causal mask, output at position 0 must not change when
  // later tokens change.
  Rng rng(21);
  MultiHeadAttention mha(32, 4, rng, /*causal=*/true);
  Rng data_rng(22);
  HalfMatrix x = random_half_matrix(32, 6, data_rng);
  const HalfMatrix y1 = mha.forward(x);
  for (std::size_t f = 0; f < 32; ++f) x(f, 5) = half_t(9.0f);  // last token
  const HalfMatrix y2 = mha.forward(x);
  for (std::size_t f = 0; f < 32; ++f) {
    EXPECT_EQ(y1(f, 0).bits(), y2(f, 0).bits()) << f;  // first unaffected
  }
  // The last position must see the change.
  bool any_diff = false;
  for (std::size_t f = 0; f < 32 && !any_diff; ++f)
    any_diff = y1(f, 5).bits() != y2(f, 5).bits();
  EXPECT_TRUE(any_diff);
}

TEST(Attention, BidirectionalSeesFutureTokens) {
  Rng rng(23);
  MultiHeadAttention mha(32, 4, rng, /*causal=*/false);
  Rng data_rng(24);
  HalfMatrix x = random_half_matrix(32, 6, data_rng);
  const HalfMatrix y1 = mha.forward(x);
  for (std::size_t f = 0; f < 32; ++f) x(f, 5) = half_t(9.0f);
  const HalfMatrix y2 = mha.forward(x);
  bool any_diff = false;
  for (std::size_t f = 0; f < 32 && !any_diff; ++f)
    any_diff = y1(f, 0).bits() != y2(f, 0).bits();
  EXPECT_TRUE(any_diff);  // position 0 attends to the changed last token
}

TEST(Attention, DynamicNmApproximatesDenseAttention) {
  // Attention probabilities after softmax are concentrated; keeping the
  // top 2 of every 4 retains most of the mass, so the sparse context
  // stays close to the dense one.
  Rng rng(31);
  MultiHeadAttention dense_mha(32, 4, rng);
  Rng rng2(31);
  MultiHeadAttention sparse_mha(32, 4, rng2);  // identical weights
  sparse_mha.set_dynamic_score_sparsity(NmPattern{2, 4});
  ASSERT_TRUE(sparse_mha.dynamic_score_sparsity().has_value());

  Rng data_rng(32);
  const HalfMatrix x = random_half_matrix(32, 8, data_rng, 0.5f);
  const HalfMatrix yd = dense_mha.forward(x);
  const HalfMatrix ys = sparse_mha.forward(x);
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < yd.size(); ++i) {
    const double a = yd.flat()[i].to_float();
    const double b = ys.flat()[i].to_float();
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  // Random (non-peaked) activations are the worst case for score
  // pruning; trained attention is far more concentrated.
  EXPECT_GT(dot / std::sqrt(n1 * n2), 0.85);
}

TEST(Attention, DynamicNmExactWhenPeaked) {
  // If every probability row has a single dominant entry per group, 1:2
  // pruning plus renormalization reproduces dense attention closely.
  Rng rng(33);
  MultiHeadAttention mha(16, 2, rng);
  mha.set_dynamic_score_sparsity(NmPattern{1, 2});
  Rng data_rng(34);
  // Strongly scaled inputs -> near-one-hot softmax rows.
  const HalfMatrix x = random_half_matrix(16, 4, data_rng, 3.0f);
  const HalfMatrix y = mha.forward(x);
  for (auto v : y.flat()) EXPECT_FALSE(v.is_nan());
}

TEST(Attention, DynamicNmRejectsNonHardwarePatterns) {
  Rng rng(35);
  MultiHeadAttention mha(16, 2, rng);
  EXPECT_THROW(mha.set_dynamic_score_sparsity(NmPattern{2, 8}), Error);
  EXPECT_NO_THROW(mha.set_dynamic_score_sparsity(NmPattern{1, 2}));
  EXPECT_NO_THROW(mha.set_dynamic_score_sparsity(std::nullopt));
  EXPECT_FALSE(mha.dynamic_score_sparsity().has_value());
}

TEST(Attention, DynamicNmRequiresDivisibleSequence) {
  Rng rng(36);
  MultiHeadAttention mha(16, 2, rng);
  mha.set_dynamic_score_sparsity(NmPattern{2, 4});
  Rng data_rng(37);
  const HalfMatrix x = random_half_matrix(16, 6, data_rng);  // 6 % 4 != 0
  EXPECT_THROW(mha.forward(x), Error);
}

TEST(Attention, DynamicNmComposesWithCausalMask) {
  Rng rng(38);
  MultiHeadAttention mha(16, 2, rng, /*causal=*/true);
  mha.set_dynamic_score_sparsity(NmPattern{2, 4});
  Rng data_rng(39);
  HalfMatrix x = random_half_matrix(16, 8, data_rng);
  const HalfMatrix y1 = mha.forward(x);
  for (std::size_t f = 0; f < 16; ++f) x(f, 7) = half_t(5.0f);
  const HalfMatrix y2 = mha.forward(x);
  for (std::size_t f = 0; f < 16; ++f)
    EXPECT_EQ(y1(f, 0).bits(), y2(f, 0).bits());  // causality preserved
}

TEST(Attention, DynamicNmContextBitIdenticalToSpmm24Route) {
  // The dynamic-score context matmul now runs through the register-
  // blocked spatha::spmm_nm; reproduce the replaced spmm_24 route by
  // hand and require bit identity of the full attention output.
  Rng rng(51);
  MultiHeadAttention mha(16, 2, rng);
  mha.set_dynamic_score_sparsity(NmPattern{2, 4});
  Rng data_rng(52);
  const HalfMatrix x = random_half_matrix(16, 8, data_rng);
  const HalfMatrix y = mha.forward(x);

  // Reference: identical weights, scores pruned the same way, context
  // through the scalar baseline kernel.
  Rng rng2(51);
  MultiHeadAttention ref_mha(16, 2, rng2);
  const std::size_t dh = 8;
  const float scale = 1.0f / std::sqrt(float(dh));
  const HalfMatrix q = ref_mha.wq().forward(x);
  const HalfMatrix k = ref_mha.wk().forward(x);
  const HalfMatrix v = ref_mha.wv().forward(x);
  HalfMatrix context(16, 8);
  for (std::size_t h = 0; h < 2; ++h) {
    HalfMatrix qh(dh, 8), kh(dh, 8), vh(dh, 8);
    for (std::size_t d = 0; d < dh; ++d)
      for (std::size_t t = 0; t < 8; ++t) {
        qh(d, t) = q(h * dh + d, t);
        kh(d, t) = k(h * dh + d, t);
        vh(d, t) = v(h * dh + d, t);
      }
    FloatMatrix scores = attention_scores(qh, kh, scale);
    softmax_rows(scores);
    // Re-prune exactly as the layer does: top-2 of 4, renormalized.
    HalfMatrix pruned(8, 8);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t g = 0; g < 2; ++g) {
        std::size_t best = g * 4;
        for (std::size_t c = 1; c < 4; ++c)
          if (scores(i, g * 4 + c) > scores(i, best)) best = g * 4 + c;
        std::size_t second = best == g * 4 ? g * 4 + 1 : g * 4;
        for (std::size_t c = 0; c < 4; ++c)
          if (g * 4 + c != best && scores(i, g * 4 + c) > scores(i, second))
            second = g * 4 + c;
        pruned(i, best) = half_t(scores(i, best));
        pruned(i, second) = half_t(scores(i, second));
      }
      float sum = 0.0f;
      for (std::size_t c = 0; c < 8; ++c) sum += pruned(i, c).to_float();
      if (sum > 0.0f)
        for (std::size_t c = 0; c < 8; ++c)
          if (!pruned(i, c).is_zero())
            pruned(i, c) = half_t(pruned(i, c).to_float() / sum);
    }
    const NmMatrix p_nm = NmMatrix::compress(pruned, {2, 4});
    const FloatMatrix ctx_t = spmm_24(p_nm, transpose(vh));
    for (std::size_t d = 0; d < dh; ++d)
      for (std::size_t i = 0; i < 8; ++i)
        context(h * dh + d, i) = half_t(ctx_t(i, d));
  }
  const HalfMatrix ref = ref_mha.wo().forward(context);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_EQ(y.flat()[i].bits(), ref.flat()[i].bits()) << i;
}

TEST(Attention, BatchedForwardBitIdenticalPerSequence) {
  Rng rng(53);
  MultiHeadAttention mha(32, 4, rng);
  Rng data_rng(54);
  const HalfMatrix a = random_half_matrix(32, 4, data_rng);
  const HalfMatrix b = random_half_matrix(32, 8, data_rng);
  const HalfMatrix ya = mha.forward(a);
  const HalfMatrix yb = mha.forward(b);

  // Pack a and b along the token axis.
  HalfMatrix packed(32, 12);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t t = 0; t < 4; ++t) packed(r, t) = a(r, t);
    for (std::size_t t = 0; t < 8; ++t) packed(r, 4 + t) = b(r, t);
  }
  const std::size_t ends[] = {4, 12};
  const HalfMatrix y = mha.forward_batched(packed, ends);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t t = 0; t < 4; ++t)
      ASSERT_EQ(y(r, t).bits(), ya(r, t).bits());
    for (std::size_t t = 0; t < 8; ++t)
      ASSERT_EQ(y(r, 4 + t).bits(), yb(r, t).bits());
  }
}

TEST(Attention, ZeroTokenForwardReturnsEmpty) {
  // Pre-batched behavior preserved: a dense MHA over an empty activation
  // returns an empty (hidden x 0) result instead of throwing.
  Rng rng(60);
  MultiHeadAttention mha(16, 2, rng);
  const HalfMatrix y = mha.forward(HalfMatrix(16, 0));
  EXPECT_EQ(y.rows(), 16u);
  EXPECT_EQ(y.cols(), 0u);
}

TEST(Attention, BatchedForwardValidatesSequenceEnds) {
  Rng rng(55);
  MultiHeadAttention mha(16, 2, rng);
  const HalfMatrix x = random_half_matrix(16, 8, rng);
  const std::size_t short_ends[] = {4};         // does not cover x
  const std::size_t unsorted[] = {6, 4, 8};     // not increasing
  const std::size_t leading_empty[] = {0, 8};   // empty first sequence
  EXPECT_THROW(mha.forward_batched(x, short_ends), Error);
  EXPECT_THROW(mha.forward_batched(x, unsorted), Error);
  EXPECT_THROW(mha.forward_batched(x, leading_empty), Error);
}

TEST(Encoder, BatchedForwardBitIdenticalPerSequence) {
  // Full stack (sparse weights + causal + dynamic attention): packing
  // sequences must not change any request's bits — the property the
  // serving engine's correctness rests on.
  Rng rng(56);
  ModelConfig cfg{.name = "tiny", .layers = 2, .hidden = 32, .heads = 4,
                  .ffn_hidden = 64, .seq_len = 8, .causal = true};
  Encoder enc(cfg, rng);
  enc.sparsify({8, 2, 4});
  enc.set_dynamic_score_sparsity(NmPattern{2, 4});

  Rng data_rng(57);
  const HalfMatrix a = random_half_matrix(32, 8, data_rng);
  const HalfMatrix b = random_half_matrix(32, 4, data_rng);
  const HalfMatrix c = random_half_matrix(32, 12, data_rng);
  const HalfMatrix ya = enc.forward(a);
  const HalfMatrix yb = enc.forward(b);
  const HalfMatrix yc = enc.forward(c);

  HalfMatrix packed(32, 24);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t t = 0; t < 8; ++t) packed(r, t) = a(r, t);
    for (std::size_t t = 0; t < 4; ++t) packed(r, 8 + t) = b(r, t);
    for (std::size_t t = 0; t < 12; ++t) packed(r, 12 + t) = c(r, t);
  }
  const std::size_t ends[] = {8, 12, 24};
  const HalfMatrix y = enc.forward_batched(packed, ends);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t t = 0; t < 8; ++t)
      ASSERT_EQ(y(r, t).bits(), ya(r, t).bits());
    for (std::size_t t = 0; t < 4; ++t)
      ASSERT_EQ(y(r, 8 + t).bits(), yb(r, t).bits());
    for (std::size_t t = 0; t < 12; ++t)
      ASSERT_EQ(y(r, 12 + t).bits(), yc(r, t).bits());
  }
}

TEST(Linear, ExecContextRouteBitIdenticalAndCachesPlans) {
  Rng rng(58);
  Linear lin = Linear::random(32, 64, rng);
  lin.sparsify({8, 2, 8});
  const HalfMatrix x = random_half_matrix(64, 8, rng);
  const HalfMatrix direct = lin.forward(x);  // ExecContext::global()

  ops::ExecContext ctx;
  lin.set_exec_context(&ctx);
  for (int round = 0; round < 3; ++round) {
    const HalfMatrix cached = lin.forward(x);
    for (std::size_t i = 0; i < direct.size(); ++i)
      ASSERT_EQ(cached.flat()[i].bits(), direct.flat()[i].bits());
  }
  EXPECT_EQ(ctx.plan_cache().misses(), 1u);
  EXPECT_EQ(ctx.plan_cache().hits(), 2u);
  lin.set_exec_context(nullptr);
  EXPECT_NO_THROW(lin.forward(x));
}

TEST(Config, GptModelsAreCausal) {
  EXPECT_FALSE(bert_base().causal);
  EXPECT_FALSE(bert_large().causal);
  EXPECT_TRUE(gpt2_large().causal);
  EXPECT_TRUE(gpt3_175b().causal);
}

TEST(Attention, TimingBreakdownPopulated) {
  Rng rng(9);
  MultiHeadAttention mha(32, 4, rng);
  const HalfMatrix x = random_half_matrix(32, 8, rng);
  TimingBreakdown t;
  mha.forward(x, &t);
  EXPECT_GT(t.gemm_s, 0.0);
  EXPECT_GT(t.softmax_s, 0.0);
  EXPECT_GT(t.attn_matmul_s, 0.0);
}

TEST(Encoder, ForwardShapeAndFiniteness) {
  Rng rng(10);
  ModelConfig cfg{.name = "tiny", .layers = 2, .hidden = 32, .heads = 4,
                  .ffn_hidden = 64, .seq_len = 8};
  Encoder enc(cfg, rng);
  EXPECT_EQ(enc.layer_count(), 2u);
  const HalfMatrix x = random_half_matrix(32, 8, rng);
  const HalfMatrix y = enc.forward(x);
  EXPECT_EQ(y.rows(), 32u);
  EXPECT_EQ(y.cols(), 8u);
  for (auto v : y.flat()) EXPECT_FALSE(v.is_nan());
}

TEST(Encoder, SparsifiedStillReasonable) {
  Rng rng(11);
  ModelConfig cfg{.name = "tiny", .layers = 1, .hidden = 32, .heads = 4,
                  .ffn_hidden = 64, .seq_len = 8};
  Encoder dense_enc(cfg, rng);
  Rng rng2(11);
  Encoder sparse_enc(cfg, rng2);  // identical weights (same seed stream)
  sparse_enc.sparsify({8, 2, 4});

  Rng rng3(99);
  const HalfMatrix x = random_half_matrix(32, 8, rng3);
  const HalfMatrix yd = dense_enc.forward(x);
  const HalfMatrix ys = sparse_enc.forward(x);
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < yd.size(); ++i) {
    const double a = yd.flat()[i].to_float();
    const double b = ys.flat()[i].to_float();
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  EXPECT_GT(dot / std::sqrt(n1 * n2), 0.5);
  for (auto v : ys.flat()) EXPECT_FALSE(v.is_nan());
}

TEST(Encoder, FullySparseStackRuns) {
  // Weights to V:N:M AND dynamic N:M attention, end to end: the maximal
  // sparsity configuration the library supports.
  Rng rng(40);
  ModelConfig cfg{.name = "tiny", .layers = 2, .hidden = 32, .heads = 4,
                  .ffn_hidden = 64, .seq_len = 8};
  Encoder enc(cfg, rng);
  enc.sparsify({8, 2, 4});
  enc.set_dynamic_score_sparsity(NmPattern{2, 4});
  Rng data_rng(41);
  const HalfMatrix x = random_half_matrix(32, 8, data_rng);
  const HalfMatrix y = enc.forward(x);
  EXPECT_EQ(y.rows(), 32u);
  for (auto v : y.flat()) EXPECT_FALSE(v.is_nan());
  // Disabling restores the dense attention path.
  enc.set_dynamic_score_sparsity(std::nullopt);
  EXPECT_NO_THROW(enc.forward(x));
}

TEST(Encoder, TimingBreakdownSumsToTotal) {
  Rng rng(12);
  ModelConfig cfg{.name = "tiny", .layers = 1, .hidden = 32, .heads = 4,
                  .ffn_hidden = 64, .seq_len = 4};
  Encoder enc(cfg, rng);
  const HalfMatrix x = random_half_matrix(32, 4, rng);
  TimingBreakdown t;
  enc.forward(x, &t);
  EXPECT_GT(t.gemm_s, 0.0);
  EXPECT_GT(t.other_s, 0.0);
  EXPECT_NEAR(t.total(), t.gemm_s + t.softmax_s + t.attn_matmul_s + t.other_s,
              1e-12);
}

}  // namespace
}  // namespace venom::transformer
