// Tests for the baseline formats: CSR (Sputnik) and CVSE (CLASP).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "format/csr.hpp"
#include "format/cvse.hpp"
#include "pruning/policies.hpp"

namespace venom {
namespace {

TEST(Csr, RoundTrip) {
  Rng rng(1);
  HalfMatrix dense = random_half_matrix(8, 12, rng);
  // Zero out a band.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 4; c < 8; ++c) dense(r, c) = half_t(0.0f);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_TRUE(csr.to_dense() == dense);
  EXPECT_EQ(csr.nnz(), 8u * 8u);
}

TEST(Csr, EmptyMatrix) {
  const CsrMatrix csr = CsrMatrix::from_dense(HalfMatrix(4, 4));
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_EQ(csr.row_offsets().size(), 5u);
  EXPECT_TRUE(csr.to_dense() == HalfMatrix(4, 4));
}

TEST(Csr, RowOffsetsAreMonotonic) {
  Rng rng(2);
  const HalfMatrix dense =
      pruning::prune_unstructured(random_half_matrix(16, 16, rng), 0.7);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  for (std::size_t r = 0; r < 16; ++r)
    EXPECT_LE(csr.row_offsets()[r], csr.row_offsets()[r + 1]);
  EXPECT_EQ(csr.row_offsets().back(), csr.nnz());
}

TEST(Csr, ColumnIndicesSortedPerRow) {
  Rng rng(3);
  const CsrMatrix csr = CsrMatrix::from_dense(random_half_matrix(4, 32, rng));
  for (std::size_t r = 0; r < 4; ++r)
    for (auto i = csr.row_offsets()[r] + 1; i < csr.row_offsets()[r + 1]; ++i)
      EXPECT_LT(csr.col_indices()[i - 1], csr.col_indices()[i]);
}

TEST(Cvse, RoundTrip) {
  Rng rng(4);
  HalfMatrix dense = random_half_matrix(8, 6, rng);
  // Zero whole vectors (rows 0-3 of column 2).
  for (std::size_t r = 0; r < 4; ++r) dense(r, 2) = half_t(0.0f);
  const CvseMatrix cv = CvseMatrix::from_dense(dense, 4);
  EXPECT_TRUE(cv.to_dense() == dense);
  EXPECT_EQ(cv.vector_count(), 2u * 6u - 1u);
}

TEST(Cvse, VectorGranularityPreserved) {
  // A vector with a single nonzero is stored whole (zeros included).
  HalfMatrix dense(4, 2);
  dense(1, 0) = half_t(5.0f);
  const CvseMatrix cv = CvseMatrix::from_dense(dense, 4);
  EXPECT_EQ(cv.vector_count(), 1u);
  EXPECT_EQ(cv.nnz(), 4u);  // stores the whole length-4 vector
  EXPECT_TRUE(cv.to_dense() == dense);
}

TEST(Cvse, MagnitudeKeepFraction) {
  Rng rng(5);
  const HalfMatrix dense = random_half_matrix(32, 32, rng);
  const CvseMatrix cv = CvseMatrix::from_dense_magnitude(dense, 8, 0.25);
  // 32/8 = 4 groups x 32 cols = 128 vectors; keep 32.
  EXPECT_EQ(cv.vector_count(), 32u);
  EXPECT_NEAR(density(cv.to_dense()), 0.25, 0.05);
}

TEST(Cvse, MagnitudeKeepsHighestNormVectors) {
  HalfMatrix dense(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    dense(r, 0) = half_t(0.1f);
    dense(r, 1) = half_t(10.0f);
    dense(r, 2) = half_t(1.0f);
  }
  const CvseMatrix cv = CvseMatrix::from_dense_magnitude(dense, 4, 0.34);
  const HalfMatrix kept = cv.to_dense();
  EXPECT_TRUE(kept(0, 0).is_zero());
  EXPECT_FLOAT_EQ(kept(0, 1).to_float(), 10.0f);
  EXPECT_TRUE(kept(0, 2).is_zero());
}

TEST(Cvse, RejectsBadShapes) {
  EXPECT_THROW(CvseMatrix::from_dense(HalfMatrix(6, 4), 4), Error);
  EXPECT_THROW(CvseMatrix::from_dense_magnitude(HalfMatrix(8, 4), 4, 0.0),
               Error);
  EXPECT_THROW(CvseMatrix::from_dense_magnitude(HalfMatrix(8, 4), 4, 1.5),
               Error);
}

TEST(Cvse, CompressedBytesScaleWithVectors) {
  Rng rng(6);
  const HalfMatrix dense = random_half_matrix(32, 32, rng);
  const auto a = CvseMatrix::from_dense_magnitude(dense, 8, 0.5);
  const auto b = CvseMatrix::from_dense_magnitude(dense, 8, 0.25);
  EXPECT_GT(a.compressed_bytes(), b.compressed_bytes());
}

}  // namespace
}  // namespace venom
