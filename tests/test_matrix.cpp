// Tests for the dense matrix container and utilities.
#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace venom {
namespace {

TEST(Matrix, ShapeAndIndexing) {
  FloatMatrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  m(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(m(2, 3), 7.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
}

TEST(Matrix, AtThrowsOutOfBounds) {
  FloatMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  FloatMatrix m(2, 3);
  auto r1 = m.row(1);
  r1[2] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
  EXPECT_EQ(m.row(0).size(), 3u);
}

TEST(Matrix, Equality) {
  FloatMatrix a(2, 2, 1.0f), b(2, 2, 1.0f), c(2, 2, 2.0f);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(1);
  const FloatMatrix m = random_float_matrix(5, 7, rng);
  const FloatMatrix t = transpose(m);
  EXPECT_EQ(t.rows(), 7u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_FLOAT_EQ(t(6, 4), m(4, 6));
  EXPECT_TRUE(transpose(t) == m);
}

TEST(Matrix, HalfFloatConversionRoundTrip) {
  Rng rng(2);
  const HalfMatrix h = random_half_matrix(4, 4, rng);
  const HalfMatrix back = to_half(to_float(h));
  EXPECT_TRUE(back == h);  // halves are exact in float
}

TEST(Matrix, RandomFillIsDeterministic) {
  Rng a(3), b(3);
  EXPECT_TRUE(random_half_matrix(8, 8, a) == random_half_matrix(8, 8, b));
}

TEST(Matrix, MaxAbsDiff) {
  FloatMatrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b(1, 0) = 3.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.5f);
  EXPECT_THROW(max_abs_diff(a, FloatMatrix(2, 3)), Error);
}

TEST(Matrix, RelFroError) {
  FloatMatrix a(1, 2), b(1, 2);
  b(0, 0) = 3.0f;
  b(0, 1) = 4.0f;  // ||b|| = 5
  a = b;
  EXPECT_FLOAT_EQ(rel_fro_error(a, b), 0.0f);
  a(0, 0) = 0.0f;  // diff = 3
  EXPECT_NEAR(rel_fro_error(a, b), 0.6f, 1e-6f);
}

TEST(Matrix, Density) {
  HalfMatrix m(2, 4);  // all zero
  EXPECT_DOUBLE_EQ(density(m), 0.0);
  m(0, 0) = half_t(1.0f);
  m(1, 3) = half_t(-2.0f);
  EXPECT_DOUBLE_EQ(density(m), 2.0 / 8.0);
}

TEST(Matrix, L1Energy) {
  HalfMatrix m(1, 3);
  m(0, 0) = half_t(1.0f);
  m(0, 1) = half_t(-2.0f);
  m(0, 2) = half_t(0.5f);
  EXPECT_DOUBLE_EQ(l1_energy(m), 3.5);
}

}  // namespace
}  // namespace venom
