// Tests for binary serialization: round-trips, probing, and corruption
// handling (failure injection).
#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fnv.hpp"
#include "common/rng.hpp"

namespace venom::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    return (dir_ / name).string();
  }
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("venom_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, HalfMatrixRoundTrip) {
  Rng rng(1);
  const HalfMatrix m = random_half_matrix(17, 23, rng);
  save(m, path("m.mat"));
  EXPECT_EQ(probe(path("m.mat")), FileKind::kHalfMatrix);
  const HalfMatrix back = load_half_matrix(path("m.mat"));
  EXPECT_TRUE(back == m);  // bit-exact, including any NaN-free payload
}

TEST_F(IoTest, HalfMatrixPreservesSpecialValues) {
  HalfMatrix m(1, 4);
  m(0, 0) = half_t::from_bits(0x7c00);  // +inf
  m(0, 1) = half_t::from_bits(0xfc00);  // -inf
  m(0, 2) = half_t::from_bits(0x8000);  // -0
  m(0, 3) = half_t::from_bits(0x0001);  // min subnormal
  save(m, path("special.mat"));
  const HalfMatrix back = load_half_matrix(path("special.mat"));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(back.flat()[i].bits(), m.flat()[i].bits());
}

TEST_F(IoTest, FloatMatrixRoundTrip) {
  Rng rng(2);
  const FloatMatrix m = random_float_matrix(9, 11, rng);
  save(m, path("m.matf"));
  EXPECT_EQ(probe(path("m.matf")), FileKind::kFloatMatrix);
  EXPECT_TRUE(load_float_matrix(path("m.matf")) == m);
}

TEST_F(IoTest, VnmRoundTrip) {
  Rng rng(3);
  const VnmConfig cfg{16, 2, 10};
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(32, 40, rng), cfg);
  save(m, path("m.vnm"));
  EXPECT_EQ(probe(path("m.vnm")), FileKind::kVnmMatrix);
  const VnmMatrix back = load_vnm_matrix(path("m.vnm"));
  EXPECT_EQ(back.config(), cfg);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  EXPECT_TRUE(back.to_dense() == m.to_dense());
}

TEST_F(IoTest, NmRoundTrip) {
  Rng rng(21);
  const NmMatrix m = NmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng), {2, 4});
  save(m, path("m.nm"));
  EXPECT_EQ(probe(path("m.nm")), FileKind::kNmMatrix);
  const NmMatrix back = load_nm_matrix(path("m.nm"));
  EXPECT_EQ(back.pattern(), m.pattern());
  EXPECT_TRUE(back.to_dense() == m.to_dense());
}

TEST_F(IoTest, NmGeneralPatternRoundTrip) {
  Rng rng(22);
  const NmMatrix m = NmMatrix::from_dense_magnitude(
      random_half_matrix(8, 48, rng), {2, 16});
  save(m, path("m.nm"));
  EXPECT_TRUE(load_nm_matrix(path("m.nm")).to_dense() == m.to_dense());
}

TEST_F(IoTest, CsrRoundTrip) {
  Rng rng(23);
  HalfMatrix dense = random_half_matrix(12, 20, rng);
  for (std::size_t i = 0; i < dense.size(); i += 3)
    dense.flat()[i] = half_t(0.0f);
  const CsrMatrix m = CsrMatrix::from_dense(dense);
  save(m, path("m.csr"));
  EXPECT_EQ(probe(path("m.csr")), FileKind::kCsrMatrix);
  const CsrMatrix back = load_csr_matrix(path("m.csr"));
  EXPECT_EQ(back.nnz(), m.nnz());
  EXPECT_TRUE(back.to_dense() == dense);
}

TEST_F(IoTest, CsrFromPartsValidates) {
  std::vector<std::uint32_t> offsets = {0, 2, 2};
  std::vector<std::uint32_t> cols = {1, 0};  // not sorted in row 0
  std::vector<half_t> vals = {half_t(1.0f), half_t(2.0f)};
  EXPECT_THROW(CsrMatrix::from_parts(2, 4, offsets, cols, vals), Error);
  cols = {0, 5};  // out of range
  EXPECT_THROW(CsrMatrix::from_parts(2, 4, offsets, cols, vals), Error);
  cols = {0, 1};
  EXPECT_NO_THROW(CsrMatrix::from_parts(2, 4, offsets, cols, vals));
  offsets = {0, 3, 2};  // non-monotone / inconsistent nnz
  EXPECT_THROW(CsrMatrix::from_parts(2, 4, offsets, cols, vals), Error);
}

TEST_F(IoTest, NmFromPartsValidates) {
  std::vector<half_t> vals(4, half_t(1.0f));
  std::vector<std::uint8_t> idx = {0, 1, 0, 1};
  EXPECT_NO_THROW(NmMatrix::from_parts({2, 4}, 2, 4, vals, idx));
  idx[2] = 4;  // out of the group
  EXPECT_THROW(NmMatrix::from_parts({2, 4}, 2, 4, vals, idx), Error);
  EXPECT_THROW(NmMatrix::from_parts({2, 4}, 2, 6, vals, idx), Error);
}

TEST_F(IoTest, ProbeUnknown) {
  std::ofstream(path("junk")) << "not a venom file";
  EXPECT_EQ(probe(path("junk")), FileKind::kUnknown);
  EXPECT_EQ(probe(path("missing")), FileKind::kUnknown);
}

TEST_F(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_half_matrix(path("missing")), Error);
  EXPECT_THROW(load_vnm_matrix(path("missing")), Error);
}

TEST_F(IoTest, WrongMagicThrows) {
  Rng rng(4);
  save(random_half_matrix(4, 4, rng), path("m.mat"));
  EXPECT_THROW(load_float_matrix(path("m.mat")), Error);
  EXPECT_THROW(load_vnm_matrix(path("m.mat")), Error);
}

TEST_F(IoTest, TruncatedPayloadThrows) {
  Rng rng(5);
  save(random_half_matrix(16, 16, rng), path("m.mat"));
  // Chop the file in half.
  const auto full = std::filesystem::file_size(path("m.mat"));
  std::filesystem::resize_file(path("m.mat"), full / 2);
  EXPECT_THROW(load_half_matrix(path("m.mat")), Error);
}

TEST_F(IoTest, CorruptVnmMetadataThrows) {
  Rng rng(6);
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 16, rng), {8, 2, 8});
  save(m, path("m.vnm"));
  // Flip the M field (offset: 4 magic + 4 version + 8 v + 8 n = 24) to a
  // value that does not divide cols.
  std::fstream f(path("m.vnm"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  const std::uint64_t bad_m = 7;
  f.write(reinterpret_cast<const char*>(&bad_m), sizeof(bad_m));
  f.close();
  EXPECT_THROW(load_vnm_matrix(path("m.vnm")), Error);
}

TEST_F(IoTest, FromPartsValidatesIndexRanges) {
  const VnmConfig cfg{2, 2, 8};
  std::vector<half_t> values(2 * 1 * 2, half_t(1.0f));
  std::vector<std::uint8_t> m_indices(values.size(), 0);
  std::vector<std::uint8_t> column_loc(1 * 1 * 4, 0);
  EXPECT_NO_THROW(VnmMatrix::from_parts(cfg, 2, 8, values, m_indices,
                                        column_loc));
  auto bad_idx = m_indices;
  bad_idx[0] = 4;  // selector out of the 4 selected columns
  EXPECT_THROW(
      VnmMatrix::from_parts(cfg, 2, 8, values, bad_idx, column_loc), Error);
  auto bad_loc = column_loc;
  bad_loc[0] = 8;  // column offset out of M
  EXPECT_THROW(
      VnmMatrix::from_parts(cfg, 2, 8, values, m_indices, bad_loc), Error);
  EXPECT_THROW(VnmMatrix::from_parts(cfg, 2, 8, {}, m_indices, column_loc),
               Error);
}

TEST_F(IoTest, QuantVnmRoundTrip) {
  Rng rng(31);
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(32, 40, rng), {16, 2, 10});
  const quant::QuantizedVnmMatrix q = quant::QuantizedVnmMatrix::quantize(m);
  save(q, path("m.qvnm"));
  EXPECT_EQ(probe(path("m.qvnm")), FileKind::kQuantVnmMatrix);
  const quant::QuantizedVnmMatrix back =
      load_quant_vnm_matrix(path("m.qvnm"));
  EXPECT_EQ(back.config(), q.config());
  EXPECT_EQ(back.rows(), q.rows());
  EXPECT_EQ(back.cols(), q.cols());
  EXPECT_EQ(back.values(), q.values());
  EXPECT_EQ(back.m_indices(), q.m_indices());
  EXPECT_EQ(back.column_locs(), q.column_locs());
  EXPECT_EQ(back.row_scales(), q.row_scales());
}

TEST_F(IoTest, Fp8VnmRoundTripBothFormats) {
  Rng rng(32);
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng), {8, 2, 8});
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    const quant::Fp8VnmMatrix q = quant::Fp8VnmMatrix::quantize(m, fmt);
    save(q, path("m.fvnm"));
    EXPECT_EQ(probe(path("m.fvnm")), FileKind::kFp8VnmMatrix);
    const quant::Fp8VnmMatrix back = load_fp8_vnm_matrix(path("m.fvnm"));
    EXPECT_EQ(back.format(), fmt);
    EXPECT_EQ(back.values(), q.values());
    EXPECT_EQ(back.m_indices(), q.m_indices());
    EXPECT_EQ(back.column_locs(), q.column_locs());
    EXPECT_TRUE(back.dequantize().to_dense() == q.dequantize().to_dense());
  }
}

TEST_F(IoTest, CorruptQuantVnmMetadataThrows) {
  Rng rng(33);
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 16, rng), {8, 2, 8});
  save(quant::QuantizedVnmMatrix::quantize(m), path("m.qvnm"));
  // Flip M (offset: 4 magic + 4 version + 8 v + 8 n = 24) so it no
  // longer divides cols — the loader must reject, not misparse.
  std::fstream f(path("m.qvnm"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  const std::uint64_t bad_m = 7;
  f.write(reinterpret_cast<const char*>(&bad_m), sizeof(bad_m));
  f.close();
  EXPECT_THROW(load_quant_vnm_matrix(path("m.qvnm")), Error);
}

TEST_F(IoTest, CorruptFp8FormatCodeThrows) {
  Rng rng(34);
  const VnmMatrix m = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 16, rng), {8, 2, 8});
  save(quant::Fp8VnmMatrix::quantize(m, Fp8Format::kE5M2), path("m.fvnm"));
  // The format code lives after cols: 8 header + 5 u64 fields = 48.
  std::fstream f(path("m.fvnm"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(48);
  const std::uint64_t bad_code = 7;
  f.write(reinterpret_cast<const char*>(&bad_code), sizeof(bad_code));
  f.close();
  EXPECT_THROW(load_fp8_vnm_matrix(path("m.fvnm")), Error);
}

TEST_F(IoTest, QuantLoadersRejectWrongMagic) {
  Rng rng(35);
  save(random_half_matrix(4, 4, rng), path("m.mat"));
  EXPECT_THROW(load_quant_vnm_matrix(path("m.mat")), Error);
  EXPECT_THROW(load_fp8_vnm_matrix(path("m.mat")), Error);
}

TEST_F(IoTest, OverwriteIsClean) {
  Rng rng(7);
  save(random_half_matrix(8, 8, rng), path("m.mat"));
  const HalfMatrix second = random_half_matrix(2, 2, rng);
  save(second, path("m.mat"));
  EXPECT_TRUE(load_half_matrix(path("m.mat")) == second);
}

// ------------------------------------------------------ golden corpus
//
// Checked-in fixtures with pinned byte checksums lock the on-disk
// format: any accidental change to the container layout (field order,
// widths, magic, payload encoding) breaks these before it breaks a
// deployment that ships pre-compressed weights. The fixtures were
// produced by save() from deterministic Rng::seeded streams
// ("golden-vnm", "golden-csr"); regenerating them bit-identically
// requires BOTH the writer and the rng derivation to be unchanged — so
// a checksum mismatch here is a format break, never noise.

std::uint64_t fnv1a_file(const std::string& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.good()) << p;
  const std::string bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  Fnv1a h;
  h.bytes(bytes.data(), bytes.size());
  return h.h;
}

std::string fixture(const std::string& name) {
#ifdef VENOM_FIXTURE_DIR
  return std::string(VENOM_FIXTURE_DIR) + "/" + name;
#else
  return "tests/fixtures/" + name;
#endif
}

bool same_bytes(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string ba((std::istreambuf_iterator<char>(fa)),
                       std::istreambuf_iterator<char>());
  const std::string bb((std::istreambuf_iterator<char>(fb)),
                       std::istreambuf_iterator<char>());
  return !ba.empty() && ba == bb;
}

TEST_F(IoTest, GoldenVnmFixtureLocksFormat) {
  const std::string p = fixture("golden_4_2_8.vnm");
  EXPECT_EQ(fnv1a_file(p), 0x95169353a0c209d5ull)
      << "on-disk VNM1 container bytes changed";

  const VnmMatrix m = load_vnm_matrix(p);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 16u);
  EXPECT_EQ(m.config(), (VnmConfig{4, 2, 8}));
  EXPECT_EQ(m.nnz(), 32u);
  // Semantic spot checks pin the payload interpretation, not just the
  // raw bytes: the matrix regenerates from the "golden-vnm" stream.
  Rng rng = Rng::seeded("golden-vnm");
  const VnmMatrix expect = VnmMatrix::from_dense_magnitude(
      random_half_matrix(8, 16, rng, 0.1f), {4, 2, 8});
  EXPECT_TRUE(m.to_dense() == expect.to_dense());

  // The writer must reproduce the fixture byte for byte.
  save(m, path("rewrite.vnm"));
  EXPECT_TRUE(same_bytes(p, path("rewrite.vnm")));
}

TEST_F(IoTest, GoldenCsrFixtureLocksFormat) {
  const std::string p = fixture("golden_6x10.csr");
  EXPECT_EQ(fnv1a_file(p), 0x4eeeba198ae0af52ull)
      << "on-disk CSR1 container bytes changed";

  const CsrMatrix m = load_csr_matrix(p);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 10u);
  EXPECT_EQ(m.nnz(), 40u);
  Rng rng = Rng::seeded("golden-csr");
  HalfMatrix d = random_half_matrix(6, 10, rng, 0.1f);
  for (std::size_t i = 0; i < d.size(); i += 3) d.flat()[i] = half_t(0.0f);
  EXPECT_TRUE(m.to_dense() == d);

  save(m, path("rewrite.csr"));
  EXPECT_TRUE(same_bytes(p, path("rewrite.csr")));
}

TEST_F(IoTest, GoldenQuantVnmFixtureLocksFormat) {
  const std::string p = fixture("golden_4_2_8.qvnm");
  EXPECT_EQ(fnv1a_file(p), 0xcaf8b8f771897a48ull)
      << "on-disk QVN1 container bytes changed";

  const quant::QuantizedVnmMatrix m = load_quant_vnm_matrix(p);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 16u);
  EXPECT_EQ(m.config(), (VnmConfig{4, 2, 8}));
  // Semantic pin: the fixture is quantize() of the "golden-qvnm" stream,
  // so a checksum pass with a different quantizer cannot slip through.
  Rng rng = Rng::seeded("golden-qvnm");
  const quant::QuantizedVnmMatrix expect = quant::QuantizedVnmMatrix::quantize(
      VnmMatrix::from_dense_magnitude(random_half_matrix(8, 16, rng, 0.1f),
                                      {4, 2, 8}));
  EXPECT_EQ(m.values(), expect.values());
  EXPECT_EQ(m.row_scales(), expect.row_scales());

  save(m, path("rewrite.qvnm"));
  EXPECT_TRUE(same_bytes(p, path("rewrite.qvnm")));
}

TEST_F(IoTest, GoldenFp8VnmFixtureLocksFormat) {
  const std::string p = fixture("golden_2_2_10_e4m3.fvnm");
  EXPECT_EQ(fnv1a_file(p), 0x1040bec504d90e88ull)
      << "on-disk FVN1 container bytes changed";

  const quant::Fp8VnmMatrix m = load_fp8_vnm_matrix(p);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 20u);
  EXPECT_EQ(m.config(), (VnmConfig{2, 2, 10}));
  EXPECT_EQ(m.format(), Fp8Format::kE4M3);
  Rng rng = Rng::seeded("golden-fvnm");
  const quant::Fp8VnmMatrix expect = quant::Fp8VnmMatrix::quantize(
      VnmMatrix::from_dense_magnitude(random_half_matrix(6, 20, rng, 0.1f),
                                      {2, 2, 10}),
      Fp8Format::kE4M3);
  EXPECT_EQ(m.values(), expect.values());

  save(m, path("rewrite.fvnm"));
  EXPECT_TRUE(same_bytes(p, path("rewrite.fvnm")));
}

}  // namespace
}  // namespace venom::io
