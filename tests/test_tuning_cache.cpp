// Tests for the empirical tuning cache: JSON round-trip, transparent
// cache-hit dispatch (bit-identical to the heuristic path), corrupt-file
// fallback, and the measured autotuner itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <utility>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "gpumodel/autotune.hpp"
#include "io/serialize.hpp"
#include "ops/context.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/sddmm.hpp"
#include "spatha/spmm.hpp"
#include "spatha/tuning_cache.hpp"

namespace venom {
namespace {

using spatha::SpmmConfig;
using spatha::TuningCache;
using spatha::TuningEntry;
using spatha::TuningKey;

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TuningKey sample_key() {
  TuningKey key;
  key.rows = 256;
  key.cols = 512;
  key.b_cols = 128;
  key.v = 64;
  key.n = 2;
  key.m = 8;
  key.features = "avx2-f16c";
  return key;
}

TuningEntry sample_entry() {
  TuningEntry e;
  e.config.block_k = 256;
  e.config.block_c = 32;
  e.config.warp_r = 16;
  e.config.warp_k = 32;
  e.config.warp_c = 32;
  e.config.batch_size = 3;
  e.config.chunk_grain = 2;
  e.gflops = 21.5;
  e.heuristic_gflops = 13.25;
  e.threads = 8;
  return e;
}

TEST(TuningCache, PutFindLookup) {
  TuningCache cache;
  EXPECT_TRUE(cache.empty());
  const TuningKey key = sample_key();
  cache.put(key, sample_entry());
  EXPECT_EQ(cache.size(), 1u);

  const auto found = cache.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->config, sample_entry().config);

  TuningKey other = key;
  other.b_cols = 64;  // different C: no entry
  EXPECT_FALSE(cache.find(other).has_value());

  // lookup() keys by this build's feature string, not the entry's.
  TuningKey native = spatha::make_tuning_key({64, 2, 8}, 256, 512, 128);
  EXPECT_EQ(native.features, cpu_feature_string());
  cache.put(native, sample_entry());
  const auto cfg = cache.lookup({64, 2, 8}, 256, 512, 128);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(*cfg, sample_entry().config);
}

TEST(TuningCache, JsonRoundTripPreservesEveryField) {
  TuningCache cache;
  cache.put(sample_key(), sample_entry());
  TuningKey key2 = sample_key();
  key2.m = 16;
  key2.features = "portable";
  TuningEntry e2 = sample_entry();
  e2.config.block_k = 64;
  e2.config.chunk_grain = 0;
  // Non-default store/column-loc choices must survive the round trip
  // (they were silently dropped before store_bits/column_loc_fixed were
  // persisted).
  e2.config.store_width = spatha::StoreWidth::k32bit;
  e2.config.column_loc = spatha::ColumnLocMode::kFixed;
  e2.gflops = 1.75;
  e2.threads = 1;
  cache.put(key2, e2);

  const std::string path = temp_path("roundtrip.json");
  io::save_tuning_cache(cache, path);
  EXPECT_EQ(io::probe(path), io::FileKind::kTuningCache);

  const TuningCache loaded = io::load_tuning_cache(path);
  ASSERT_EQ(loaded.size(), 2u);
  for (const auto& [key, want] : cache.entries()) {
    const auto got = loaded.find(key);
    ASSERT_TRUE(got.has_value()) << key.features;
    EXPECT_EQ(got->config, want.config);
    EXPECT_DOUBLE_EQ(got->gflops, want.gflops);
    EXPECT_DOUBLE_EQ(got->heuristic_gflops, want.heuristic_gflops);
    EXPECT_EQ(got->threads, want.threads);
  }
}

TEST(TuningCache, EmptyCacheRoundTrips) {
  const std::string path = temp_path("empty.json");
  io::save_tuning_cache(TuningCache{}, path);
  EXPECT_TRUE(io::load_tuning_cache(path).empty());
}

TEST(TuningCache, CorruptFilesThrowFromLoadAndFallBackInTryLoad) {
  const std::string missing = temp_path("no_such_cache.json");
  std::remove(missing.c_str());
  EXPECT_THROW(io::load_tuning_cache(missing), Error);

  const auto corrupt_cases = {
      std::string("this is not json"),
      std::string("{\"format\": \"venom-tune-cache\", \"version\": 1"),
      std::string("{\"format\": \"something-else\", \"version\": 1, "
                  "\"entries\": []}"),
      std::string("{\"format\": \"venom-tune-cache\", \"version\": 99, "
                  "\"entries\": []}"),
      std::string("{\"format\": \"venom-tune-cache\", \"version\": 1, "
                  "\"entries\": [{\"r\": 8}]}"),
      // Above 2^53: must reject, not overflow the float-to-int cast.
      std::string("{\"format\": \"venom-tune-cache\", \"version\": 1, "
                  "\"entries\": [{\"r\": 1e300}]}"),
  };
  const std::string path = temp_path("corrupt.json");
  for (const std::string& text : corrupt_cases) {
    std::ofstream(path, std::ios::trunc) << text;
    EXPECT_THROW(io::load_tuning_cache(path), Error) << text;

    TuningCache cache;
    cache.put(sample_key(), sample_entry());
    EXPECT_FALSE(cache.try_load(path)) << text;
    EXPECT_EQ(cache.size(), 1u);  // fallback leaves the cache unchanged
  }
}

TEST(TuningCache, TryLoadMergesIntoExistingEntries) {
  TuningCache on_disk;
  on_disk.put(sample_key(), sample_entry());
  const std::string path = temp_path("merge.json");
  io::save_tuning_cache(on_disk, path);

  TuningCache cache;
  TuningKey other = sample_key();
  other.rows = 1024;
  cache.put(other, sample_entry());
  EXPECT_TRUE(cache.try_load(path));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.find(sample_key()).has_value());
  EXPECT_TRUE(cache.find(other).has_value());
}

/// Inserts `cfg` as the global tuned choice for the problem and erases
/// exactly that key on destruction, so dispatch tests neither leak state
/// nor wipe entries the process loaded from $VENOM_TUNE_CACHE.
class ScopedGlobalEntry {
 public:
  ScopedGlobalEntry(const VnmConfig& fmt, std::size_t rows, std::size_t cols,
                    std::size_t b_cols, const SpmmConfig& cfg) {
    key_ = spatha::make_tuning_key(fmt, rows, cols, b_cols);
    TuningEntry e;
    e.config = cfg;
    TuningCache::global().put(key_, e);
  }
  ~ScopedGlobalEntry() { TuningCache::global().erase(key_); }

 private:
  TuningKey key_;
};

TEST(TuningCacheDispatch, SelectConfigPrefersCacheAndFallsBack) {
  const VnmConfig fmt{64, 2, 8};
  const auto heuristic = spatha::select_config_heuristic(fmt, 256, 512, 128);
  EXPECT_EQ(spatha::select_config(fmt, 256, 512, 128), heuristic);

  SpmmConfig tuned = heuristic;
  tuned.block_c = 128;
  tuned.batch_size = 4;
  tuned.chunk_grain = 2;
  ScopedGlobalEntry scoped(fmt, 256, 512, 128, tuned);
  EXPECT_EQ(spatha::select_config(fmt, 256, 512, 128), tuned);
  // Any other shape still falls back to the heuristic.
  EXPECT_EQ(spatha::select_config(fmt, 256, 512, 64),
            spatha::select_config_heuristic(fmt, 256, 512, 64));
}

TEST(TuningCacheDispatch, InvalidCachedConfigFallsBackToHeuristic) {
  const VnmConfig fmt{64, 2, 8};
  SpmmConfig bad = spatha::select_config_heuristic(fmt, 256, 512, 128);
  bad.block_k = 100;  // not a multiple of M: fails validate()
  ScopedGlobalEntry scoped(fmt, 256, 512, 128, bad);
  // A hand-edited cache entry that no longer validates must not poison
  // dispatch at that shape.
  EXPECT_EQ(spatha::select_config(fmt, 256, 512, 128),
            spatha::select_config_heuristic(fmt, 256, 512, 128));
}

TEST(TuningCacheDispatch, CacheHitSpmmIsBitIdenticalToHeuristicDispatch) {
  const VnmConfig fmt{16, 2, 8};
  Rng rng(3);
  const HalfMatrix w = random_half_matrix(64, 128, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(128, 48, rng, 0.1f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);

  const FloatMatrix heuristic_out = spatha::spmm_vnm(a, b);
  const FloatMatrix reference = spatha::spmm_vnm_reference(a, b);

  SpmmConfig tuned =
      spatha::select_config_heuristic(fmt, 64, 128, 48);
  tuned.block_k = 32;
  tuned.block_c = 16;
  tuned.chunk_grain = 1;

  spatha::Epilogue epilogue;
  FloatMatrix tuned_out;
  HalfMatrix fused;
  {
    ScopedGlobalEntry scoped(fmt, 64, 128, 48, tuned);
    tuned_out = spatha::spmm_vnm(a, b);
    // The fused epilogue (the transformer::Linear path) also dispatches
    // through select_config.
    fused = spatha::spmm_vnm_fused(a, b, epilogue);
  }

  // The convenience overload dispatched the cached config; results must
  // stay bit-identical to both the heuristic path and the oracle.
  ASSERT_EQ(tuned_out.size(), heuristic_out.size());
  EXPECT_EQ(std::memcmp(tuned_out.data(), heuristic_out.data(),
                        tuned_out.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(tuned_out.data(), reference.data(),
                        tuned_out.size() * sizeof(float)),
            0);

  const HalfMatrix fused_heuristic = spatha::spmm_vnm_fused(a, b, epilogue);
  ASSERT_EQ(fused.size(), fused_heuristic.size());
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_EQ(fused.flat()[i].bits(), fused_heuristic.flat()[i].bits()) << i;
}

TEST(TuningCacheDispatch, SddmmUnaffectedByTunedChunkGrain) {
  const VnmConfig fmt{16, 2, 8};
  Rng rng(5);
  const HalfMatrix w = random_half_matrix(64, 128, rng, 0.1f);
  const VnmMatrix structure = VnmMatrix::from_dense_magnitude(w, fmt);
  const HalfMatrix qa = random_half_matrix(64, 32, rng, 0.1f);
  const HalfMatrix qb = random_half_matrix(32, 128, rng, 0.1f);

  const VnmMatrix plain = spatha::sddmm_vnm(structure, qa, qb);
  SpmmConfig tuned = spatha::select_config_heuristic(fmt, 64, 128, 32);
  tuned.chunk_grain = 3;
  ScopedGlobalEntry scoped(fmt, 64, 128, 32, tuned);
  const VnmMatrix cached = spatha::sddmm_vnm(structure, qa, qb);

  ASSERT_EQ(plain.values().size(), cached.values().size());
  for (std::size_t i = 0; i < plain.values().size(); ++i)
    EXPECT_EQ(plain.values()[i].bits(), cached.values()[i].bits()) << i;
}

TEST(AutotuneMeasured, BeatsOrMatchesHeuristicAndVerifies) {
  const VnmConfig fmt{8, 2, 8};
  Rng rng(9);
  const HalfMatrix w = random_half_matrix(32, 64, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(64, 32, rng, 0.1f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);

  gpumodel::MeasureOptions opts;
  opts.max_tiles = 3;
  opts.min_sample_s = 0.001;  // keep the unit test fast
  gpumodel::TuneSpace space;
  space.thread_counts = {1};  // exercise the refinement path
  const auto result = gpumodel::autotune_measured(a, b, space, opts);

  EXPECT_GE(result.best.gflops, result.heuristic.gflops);
  EXPECT_FALSE(result.ranked.empty());
  for (std::size_t i = 1; i < result.ranked.size(); ++i)
    EXPECT_LE(result.ranked[i - 1].seconds, result.ranked[i].seconds);

  // The result carries a ready-to-persist entry for this problem.
  EXPECT_EQ(result.key.rows, 32u);
  EXPECT_EQ(result.key.cols, 64u);
  EXPECT_EQ(result.key.b_cols, 32u);
  EXPECT_EQ(result.key.features, cpu_feature_string());
  EXPECT_EQ(result.entry.config, result.best.config);
  EXPECT_GT(result.entry.gflops, 0.0);
  EXPECT_GT(result.entry.heuristic_gflops, 0.0);
  EXPECT_GE(result.entry.threads, 1u);
}

TEST(AutotuneMeasured, TileBudgetCountsTheHeuristicBaseline) {
  // A shape with plenty of valid analytical tiles, so the budget (not
  // the candidate pool) is what limits the search.
  const VnmConfig fmt{16, 2, 8};
  Rng rng(11);
  const HalfMatrix w = random_half_matrix(64, 256, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(256, 64, rng, 0.1f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);

  gpumodel::MeasureOptions opts;
  opts.max_tiles = 2;
  opts.min_sample_s = 0.001;
  opts.verify = false;
  gpumodel::TuneSpace space;
  space.chunk_grains = {0, 1};
  const auto result = gpumodel::autotune_measured(a, b, space, opts);

  // max_tiles bounds the DISTINCT (block_k, block_c) tiles measured,
  // heuristic baseline included — the old `>` admitted one extra tile.
  std::set<std::pair<std::size_t, std::size_t>> tiles;
  for (const auto& mc : result.ranked)
    tiles.insert({mc.config.block_k, mc.config.block_c});
  EXPECT_EQ(tiles.size(), 2u);

  // Candidate count is pinned by the dedup semantics: the baseline, plus
  // 2 tiles x 2 grains, minus the one exact duplicate of the baseline
  // (the heuristic's grain is 0, which is in the swept grain set — its
  // OTHER grain variant stays in the search).
  ASSERT_EQ(result.heuristic.config.chunk_grain, 0u);
  EXPECT_EQ(result.ranked.size(), 4u);
}

TEST(AutotuneMeasuredI8, ProducesAnI8EntryReachableBySelectConfigI8) {
  const VnmConfig fmt{8, 2, 8};
  Rng rng(13);
  const HalfMatrix w = random_half_matrix(32, 64, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(64, 32, rng, 0.1f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);

  gpumodel::MeasureOptions opts;
  opts.max_tiles = 3;
  opts.min_sample_s = 0.001;
  opts.dtype = ops::Dtype::kI8;  // verify stays on: the i8 scalar oracle
  const auto result = gpumodel::autotune_measured(a, b, {}, opts);

  // Same-run ordering invariant as fp16: the int8 heuristic is in the
  // measured set, so the winner can never lose to it.
  EXPECT_GE(result.best.gflops, result.heuristic.gflops);
  EXPECT_EQ(result.heuristic.config,
            spatha::select_config_heuristic_i8(fmt, 32, 64, 32));

  // The key carries the "+i8" feature tag — the entry lands where
  // select_config_i8 looks, not under the fp16 key.
  EXPECT_EQ(result.key, spatha::make_tuning_key_i8(fmt, 32, 64, 32));
  EXPECT_EQ(result.key.features, cpu_feature_string() + "+i8");

  spatha::TuningCache cache;
  cache.put(result.key, result.entry);
  EXPECT_EQ(spatha::select_config_i8(cache, fmt, 32, 64, 32),
            result.best.config);
  // The fp16 lookup must NOT see the int8 entry.
  EXPECT_FALSE(cache.lookup(fmt, 32, 64, 32).has_value());

  // And the winner's output is the i8 kernel's, bit-identical to the
  // int8 scalar oracle (autotune already verified; assert independently).
  const auto qa = quant::QuantizedVnmMatrix::quantize(a);
  const FloatMatrix got = quant::spmm_vnm_i8(qa, b, result.best.config);
  const FloatMatrix want =
      quant::spmm_vnm_i8_scalar(qa, b, result.best.config.column_loc);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)),
            0);
}

TEST(TuningCacheDispatch, PrivateContextI8EntryHonoredByConvenienceOverload) {
  const VnmConfig fmt{16, 2, 8};
  Rng rng(17);
  const HalfMatrix w = random_half_matrix(64, 128, rng, 0.2f);
  const HalfMatrix b = random_half_matrix(128, 32, rng, 0.1f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);
  const auto qa = quant::QuantizedVnmMatrix::quantize(a);

  // A +i8 entry whose column-loc mode is flipped to kFixed: a config
  // choice that changes which B rows the kernel gathers, so whether the
  // entry was honored is visible in the output bits.
  spatha::SpmmConfig tuned = spatha::select_config_heuristic_i8(fmt, 64, 128, 32);
  tuned.column_loc = spatha::ColumnLocMode::kFixed;
  spatha::TuningCache on_disk;
  spatha::TuningEntry entry;
  entry.config = tuned;
  on_disk.put(spatha::make_tuning_key_i8(fmt, 64, 128, 32), entry);
  const std::string path = temp_path("private_i8.json");
  io::save_tuning_cache(on_disk, path);

  ops::ExecContext ctx(
      ops::ExecContextOptions{.tuning_cache_path = path});
  ASSERT_EQ(ctx.select_config_i8(fmt, 64, 128, 32), tuned);
  // The global cache has no such entry; its dispatch stays heuristic.
  ASSERT_EQ(spatha::select_config_i8(fmt, 64, 128, 32),
            spatha::select_config_heuristic_i8(fmt, 64, 128, 32));

  // The convenience overload with the context's cache must dispatch the
  // private entry (the regression: it used to consult only the global
  // cache, making a scoped tune unreachable)...
  const FloatMatrix via_ctx =
      quant::spmm_vnm_i8(qa, b, nullptr, &ctx.tuning_cache());
  const FloatMatrix explicit_tuned = quant::spmm_vnm_i8(qa, b, tuned);
  ASSERT_EQ(via_ctx.size(), explicit_tuned.size());
  EXPECT_EQ(std::memcmp(via_ctx.data(), explicit_tuned.data(),
                        via_ctx.size() * sizeof(float)),
            0);

  // ...and the default overload keeps dispatching the heuristic — the
  // two disagree on these operands, which is what makes the check above
  // meaningful rather than vacuous.
  const FloatMatrix via_global = quant::spmm_vnm_i8(qa, b);
  ASSERT_EQ(via_global.size(), via_ctx.size());
  EXPECT_NE(std::memcmp(via_global.data(), via_ctx.data(),
                        via_global.size() * sizeof(float)),
            0);
}

TEST(TuningCacheDispatch, CorruptI8EntryDegradesToI8Heuristic) {
  const VnmConfig fmt{16, 2, 8};
  // A +i8 entry that no longer validates for the shape (block_k not a
  // multiple of M) must degrade to the INT8 heuristic, not throw and not
  // fall back to the fp16 heuristic.
  spatha::SpmmConfig bad = spatha::select_config_heuristic_i8(fmt, 64, 128, 32);
  bad.block_k = 100;
  spatha::TuningEntry entry;
  entry.config = bad;
  const spatha::TuningKey key = spatha::make_tuning_key_i8(fmt, 64, 128, 32);
  TuningCache::global().put(key, entry);
  const auto selected = spatha::select_config_i8(fmt, 64, 128, 32);
  TuningCache::global().erase(key);
  EXPECT_EQ(selected, spatha::select_config_heuristic_i8(fmt, 64, 128, 32));
}

}  // namespace
}  // namespace venom
