// Tests for magnitude pruning policies and the Fig. 11 energy metric.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "pruning/policies.hpp"

namespace venom::pruning {
namespace {

/// BERT-like weight with outlier columns (see synthetic_bert_weight).
/// Default shape 128 x 400: rows divide every V in {1..128}, cols divide
/// every M in {4, 8, 10, 16, 20, 40, 100} of the Fig. 11 sweep.
HalfMatrix bert_like_weight(std::uint64_t seed, std::size_t n = 0) {
  Rng rng(seed);
  const std::size_t rows = n == 0 ? 128 : n;
  const std::size_t cols = n == 0 ? 400 : n;
  return synthetic_bert_weight(rows, cols, rng);
}

TEST(Policies, UnstructuredHitsTargetSparsity) {
  const HalfMatrix w = bert_like_weight(1);
  for (double s : {0.5, 0.75, 0.9, 0.95}) {
    const HalfMatrix p = prune_unstructured(w, s);
    EXPECT_NEAR(density(p), 1.0 - s, 0.01) << s;
  }
}

TEST(Policies, UnstructuredKeepsLargest) {
  HalfMatrix w(1, 4);
  w(0, 0) = half_t(0.1f);
  w(0, 1) = half_t(-9.0f);
  w(0, 2) = half_t(0.2f);
  w(0, 3) = half_t(5.0f);
  const HalfMatrix p = prune_unstructured(w, 0.5);
  EXPECT_TRUE(p(0, 0).is_zero());
  EXPECT_FALSE(p(0, 1).is_zero());
  EXPECT_TRUE(p(0, 2).is_zero());
  EXPECT_FALSE(p(0, 3).is_zero());
}

TEST(Policies, ZeroSparsityIsIdentity) {
  const HalfMatrix w = bert_like_weight(2, 32);
  EXPECT_TRUE(prune_unstructured(w, 0.0) == w);
  EXPECT_THROW(prune_unstructured(w, 1.0), Error);
  EXPECT_THROW(prune_unstructured(w, -0.1), Error);
}

TEST(Policies, NmAndVnmConform) {
  const HalfMatrix w = bert_like_weight(3, 64);
  const HalfMatrix pn = prune_nm(w, {2, 8});
  EXPECT_TRUE(NmMatrix::conforms(pn, {2, 8}));
  const HalfMatrix pv = prune_vnm(w, {16, 2, 8});
  EXPECT_TRUE(VnmMatrix::conforms(pv, {16, 2, 8}));
}

TEST(Policies, VectorWiseZeroesWholeVectors) {
  const HalfMatrix w = bert_like_weight(4, 32);
  const HalfMatrix p = prune_vector_wise(w, 8, 0.75);
  for (std::size_t g = 0; g < 4; ++g)
    for (std::size_t c = 0; c < 32; ++c) {
      bool any = false, all = true;
      for (std::size_t dr = 0; dr < 8; ++dr) {
        const bool z = p(g * 8 + dr, c).is_zero();
        any = any || !z;
        all = all && !z;
      }
      EXPECT_TRUE(!any || all) << "partial vector at (" << g << ',' << c << ')';
    }
  EXPECT_NEAR(density(p), 0.25, 0.05);
}

TEST(Policies, BlockWiseZeroesWholeBlocks) {
  const HalfMatrix w = bert_like_weight(5, 32);
  const HalfMatrix p = prune_block_wise(w, 8, 0.5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      bool any = false, all = true;
      for (std::size_t dr = 0; dr < 8; ++dr)
        for (std::size_t dc = 0; dc < 8; ++dc) {
          const bool z = p(i * 8 + dr, j * 8 + dc).is_zero();
          any = any || !z;
          all = all && !z;
        }
      EXPECT_TRUE(!any || all);
    }
}

TEST(Energy, BoundsAndIdentity) {
  const HalfMatrix w = bert_like_weight(6, 32);
  EXPECT_DOUBLE_EQ(energy(w, w), 1.0);
  EXPECT_DOUBLE_EQ(energy(HalfMatrix(32, 32), w), 0.0);
  const HalfMatrix p = prune_unstructured(w, 0.5);
  EXPECT_GT(energy(p, w), 0.0);
  EXPECT_LT(energy(p, w), 1.0);
}

TEST(Energy, UnstructuredDominatesEverything) {
  // Fig. 11: the unconstrained policy is the ideal upper bound.
  const HalfMatrix w = bert_like_weight(7);
  const double s = 0.75;
  const double ideal = energy(prune_unstructured(w, s), w);
  EXPECT_GE(ideal + 1e-12,
            energy(prune_vnm(w, {64, 2, 8}), w));
  EXPECT_GE(ideal + 1e-12, energy(prune_nm(w, {2, 8}), w));
  EXPECT_GE(ideal + 1e-12, energy(prune_vector_wise(w, 8, s), w));
}

TEST(Energy, VnmRobustToV) {
  // Fig. 11: V:N:M is nearly flat in V — growing V from 16 to 128 loses
  // only a small fraction of energy.
  const HalfMatrix w = bert_like_weight(8);
  const double e16 = energy(prune_vnm(w, {16, 2, 8}), w);
  const double e128 = energy(prune_vnm(w, {128, 2, 8}), w);
  EXPECT_GE(e16, e128);
  EXPECT_LT((e16 - e128) / e16, 0.10);
}

TEST(Energy, VnmBeatsVectorWiseAtHighSparsity) {
  // Fig. 11's headline: 128:N:M preserves more energy than vw_8 / vw_4.
  const HalfMatrix w = bert_like_weight(9);
  for (const auto& [n, m, s] : {std::tuple<std::size_t, std::size_t, double>{
                                    2, 10, 0.8},
                                {2, 20, 0.9}}) {
    const double vnm = energy(prune_vnm(w, {128, n, m}), w);
    EXPECT_GT(vnm, energy(prune_vector_wise(w, 8, s), w)) << "m=" << m;
    EXPECT_GT(vnm, energy(prune_vector_wise(w, 4, s), w)) << "m=" << m;
  }
}

TEST(Energy, SmallerVRetainsMore) {
  // More selection freedom -> monotone energy in 1/V.
  const HalfMatrix w = bert_like_weight(10);
  const double e1 = energy(prune_vnm(w, {1, 2, 10}), w);
  const double e32 = energy(prune_vnm(w, {32, 2, 10}), w);
  const double e128 = energy(prune_vnm(w, {128, 2, 10}), w);
  EXPECT_GE(e1 + 1e-12, e32);
  EXPECT_GE(e32 + 1e-12, e128);
}

TEST(Energy, DecreasesWithSparsity) {
  const HalfMatrix w = bert_like_weight(11);
  double prev = 1.1;
  for (std::size_t m : {4u, 8u, 20u, 40u}) {
    const double e = energy(prune_vnm(w, {64, 2, m}), w);
    EXPECT_LT(e, prev) << "m=" << m;
    prev = e;
  }
}

}  // namespace
}  // namespace venom::pruning
