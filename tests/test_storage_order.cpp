// Tests for the Fig. 7 storage order: bijectivity, 128-bit per-thread
// contiguity, register-fragment consistency, and pack/unpack round-trips.
#include "spatha/storage_order.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sptc/fragment.hpp"

namespace venom::spatha {
namespace {

TEST(StorageOrder, OffsetIsBijective) {
  const WarpTileShape shape{32, 32};
  std::set<std::size_t> seen;
  for (std::size_t r = 0; r < shape.rows; ++r)
    for (std::size_t c = 0; c < shape.comp_cols; ++c) {
      const std::size_t off = linear_offset(shape, r, c);
      EXPECT_LT(off, shape.elements());
      EXPECT_TRUE(seen.insert(off).second) << "(" << r << ',' << c << ')';
    }
  EXPECT_EQ(seen.size(), shape.elements());
}

TEST(StorageOrder, TileCoordInvertsLinearOffset) {
  const WarpTileShape shape{48, 16};
  for (std::size_t r = 0; r < shape.rows; ++r)
    for (std::size_t c = 0; c < shape.comp_cols; ++c) {
      const auto coord = tile_coord(shape, linear_offset(shape, r, c));
      EXPECT_EQ(coord.row, r);
      EXPECT_EQ(coord.col, c);
    }
}

TEST(StorageOrder, PerThread128BitUnitsAreContiguous) {
  // Each thread's 8 fp16 registers (128 bits) occupy 8 consecutive
  // stream positions — the property that enables 128-bit transactions
  // without ldmatrix.
  const WarpTileShape shape{16, 16};
  for (std::size_t t = 0; t < 32; ++t) {
    for (std::size_t reg = 0; reg < 8; ++reg) {
      const auto coord = sptc::a_fragment_m16n8k16(t, reg);
      EXPECT_EQ(linear_offset(shape, coord.row, coord.col), t * 8 + reg);
    }
  }
}

TEST(StorageOrder, RegisterPairsAdjacentInStream) {
  // {a0,a1}, {a2,a3}... pairs are adjacent both in the tile (columns) and
  // in the stream (offsets) — 32-bit sub-units of the 128-bit load.
  const WarpTileShape shape{16, 16};
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t reg = 0; reg < 8; reg += 2) {
      const auto c0 = sptc::a_fragment_m16n8k16(t, reg);
      const auto c1 = sptc::a_fragment_m16n8k16(t, reg + 1);
      EXPECT_EQ(linear_offset(shape, c1.row, c1.col),
                linear_offset(shape, c0.row, c0.col) + 1);
    }
}

TEST(StorageOrder, InstructionTilesAreRowMajorBlocks) {
  // Offsets [k*256, (k+1)*256) cover exactly one 16x16 instruction tile.
  const WarpTileShape shape{32, 32};
  for (std::size_t tile = 0; tile < 4; ++tile) {
    std::set<std::pair<std::size_t, std::size_t>> tiles_touched;
    for (std::size_t off = tile * 256; off < (tile + 1) * 256; ++off) {
      const auto c = tile_coord(shape, off);
      tiles_touched.insert({c.row / 16, c.col / 16});
    }
    EXPECT_EQ(tiles_touched.size(), 1u) << "tile " << tile;
  }
}

TEST(StorageOrder, PackUnpackRoundTrip) {
  Rng rng(1);
  const WarpTileShape shape{32, 48};
  std::vector<half_t> data(shape.elements());
  for (auto& v : data) v = half_t(rng.normal());
  const auto packed = pack_warp_tile(shape, data);
  const auto restored = unpack_warp_tile(shape, packed);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(restored[i].bits(), data[i].bits()) << i;
}

TEST(StorageOrder, PackIsAPermutation) {
  // Pack of distinct values yields the same multiset.
  const WarpTileShape shape{16, 32};
  std::vector<half_t> data(shape.elements());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = half_t(float(i));
  auto packed = pack_warp_tile(shape, data);
  std::multiset<std::uint16_t> a, b;
  for (auto v : data) a.insert(v.bits());
  for (auto v : packed) b.insert(v.bits());
  EXPECT_EQ(a, b);
}

TEST(StorageOrder, RejectsBadShapes) {
  EXPECT_THROW(linear_offset({15, 16}, 0, 0), Error);
  EXPECT_THROW(linear_offset({16, 20}, 0, 0), Error);
  EXPECT_THROW(linear_offset({16, 16}, 16, 0), Error);
  EXPECT_THROW(tile_coord({16, 16}, 256), Error);
  std::vector<half_t> wrong(10);
  EXPECT_THROW(pack_warp_tile({16, 16}, wrong), Error);
}

}  // namespace
}  // namespace venom::spatha
