// Tests for the Sparse Tensor Core simulator: metadata codec, mma
// semantics, Table-1 shape registry, and Fig. 6 fragment layouts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "format/nm.hpp"
#include "sptc/fragment.hpp"
#include "sptc/metadata.hpp"
#include "sptc/mma.hpp"
#include "sptc/shapes.hpp"
#include "sptc/u4.hpp"
#include "tensor/matrix.hpp"

namespace venom::sptc {
namespace {

TEST(Metadata, PackUnpackRoundTrip) {
  Rng rng(1);
  std::vector<std::uint8_t> indices(100);
  for (auto& i : indices) i = std::uint8_t(rng.uniform_index(4));
  const auto words = pack_metadata(indices);
  EXPECT_EQ(words.size(), (100 + 15) / 16);
  const auto back = unpack_metadata(words, indices.size());
  EXPECT_EQ(back, indices);
}

TEST(Metadata, SixteenIndicesPerWord) {
  std::vector<std::uint8_t> indices(16, 3);
  const auto words = pack_metadata(indices);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0xffffffffu);
}

TEST(Metadata, LittleEndFirstOrdering) {
  const std::vector<std::uint8_t> indices = {1, 2, 3, 0};
  const auto words = pack_metadata(indices);
  EXPECT_EQ(words[0], (1u << 0) | (2u << 2) | (3u << 4));
  EXPECT_EQ(metadata_at(words, 0), 1);
  EXPECT_EQ(metadata_at(words, 2), 3);
}

TEST(Metadata, RejectsWideIndices) {
  const std::vector<std::uint8_t> indices = {4};
  EXPECT_THROW(pack_metadata(indices), Error);
}

TEST(Shapes, Table1Registry) {
  // The exact content of Table 1.
  const auto table = mma_shape_table();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_TRUE(is_supported(Precision::kFp32, 8));
  EXPECT_TRUE(is_supported(Precision::kFp32, 16));
  EXPECT_TRUE(is_supported(Precision::kFp16, 16));
  EXPECT_TRUE(is_supported(Precision::kFp16, 32));
  EXPECT_TRUE(is_supported(Precision::kUint8, 32));
  EXPECT_TRUE(is_supported(Precision::kUint8, 64));
  EXPECT_TRUE(is_supported(Precision::kUint4, 64));
  EXPECT_TRUE(is_supported(Precision::kUint4, 128));
  EXPECT_FALSE(is_supported(Precision::kFp16, 64));
  EXPECT_FALSE(is_supported(Precision::kFp32, 32));
}

TEST(Shapes, FixedMAndN) {
  for (const auto& s : mma_shape_table()) {
    EXPECT_EQ(s.m, 16u);
    EXPECT_EQ(s.n, 8u);
  }
  EXPECT_EQ(shape_for(Precision::kFp16).name(32), "m16n8k32");
  EXPECT_EQ(shape_for(Precision::kFp32).pattern_n, 1u);
  EXPECT_EQ(shape_for(Precision::kFp32).pattern_m, 2u);
}

/// Dense reference: C += A(16xk) * B(kx8) in double precision.
std::vector<float> dense_ref(std::size_t k, const std::vector<half_t>& a,
                             const std::vector<half_t>& b) {
  std::vector<float> c(16 * 8, 0.0f);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t n = 0; n < 8; ++n)
        c[i * 8 + n] += a[i * k + j].to_float() * b[j * 8 + n].to_float();
  return c;
}

TEST(Mma, DenseMatchesReference) {
  Rng rng(2);
  for (std::size_t k : {8u, 16u}) {
    std::vector<half_t> a(16 * k), b(k * 8);
    for (auto& v : a) v = half_t(rng.normal());
    for (auto& v : b) v = half_t(rng.normal());
    std::vector<float> c(16 * 8, 0.0f);
    mma_dense_fp16(k, a, b, c);
    const auto ref = dense_ref(k, a, b);
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_NEAR(c[i], ref[i], 1e-3f);
  }
}

TEST(Mma, DenseRejectsBadK) {
  std::vector<half_t> a(16 * 32), b(32 * 8);
  std::vector<float> c(16 * 8);
  EXPECT_THROW(mma_dense_fp16(32, a, b, c), Error);
}

TEST(Mma, DenseAccumulatesIntoC) {
  std::vector<half_t> a(16 * 8, half_t(1.0f)), b(8 * 8, half_t(1.0f));
  std::vector<float> c(16 * 8, 100.0f);
  mma_dense_fp16(8, a, b, c);
  for (float v : c) EXPECT_FLOAT_EQ(v, 108.0f);
}

/// Builds a random 2:4 16 x k tile and returns (compressed, metadata,
/// dense expansion).
struct SparseTile {
  std::vector<half_t> comp;
  std::vector<std::uint32_t> meta;
  std::vector<half_t> dense;
};

SparseTile random_24_tile(std::size_t k, Rng& rng) {
  SparseTile t;
  t.comp.resize(16 * k / 2);
  t.dense.assign(16 * k, half_t(0.0f));
  std::vector<std::uint8_t> idx(16 * k / 2);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t g = 0; g < k / 4; ++g) {
      // Pick two distinct positions in the group of 4.
      const std::size_t p0 = rng.uniform_index(3);
      std::size_t p1 = p0 + 1 + rng.uniform_index(3 - p0);
      for (std::size_t j = 0; j < 2; ++j) {
        const std::size_t pos = j == 0 ? p0 : p1;
        const half_t v = half_t(rng.normal());
        t.comp[i * (k / 2) + g * 2 + j] = v;
        idx[i * (k / 2) + g * 2 + j] = std::uint8_t(pos);
        t.dense[i * k + g * 4 + pos] = v;
      }
    }
  t.meta = pack_metadata(idx);
  return t;
}

TEST(Mma, SparseEqualsDenseOnExpandedTile) {
  Rng rng(3);
  for (std::size_t k : {16u, 32u}) {
    const SparseTile t = random_24_tile(k, rng);
    std::vector<half_t> b(k * 8);
    for (auto& v : b) v = half_t(rng.normal());

    std::vector<float> c_sp(16 * 8, 0.0f);
    mma_sp_fp16(k, t.comp, t.meta, b, c_sp);
    const auto ref = dense_ref(k, t.dense, b);
    for (std::size_t i = 0; i < c_sp.size(); ++i)
      EXPECT_NEAR(c_sp[i], ref[i], 1e-3f) << "k=" << k << " i=" << i;
  }
}

TEST(Mma, SparseRejectsUnsupportedK) {
  std::vector<half_t> a(16 * 4), b(8 * 8);
  std::vector<std::uint32_t> meta(4);
  std::vector<float> c(16 * 8);
  EXPECT_THROW(mma_sp_fp16(8, a, meta, b, c), Error);
}

TEST(Mma, SparseRejectsWrongTileSizes) {
  std::vector<half_t> a(16 * 16), b(32 * 8);
  std::vector<std::uint32_t> meta(16);
  std::vector<float> c_bad(16 * 4);
  EXPECT_THROW(mma_sp_fp16(32, a, meta, b, c_bad), Error);
}

TEST(Mma, Fp32VariantOneOfTwo) {
  // 1:2 pattern: each compressed element selects one of 2 columns.
  Rng rng(4);
  const std::size_t k = 8;
  std::vector<float> comp(16 * k / 2), b(k * 8), c(16 * 8, 0.0f);
  std::vector<std::uint8_t> idx(16 * k / 2);
  std::vector<float> dense(16 * k, 0.0f);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t g = 0; g < k / 2; ++g) {
      const auto pos = std::uint8_t(rng.uniform_index(2));
      const float v = rng.normal();
      comp[i * (k / 2) + g] = v;
      idx[i * (k / 2) + g] = pos;
      dense[i * k + g * 2 + pos] = v;
    }
  for (auto& v : b) v = rng.normal();
  mma_sp_fp32(k, comp, pack_metadata(idx), b, c);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t n = 0; n < 8; ++n) {
      float ref = 0.0f;
      for (std::size_t j = 0; j < k; ++j)
        ref += dense[i * k + j] * b[j * 8 + n];
      EXPECT_NEAR(c[i * 8 + n], ref, 1e-4f);
    }
}

TEST(Mma, Uint8VariantAccumulatesInt32) {
  const std::size_t k = 32;
  std::vector<std::uint8_t> comp(16 * k / 2, 2), b(k * 8, 3);
  std::vector<std::uint8_t> idx(16 * k / 2);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i % 2 ? 2 : 0;
  std::vector<std::int32_t> c(16 * 8, 0);
  mma_sp_u8(k, comp, pack_metadata(idx), b, c);
  // Every row has k/2 = 16 products of 2*3.
  for (auto v : c) EXPECT_EQ(v, 16 * 6);
}

// ---- uint4 variant ---------------------------------------------------------

TEST(U4, PackUnpackRoundTrip) {
  Rng rng(21);
  std::vector<std::uint8_t> values(101);
  for (auto& v : values) v = std::uint8_t(rng.uniform_index(16));
  const auto packed = pack_u4(values);
  EXPECT_EQ(packed.size(), 51u);
  EXPECT_EQ(unpack_u4(packed, values.size()), values);
}

TEST(U4, LowNibbleFirst) {
  const std::vector<std::uint8_t> values = {0x3, 0xa};
  const auto packed = pack_u4(values);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0xa3);
  EXPECT_EQ(u4_at(packed, 0), 0x3);
  EXPECT_EQ(u4_at(packed, 1), 0xa);
}

TEST(U4, RejectsWideValues) {
  const std::vector<std::uint8_t> bad = {16};
  EXPECT_THROW(pack_u4(bad), Error);
}

TEST(U4, MmaSpMatchesDenseExpansion) {
  Rng rng(22);
  for (std::size_t k : {64u, 128u}) {
    const std::size_t kc = k / 2;
    std::vector<std::uint8_t> a_vals(16 * kc), idx(16 * kc);
    std::vector<std::int32_t> dense(16 * k, 0);
    for (std::size_t i = 0; i < 16; ++i)
      for (std::size_t g = 0; g < k / 4; ++g) {
        const std::size_t p0 = rng.uniform_index(3);
        const std::size_t p1 = p0 + 1 + rng.uniform_index(3 - p0);
        for (std::size_t j = 0; j < 2; ++j) {
          const std::size_t pos = j == 0 ? p0 : p1;
          const auto v = std::uint8_t(rng.uniform_index(16));
          a_vals[i * kc + g * 2 + j] = v;
          idx[i * kc + g * 2 + j] = std::uint8_t(pos);
          dense[i * k + g * 4 + pos] = v;
        }
      }
    std::vector<std::uint8_t> b_vals(k * 8);
    for (auto& v : b_vals) v = std::uint8_t(rng.uniform_index(16));

    std::vector<std::int32_t> c(16 * 8, 0);
    mma_sp_u4(k, pack_u4(a_vals), pack_metadata(idx), pack_u4(b_vals), c);
    for (std::size_t i = 0; i < 16; ++i)
      for (std::size_t n = 0; n < 8; ++n) {
        std::int32_t ref = 0;
        for (std::size_t j = 0; j < k; ++j)
          ref += dense[i * k + j] * std::int32_t(b_vals[j * 8 + n]);
        EXPECT_EQ(c[i * 8 + n], ref) << "k=" << k;
      }
  }
}

TEST(U4, MmaSpRejectsUnsupportedK) {
  std::vector<std::uint8_t> a(16 * 16 / 2), b(32 * 8 / 2);
  std::vector<std::uint32_t> meta(16);
  std::vector<std::int32_t> c(16 * 8);
  EXPECT_THROW(mma_sp_u4(32, a, meta, b, c), Error);
}

// ---- fragment layouts ----------------------------------------------------

TEST(Fragment, A16x16PartitionsTileExactly) {
  std::map<std::pair<std::size_t, std::size_t>, int> owners;
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t r = 0; r < 8; ++r) {
      const auto c = a_fragment_m16n8k16(t, r);
      EXPECT_LT(c.row, 16u);
      EXPECT_LT(c.col, 16u);
      owners[{c.row, c.col}]++;
    }
  EXPECT_EQ(owners.size(), 16u * 16u);  // every element owned
  for (const auto& [coord, count] : owners) EXPECT_EQ(count, 1);
}

TEST(Fragment, B16x8PartitionsTileExactly) {
  std::map<std::pair<std::size_t, std::size_t>, int> owners;
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t r = 0; r < 4; ++r) {
      const auto c = b_fragment_m16n8k16(t, r);
      owners[{c.row, c.col}]++;
    }
  EXPECT_EQ(owners.size(), 16u * 8u);
  for (const auto& [coord, count] : owners) EXPECT_EQ(count, 1);
}

TEST(Fragment, C16x8PartitionsTileExactly) {
  std::map<std::pair<std::size_t, std::size_t>, int> owners;
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t r = 0; r < 4; ++r) {
      const auto c = c_fragment_m16n8(t, r);
      owners[{c.row, c.col}]++;
    }
  EXPECT_EQ(owners.size(), 16u * 8u);
  for (const auto& [coord, count] : owners) EXPECT_EQ(count, 1);
}

TEST(Fragment, SparseB32x8PartitionsTileExactly) {
  std::map<std::pair<std::size_t, std::size_t>, int> owners;
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t r = 0; r < 8; ++r) {
      const auto c = b_fragment_m16n8k32_sp(t, r);
      EXPECT_LT(c.row, 32u);
      EXPECT_LT(c.col, 8u);
      owners[{c.row, c.col}]++;
    }
  EXPECT_EQ(owners.size(), 32u * 8u);
  for (const auto& [coord, count] : owners) EXPECT_EQ(count, 1);
}

TEST(Fragment, RegisterPairsAreContiguousColumns) {
  // Consecutive even/odd registers of A hold adjacent columns of the same
  // row: the property that enables 128-bit loads from the Fig. 7 layout.
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t r = 0; r < 8; r += 2) {
      const auto c0 = a_fragment_m16n8k16(t, r);
      const auto c1 = a_fragment_m16n8k16(t, r + 1);
      EXPECT_EQ(c0.row, c1.row);
      EXPECT_EQ(c0.col + 1, c1.col);
    }
}

TEST(Fragment, QuarterWarpCoversConsecutiveCColumns) {
  // Threads t, t+1, t+2, t+3 of a C-fragment group cover 8 consecutive
  // columns of one row — the coalescing property of stage 3.
  for (std::size_t base = 0; base < 32; base += 4) {
    std::set<std::size_t> cols;
    std::size_t row = c_fragment_m16n8(base, 0).row;
    for (std::size_t t = base; t < base + 4; ++t)
      for (std::size_t r = 0; r < 2; ++r) {
        const auto c = c_fragment_m16n8(t, r);
        EXPECT_EQ(c.row, row);
        cols.insert(c.col);
      }
    EXPECT_EQ(cols.size(), 8u);
    EXPECT_EQ(*cols.begin(), 0u);
    EXPECT_EQ(*cols.rbegin(), 7u);
  }
}

TEST(Fragment, MetadataOwnership) {
  // Threads 0,4,...,28 carry the metadata; each covers two rows.
  for (std::size_t row = 0; row < 16; ++row) {
    const std::size_t owner = metadata_owner_m16n8k32_sp(row);
    EXPECT_EQ(owner % 4, 0u);
    EXPECT_EQ(owner, 4 * (row / 2));
  }
  EXPECT_THROW(metadata_owner_m16n8k32_sp(16), Error);
}

TEST(Fragment, RejectsOutOfRange) {
  EXPECT_THROW(a_fragment_m16n8k16(32, 0), Error);
  EXPECT_THROW(a_fragment_m16n8k16(0, 8), Error);
  EXPECT_THROW(b_fragment_m16n8k16(0, 4), Error);
  EXPECT_THROW(c_fragment_m16n8(0, 4), Error);
  EXPECT_THROW(b_fragment_m16n8k32_sp(0, 8), Error);
}

}  // namespace
}  // namespace venom::sptc
