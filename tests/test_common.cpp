// Tests for RNG determinism/quality, thread pool semantics, scratch
// memory reuse (arena + object pool), and errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace venom {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(Rng, SplitDecorrelates) {
  Rng base(5);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPoolChunks, CoversRangeExactlyOnceWithoutOverlap) {
  ThreadPool pool(4);
  const std::size_t n = 1003;  // deliberately not a multiple of any grain
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_chunks(n, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    ASSERT_LE(e, n);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  }, 7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolChunks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(
      0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for_chunks(
      0, [&](std::size_t, std::size_t) { called = true; }, 64);
  EXPECT_FALSE(called);
}

TEST(ThreadPoolChunks, GrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(5, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
  }, 1000);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolChunks, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t covered = 0;
  pool.parallel_for_chunks(100, [&](std::size_t b, std::size_t e) {
    // The <= 1 worker path runs everything inline on the caller, so
    // unsynchronized accumulation is safe here.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += e - b;
  }, 3);
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPoolChunks, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  // Grain 1 over many indices: the throwing chunk is very likely claimed
  // by a worker task, not the participating caller.
  EXPECT_THROW(pool.parallel_for_chunks(256,
                                        [&](std::size_t b, std::size_t) {
                                          if (b == 101) throw Error("chunk");
                                        },
                                        1),
               Error);
  // The pool must stay usable after draining the failed job.
  std::atomic<int> sum{0};
  pool.parallel_for_chunks(64, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(int(e - b));
  }, 1);
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPoolChunks, FirstOfConcurrentExceptionsWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_chunks(128,
                             [&](std::size_t b, std::size_t) {
                               throw Error("chunk " + std::to_string(b));
                             },
                             1);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(Error, ChecksThrowWithContext) {
  try {
    VENOM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(VENOM_CHECK(2 + 2 == 4));
}

TEST(ScratchArena, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena;
  auto* bytes = arena.alloc<std::uint8_t>(3);
  auto* doubles = arena.alloc<double>(4);
  auto* ints = arena.alloc<std::uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints) % alignof(std::uint32_t),
            0u);
  // Writes to one allocation must not bleed into another.
  std::memset(bytes, 0xAB, 3);
  for (int i = 0; i < 4; ++i) doubles[i] = 1.5;
  for (int i = 0; i < 5; ++i) ints[i] = 7;
  EXPECT_EQ(bytes[0], 0xAB);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(doubles[i], 1.5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ints[i], 7u);
}

TEST(ScratchArena, PointersSurviveGrowthWithinACycle) {
  ScratchArena arena(64);  // small: the second alloc must chain a block
  auto* first = arena.alloc<std::uint64_t>(4);
  for (int i = 0; i < 4; ++i) first[i] = 0x1111111111111111ull * (i + 1);
  auto* second = arena.alloc<std::uint64_t>(1024);
  second[0] = 42;
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(first[i], 0x1111111111111111ull * (i + 1));
}

TEST(ScratchArena, SteadyStateCapacitySettles) {
  ScratchArena arena;
  const auto cycle = [&arena] {
    arena.reset();
    arena.alloc<float>(1000);
    arena.alloc<std::uint32_t>(500);
  };
  cycle();
  cycle();  // second cycle coalesces any chained blocks
  const std::size_t settled = arena.capacity();
  for (int i = 0; i < 10; ++i) cycle();
  EXPECT_EQ(arena.capacity(), settled);  // no growth once warm
  EXPECT_GE(arena.high_water(), 1000 * sizeof(float));
}

TEST(ScratchArena, MixedAlignmentCyclesSettleToo) {
  // Alignment padding must count toward the high-water mark: a coalesced
  // block sized without it would spill (and heap-allocate) every cycle.
  ScratchArena arena;
  const auto cycle = [&arena] {
    arena.reset();
    arena.alloc<std::uint8_t>(1);   // forces 7 bytes of padding before...
    arena.alloc<double>(64);        // ...this 8-aligned allocation
    arena.alloc<std::uint8_t>(3);
    arena.alloc<std::uint64_t>(16);
  };
  cycle();
  cycle();
  const std::size_t settled = arena.capacity();
  for (int i = 0; i < 16; ++i) cycle();
  EXPECT_EQ(arena.capacity(), settled);
}

TEST(ObjectPool, MoveAssignedLeaseReturnsHeldObject) {
  ObjectPool<std::vector<int>> pool;
  auto lease = pool.acquire();
  lease->resize(10);
  for (int i = 0; i < 5; ++i) {
    // Move-assign over a live lease: the held object must go back to the
    // pool (not be destroyed), so the pool never grows past 2.
    lease = pool.acquire();
  }
  EXPECT_LE(pool.created(), 2u);
}

TEST(ScratchArena, ResetReclaimsUsage) {
  ScratchArena arena;
  arena.alloc<std::uint8_t>(100);
  EXPECT_GE(arena.bytes_used(), 100u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GE(arena.high_water(), 100u);
}

TEST(ObjectPool, SequentialAcquiresReuseOneObject) {
  ObjectPool<std::vector<int>> pool;
  std::vector<int>* seen = nullptr;
  for (int i = 0; i < 5; ++i) {
    auto lease = pool.acquire();
    lease->resize(100);
    if (seen == nullptr) seen = &*lease;
    EXPECT_EQ(&*lease, seen);  // LIFO: the warm object comes back
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ObjectPool, ConcurrentLeasesGetDistinctObjects) {
  ObjectPool<std::vector<int>> pool;
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    EXPECT_NE(&*a, &*b);
  }
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(ObjectPool, ThreadedAcquireReleaseIsSafe) {
  ObjectPool<std::vector<int>> pool;
  std::vector<std::thread> threads;
  std::atomic<int> total{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&pool, &total] {
      for (int i = 0; i < 200; ++i) {
        auto lease = pool.acquire();
        lease->push_back(i);
        total.fetch_add(1);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), 800);
  EXPECT_LE(pool.created(), 4u);  // bounded by peak concurrency
}

}  // namespace
}  // namespace venom
