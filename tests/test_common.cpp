// Tests for RNG determinism/quality, thread pool semantics, and errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace venom {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(Rng, SplitDecorrelates) {
  Rng base(5);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPoolChunks, CoversRangeExactlyOnceWithoutOverlap) {
  ThreadPool pool(4);
  const std::size_t n = 1003;  // deliberately not a multiple of any grain
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_chunks(n, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    ASSERT_LE(e, n);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  }, 7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolChunks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(
      0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for_chunks(
      0, [&](std::size_t, std::size_t) { called = true; }, 64);
  EXPECT_FALSE(called);
}

TEST(ThreadPoolChunks, GrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(5, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 5u);
  }, 1000);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolChunks, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t covered = 0;
  pool.parallel_for_chunks(100, [&](std::size_t b, std::size_t e) {
    // The <= 1 worker path runs everything inline on the caller, so
    // unsynchronized accumulation is safe here.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += e - b;
  }, 3);
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPoolChunks, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  // Grain 1 over many indices: the throwing chunk is very likely claimed
  // by a worker task, not the participating caller.
  EXPECT_THROW(pool.parallel_for_chunks(256,
                                        [&](std::size_t b, std::size_t) {
                                          if (b == 101) throw Error("chunk");
                                        },
                                        1),
               Error);
  // The pool must stay usable after draining the failed job.
  std::atomic<int> sum{0};
  pool.parallel_for_chunks(64, [&](std::size_t b, std::size_t e) {
    sum.fetch_add(int(e - b));
  }, 1);
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPoolChunks, FirstOfConcurrentExceptionsWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_chunks(128,
                             [&](std::size_t b, std::size_t) {
                               throw Error("chunk " + std::to_string(b));
                             },
                             1);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(Error, ChecksThrowWithContext) {
  try {
    VENOM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(VENOM_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace venom
