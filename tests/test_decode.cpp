// Tests for autoregressive decode: the KvCache ring buffer, the cached
// incremental forward (prefill / decode_step / batched forward_cached),
// and the serving engine's generation mode. The load-bearing invariant
// throughout: decoding against the KV ring is BIT-identical to re-running
// the full (windowed) causal forward over the accumulated sequence at
// every step — including after ring wraparound, in ragged batches, under
// mixed prefill/decode batching, and under both Spatha ColumnLocModes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "serving/admission.hpp"
#include "serving/engine.hpp"
#include "serving/router.hpp"
#include "spatha/config.hpp"
#include "spatha/tuning_cache.hpp"
#include "tensor/matrix.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"
#include "transformer/kv_cache.hpp"

namespace venom::transformer {
namespace {

using namespace std::chrono_literals;

constexpr VnmConfig kVnm{8, 2, 4};

ModelConfig causal_config(std::size_t window = 0) {
  return ModelConfig{.name = "tiny-causal", .layers = 2, .hidden = 32,
                     .heads = 4, .ffn_hidden = 64, .seq_len = 64,
                     .causal = true, .attn_window = window};
}

/// A pruned tiny causal encoder with deterministic weights.
Encoder causal_encoder(std::size_t window = 0, std::uint64_t seed = 7) {
  Rng rng(seed);
  Encoder enc(causal_config(window), rng);
  enc.sparsify(kVnm);
  return enc;
}

void expect_bits_eq(const HalfMatrix& a, const HalfMatrix& b,
                    const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t e = 0; e < a.flat().size(); ++e)
    ASSERT_EQ(a.flat()[e].bits(), b.flat()[e].bits())
        << what << " differs at flat index " << e;
}

HalfMatrix column(const HalfMatrix& m, std::size_t c) {
  HalfMatrix out(m.rows(), 1);
  for (std::size_t r = 0; r < m.rows(); ++r) out(r, 0) = m(r, c);
  return out;
}

HalfMatrix leading_cols(const HalfMatrix& m, std::size_t n) {
  HalfMatrix out(m.rows(), n);
  for (std::size_t r = 0; r < m.rows(); ++r)
    std::memcpy(&out(r, 0), &m(r, 0), n * sizeof(half_t));
  return out;
}

// ---- KvCache --------------------------------------------------------------

TEST(KvCache, AppendGatherRoundTrip) {
  KvCache cache(2, 8, 4);
  EXPECT_EQ(cache.layers(), 2u);
  EXPECT_EQ(cache.hidden(), 8u);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.length(), 0u);
  EXPECT_TRUE(cache.synchronized());

  Rng rng(3);
  const HalfMatrix k = random_half_matrix(8, 3, rng);
  const HalfMatrix v = random_half_matrix(8, 3, rng);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(cache.append(0, k, v, t), t);
    EXPECT_EQ(cache.append(1, k, v, t), t);
  }
  EXPECT_EQ(cache.length(), 3u);
  EXPECT_EQ(cache.window_begin(), 0u);

  HalfMatrix got;
  cache.gather_k(0, 2, 4, 0, 3, got);  // rows [2, 6), positions [0, 3)
  ASSERT_EQ(got.rows(), 4u);
  ASSERT_EQ(got.cols(), 3u);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t t = 0; t < 3; ++t)
      EXPECT_EQ(got(r, t).bits(), k(2 + r, t).bits());
  cache.gather_v(1, 0, 8, 1, 2, got);  // all rows, positions [1, 3)
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t t = 0; t < 2; ++t)
      EXPECT_EQ(got(r, t).bits(), v(r, 1 + t).bits());
}

TEST(KvCache, RingWraparoundKeepsNewestWindow) {
  KvCache cache(1, 4, 4);
  Rng rng(5);
  const HalfMatrix k = random_half_matrix(4, 10, rng);
  const HalfMatrix v = random_half_matrix(4, 10, rng);
  for (std::size_t t = 0; t < 10; ++t) EXPECT_EQ(cache.append(0, k, v, t), t);
  EXPECT_EQ(cache.length(), 10u);
  EXPECT_EQ(cache.window_begin(), 6u);

  // Positions 6..9 live in slots 2,3,0,1 — the gather crosses the seam.
  HalfMatrix got;
  cache.gather_k(0, 0, 4, 6, 4, got);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t t = 0; t < 4; ++t)
      EXPECT_EQ(got(r, t).bits(), k(r, 6 + t).bits());
  // A partial window that still crosses the seam.
  cache.gather_v(0, 1, 2, 7, 3, got);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t t = 0; t < 3; ++t)
      EXPECT_EQ(got(r, t).bits(), v(1 + r, 7 + t).bits());
}

TEST(KvCache, RejectsNonResidentGather) {
  KvCache cache(1, 4, 4);
  Rng rng(6);
  const HalfMatrix k = random_half_matrix(4, 8, rng);
  const HalfMatrix v = random_half_matrix(4, 8, rng);
  for (std::size_t t = 0; t < 6; ++t) cache.append(0, k, v, t);

  HalfMatrix got;
  EXPECT_NO_THROW(cache.gather_k(0, 0, 4, 2, 4, got));  // exactly resident
  EXPECT_THROW(cache.gather_k(0, 0, 4, 1, 4, got), Error);  // 1 evicted
  EXPECT_THROW(cache.gather_k(0, 0, 4, 3, 4, got), Error);  // beyond length
  EXPECT_THROW(cache.gather_k(0, 0, 4, 2, 5, got), Error);  // w > capacity
  EXPECT_THROW(cache.gather_k(0, 0, 4, 2, 0, got), Error);  // empty window
}

TEST(KvCache, ResetAndLayerSynchronization) {
  KvCache cache(2, 4, 4);
  Rng rng(8);
  const HalfMatrix k = random_half_matrix(4, 2, rng);
  const HalfMatrix v = random_half_matrix(4, 2, rng);
  cache.append(0, k, v, 0);
  EXPECT_FALSE(cache.synchronized());  // layer 1 lags mid-forward
  EXPECT_EQ(cache.layer_length(0), 1u);
  EXPECT_EQ(cache.layer_length(1), 0u);
  cache.append(1, k, v, 0);
  EXPECT_TRUE(cache.synchronized());

  cache.reset();
  EXPECT_EQ(cache.length(), 0u);
  EXPECT_TRUE(cache.synchronized());
  EXPECT_EQ(cache.append(0, k, v, 1), 0u);  // fresh sequence

  // bytes() = 2 (K and V) * layers * hidden * capacity * sizeof(fp16).
  EXPECT_EQ(cache.bytes(), 2u * 2u * 4u * 4u * sizeof(half_t));
  EXPECT_THROW(KvCache(0, 4, 4), Error);
  EXPECT_THROW(KvCache(2, 0, 4), Error);
  EXPECT_THROW(KvCache(2, 4, 0), Error);
}

// ---- cached forward vs full causal forward --------------------------------

TEST(CachedDecode, PrefillMatchesFullForwardBits) {
  const Encoder enc = causal_encoder();
  Rng rng(11);
  const HalfMatrix prompt = random_half_matrix(32, 12, rng, 0.5f);

  KvCache cache = enc.make_cache(32);
  const HalfMatrix cached = enc.prefill(prompt, cache);
  const HalfMatrix full = enc.forward(prompt);
  expect_bits_eq(cached, full, "prefill vs full forward");
  EXPECT_EQ(cache.length(), 12u);
  EXPECT_TRUE(cache.synchronized());
}

// The acceptance bar: >= 32 generated tokens, each step's cached output
// bit-identical to re-running the full causal forward over the whole
// accumulated sequence.
TEST(CachedDecode, DecodeStepsBitIdenticalToFullForward) {
  const Encoder enc = causal_encoder();
  constexpr std::size_t kPrompt = 7, kSteps = 32;
  Rng rng(13);
  const HalfMatrix prompt = random_half_matrix(32, kPrompt, rng, 0.5f);

  KvCache cache = enc.make_cache(kPrompt + kSteps);
  const HalfMatrix pre = enc.prefill(prompt, cache);

  // Autoregressive identity feedback: step t's input is step t-1's
  // output column (the last prompt output seeds step 0).
  HalfMatrix seq(32, kPrompt + kSteps);
  for (std::size_t r = 0; r < 32; ++r)
    std::memcpy(&seq(r, 0), &prompt(r, 0), kPrompt * sizeof(half_t));
  HalfMatrix x = column(pre, kPrompt - 1);
  for (std::size_t t = 0; t < kSteps; ++t) {
    for (std::size_t r = 0; r < 32; ++r) seq(r, kPrompt + t) = x(r, 0);
    const HalfMatrix y = enc.decode_step(x, cache);
    const HalfMatrix full = enc.forward(leading_cols(seq, kPrompt + t + 1));
    expect_bits_eq(y, column(full, kPrompt + t), "decode step");
    x = y;
  }
  EXPECT_EQ(cache.length(), kPrompt + kSteps);
}

// Same invariant with a sliding window: capacity == window == 8, decoding
// far past wraparound. The reference is the same encoder's full forward,
// whose causal mask also hides keys outside the window.
TEST(CachedDecode, WraparoundMatchesWindowedFullForward) {
  constexpr std::size_t kWindow = 8, kPrompt = 6, kSteps = 34;
  const Encoder enc = causal_encoder(kWindow);
  ASSERT_EQ(enc.attention_window(), kWindow);
  Rng rng(17);
  const HalfMatrix prompt = random_half_matrix(32, kPrompt, rng, 0.5f);

  KvCache cache = enc.make_cache(kWindow);
  const HalfMatrix pre = enc.prefill(prompt, cache);
  expect_bits_eq(pre, enc.forward(prompt), "windowed prefill");

  HalfMatrix seq(32, kPrompt + kSteps);
  for (std::size_t r = 0; r < 32; ++r)
    std::memcpy(&seq(r, 0), &prompt(r, 0), kPrompt * sizeof(half_t));
  HalfMatrix x = column(pre, kPrompt - 1);
  for (std::size_t t = 0; t < kSteps; ++t) {
    for (std::size_t r = 0; r < 32; ++r) seq(r, kPrompt + t) = x(r, 0);
    const HalfMatrix y = enc.decode_step(x, cache);
    const HalfMatrix full = enc.forward(leading_cols(seq, kPrompt + t + 1));
    expect_bits_eq(y, column(full, kPrompt + t), "windowed decode step");
    x = y;
  }
  EXPECT_EQ(cache.length(), kPrompt + kSteps);  // logical length keeps growing
  EXPECT_EQ(cache.window_begin(), kPrompt + kSteps - kWindow);
}

TEST(CachedDecode, RaggedBatchedPrefillMatchesSolo) {
  const Encoder enc = causal_encoder();
  constexpr std::size_t kLenA = 3, kLenB = 10;
  Rng rng(19);
  const HalfMatrix a = random_half_matrix(32, kLenA, rng, 0.5f);
  const HalfMatrix b = random_half_matrix(32, kLenB, rng, 0.5f);

  // Packed ragged prefill: two sequences, two caches, one forward.
  HalfMatrix packed(32, kLenA + kLenB);
  for (std::size_t r = 0; r < 32; ++r) {
    std::memcpy(&packed(r, 0), &a(r, 0), kLenA * sizeof(half_t));
    std::memcpy(&packed(r, kLenA), &b(r, 0), kLenB * sizeof(half_t));
  }
  KvCache ca = enc.make_cache(16), cb = enc.make_cache(16);
  const std::size_t ends[] = {kLenA, kLenA + kLenB};
  KvCache* caches[] = {&ca, &cb};
  const HalfMatrix y = enc.forward_cached(packed, ends, caches);
  EXPECT_EQ(ca.length(), kLenA);
  EXPECT_EQ(cb.length(), kLenB);

  // Each span bit-matches the solo prefill (and hence the full forward).
  KvCache sa = enc.make_cache(16), sb = enc.make_cache(16);
  const HalfMatrix ya = enc.prefill(a, sa);
  const HalfMatrix yb = enc.prefill(b, sb);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t t = 0; t < kLenA; ++t)
      ASSERT_EQ(y(r, t).bits(), ya(r, t).bits());
    for (std::size_t t = 0; t < kLenB; ++t)
      ASSERT_EQ(y(r, kLenA + t).bits(), yb(r, t).bits());
  }
}

// One forward_cached mixing a decode step of a live session with a
// prefill chunk of a fresh one — the batch shape the serving engine
// builds — must not perturb either sequence's bits.
TEST(CachedDecode, MixedPrefillDecodeBatchBitIdentity) {
  const Encoder enc = causal_encoder();
  constexpr std::size_t kLenA = 5, kLenB = 4;
  Rng rng(23);
  const HalfMatrix a = random_half_matrix(32, kLenA, rng, 0.5f);
  const HalfMatrix b = random_half_matrix(32, kLenB, rng, 0.5f);

  // Solo reference: prefill A, one decode step; prefill B.
  KvCache sa = enc.make_cache(16), sb = enc.make_cache(16);
  const HalfMatrix pa = enc.prefill(a, sa);
  const HalfMatrix xa = column(pa, kLenA - 1);
  const HalfMatrix ref_a = enc.decode_step(xa, sa);
  const HalfMatrix ref_b = enc.prefill(b, sb);

  // Mixed batch: A's decode token (1 column) packed ahead of B's prompt.
  KvCache ma = enc.make_cache(16), mb = enc.make_cache(16);
  (void)enc.prefill(a, ma);
  HalfMatrix packed(32, 1 + kLenB);
  for (std::size_t r = 0; r < 32; ++r) {
    packed(r, 0) = xa(r, 0);
    std::memcpy(&packed(r, 1), &b(r, 0), kLenB * sizeof(half_t));
  }
  const std::size_t ends[] = {1, 1 + kLenB};
  KvCache* caches[] = {&ma, &mb};
  const HalfMatrix y = enc.forward_cached(packed, ends, caches);

  for (std::size_t r = 0; r < 32; ++r) {
    ASSERT_EQ(y(r, 0).bits(), ref_a(r, 0).bits());
    for (std::size_t t = 0; t < kLenB; ++t)
      ASSERT_EQ(y(r, 1 + t).bits(), ref_b(r, t).bits());
  }
}

// The decode invariant must hold whichever Spatha column-location mode
// the projections dispatch under. kEnabled is the default; kFixed (the
// paper's column-loc ablation) is forced for every weight shape and
// batch width this test touches via the process-wide tuning cache — the
// same channel `venomtool tune` uses — and removed afterwards.
TEST(CachedDecode, BitIdenticalUnderBothColumnLocModes) {
  constexpr std::size_t kPrompt = 5, kSteps = 12;
  constexpr std::size_t kMaxCols = kPrompt + kSteps;
  // M = 8 so the vector-wise stage keeps 4 of 8 columns per group:
  // column-location metadata is non-trivial (with M = 4 every column is
  // kept and kFixed degenerates to kEnabled by construction).
  constexpr VnmConfig kWideVnm{8, 2, 8};
  const Encoder enc = [] {
    Rng rng(7);
    Encoder e(causal_config(), rng);
    e.sparsify(kWideVnm);
    return e;
  }();

  struct TunedModeGuard {
    std::vector<spatha::TuningKey> keys;
    ~TunedModeGuard() {
      for (const auto& key : keys) spatha::TuningCache::global().erase(key);
    }
  };

  HalfMatrix outputs[2];  // final decode output per mode, for contrast
  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    TunedModeGuard guard;
    if (mode == spatha::ColumnLocMode::kFixed) {
      // (out, in) shapes of the six per-layer weights; b_cols spans every
      // activation width the full forwards and decode steps below use.
      const std::size_t shapes[][2] = {{32, 32}, {64, 32}, {32, 64}};
      for (const auto& shape : shapes)
        for (std::size_t b = 1; b <= kMaxCols; ++b) {
          spatha::TuningEntry entry;
          entry.config = spatha::select_config_heuristic(kWideVnm, shape[0],
                                                         shape[1], b);
          entry.config.column_loc = spatha::ColumnLocMode::kFixed;
          entry.gflops = 1.0;
          const spatha::TuningKey key =
              spatha::make_tuning_key(kWideVnm, shape[0], shape[1], b);
          spatha::TuningCache::global().put(key, entry);
          guard.keys.push_back(key);
        }
      // The injected entries must actually win config selection.
      ASSERT_EQ(spatha::select_config(kWideVnm, 32, 32, 1).column_loc,
                spatha::ColumnLocMode::kFixed);
    }

    Rng rng(29);
    const HalfMatrix prompt = random_half_matrix(32, kPrompt, rng, 0.5f);
    // A private context per mode: plan caches memoize per-shape configs,
    // so reusing one would leak the previous mode's plans.
    ops::ExecContext ctx;
    KvCache cache = enc.make_cache(kMaxCols);
    const HalfMatrix pre = enc.prefill(prompt, cache, nullptr, &ctx);
    expect_bits_eq(pre, enc.forward(prompt, nullptr, &ctx), "mode prefill");

    HalfMatrix seq(32, kMaxCols);
    for (std::size_t r = 0; r < 32; ++r)
      std::memcpy(&seq(r, 0), &prompt(r, 0), kPrompt * sizeof(half_t));
    HalfMatrix x = column(pre, kPrompt - 1);
    for (std::size_t t = 0; t < kSteps; ++t) {
      for (std::size_t r = 0; r < 32; ++r) seq(r, kPrompt + t) = x(r, 0);
      const HalfMatrix y = enc.decode_step(x, cache, nullptr, &ctx);
      const HalfMatrix full =
          enc.forward(leading_cols(seq, kPrompt + t + 1), nullptr, &ctx);
      expect_bits_eq(y, column(full, kPrompt + t), "mode decode step");
      x = y;
    }
    outputs[mode == spatha::ColumnLocMode::kFixed ? 1 : 0] = x;
  }
  // The ablation must have taken effect: with magnitude-selected (non-
  // identity) columns, kFixed computes a different linear map, so the
  // two modes' trajectories diverge even though each is self-consistent.
  bool identical = true;
  for (std::size_t e = 0; e < outputs[0].flat().size(); ++e)
    identical = identical &&
                outputs[0].flat()[e].bits() == outputs[1].flat()[e].bits();
  EXPECT_FALSE(identical);
}

TEST(CachedDecode, GuardsMisuse) {
  Rng rng(31);
  const HalfMatrix x1 = random_half_matrix(32, 1, rng, 0.5f);

  {  // non-causal encoder: a KV cache is a decode structure
    Rng r2(33);
    ModelConfig cfg = causal_config();
    cfg.causal = false;
    Encoder enc(cfg, r2);
    enc.sparsify(kVnm);
    KvCache cache = enc.make_cache(8);
    EXPECT_THROW(enc.prefill(x1, cache), Error);
  }
  {  // dynamic N:M attention needs the whole probability row
    Encoder enc = causal_encoder();
    enc.set_dynamic_score_sparsity(NmPattern{2, 4});
    KvCache cache = enc.make_cache(8);
    EXPECT_THROW(enc.prefill(x1, cache), Error);
  }
  const Encoder enc = causal_encoder();
  {  // layer-count mismatch
    KvCache cache(1, 32, 8);
    EXPECT_THROW(enc.prefill(x1, cache), Error);
  }
  {  // window/capacity pairing is enforced
    const Encoder windowed = causal_encoder(8);
    KvCache cache = windowed.make_cache(16);
    EXPECT_THROW(windowed.prefill(x1, cache), Error);
  }
  {  // ring overflow without a window must throw, not silently evict
    KvCache cache = enc.make_cache(4);
    const HalfMatrix prompt = random_half_matrix(32, 4, rng, 0.5f);
    (void)enc.prefill(prompt, cache);
    EXPECT_THROW(enc.decode_step(x1, cache), Error);
  }
  {  // decode_step is single-token by contract
    KvCache cache = enc.make_cache(8);
    const HalfMatrix two = random_half_matrix(32, 2, rng, 0.5f);
    EXPECT_THROW(enc.decode_step(two, cache), Error);
  }
}

}  // namespace
}  // namespace venom::transformer

// ---- serving engine generation -------------------------------------------

namespace venom::serving {
namespace {

using namespace std::chrono_literals;
using transformer::Encoder;
using transformer::KvCache;

Options gen_options() {
  Options opts;
  opts.batching.max_batch_tokens = 64;
  opts.batching.max_wait = std::chrono::microseconds(200);
  opts.kv_capacity = 64;
  opts.max_new_tokens = 32;
  return opts;
}

/// The engine's generation contract, replayed directly on the encoder:
/// prefill the prompt, seed decode with the last prompt output, then
/// `steps` identity-feedback decode steps. Returns (hidden x steps).
HalfMatrix direct_generate(const Encoder& enc, const HalfMatrix& prompt,
                           std::size_t steps, std::size_t capacity) {
  KvCache cache = enc.make_cache(capacity);
  const HalfMatrix pre = enc.prefill(prompt, cache);
  HalfMatrix gen(prompt.rows(), steps);
  HalfMatrix x(prompt.rows(), 1);
  for (std::size_t r = 0; r < prompt.rows(); ++r)
    x(r, 0) = pre(r, prompt.cols() - 1);
  for (std::size_t t = 0; t < steps; ++t) {
    const HalfMatrix y = enc.decode_step(x, cache);
    for (std::size_t r = 0; r < prompt.rows(); ++r) {
      gen(r, t) = y(r, 0);
      x(r, 0) = y(r, 0);
    }
  }
  return gen;
}

void expect_bits_eq(const HalfMatrix& a, const HalfMatrix& b,
                    const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t e = 0; e < a.flat().size(); ++e)
    ASSERT_EQ(a.flat()[e].bits(), b.flat()[e].bits())
        << what << " differs at flat index " << e;
}

TEST(EngineGeneration, MatchesDirectPrefillDecodeLoop) {
  const Encoder enc = transformer::causal_encoder();
  const HalfMatrix ref = [&] {
    Rng rng(41);
    return direct_generate(enc, random_half_matrix(32, 6, rng, 0.5f), 8, 64);
  }();

  InferenceEngine engine(transformer::causal_encoder(), gen_options());
  Request req;
  {
    Rng rng(41);
    req.input = random_half_matrix(32, 6, rng, 0.5f);
  }
  req.max_new_tokens = 8;
  const Response resp = engine.submit(std::move(req)).get();

  expect_bits_eq(resp.output, ref, "engine generation");
  EXPECT_EQ(resp.tokens_generated, 8u);
  EXPECT_GT(resp.prefill_ms, 0.0);
  EXPECT_GT(resp.decode_ms, 0.0);
  EXPECT_DOUBLE_EQ(resp.exec_ms, resp.prefill_ms + resp.decode_ms);

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.prefill_tokens, 6u);
  EXPECT_EQ(stats.decode_steps, 8u);
  EXPECT_GT(stats.decode_p50_ms, 0.0);
  EXPECT_GE(stats.decode_p99_ms, stats.decode_p50_ms);
}

TEST(EngineGeneration, OnTokenHookTransformsFeedbackAndStopsEarly) {
  // The hook overwrites the feedback column with a constant and declares
  // eos after 3 generated tokens. The engine's outputs must match a
  // direct loop applying the same transformation.
  const half_t fed(0.25f);
  const Encoder enc = transformer::causal_encoder();
  Rng rng(43);
  const HalfMatrix prompt = random_half_matrix(32, 4, rng, 0.5f);

  HalfMatrix ref(32, 3);
  {
    KvCache cache = enc.make_cache(64);
    (void)enc.prefill(prompt, cache);
    HalfMatrix x(32, 1);
    for (std::size_t r = 0; r < 32; ++r) x(r, 0) = fed;  // post-hook seed
    for (std::size_t t = 0; t < 3; ++t) {
      const HalfMatrix y = enc.decode_step(x, cache);
      for (std::size_t r = 0; r < 32; ++r) {
        ref(r, t) = y(r, 0);
        x(r, 0) = fed;
      }
    }
  }

  InferenceEngine engine(transformer::causal_encoder(), gen_options());
  Request req;
  req.input = prompt;
  req.max_new_tokens = 32;  // eos, not the cap, must stop generation
  std::atomic<std::size_t> calls{0};
  req.on_token = [&](std::span<half_t> next) {
    for (half_t& h : next) h = fed;
    // Called once after prefill, then once per decode output: returning
    // false on the 4th call stops after 3 generated tokens.
    return calls.fetch_add(1) + 1 < 4;
  };
  const Response resp = engine.submit(std::move(req)).get();
  EXPECT_EQ(resp.tokens_generated, 3u);
  expect_bits_eq(resp.output, ref, "hooked generation");
  EXPECT_EQ(calls.load(), 4u);
}

TEST(EngineGeneration, EosInPromptGeneratesNothing) {
  InferenceEngine engine(transformer::causal_encoder(), gen_options());
  Rng rng(47);
  Request req;
  req.input = random_half_matrix(32, 5, rng, 0.5f);
  req.max_new_tokens = 8;
  req.on_token = [](std::span<half_t>) { return false; };
  const Response resp = engine.submit(std::move(req)).get();
  EXPECT_EQ(resp.tokens_generated, 0u);
  EXPECT_EQ(resp.output.cols(), 0u);
  EXPECT_GT(resp.prefill_ms, 0.0);
  EXPECT_EQ(engine.stats().decode_steps, 0u);
}

// Generation interleaved with plain encode traffic, with prefill chunking
// forcing multi-pass prompts: every response must still be bit-identical
// to its unbatched reference.
TEST(EngineGeneration, MixedTrafficKeepsBitIdentity) {
  const Encoder ref_enc = transformer::causal_encoder();
  Options opts = gen_options();
  opts.batching.max_batch_tokens = 16;
  opts.prefill_chunk_tokens = 4;  // a 9-token prompt takes 3 chunks
  InferenceEngine engine(transformer::causal_encoder(), opts);

  Rng rng(53);
  const HalfMatrix prompt_a = random_half_matrix(32, 9, rng, 0.5f);
  const HalfMatrix prompt_b = random_half_matrix(32, 5, rng, 0.5f);
  std::vector<HalfMatrix> encodes;
  for (int i = 0; i < 6; ++i)
    encodes.push_back(random_half_matrix(32, 3 + i % 4, rng, 0.5f));

  Request ga;
  ga.input = prompt_a;
  ga.max_new_tokens = 6;
  Request gb;
  gb.input = prompt_b;
  gb.max_new_tokens = 6;
  auto fa = engine.submit(std::move(ga));
  auto fb = engine.submit(std::move(gb));
  std::vector<std::future<Response>> fe;
  for (const auto& x : encodes) {
    Request req;
    req.input = x;
    fe.push_back(engine.submit(std::move(req)));
  }

  expect_bits_eq(fa.get().output, direct_generate(ref_enc, prompt_a, 6, 64),
                 "mixed generation A");
  expect_bits_eq(fb.get().output, direct_generate(ref_enc, prompt_b, 6, 64),
                 "mixed generation B");
  for (std::size_t i = 0; i < fe.size(); ++i)
    expect_bits_eq(fe[i].get().output, ref_enc.forward(encodes[i]),
                   "mixed encode");

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.prefill_tokens, 14u);
  EXPECT_EQ(stats.decode_steps, 12u);
  EXPECT_EQ(stats.requests, 8u);
}

TEST(EngineGeneration, WindowedSessionDecodesPastTheRing) {
  // window == kv_capacity == 8: a 6-token prompt plus 16 decode steps
  // wraps the ring inside the engine; outputs must match the direct loop.
  const Encoder ref_enc = transformer::causal_encoder(8);
  Options opts = gen_options();
  opts.kv_capacity = 8;
  InferenceEngine engine(transformer::causal_encoder(8), opts);

  Rng rng(59);
  const HalfMatrix prompt = random_half_matrix(32, 6, rng, 0.5f);
  Request req;
  req.input = prompt;
  req.max_new_tokens = 16;
  const Response resp = engine.submit(std::move(req)).get();
  EXPECT_EQ(resp.tokens_generated, 16u);
  expect_bits_eq(resp.output, direct_generate(ref_enc, prompt, 16, 8),
                 "windowed engine generation");
}

TEST(EngineGeneration, ShutdownDrainsLiveSessions) {
  InferenceEngine engine(transformer::causal_encoder(), gen_options());
  Rng rng(61);
  Request req;
  req.input = random_half_matrix(32, 4, rng, 0.5f);
  req.max_new_tokens = 12;
  auto fut = engine.submit(std::move(req));
  // The session's decode steps re-enter the queue after close(): shutdown
  // must drain the generation to completion, not abandon it.
  engine.shutdown();
  const Response resp = fut.get();
  EXPECT_EQ(resp.tokens_generated, 12u);
}

TEST(EngineGeneration, LapsedDeadlineShedsQueuedSession) {
  InferenceEngine engine(transformer::causal_encoder(), gen_options());
  Rng rng(67);
  Request req;
  req.input = random_half_matrix(32, 4, rng, 0.5f);
  req.max_new_tokens = 4;
  req.deadline = Clock::now() - 1ms;  // already lapsed at submit
  auto fut = engine.submit(std::move(req));
  try {
    (void)fut.get();
    FAIL() << "expected AdmissionError(kDeadlineExceeded)";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kDeadlineExceeded);
  }
  EXPECT_EQ(engine.stats().shed, 1u);
}

TEST(EngineGeneration, SubmitValidation) {
  EXPECT_THROW(
      [] {
        Options opts = gen_options();
        opts.kv_capacity = 0;
        InferenceEngine engine(transformer::causal_encoder(), opts);
      }(),
      Error);

  Rng rng(71);
  const HalfMatrix prompt = random_half_matrix(32, 8, rng, 0.5f);
  {  // over the options cap
    InferenceEngine engine(transformer::causal_encoder(), gen_options());
    Request req;
    req.input = prompt;
    req.max_new_tokens = 33;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {  // generation needs a causal encoder
    Rng r2(73);
    transformer::Encoder enc(transformer::ModelConfig{
        .name = "tiny", .layers = 2, .hidden = 32, .heads = 4,
        .ffn_hidden = 64, .seq_len = 16}, r2);
    enc.sparsify({8, 2, 4});
    InferenceEngine engine(std::move(enc), gen_options());
    Request req;
    req.input = prompt;
    req.max_new_tokens = 4;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {  // prompt + max_new_tokens must fit an unwindowed ring
    Options opts = gen_options();
    opts.kv_capacity = 10;
    opts.max_new_tokens = 8;
    InferenceEngine engine(transformer::causal_encoder(), opts);
    Request req;
    req.input = prompt;
    req.max_new_tokens = 3;  // 8 + 3 > 10
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {  // a windowed encoder pins kv_capacity to the window
    InferenceEngine engine(transformer::causal_encoder(8), gen_options());
    Request req;
    req.input = prompt;
    req.max_new_tokens = 4;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {  // dynamic N:M attention cannot generate
    transformer::Encoder enc = transformer::causal_encoder();
    enc.set_dynamic_score_sparsity(NmPattern{2, 4});
    InferenceEngine engine(std::move(enc), gen_options());
    Request req;
    req.input = prompt;
    req.max_new_tokens = 4;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
}

TEST(EngineGroupGeneration, StickySessionsStayBitIdentical) {
  const Encoder ref_enc = transformer::causal_encoder();
  Options opts = gen_options();
  opts.replicas = 2;
  EngineGroup group(transformer::causal_encoder(), opts);

  Rng rng(79);
  std::vector<HalfMatrix> prompts;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) {
    prompts.push_back(random_half_matrix(32, 3 + i, rng, 0.5f));
    Request req;
    req.input = prompts.back();
    req.max_new_tokens = 5;
    futs.push_back(group.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response resp = futs[i].get();
    EXPECT_LT(resp.replica, 2u);
    expect_bits_eq(resp.output, direct_generate(ref_enc, prompts[i], 5, 64),
                   "group generation");
  }
  const GroupStats stats = group.stats();
  EXPECT_EQ(stats.decode_steps, 20u);
  EXPECT_EQ(stats.prefill_tokens, 3u + 4u + 5u + 6u);
  EXPECT_EQ(stats.requests, 4u);
  // Admission gauges fully released once every session delivered.
  EXPECT_EQ(stats.admission.inflight_tokens, 0u);
}

}  // namespace
}  // namespace venom::serving
